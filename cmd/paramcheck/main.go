// Command paramcheck validates a parameter set against every constraint of
// §5.2 of the paper and prints all derived bounds: the feasible round-length
// interval [PMin, PMax], the window, the adjustment bound (Thm 4a), the
// agreement bound γ (Thm 16), the validity parameters (Thm 19), the β floor,
// and the start-up quantities (Lemma 20).
//
// Example:
//
//	paramcheck -n 7 -f 2 -rho 1e-5 -delta 10ms -eps 1ms -beta 5.5ms -p 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/exp"
)

func main() {
	var (
		n       = flag.Int("n", 7, "number of processes")
		f       = flag.Int("f", 2, "fault bound")
		rho     = flag.Float64("rho", 1e-5, "drift bound ρ")
		delta   = flag.Duration("delta", 10*time.Millisecond, "median delay δ")
		eps     = flag.Duration("eps", time.Millisecond, "delay uncertainty ε")
		beta    = flag.Duration("beta", 5500*time.Microsecond, "initial closeness β")
		p       = flag.Duration("p", time.Second, "round length P")
		suggest = flag.Bool("suggest", false, "derive a feasible β for the given ρ, δ, ε, P instead of using -beta")
	)
	flag.Parse()

	params := analysis.Params{
		N: *n, F: *f,
		Rho: *rho, Delta: delta.Seconds(), Eps: eps.Seconds(),
		Beta: beta.Seconds(), P: p.Seconds(),
	}
	if *suggest {
		sp, err := analysis.Suggest(*n, *f, *rho, delta.Seconds(), eps.Seconds(), p.Seconds())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		params = sp
		fmt.Printf("derived β = %s (minimum %s plus margin)\n\n",
			exp.FmtDur(params.Beta), exp.FmtDur(analysis.MinBetaForP(*rho, delta.Seconds(), eps.Seconds(), p.Seconds())))
	}

	fmt.Printf("parameters: n=%d f=%d ρ=%g δ=%s ε=%s β=%s P=%s\n\n",
		params.N, params.F, params.Rho,
		exp.FmtDur(params.Delta), exp.FmtDur(params.Eps), exp.FmtDur(params.Beta), exp.FmtDur(params.P))

	fmt.Println("derived bounds:")
	fmt.Printf("  round-length interval   P ∈ [%s, %s]\n", exp.FmtDur(params.PMin()), exp.FmtDur(params.PMax()))
	fmt.Printf("  collection window       (1+ρ)(β+δ+ε) = %s\n", exp.FmtDur(params.Window()))
	fmt.Printf("  adjustment bound (T4a)  (1+ρ)(β+ε)+ρδ = %s\n", exp.FmtDur(params.AdjBound()))
	fmt.Printf("  agreement γ (T16)       %s\n", exp.FmtDur(params.Gamma()))
	a1, a2, a3 := params.Validity()
	fmt.Printf("  validity (T19)          α₁=%.6f α₂=%.6f α₃=%s (λ=%s)\n", a1, a2, exp.FmtDur(a3), exp.FmtDur(params.Lambda()))
	fmt.Printf("  steady β floor          4ε+4ρP = %s\n", exp.FmtDur(params.BetaFloor()))
	for k := 2; k <= 4; k++ {
		fmt.Printf("  β floor, k=%d            %s\n", k, exp.FmtDur(params.BetaFloorK(k)))
	}
	fmt.Printf("  startup floor (L20)     4ε+4ρ(11δ+39ε) = %s\n", exp.FmtDur(params.StartupFloor()))
	fmt.Printf("  startup waits           W1=%s W2=%s\n", exp.FmtDur(params.StartupWait1()), exp.FmtDur(params.StartupWait2()))
	fmt.Printf("  mean convergence rate   f/(n−2f) = %.4f (midpoint: 0.5)\n\n", params.MeanConvergenceRate())

	if err := params.Validate(); err != nil {
		fmt.Printf("INVALID:\n%v\n", err)
		os.Exit(1)
	}
	fmt.Println("all §5.2 constraints satisfied")
}
