// Command experiments runs the paper-reproduction experiment suite and
// prints one table per reproduced claim (see DESIGN.md §3 for the index).
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E08   # run one experiment
//	experiments -list      # list experiments
//	experiments -md        # emit markdown instead of aligned text
//	experiments -workers 1 # force serial sweeps (default: GOMAXPROCS)
//
// Each experiment's independent simulation workloads fan out across a
// worker pool (internal/exp/runner); tables are byte-identical for any
// worker count, so -workers only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/exp/runner"
)

func main() {
	var (
		runID    = flag.String("run", "", "run only the experiment with this id (e.g. E03)")
		list     = flag.Bool("list", false, "list experiments and exit")
		markdown = flag.Bool("md", false, "render tables as markdown")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		big      = flag.Bool("big", true, "include the large sweep rows (E05 f>4, E09 n>31, E17 n=13)")
		stress   = flag.Bool("stress", false, "include the nightly stress rows (E17 conformance at n=31)")
	)
	flag.Parse()
	runner.SetDefaultWorkers(*workers)
	exp.SetBigSweeps(*big)
	exp.SetStressTier(*stress)

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-5s %-70s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	exps := exp.All()
	if *runID != "" {
		e, err := exp.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []exp.Experiment{e}
	}

	failed := 0
	for _, e := range exps {
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		for _, t := range tables {
			if *markdown {
				t.Markdown(os.Stdout)
			} else {
				t.Render(os.Stdout)
				fmt.Println()
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
