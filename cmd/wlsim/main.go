// Command wlsim runs a single clock synchronization simulation with
// configurable parameters and prints the measured quantities next to the
// paper's bounds.
//
// Example:
//
//	wlsim -n 7 -f 2 -rounds 20 -rho 1e-5 -delta 10ms -eps 1ms -p 1s
//	wlsim -n 10 -f 3 -faults two-faced -adversarial
//	wlsim -n 7 -f 2 -trials 32 -workers 4   # seed sweep on a worker pool
//	wlsim -adversary-list                   # the registered strategy space
//	wlsim -n 7 -f 2 -adversary splitter     # faulty automata from the registry
//	wlsim -n 7 -f 0 -adversary skewmax      # adaptive delivery retiming (E18)
//	wlsim -n 1009 -f 0 -shards 8 -rounds 10 # sharded time-window engine
//	wlsim -n 1009 -clusters 32 -rounds 10   # two-tier hierarchy (≈ n·c + (n/c)² traffic)
//	wlsim -n 1009 -topology two-tier -shards 8 -rounds 10  # clusters drained in parallel
//	wlsim -scenario scenarios/partition-heal.json   # run a declarative scenario
//
// -scenario runs one internal/scenario JSON file — topology, delay
// substrate, timed chaos script and assertions all come from the file (the
// other configuration flags are rejected alongside it). The report table is
// printed and the exit status reflects the scenario's assertions, so a
// scenario file doubles as an executable regression test.
//
// -adversary resolves any strategy registered in internal/faults — fixed
// (schedule-driven faulty automata on the top f ids) or adaptive (a
// network adversary installed on the engine's delivery pipeline, clamped
// to [δ−ε, δ+ε]).
//
// With -trials > 1 the same configuration runs across that many seeds
// (derived deterministically from -seed, so results do not depend on
// -workers) and a per-trial table plus min/median/max summary is printed.
//
// wlsim is also the profiling entry point for the simulator hot path:
//
//	wlsim -n 31 -f 10 -rounds 200 -cpuprofile cpu.pprof
//	wlsim -n 31 -f 10 -rounds 200 -memprofile mem.pprof
//	go tool pprof -top cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	clocksync "repro"
	"repro/internal/exp"
	"repro/internal/exp/runner"
	"repro/internal/faults"
	"repro/internal/scenario"
)

func main() {
	var (
		n        = flag.Int("n", 7, "number of processes")
		f        = flag.Int("f", 2, "fault tolerance bound (n ≥ 3f+1)")
		rounds   = flag.Int("rounds", 20, "rounds to simulate")
		rho      = flag.Float64("rho", 1e-5, "clock drift bound ρ")
		delta    = flag.Duration("delta", 10*time.Millisecond, "median message delay δ")
		eps      = flag.Duration("eps", time.Millisecond, "delay uncertainty ε")
		beta     = flag.Duration("beta", 5500*time.Microsecond, "initial closeness β")
		p        = flag.Duration("p", time.Second, "round length P")
		k        = flag.Int("k", 1, "clock exchanges per round (§7)")
		stagger  = flag.Duration("stagger", 0, "broadcast stagger σ (§9.3)")
		mean     = flag.Bool("mean", false, "use mean instead of midpoint averaging")
		seed     = flag.Int64("seed", 1, "random seed")
		advDelay = flag.Bool("adversarial", false, "pin delays at band edges (worst case)")
		faultStr = flag.String("faults", "", "make the top f processes faulty: silent|two-faced|noise|stale-replay|crash")
		advStrat = flag.String("adversary", "", "install a registered adversary strategy by name (fixed or adaptive; see -adversary-list)")
		advList  = flag.Bool("adversary-list", false, "list the registered adversary strategies and exit")
		scenFile = flag.String("scenario", "", "run a declarative scenario file (internal/scenario JSON) and exit")
		startup  = flag.Bool("startup", false, "run the §9.2 establishment algorithm instead")
		trace    = flag.Int("trace", 0, "print the first N actions of the execution log")
		spread   = flag.Float64("spread", 2.0, "initial clock spread in seconds (startup mode)")
		shards   = flag.Int("shards", 1, "run on the sharded time-window engine across this many shards (deterministic: results are identical for every value)")
		topology = flag.String("topology", "flat", "synchronization topology: flat (all-to-all mesh) or two-tier (clustered hierarchy)")
		clusters = flag.Int("clusters", 0, "two-tier cluster size c (implies -topology two-tier; 0 with two-tier = c ≈ √n)")
		trials   = flag.Int("trials", 1, "run this many derived-seed trials of the same configuration")
		workers  = flag.Int("workers", 0, "worker pool size for -trials (0 = GOMAXPROCS)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	runner.SetDefaultWorkers(*workers)

	if *advList {
		listAdversaries()
		return
	}

	if *scenFile != "" {
		// The scenario file is the whole configuration; a simulation flag
		// next to it would be silently ignored, which is worse than an error.
		var extra []string
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name != "scenario" {
				extra = append(extra, "-"+fl.Name)
			}
		})
		if len(extra) > 0 {
			exitOn(fmt.Errorf("wlsim: -scenario takes its whole configuration from the file; drop %s", strings.Join(extra, ", ")))
		}
		exitOn(runScenario(*scenFile))
		return
	}

	if *cpuprof != "" || *memprof != "" {
		var f *os.File
		if *cpuprof != "" {
			var err error
			f, err = os.Create(*cpuprof)
			exitOn(err)
			exitOn(pprof.StartCPUProfile(f))
		}
		cpu, mem := *cpuprof, *memprof
		var once sync.Once
		// exitOn runs this too: os.Exit skips defers, and a truncated CPU
		// profile or a never-written heap profile from a failed run is
		// exactly when the data matters.
		flushProfiles = func() {
			once.Do(func() {
				if cpu != "" {
					pprof.StopCPUProfile()
					closeProfile(f, cpu)
				}
				if mem != "" {
					writeHeapProfile(mem)
				}
			})
		}
		defer flushProfiles()
	}

	if *topology != "flat" && *topology != "two-tier" {
		exitOn(fmt.Errorf("wlsim: unknown -topology %q (flat|two-tier)", *topology))
	}
	if *topology == "two-tier" || *clusters > 0 {
		exitOn(runTwoTier(*n, *f, *rounds, *rho, p.Seconds(), *seed, *clusters, *shards, *topology))
		return
	}

	if *startup {
		if *trials > 1 {
			exitOn(fmt.Errorf("wlsim: -trials is only supported in maintenance mode, not with -startup"))
		}
		if *shards > 1 {
			exitOn(fmt.Errorf("wlsim: -shards is only supported in maintenance mode, not with -startup"))
		}
		rep, err := clocksync.RunStartup(*n, *f, *spread, *rounds,
			clocksync.WithRho(*rho),
			clocksync.WithDelay(delta.Seconds(), eps.Seconds()),
			clocksync.WithBeta(beta.Seconds()),
			clocksync.WithRoundLength(p.Seconds()),
			clocksync.WithSeed(*seed),
		)
		exitOn(err)
		fmt.Print(rep)
		return
	}

	opts := []clocksync.Option{
		clocksync.WithRho(*rho),
		clocksync.WithDelay(delta.Seconds(), eps.Seconds()),
		clocksync.WithBeta(beta.Seconds()),
		clocksync.WithRoundLength(p.Seconds()),
		clocksync.WithSeed(*seed),
	}
	if *k > 1 {
		opts = append(opts, clocksync.WithKExchanges(*k))
	}
	if *stagger > 0 {
		opts = append(opts, clocksync.WithStagger(stagger.Seconds()))
	}
	if *mean {
		opts = append(opts, clocksync.WithAveraging(clocksync.Mean))
	}
	if *advDelay {
		opts = append(opts, clocksync.WithDelayDistribution(clocksync.DelayAdversarial))
	}
	if *trace > 0 {
		opts = append(opts, clocksync.WithTrace(*trace))
	}
	if *shards > 1 {
		// Fail the feature conflicts sharded mode rejects up front, naming
		// the flags: -trace needs per-delivery observation (no deterministic
		// order in a parallel window drain) and adaptive -adversary
		// strategies retime deliveries mid-window. Fixed (automaton-only)
		// strategies and -faults run sharded fine; an adaptive strategy is
		// still caught by the engine's own error if it slips past this.
		if *trace > 0 {
			exitOn(fmt.Errorf("wlsim: -trace records every delivery, which sharded mode cannot order deterministically; drop -shards or -trace"))
		}
		opts = append(opts, clocksync.WithShards(*shards))
	}
	if *faultStr != "" && *advStrat != "" {
		exitOn(fmt.Errorf("wlsim: -faults and -adversary are mutually exclusive"))
	}
	if *faultStr != "" {
		kind, err := parseFault(*faultStr)
		exitOn(err)
		for i := 0; i < *f; i++ {
			opts = append(opts, clocksync.WithFault(*n-1-i, kind))
		}
	}
	if *advStrat != "" {
		opts = append(opts, clocksync.WithAdversary(*advStrat))
	}

	if *trials > 1 {
		if *trace > 0 {
			exitOn(fmt.Errorf("wlsim: -trace is only supported for a single run, not with -trials"))
		}
		exitOn(runTrials(*n, *f, *rounds, *trials, *seed, opts))
		return
	}

	c, err := clocksync.New(*n, *f, opts...)
	exitOn(err)
	rep, err := c.Run(*rounds)
	exitOn(err)
	fmt.Print(rep)
	if rep.Trace != "" {
		fmt.Println("\nexecution trace:")
		fmt.Print(rep.Trace)
	}
}

// runTwoTier drives the two-tier hierarchy (-topology two-tier / -clusters).
// Flags that configure the flat mesh's single substrate, its fault slots or
// its flat-only reports are rejected by name — the same style -shards uses
// for its feature conflicts — instead of being silently ignored. An
// explicitly-set -f becomes the outer tier's representative budget f_out;
// left at its default it is derived from the cluster count.
func runTwoTier(n, f, rounds int, rho, p float64, seed int64, clusters, shards int, topo string) error {
	visited := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { visited[fl.Name] = true })
	if topo == "flat" && visited["topology"] {
		return fmt.Errorf("wlsim: -clusters implies -topology two-tier; drop -topology flat or -clusters")
	}
	for _, rej := range []struct{ name, why string }{
		{"delta", "two-tier runs on its own (δ_in, ε_in)/(δ_out, ε_out) substrate pair"},
		{"eps", "two-tier runs on its own (δ_in, ε_in)/(δ_out, ε_out) substrate pair"},
		{"beta", "two-tier derives both tiers' A4 spreads"},
		{"k", "two-tier rounds are single-exchange per tier"},
		{"stagger", "two-tier traffic is already clustered unicast"},
		{"mean", "both tiers run midpoint averaging"},
		{"adversarial", "two-tier uses its clustered two-band delay model"},
		{"faults", "two-tier fault injection lives in experiment E20"},
		{"adversary", "two-tier fault injection lives in experiment E20"},
		{"trace", "per-delivery tracing is flat-only"},
		{"startup", "the §9.2 establishment algorithm is flat-only"},
		{"spread", "the §9.2 establishment algorithm is flat-only"},
		{"trials", "the trial table's adjustment/validity columns are flat-only"},
	} {
		if visited[rej.name] {
			return fmt.Errorf("wlsim: -%s is not supported with the two-tier topology (%s); drop -%s or the topology flags", rej.name, rej.why, rej.name)
		}
	}
	fOut := 0
	if visited["f"] {
		fOut = f
	}
	opts := []clocksync.Option{
		clocksync.WithRho(rho),
		clocksync.WithRoundLength(p),
		clocksync.WithSeed(seed),
		clocksync.WithClusters(clusters),
	}
	if shards > 1 {
		opts = append(opts, clocksync.WithShards(shards))
	}
	c, err := clocksync.New(n, fOut, opts...)
	if err != nil {
		return err
	}
	rep, err := c.Run(rounds)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

// runScenario loads, runs and renders one declarative scenario. Assertion
// failures (including unmet expected-violation markers) are reported through
// the error return, so the process exits nonzero and the file works as an
// executable regression test.
func runScenario(path string) error {
	s, err := scenario.Load(path)
	if err != nil {
		return err
	}
	rep, err := scenario.Run(s)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if !rep.Ok() {
		return fmt.Errorf("wlsim: scenario %s failed %d assertion(s)", s.Name, len(rep.Failures))
	}
	return nil
}

// runTrials fans `trials` runs of the same configuration out across the
// worker pool, each with a seed derived from (base, trial) so the sweep is
// reproducible regardless of worker count, and prints per-trial rows plus a
// min/median/max summary of the steady skew.
func runTrials(n, f, rounds, trials int, base int64, opts []clocksync.Option) error {
	// Derive all seeds up front: the table's seed column must show the
	// exact value each trial ran with.
	seeds := make([]int64, trials)
	for i := range seeds {
		seeds[i] = runner.DeriveSeed(base, i)
	}
	reps, err := runner.Map(0, trials, func(i int) (*clocksync.Report, error) {
		trialOpts := append(append([]clocksync.Option{}, opts...),
			clocksync.WithSeed(seeds[i]))
		c, err := clocksync.New(n, f, trialOpts...)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
		rep, err := c.Run(rounds)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
		return rep, nil
	})
	if err != nil {
		return err
	}

	t := &exp.Table{
		ID:       "TRIALS",
		Title:    fmt.Sprintf("%d derived-seed trials (n=%d, f=%d, %d rounds)", trials, n, f, rounds),
		PaperRef: "Theorem 16",
		Columns:  []string{"trial", "seed", "steady skew", "max skew", "max |ADJ|", "agreement", "validity"},
	}
	steady := make([]float64, 0, trials)
	worstSkew, gamma := 0.0, 0.0
	for i, rep := range reps {
		steady = append(steady, rep.SteadySkew)
		if rep.MaxSkew > worstSkew {
			worstSkew = rep.MaxSkew
		}
		gamma = rep.Gamma
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", seeds[i]),
			exp.FmtDur(rep.SteadySkew), exp.FmtDur(rep.MaxSkew), exp.FmtDur(rep.MaxAdjustment),
			exp.Verdict(rep.AgreementHolds()), exp.Verdict(rep.ValidityHolds()))
	}
	sort.Float64s(steady)
	t.AddNote("steady skew min %s / median %s / max %s; worst max skew %s vs γ %s",
		exp.FmtDur(steady[0]), exp.FmtDur(median(steady)), exp.FmtDur(steady[len(steady)-1]),
		exp.FmtDur(worstSkew), exp.FmtDur(gamma))
	t.Render(os.Stdout)
	return nil
}

// median of a sorted non-empty slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// listAdversaries prints the registered strategy space — the same registry
// cmd/experiments' E17/E18 sweep — one row per strategy with its kind.
// Any name listed here can be driven interactively with -adversary.
func listAdversaries() {
	for _, s := range faults.Strategies() {
		kind := "fixed"
		if s.Adaptive() {
			kind = "adaptive"
			if !s.WantsMembers {
				kind = "adaptive (no faulty members)"
			}
		}
		fmt.Printf("%-15s %-30s %s\n", s.Name, kind, s.Desc)
	}
}

func parseFault(s string) (clocksync.FaultKind, error) {
	switch s {
	case "silent":
		return clocksync.FaultSilent, nil
	case "two-faced":
		return clocksync.FaultTwoFaced, nil
	case "noise":
		return clocksync.FaultNoise, nil
	case "stale-replay":
		return clocksync.FaultStaleReplay, nil
	case "crash":
		return clocksync.FaultCrashMidRun, nil
	default:
		return 0, fmt.Errorf("unknown fault kind %q", s)
	}
}

// flushProfiles stops and writes any active profiles; set in main when
// profiling flags are given, called both on normal return and by exitOn.
var flushProfiles = func() {}

// writeHeapProfile records the live-heap profile after a final GC, the
// useful view for hunting event-loop allocations. Best-effort: it runs on
// error paths too and must not re-enter exitOn.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlsim: memprofile:", err)
		return
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "wlsim: memprofile:", err)
	}
	closeProfile(f, path)
}

func closeProfile(f *os.File, path string) {
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "wlsim: %s: %v\n", path, err)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flushProfiles()
		os.Exit(1)
	}
}
