// Command wlsim runs a single clock synchronization simulation with
// configurable parameters and prints the measured quantities next to the
// paper's bounds.
//
// Example:
//
//	wlsim -n 7 -f 2 -rounds 20 -rho 1e-5 -delta 10ms -eps 1ms -p 1s
//	wlsim -n 10 -f 3 -faults two-faced -adversarial
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	clocksync "repro"
)

func main() {
	var (
		n        = flag.Int("n", 7, "number of processes")
		f        = flag.Int("f", 2, "fault tolerance bound (n ≥ 3f+1)")
		rounds   = flag.Int("rounds", 20, "rounds to simulate")
		rho      = flag.Float64("rho", 1e-5, "clock drift bound ρ")
		delta    = flag.Duration("delta", 10*time.Millisecond, "median message delay δ")
		eps      = flag.Duration("eps", time.Millisecond, "delay uncertainty ε")
		beta     = flag.Duration("beta", 5500*time.Microsecond, "initial closeness β")
		p        = flag.Duration("p", time.Second, "round length P")
		k        = flag.Int("k", 1, "clock exchanges per round (§7)")
		stagger  = flag.Duration("stagger", 0, "broadcast stagger σ (§9.3)")
		mean     = flag.Bool("mean", false, "use mean instead of midpoint averaging")
		seed     = flag.Int64("seed", 1, "random seed")
		advDelay = flag.Bool("adversarial", false, "pin delays at band edges (worst case)")
		faultStr = flag.String("faults", "", "make the top f processes faulty: silent|two-faced|noise|stale-replay|crash")
		startup  = flag.Bool("startup", false, "run the §9.2 establishment algorithm instead")
		trace    = flag.Int("trace", 0, "print the first N actions of the execution log")
		spread   = flag.Float64("spread", 2.0, "initial clock spread in seconds (startup mode)")
	)
	flag.Parse()

	if *startup {
		rep, err := clocksync.RunStartup(*n, *f, *spread, *rounds,
			clocksync.WithRho(*rho),
			clocksync.WithDelay(delta.Seconds(), eps.Seconds()),
			clocksync.WithBeta(beta.Seconds()),
			clocksync.WithRoundLength(p.Seconds()),
			clocksync.WithSeed(*seed),
		)
		exitOn(err)
		fmt.Print(rep)
		return
	}

	opts := []clocksync.Option{
		clocksync.WithRho(*rho),
		clocksync.WithDelay(delta.Seconds(), eps.Seconds()),
		clocksync.WithBeta(beta.Seconds()),
		clocksync.WithRoundLength(p.Seconds()),
		clocksync.WithSeed(*seed),
	}
	if *k > 1 {
		opts = append(opts, clocksync.WithKExchanges(*k))
	}
	if *stagger > 0 {
		opts = append(opts, clocksync.WithStagger(stagger.Seconds()))
	}
	if *mean {
		opts = append(opts, clocksync.WithAveraging(clocksync.Mean))
	}
	if *advDelay {
		opts = append(opts, clocksync.WithDelayDistribution(clocksync.DelayAdversarial))
	}
	if *trace > 0 {
		opts = append(opts, clocksync.WithTrace(*trace))
	}
	if *faultStr != "" {
		kind, err := parseFault(*faultStr)
		exitOn(err)
		for i := 0; i < *f; i++ {
			opts = append(opts, clocksync.WithFault(*n-1-i, kind))
		}
	}

	c, err := clocksync.New(*n, *f, opts...)
	exitOn(err)
	rep, err := c.Run(*rounds)
	exitOn(err)
	fmt.Print(rep)
	if rep.Trace != "" {
		fmt.Println("\nexecution trace:")
		fmt.Print(rep.Trace)
	}
}

func parseFault(s string) (clocksync.FaultKind, error) {
	switch s {
	case "silent":
		return clocksync.FaultSilent, nil
	case "two-faced":
		return clocksync.FaultTwoFaced, nil
	case "noise":
		return clocksync.FaultNoise, nil
	case "stale-replay":
		return clocksync.FaultStaleReplay, nil
	case "crash":
		return clocksync.FaultCrashMidRun, nil
	default:
		return 0, fmt.Errorf("unknown fault kind %q", s)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
