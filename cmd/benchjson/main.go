// Command benchjson runs the standing engine benchmarks (internal/bench,
// the same code behind `go test -bench=EngineThroughput` and
// `-bench=LargeN`) and writes the results as JSON, so the hot path's
// performance trajectory is tracked across PRs in BENCH_engine.json instead
// of volatile CI logs.
//
// Usage:
//
//	benchjson                               # writes BENCH_engine.json
//	benchjson -o - | jq .                   # print to stdout
//	benchjson -against BENCH_engine.json    # also fail on a >20% events/sec
//	                                        # regression vs the committed file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/sim"
)

// result is one benchmark measurement. EventsPerSec is the headline number
// for the event engine; AllocsPerOp in the steady benchmark is the
// zero-allocation regression signal (one op = one delivered event there).
type result struct {
	Name         string  `json:"name"`
	Ops          int     `json:"ops"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	// PeakQueueEvents is the event queue's population high-water mark — the
	// memory story of lazy broadcast materialization (≈ n² eager, O(n)
	// lazy), deterministic per benchmark and tracked like the time metrics.
	PeakQueueEvents float64 `json:"peak_queue_events,omitempty"`
	// BarrierCount (sharded benchmarks only) is how many full cross-shard
	// barriers the run paid — the window-batching win. Deterministic per
	// configuration, so the nightly gate compares it without machine
	// normalization, like allocs_per_op.
	BarrierCount float64 `json:"barrier_count,omitempty"`
	// MsgsPerRound (LargeN benchmarks) is the per-round message traffic —
	// ≈ n² for the flat mesh, ≈ n·c + (n/c)² for the two-tier hierarchy.
	// Deterministic per configuration and compared raw by the gate: growth
	// means a topology or automaton change re-inflated round traffic.
	MsgsPerRound float64 `json:"msgs_per_round,omitempty"`
}

type report struct {
	Note       string   `json:"note"`
	Benchmarks []result `json:"benchmarks"`
}

// defaultBenchtime restores testing's stock benchtime after a forced-
// iteration rerun (see measure).
const defaultBenchtime = "1s"

func main() {
	// Register the testing package's flags (benchtime in particular) so
	// measure can raise the iteration floor for slow benchmarks.
	testing.Init()
	out := flag.String("o", "BENCH_engine.json", "output path (\"-\" for stdout)")
	against := flag.String("against", "", "compare events/sec against this committed report and exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional events/sec drop before -against fails")
	count := flag.Int("count", 3, "runs per benchmark; the fastest is reported (noise suppression on shared machines)")
	flag.Parse()
	if *count < 1 {
		fatal(fmt.Errorf("-count must be ≥ 1, got %d (zero runs would overwrite %s with empty measurements)", *count, *out))
	}

	benchmarks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EngineThroughput/steady", bench.EngineSteady},
		{"EngineThroughput/workload", bench.EngineWorkload},
		// The delivery pipeline's adversary stage under load: a regression
		// here means the interceptor refactor slowed the retime/hook path.
		{"EngineThroughput/adversary", bench.EngineAdversary},
		// The large-n broadcast regime: the calendar scheduler (auto) next
		// to its 4-ary-heap-only baseline at each size, so the committed
		// file records both the absolute throughput and the speedup.
		{"LargeN/n=31", bench.LargeN(31, sim.SchedulerAuto, sim.BroadcastAuto)},
		{"LargeN/n=31-heap", bench.LargeN(31, sim.SchedulerHeap, sim.BroadcastAuto)},
		{"LargeN/n=101", bench.LargeN(101, sim.SchedulerAuto, sim.BroadcastAuto)},
		{"LargeN/n=101-heap", bench.LargeN(101, sim.SchedulerHeap, sim.BroadcastAuto)},
		// Eager materialization as baseline: same event sequence, O(n²)
		// queue population — peak_queue_events records the gap.
		{"LargeN/n=101-eager", bench.LargeN(101, sim.SchedulerAuto, sim.BroadcastEager)},
		// The "n in the thousands" tier the lazy+sharded work exists for;
		// the nightly gate watches these entries like any other.
		{"LargeN/n=1009", bench.LargeN(1009, sim.SchedulerAuto, sim.BroadcastAuto)},
		{"LargeN/n=1009-sharded-k=8", bench.LargeNSharded(1009, 8)},
		// The two-tier hierarchy on the same 10 rounds: msgs_per_round is
		// the O(n²) → O(n·c + (n/c)²) traffic drop, and wall-clock per op
		// must stay ≤ 1/3 of the flat n=1009 entry's.
		{"LargeN/n=1009-hier", bench.LargeNHier(1009, 32)},
	}

	rep := report{
		Note: "events/sec is simulator event throughput; in steady, one op = one delivered event and allocs_per_op must stay ~0 (no-observer steady state); LargeN is 10 maintenance rounds of an n-process broadcast mesh, with -heap forcing the pre-calendar scheduler and -eager forcing eager broadcast materialization as baselines; peak_queue_events is the queue population high-water mark (≈ n² eager, O(n) lazy); -sharded-k runs the mesh across k time-window shards with batched windows and a pooled cross-shard copy exchange — barrier_count is the full barriers paid (batching collapses it toward one per round) and its allocs_per_op must stay within 4× the sequential entry's (TestShardedSteadyAllocs); -hier runs the same rounds on the two-tier hierarchy (clusters of 32) and must stay at ≤ 1/3 the flat n=1009 wall-clock per op; msgs_per_round is the deterministic per-round traffic (≈ n² flat, ≈ n·c + (n/c)² two-tier), gated raw like the sharded allocs/barriers; entries too slow to iterate under the 1s benchtime are rerun at 3 forced iterations and report the median run; measured events/sec depends on the host's core count (a single-core machine cannot show the parallel speedup)",
	}
	for _, bm := range benchmarks {
		rep.Benchmarks = append(rep.Benchmarks, measure(bm.name, bm.fn, *count))
	}

	// Load the baseline before writing anything: -o (default
	// BENCH_engine.json) and -against may name the same file, and reading
	// after the write would compare the fresh run against itself — a gate
	// that always passes.
	var baseline *report
	if *against != "" {
		raw, err := os.ReadFile(*against)
		if err != nil {
			fatal(err)
		}
		baseline = &report{}
		if err := json.Unmarshal(raw, baseline); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *against, err))
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if baseline != nil {
		if err := checkRegression(rep, *baseline, *tolerance); err != nil {
			fatal(err)
		}
		// Status goes to stderr: with -o - the stdout stream is the JSON
		// report (the documented `| jq .` pattern) and must stay parseable.
		fmt.Fprintf(os.Stderr, "no regression beyond %.0f%% vs %s (events/sec machine-normalized; sharded allocs_per_op and barrier_count raw)\n", *tolerance*100, *against)
	}
}

// measure runs one benchmark count times and picks the entry to report.
//
// Fast benchmarks take the best of the count runs: shared/virtualized
// machines steal CPU in bursts, and the fastest run is the least-disturbed
// measurement of the code itself.
//
// Benchmarks too slow for the default 1s benchtime to iterate (Ops == 1 on
// every run — the n=1009 tier takes seconds per op) would make every
// committed number a single sample of a single iteration. Those rerun with
// a forced 3-iteration benchtime and report the median run by events/sec,
// so every gated number aggregates at least three iterations.
func measure(name string, fn func(*testing.B), count int) result {
	run := func() result {
		r := testing.Benchmark(fn)
		return result{
			Name:            name,
			Ops:             r.N,
			NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:     float64(r.MemAllocs) / float64(r.N),
			BytesPerOp:      float64(r.MemBytes) / float64(r.N),
			EventsPerSec:    r.Extra["events/sec"],
			EventsPerOp:     r.Extra["events/op"],
			PeakQueueEvents: r.Extra["peak-queue-events"],
			BarrierCount:    r.Extra["barrier-count"],
			MsgsPerRound:    r.Extra["msgs-per-round"],
		}
	}
	var best result
	for i := 0; i < count; i++ {
		if cur := run(); i == 0 || cur.EventsPerSec > best.EventsPerSec {
			best = cur
		}
	}
	if best.Ops >= 3 {
		return best
	}
	if err := flag.Set("test.benchtime", "3x"); err != nil {
		return best // testing flags unavailable; keep the probe result
	}
	defer flag.Set("test.benchtime", defaultBenchtime)
	runs := make([]result, count)
	for i := range runs {
		runs[i] = run()
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].EventsPerSec < runs[j].EventsPerSec })
	return runs[len(runs)/2]
}

// checkRegression compares the fresh measurements against a committed
// report: any benchmark present in both whose events/sec dropped by more
// than the tolerance fails the run (the nightly workflow's perf gate).
//
// Raw events/sec is not comparable across machines — a nightly runner is a
// different (and noisier) CPU than whatever produced the committed file, so
// a naive absolute gate flaps on uniform slowdowns that have nothing to do
// with the code. The gate therefore normalizes by the median fresh/committed
// ratio over all shared benchmarks: a machine running uniformly at 70% of
// the committed machine's speed moves every ratio — and the median — to
// ~0.7 and passes, while a single benchmark collapsing drags its own ratio
// far below the (unmoved) median and fails.
//
// Known blind spot, accepted deliberately: a code change that slows every
// benchmark by the same factor is indistinguishable from a slower machine
// and passes the relative check — catching it without per-machine
// calibration is not possible from one file of committed numbers. Two
// backstops bound the damage: an absolute floor (catastrophicFloor) fails
// the run outright when the normalized picture says the "machine" lost
// most of its speed, and the committed file itself is refreshed per PR on
// the development machine, where a uniform regression shows up as a diff
// of every events/sec entry. Benchmarks only present on one side are
// ignored, so adding a benchmark does not break the gate until its numbers
// are committed.
//
// Sharded (-sharded-k) entries carry two further gated metrics,
// allocs_per_op and barrier_count, which are deterministic for a fixed
// workload and seed and therefore compared raw — no machine factor, no
// blind spot: growing either by more than the tolerance fails the run on
// any hardware.
func checkRegression(fresh, committed report, tolerance float64) error {
	// Below this median fresh/committed ratio the run fails even though
	// the slowdown is uniform: it is either severely degraded hardware or
	// an across-the-board code regression, and both deserve eyes.
	const catastrophicFloor = 0.35
	old := make(map[string]float64, len(committed.Benchmarks))
	for _, b := range committed.Benchmarks {
		old[b.Name] = b.EventsPerSec
	}
	type pair struct {
		name      string
		was, now  float64
		speedFrac float64 // now/was before normalization
	}
	var pairs []pair
	for _, b := range fresh.Benchmarks {
		was, ok := old[b.Name]
		if !ok || was <= 0 || b.EventsPerSec <= 0 {
			continue
		}
		pairs = append(pairs, pair{name: b.Name, was: was, now: b.EventsPerSec, speedFrac: b.EventsPerSec / was})
	}
	if len(pairs) == 0 {
		return fmt.Errorf("no comparable events/sec benchmarks between the fresh run and the baseline report")
	}
	fracs := make([]float64, len(pairs))
	for i, p := range pairs {
		fracs[i] = p.speedFrac
	}
	sort.Float64s(fracs)
	machine := fracs[len(fracs)/2] // median machine-speed factor
	if machine < catastrophicFloor {
		return fmt.Errorf("median events/sec is %.2fx the committed baseline (floor %.2fx): either this machine is far slower than the one that produced the baseline, or the change regressed everything uniformly — investigate before trusting the relative gate", machine, catastrophicFloor)
	}
	var regressions []string
	for _, p := range pairs {
		if p.speedFrac < machine*(1-tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3gM events/sec, was %.3gM (%.2fx vs machine factor %.2fx)",
					p.name, p.now/1e6, p.was/1e6, p.speedFrac, machine))
		}
	}
	// Sharded entries additionally gate on allocs_per_op and barrier_count.
	// Both are deterministic properties of the code (a fixed workload at a
	// fixed seed allocates and barriers identically on every machine), so
	// unlike events/sec they compare raw: any increase beyond the tolerance
	// is a code regression — a leak on the pooled exchange path or a window
	// that stopped batching — regardless of what hardware ran the check.
	committedByName := make(map[string]result, len(committed.Benchmarks))
	for _, b := range committed.Benchmarks {
		committedByName[b.Name] = b
	}
	for _, b := range fresh.Benchmarks {
		was, ok := committedByName[b.Name]
		if !ok {
			continue
		}
		// msgs_per_round is deterministic for every topology that reports
		// it (flat mesh, sharded, two-tier): growth beyond the tolerance
		// means round traffic re-inflated — e.g. the hierarchy's O(n·c +
		// (n/c)²) advantage eroding back toward O(n²).
		if was.MsgsPerRound > 0 && b.MsgsPerRound > was.MsgsPerRound*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f msgs/round, was %.0f (deterministic metric, compared raw — round traffic re-inflated)",
					b.Name, b.MsgsPerRound, was.MsgsPerRound))
		}
		if !strings.Contains(b.Name, "-sharded-") {
			continue
		}
		if was.AllocsPerOp > 0 && b.AllocsPerOp > was.AllocsPerOp*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f allocs/op, was %.0f (deterministic metric, compared raw)",
					b.Name, b.AllocsPerOp, was.AllocsPerOp))
		}
		if was.BarrierCount > 0 && b.BarrierCount > was.BarrierCount*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f barriers, was %.0f (deterministic metric, compared raw — window batching regressed)",
					b.Name, b.BarrierCount, was.BarrierCount))
		}
	}
	if len(regressions) > 0 {
		out := ""
		for i, l := range regressions {
			if i > 0 {
				out += "\n  "
			}
			out += l
		}
		return fmt.Errorf("benchmark regressions beyond %.0f%% (events/sec normalized for machine speed %.2fx; sharded allocs/barriers compared raw):\n  %s",
			tolerance*100, machine, out)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
