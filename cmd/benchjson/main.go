// Command benchjson runs the standing engine benchmarks (internal/bench,
// the same code behind `go test -bench=EngineThroughput`) and writes the
// results as JSON, so the hot path's performance trajectory is tracked
// across PRs in BENCH_engine.json instead of volatile CI logs.
//
// Usage:
//
//	benchjson             # writes BENCH_engine.json
//	benchjson -o - | jq . # print to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/bench"
)

// result is one benchmark measurement. EventsPerSec is the headline number
// for the event engine; AllocsPerOp in the steady benchmark is the
// zero-allocation regression signal (one op = one delivered event there).
type result struct {
	Name         string  `json:"name"`
	Ops          int     `json:"ops"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
}

type report struct {
	Note       string   `json:"note"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output path (\"-\" for stdout)")
	flag.Parse()

	benchmarks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EngineThroughput/steady", bench.EngineSteady},
		{"EngineThroughput/workload", bench.EngineWorkload},
	}

	rep := report{
		Note: "events/sec is simulator event throughput; in steady, one op = one delivered event and allocs_per_op must stay ~0 (no-observer steady state)",
	}
	for _, bm := range benchmarks {
		r := testing.Benchmark(bm.fn)
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:         bm.name,
			Ops:          r.N,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:  float64(r.MemAllocs) / float64(r.N),
			BytesPerOp:   float64(r.MemBytes) / float64(r.N),
			EventsPerSec: r.Extra["events/sec"],
			EventsPerOp:  r.Extra["events/op"],
		})
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
