// Package clocksync is a fault-tolerant clock synchronization library — a
// from-scratch Go reproduction of Welch & Lynch, "A New Fault-Tolerant
// Algorithm for Clock Synchronization" (PODC 1984; Information and
// Computation 77(1), 1988).
//
// It simulates a fully connected system of n processes with ρ-bounded
// drifting physical clocks and message delays in [δ−ε, δ+ε], of which up to
// f < n/3 may be Byzantine, and maintains the processes' logical clocks
// within a small constant γ of each other using the paper's fault-tolerant
// averaging function mid(reduce_f(·)).
//
// Quick start:
//
//	c, err := clocksync.New(7, 2)
//	if err != nil { ... }
//	report, err := c.Run(20)
//	fmt.Println(report)
//
// The package also exposes the paper's extensions: establishing
// synchronization from arbitrary clocks (RunStartup, §9.2), reintegrating a
// repaired process (WithRejoiner, §9.1), k exchanges per round and mean
// averaging (§7), and staggered broadcasts for collision-prone datagram
// networks (WithStagger, §9.3). Baseline algorithms from the paper's
// comparison section and the full experiment suite live under internal/ and
// cmd/experiments.
//
// Large systems are first-class: each round's all-to-all broadcast goes
// through the engine's batched fan-out, and the simulator switches from its
// 4-ary heap to a calendar-queue scheduler when the in-flight message
// population warrants it (n ≳ 22), so sweeps at n = 101 run routinely — see
// the README's engine section and BenchmarkLargeN.
package clocksync

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/hier"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Cluster is a configured system of processes ready to simulate.
type Cluster struct {
	cfg      core.Config
	opts     options
	rejoiner *core.Rejoiner
	hier     *hier.Config // non-nil for TopologyTwoTier
}

// New configures a cluster of n processes tolerating f Byzantine faults
// (n ≥ 3f+1). Defaults follow DESIGN.md §6: ρ=1e−5, δ=10ms, ε=1ms, β=5.5ms,
// P=1s; override with Options. Parameters are validated against every §5.2
// constraint of the paper.
func New(n, f int, opts ...Option) (*Cluster, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.topology == TopologyTwoTier {
		return newTwoTier(n, f, o)
	}
	params := analysis.Params{
		N: n, F: f,
		Rho: o.rho, Delta: o.delta, Eps: o.eps,
		Beta: o.beta, P: o.roundLength, T0: o.t0,
	}
	if o.deriveBeta {
		sp, err := analysis.Suggest(n, f, o.rho, o.delta, o.eps, o.roundLength)
		if err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		params.Beta = sp.Beta
	}
	cfg := core.Config{
		Params:   params,
		Averager: o.averager,
		K:        o.k,
		Stagger:  o.stagger,
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	if len(o.faults) > f {
		return nil, fmt.Errorf("clocksync: %d faults configured but f = %d", len(o.faults), f)
	}
	for id := range o.faults {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("clocksync: fault id %d out of range [0,%d)", id, n)
		}
	}
	if o.adversary != "" {
		// Exclusive with the other fault-slot owners: a strategy mix fills
		// the top f ids itself, and silently merging with WithFault automata
		// or a WithRejoiner override would either overwrite strategy members
		// or push the execution past the f budget (violating A2 unnoticed).
		if len(o.faults) > 0 {
			return nil, fmt.Errorf("clocksync: WithAdversary(%q) and WithFault are mutually exclusive", o.adversary)
		}
		if o.rejoinID >= 0 {
			return nil, fmt.Errorf("clocksync: WithAdversary(%q) and WithRejoiner are mutually exclusive", o.adversary)
		}
		if _, err := faults.ByName(o.adversary); err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
	}
	return &Cluster{cfg: cfg, opts: o}, nil
}

// newTwoTier configures a two-tier hierarchical Cluster (WithTopology /
// WithClusters). The composition owns its substrates, fault slots and
// measurement hooks, so the options that configure the flat mesh's single
// substrate are rejected by name rather than silently reinterpreted.
func newTwoTier(n, f int, o options) (*Cluster, error) {
	switch {
	case o.deltaSet:
		return nil, fmt.Errorf("clocksync: WithDelay configures the flat mesh's single substrate; a two-tier topology runs on its own (δ_in, ε_in)/(δ_out, ε_out) pair — drop WithDelay or WithTopology")
	case o.betaSet:
		return nil, fmt.Errorf("clocksync: WithBeta configures the flat mesh's initial closeness; a two-tier topology derives both tiers' A4 spreads — drop WithBeta or WithTopology")
	case o.deriveBeta:
		return nil, fmt.Errorf("clocksync: WithDerivedBeta applies to the flat mesh's single parameter set; a two-tier topology derives both tiers' spreads itself — drop WithDerivedBeta or WithTopology")
	case o.averager == Mean:
		return nil, fmt.Errorf("clocksync: WithAveraging(Mean) is not plumbed through the two-tier composition (both tiers run midpoint) — drop WithAveraging or WithTopology")
	case o.k > 1:
		return nil, fmt.Errorf("clocksync: WithKExchanges applies to the flat single-instance round; two-tier rounds are single-exchange per tier — drop WithKExchanges or WithTopology")
	case o.stagger > 0:
		return nil, fmt.Errorf("clocksync: WithStagger applies to the flat mesh's broadcast; two-tier traffic is already clustered unicast — drop WithStagger or WithTopology")
	case o.delayDist != DelayUniform:
		return nil, fmt.Errorf("clocksync: WithDelayDistribution configures the flat mesh's delay model; a two-tier topology uses its clustered two-band model — drop WithDelayDistribution or WithTopology")
	case o.randomDrift:
		return nil, fmt.Errorf("clocksync: WithRandomDrift is not plumbed through the two-tier builder (constant ρ-bounded rates) — drop WithRandomDrift or WithTopology")
	case o.initialSpread != 0:
		return nil, fmt.Errorf("clocksync: WithInitialSpread overrides the flat mesh's A4 spread; a two-tier topology derives a spread satisfying both tiers at once — drop WithInitialSpread or WithTopology")
	case o.skewBucket != 0:
		return nil, fmt.Errorf("clocksync: WithSkewSeries is not recorded for two-tier runs — drop WithSkewSeries or WithTopology")
	case len(o.faults) > 0:
		return nil, fmt.Errorf("clocksync: WithFault fills the flat mesh's fault slots; two-tier fault injection lives in experiment E20 — drop WithFault or WithTopology")
	case o.adversary != "":
		return nil, fmt.Errorf("clocksync: WithAdversary(%q) targets the flat mesh; two-tier fault injection lives in experiment E20 — drop WithAdversary or WithTopology", o.adversary)
	case o.rejoinID >= 0:
		return nil, fmt.Errorf("clocksync: WithRejoiner applies to the flat mesh's §9.1 path — drop WithRejoiner or WithTopology")
	case o.traceLimit > 0:
		return nil, fmt.Errorf("clocksync: WithTrace renders the flat action log — drop WithTrace or WithTopology")
	}
	c := o.clusterSize
	if c <= 0 {
		// c ≈ √n minimizes the n·c + (n/c)² traffic terms.
		c = int(math.Round(math.Sqrt(float64(n))))
		if c < 1 {
			c = 1
		}
	}
	if c > n {
		return nil, fmt.Errorf("clocksync: cluster size %d exceeds n = %d", c, n)
	}
	hcfg := hier.Default(n, c)
	hcfg.Rho = o.rho
	hcfg.P = o.roundLength
	hcfg.ElectAfter = 2.5 * o.roundLength
	hcfg.T0 = o.t0
	if f > 0 {
		// In two-tier mode f bounds the Byzantine representatives (f_out);
		// 0 keeps the largest budget the cluster count supports. The
		// per-cluster budget f_in always comes from the cluster size.
		hcfg.FOut = f
	}
	if err := hcfg.Validate(); err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	return &Cluster{cfg: core.Config{Params: hcfg.InnerParams(0)}, opts: o, hier: &hcfg}, nil
}

// Params returns the validated parameter set in effect. For a two-tier
// Cluster this is the inner tier's (per-cluster) parameter set; the outer
// tier's parameters are internal to the composition.
func (c *Cluster) Params() analysis.Params { return c.cfg.Params }

// Run simulates the given number of synchronization rounds and reports the
// measured quantities next to the paper's bounds.
func (c *Cluster) Run(rounds int) (*Report, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("clocksync: rounds must be positive, got %d", rounds)
	}
	if c.hier != nil {
		return c.runTwoTier(rounds)
	}
	w := exp.Workload{
		Cfg:           c.cfg,
		Rounds:        rounds,
		Seed:          c.opts.seed,
		Delay:         c.opts.delayModel(c.cfg),
		Drift:         c.opts.driftSchedule(c.cfg),
		InitialSpread: c.opts.initialSpread,
		SkewBucket:    c.opts.skewBucket,
		Shards:        c.opts.shards,
	}
	var tracer *sim.Tracer
	if c.opts.traceLimit > 0 {
		if c.opts.shards > 1 {
			return nil, fmt.Errorf("clocksync: WithTrace records every delivery, which sharded mode cannot order deterministically — drop WithShards or WithTrace")
		}
		tracer = sim.NewTracer(c.opts.traceLimit)
		w.Observers = append(w.Observers, tracer)
	}
	if c.opts.adversary != "" {
		// Resolved per Run: strategy instances (and their adversaries) are
		// stateful and single-use, like every fault mix.
		s, err := faults.ByName(c.opts.adversary)
		if err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		if s.Adaptive() {
			var members []sim.ProcID
			if s.WantsMembers {
				members = faults.TopIDs(c.cfg.F, c.cfg.N)
			}
			w.Faults, w.Adversary = faults.MixAdaptive(s, c.cfg, members, c.opts.seed)
		} else {
			w.Faults = faults.Mix(s, c.cfg, faults.TopIDs(c.cfg.F, c.cfg.N), c.opts.seed)
		}
	}
	if len(c.opts.faults) > 0 || c.opts.rejoinID >= 0 {
		if w.Faults == nil {
			w.Faults = make(map[sim.ProcID]func() sim.Process, len(c.opts.faults)+1)
		}
		for id, kind := range c.opts.faults {
			w.Faults[sim.ProcID(id)] = c.faultBuilder(kind)
		}
		if c.opts.rejoinID >= 0 {
			id := sim.ProcID(c.opts.rejoinID)
			w.Faults[id] = func() sim.Process {
				c.rejoiner = core.NewRejoiner(c.cfg, clock.Local(c.opts.rejoinCorr))
				return c.rejoiner
			}
			w.StartOverride = map[sim.ProcID]clock.Real{id: clock.Real(c.opts.rejoinWake)}
		}
	}
	res, err := exp.Run(w)
	if err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	rep := buildReport(c.cfg, res, c.rejoiner)
	if tracer != nil {
		var b strings.Builder
		if _, err := tracer.WriteTo(&b); err != nil {
			return nil, fmt.Errorf("clocksync: render trace: %w", err)
		}
		rep.Trace = b.String()
	}
	return rep, nil
}

// runTwoTier simulates the two-tier hierarchy for `rounds` inner rounds.
// With WithShards the clusters' inner rounds drain in parallel behind the
// sharded engine's window barriers (results identical for every shard
// count); the skew and the runtime hier-agreement invariant are sampled at
// window cuts either way.
func (c *Cluster) runTwoTier(rounds int) (*Report, error) {
	hcfg := *c.hier
	s, err := hier.Build(hcfg)
	if err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	scfg := s.SimConfig(rounds, c.opts.seed)
	warm := s.Warmup(rounds)
	horizon := s.Horizon(rounds)
	skew := &hierSkew{warm: warm}
	chk := invariant.NewHierAgreement(hcfg.GammaComposed(), hcfg.GammaInner(), hcfg.ClusterSize, warm)
	rep := &Report{
		TwoTier:     true,
		Clusters:    hcfg.Clusters(),
		ClusterSize: hcfg.ClusterSize,
		Gamma:       hcfg.GammaComposed(),
	}
	if c.opts.shards > 1 {
		se, err := sim.NewSharded(scfg, c.opts.shards)
		if err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		// Both observers are Samplers, so the sharded engine fires them at
		// its window cuts — the same instants OnWindow sees — and shard
		// engines hold the full clock and correction arrays, so the spread
		// they read is the whole system's.
		if err := se.Observe(chk); err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		if err := se.Observe(skew); err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		if err := se.Run(horizon); err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		lo, hi, count := se.LocalTimeSpread(horizon)
		skew.record(horizon, lo, hi, count)
		rep.MessagesSent, rep.MessagesLost = se.MessagesSent(), se.MessagesLost()
	} else {
		e, err := sim.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		e.Observe(chk)
		e.Observe(skew)
		if err := e.Run(horizon); err != nil {
			return nil, fmt.Errorf("clocksync: %w", err)
		}
		rep.MessagesSent, rep.MessagesLost = e.MessagesSent(), e.MessagesLost()
	}
	rep.InnerAgreementOK = chk.Ok()
	minRound := -1
	for _, p := range s.Procs {
		if m, ok := p.(*hier.Member); ok {
			if r := m.Round(); minRound < 0 || r < minRound {
				minRound = r
			}
		}
	}
	rep.Rounds = minRound
	rep.MaxSkew, rep.SteadySkew = skew.max, skew.steady
	return rep, nil
}

// hierSkew tracks the all-time and post-warmup nonfaulty local-time spread
// maxima; it samples at the engine's sample points (sequential) or window
// cuts (sharded).
type hierSkew struct {
	warm        clock.Real
	max, steady float64
}

var _ sim.Sampler = (*hierSkew)(nil)

// Sample implements sim.Sampler.
func (h *hierSkew) Sample(e *sim.Engine, _ bool) {
	lo, hi, count := e.LocalTimeSpread(e.Now())
	h.record(e.Now(), lo, hi, count)
}

func (h *hierSkew) record(t clock.Real, lo, hi clock.Local, count int) {
	if count < 2 {
		return
	}
	d := float64(hi - lo)
	if d > h.max {
		h.max = d
	}
	if t >= h.warm && d > h.steady {
		h.steady = d
	}
}

func (c *Cluster) faultBuilder(kind FaultKind) func() sim.Process {
	cfg := c.cfg
	switch kind {
	case FaultSilent:
		return func() sim.Process { return faults.Silent{} }
	case FaultTwoFaced:
		return func() sim.Process {
			return &faults.TwoFaced{Cfg: cfg, Lead: 3 * cfg.Eps, Lag: 3 * cfg.Eps}
		}
	case FaultNoise:
		return func() sim.Process { return &faults.Noise{Cfg: cfg} }
	case FaultStaleReplay:
		return func() sim.Process { return &faults.StaleReplay{Cfg: cfg, Offset: 3 * cfg.Eps} }
	case FaultCrashMidRun:
		return func() sim.Process {
			at := clock.Local(cfg.T0 + 5*cfg.P)
			return &faults.CrashAfter{Inner: core.NewProc(cfg, 0), At: at}
		}
	default:
		return func() sim.Process { return faults.Silent{} }
	}
}

// RunStartup executes the §9.2 establishment algorithm from clocks spread
// arbitrarily over `spread` seconds, for approximately `rounds` rounds, and
// reports the per-round closeness Bᵢ with the Lemma 20 recurrence.
func RunStartup(n, f int, spread float64, rounds int, opts ...Option) (*StartupReport, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	params := analysis.Params{
		N: n, F: f,
		Rho: o.rho, Delta: o.delta, Eps: o.eps,
		Beta: o.beta, P: o.roundLength, T0: o.t0,
	}
	cfg := core.Config{Params: params, Averager: o.averager}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	if o.shards > 1 {
		return nil, fmt.Errorf("clocksync: WithShards applies to the maintenance algorithm only; the §9.2 establishment run is sequential")
	}
	if rounds <= 0 {
		rounds = 15
	}
	// Each startup round takes ≈ StartupWait1+StartupWait2+2δ real time.
	perRound := params.StartupWait1() + params.StartupWait2() + 2*params.Delta
	horizon := clock.Real(float64(rounds)*perRound + 1)
	bs, final, err := exp.RunStartup(cfg, spread, horizon, o.seed)
	if err != nil {
		return nil, fmt.Errorf("clocksync: startup: %w", err)
	}
	return &StartupReport{
		BSeries:    bs,
		FinalSkew:  final,
		Floor:      params.StartupFloor(),
		FourEps:    4 * params.Eps,
		Recurrence: params.StartupStep,
	}, nil
}

// RunEstablishThenMaintain runs the paper's full lifecycle: the §9.2
// start-up algorithm from clocks spread over `spread` seconds, a switch to
// the §4.2 maintenance algorithm after startupRounds rounds (see
// core.SwitchProc for the message-free switch rule), and then maintRounds of
// maintenance. The report's skew fields cover the maintenance phase.
func RunEstablishThenMaintain(n, f int, spread float64, startupRounds, maintRounds int, opts ...Option) (*Report, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	params := analysis.Params{
		N: n, F: f,
		Rho: o.rho, Delta: o.delta, Eps: o.eps,
		Beta: o.beta, P: o.roundLength, T0: o.t0,
	}
	cfg := core.Config{Params: params, Averager: o.averager}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	if o.shards > 1 {
		return nil, fmt.Errorf("clocksync: WithShards applies to the maintenance algorithm only; the establish-then-maintain lifecycle is sequential")
	}
	if startupRounds < 2 {
		startupRounds = 2
	}
	if maintRounds <= 0 {
		maintRounds = 10
	}

	drift := o.driftSchedule(cfg)
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, clock.Local(spread), o.seed)
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		procs[i] = core.NewSwitchProc(cfg, corrs[i], startupRounds)
		starts[i] = clock.Real(i) * 0.003
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   o.delayModel(cfg),
		Seed:    o.seed,
	})
	if err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	perStartupRound := params.StartupWait1() + params.StartupWait2() + 2*params.Delta
	switchSlack := 3 * params.P // the epoch is up to ~2P after the switch decision
	horizon := clock.Real(float64(startupRounds)*perStartupRound + switchSlack + float64(maintRounds)*params.P*(1+2*params.Rho) + 1)

	skew := &metrics.SkewRecorder{
		// Steady state: after startup, switch and a couple of maintenance
		// rounds.
		Warmup: clock.Real(float64(startupRounds)*perStartupRound + switchSlack + 2*params.P),
		Bucket: o.skewBucket,
	}
	rrec := metrics.NewDefaultRoundRecorder()
	eng.Observe(skew)
	eng.Observe(rrec)
	if err := eng.Run(horizon); err != nil {
		return nil, fmt.Errorf("clocksync: %w", err)
	}
	for i := 0; i < n; i++ {
		sp := eng.Process(sim.ProcID(i)).(*core.SwitchProc)
		if !sp.Switched() {
			return nil, fmt.Errorf("clocksync: process %d never switched to maintenance (startup round %d)", i, sp.StartupRound())
		}
	}
	return &Report{
		Rounds:        minMaintRound(eng, n),
		MaxSkew:       skew.Max(),
		SteadySkew:    skew.MaxAfterWarmup(),
		Gamma:         cfg.Gamma(),
		BetaFloor:     cfg.BetaFloor(),
		MaxAdjustment: rrec.MaxAbsAdj(skew.Warmup),
		AdjBound:      cfg.AdjBound(),
		MessagesSent:  eng.MessagesSent(),
		MessagesLost:  eng.MessagesLost(),
		SkewSeries:    skew.Series(),
	}, nil
}

func minMaintRound(eng *sim.Engine, n int) int {
	min := -1
	for i := 0; i < n; i++ {
		sp := eng.Process(sim.ProcID(i)).(*core.SwitchProc)
		if r := sp.MaintenanceRound(); min < 0 || r < min {
			min = r
		}
	}
	return min
}
