package clocksync_test

import (
	"strings"
	"testing"

	clocksync "repro"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n, f    int
		opts    []clocksync.Option
		wantErr bool
	}{
		{"default 7/2", 7, 2, nil, false},
		{"minimum 4/1", 4, 1, nil, false},
		{"fault-free singleton", 1, 0, nil, false},
		{"n too small", 6, 2, nil, true},
		{"too many faults configured", 7, 2, []clocksync.Option{
			clocksync.WithFault(4, clocksync.FaultSilent),
			clocksync.WithFault(5, clocksync.FaultSilent),
			clocksync.WithFault(6, clocksync.FaultSilent),
		}, true},
		{"fault id out of range", 7, 2, []clocksync.Option{
			clocksync.WithFault(7, clocksync.FaultSilent),
		}, true},
		{"bad round length", 7, 2, []clocksync.Option{clocksync.WithRoundLength(1e-4)}, true},
		{"adversary strategy ok", 7, 2, []clocksync.Option{
			clocksync.WithAdversary("skewmax"),
		}, false},
		{"unknown adversary strategy", 7, 2, []clocksync.Option{
			clocksync.WithAdversary("nope"),
		}, true},
		{"adversary + faults conflict", 7, 2, []clocksync.Option{
			clocksync.WithAdversary("two-faced"),
			clocksync.WithFault(6, clocksync.FaultSilent),
		}, true},
		{"adversary + rejoiner conflict", 7, 2, []clocksync.Option{
			clocksync.WithAdversary("two-faced"),
			clocksync.WithRejoiner(6, 30, 0.5),
		}, true},
		{"custom regime ok", 7, 2, []clocksync.Option{
			clocksync.WithRho(1e-6),
			clocksync.WithDelay(1e-3, 0.1e-3),
			clocksync.WithBeta(0.6e-3),
			clocksync.WithRoundLength(0.5),
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := clocksync.New(tt.n, tt.f, tt.opts...)
			if (err != nil) != tt.wantErr {
				t.Errorf("New() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRunFaultFree(t *testing.T) {
	c, err := clocksync.New(7, 2, clocksync.WithSkewSeries(1.0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AgreementHolds() || !rep.AdjustmentBoundHolds() || !rep.ValidityHolds() {
		t.Errorf("paper bounds violated:\n%s", rep)
	}
	if rep.Rounds < 12 {
		t.Errorf("completed %d rounds, want ≥ 12", rep.Rounds)
	}
	if len(rep.SkewSeries) == 0 {
		t.Error("skew series missing despite WithSkewSeries")
	}
	if rep.MessagesSent == 0 {
		t.Error("no messages counted")
	}
	s := rep.String()
	for _, want := range []string{"agreement", "adjustment", "validity", "holds"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestRunRejectsBadRounds(t *testing.T) {
	c, err := clocksync.New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(0); err == nil {
		t.Error("Run(0) should error")
	}
}

func TestRunWithEveryFaultKind(t *testing.T) {
	kinds := []clocksync.FaultKind{
		clocksync.FaultSilent,
		clocksync.FaultTwoFaced,
		clocksync.FaultNoise,
		clocksync.FaultStaleReplay,
		clocksync.FaultCrashMidRun,
	}
	for _, kind := range kinds {
		c, err := clocksync.New(7, 2,
			clocksync.WithFault(5, kind),
			clocksync.WithFault(6, kind))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AgreementHolds() {
			t.Errorf("fault kind %d: skew %v exceeds γ %v", kind, rep.MaxSkew, rep.Gamma)
		}
	}
}

func TestRunWithRejoiner(t *testing.T) {
	c, err := clocksync.New(7, 2, clocksync.WithRejoiner(6, 5.4, 99.9))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rejoined {
		t.Error("rejoiner did not complete reintegration")
	}
	if !rep.AgreementHolds() {
		t.Errorf("agreement violated with rejoiner:\n%s", rep)
	}
}

func TestRunVariants(t *testing.T) {
	tests := []struct {
		name string
		opts []clocksync.Option
	}{
		{"mean averaging", []clocksync.Option{clocksync.WithAveraging(clocksync.Mean)}},
		{"k exchanges", []clocksync.Option{clocksync.WithKExchanges(2)}},
		{"stagger", []clocksync.Option{clocksync.WithStagger(1e-3)}},
		{"adversarial delays", []clocksync.Option{clocksync.WithDelayDistribution(clocksync.DelayAdversarial)}},
		{"constant delays", []clocksync.Option{clocksync.WithDelayDistribution(clocksync.DelayConstant)}},
		{"random drift", []clocksync.Option{clocksync.WithRandomDrift()}},
		{"seeded", []clocksync.Option{clocksync.WithSeed(99)}},
		{"t0 shifted", []clocksync.Option{clocksync.WithT0(100)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := clocksync.New(7, 2, tt.opts...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run(10)
			if err != nil {
				t.Fatal(err)
			}
			// Stagger loosens agreement by a drift-order term only; use a
			// small allowance above γ for it.
			if rep.MaxSkew > rep.Gamma*1.1 {
				t.Errorf("skew %v well above γ %v:\n%s", rep.MaxSkew, rep.Gamma, rep)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *clocksync.Report {
		c, err := clocksync.New(7, 2, clocksync.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(8)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.MaxSkew != b.MaxSkew || a.MaxAdjustment != b.MaxAdjustment {
		t.Error("same seed produced different runs")
	}
}

func TestRunStartup(t *testing.T) {
	rep, err := clocksync.RunStartup(7, 2, 3.0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BSeries) < 10 {
		t.Fatalf("only %d startup rounds", len(rep.BSeries))
	}
	if !rep.Converged(2.0) {
		t.Errorf("startup did not converge: final %v vs floor %v", rep.FinalSkew, rep.Floor)
	}
	if rep.BSeries[0] < 0.5 {
		t.Errorf("initial closeness %v suspiciously small for 3s spread", rep.BSeries[0])
	}
	if !strings.Contains(rep.String(), "final skew") {
		t.Error("startup report rendering incomplete")
	}
}

func TestRunStartupValidation(t *testing.T) {
	if _, err := clocksync.RunStartup(3, 1, 1.0, 5); err == nil {
		t.Error("n=3,f=1 should be rejected")
	}
}

func TestParamsExposed(t *testing.T) {
	c, err := clocksync.New(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Params()
	if p.N != 7 || p.F != 2 {
		t.Errorf("Params = %+v", p)
	}
	if p.Gamma() <= 0 {
		t.Error("Gamma not positive")
	}
}

func TestRunEstablishThenMaintain(t *testing.T) {
	rep, err := clocksync.RunEstablishThenMaintain(7, 2, 2.0, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 5 {
		t.Errorf("maintenance reached only round %d", rep.Rounds)
	}
	if rep.SteadySkew > rep.Gamma {
		t.Errorf("steady maintenance skew %v exceeds γ %v", rep.SteadySkew, rep.Gamma)
	}
	if rep.MaxAdjustment > rep.AdjBound {
		t.Errorf("steady |ADJ| %v exceeds bound %v", rep.MaxAdjustment, rep.AdjBound)
	}
}

func TestRunEstablishThenMaintainValidation(t *testing.T) {
	if _, err := clocksync.RunEstablishThenMaintain(3, 1, 1.0, 4, 5); err == nil {
		t.Error("n=3,f=1 accepted")
	}
}

func TestWithDerivedBeta(t *testing.T) {
	c, err := clocksync.New(7, 2,
		clocksync.WithRho(2e-4),
		clocksync.WithRoundLength(5),
		clocksync.WithDerivedBeta())
	if err != nil {
		t.Fatal(err)
	}
	p := c.Params()
	// Derived β for ρ=2e−4, P=5s must be ≈ 4ε+4ρP ≈ 8ms, not the 5.5ms
	// default (which would be infeasible here).
	if p.Beta < 8e-3 {
		t.Errorf("derived β = %v, want ≥ 8ms", p.Beta)
	}
	if _, err := c.Run(6); err != nil {
		t.Fatal(err)
	}
}

func TestWithTrace(t *testing.T) {
	c, err := clocksync.New(4, 1, clocksync.WithTrace(50))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == "" {
		t.Fatal("trace missing")
	}
	for _, want := range []string{"START", "ORDINARY", "round_begin"} {
		if !strings.Contains(rep.Trace, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

// TestTwoTierRun drives the two-tier hierarchy through the facade, both
// sequential and sharded, and checks the composed report plus determinism
// of the execution itself (message count) across the engines.
func TestTwoTierRun(t *testing.T) {
	run := func(shards int) *clocksync.Report {
		t.Helper()
		opts := []clocksync.Option{clocksync.WithClusters(6)}
		if shards > 1 {
			opts = append(opts, clocksync.WithShards(shards))
		}
		c, err := clocksync.New(60, 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(6)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(1)
	if !seq.TwoTier || seq.Clusters != 10 || seq.ClusterSize != 6 {
		t.Fatalf("topology fields wrong: %+v", seq)
	}
	if !seq.AgreementHolds() {
		t.Errorf("composed agreement violated: steady %v vs γ_composed %v", seq.SteadySkew, seq.Gamma)
	}
	if !seq.InnerAgreementOK {
		t.Error("hier-agreement invariant violated in a benign run")
	}
	if seq.Rounds < 6 {
		t.Errorf("completed %d rounds, want ≥ 6", seq.Rounds)
	}
	s := seq.String()
	for _, want := range []string{"two-tier", "γ_composed", "hier-agreement"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	sh := run(4)
	if sh.MessagesSent != seq.MessagesSent {
		t.Errorf("sharded run sent %d messages, sequential %d — execution diverged", sh.MessagesSent, seq.MessagesSent)
	}
	if !sh.AgreementHolds() || !sh.InnerAgreementOK {
		t.Errorf("sharded composed agreement violated: %+v", sh)
	}
}

// TestTwoTierRejections pins the named-error rejections: options that
// configure the flat mesh must not be silently reinterpreted by a two-tier
// topology, and the error must name the offending option.
func TestTwoTierRejections(t *testing.T) {
	tests := []struct {
		name string
		opt  clocksync.Option
	}{
		{"WithDelay", clocksync.WithDelay(5e-3, 1e-3)},
		{"WithBeta", clocksync.WithBeta(4e-3)},
		{"WithDerivedBeta", clocksync.WithDerivedBeta()},
		{"WithAveraging", clocksync.WithAveraging(clocksync.Mean)},
		{"WithKExchanges", clocksync.WithKExchanges(2)},
		{"WithStagger", clocksync.WithStagger(1e-4)},
		{"WithDelayDistribution", clocksync.WithDelayDistribution(clocksync.DelayAdversarial)},
		{"WithRandomDrift", clocksync.WithRandomDrift()},
		{"WithInitialSpread", clocksync.WithInitialSpread(1e-3)},
		{"WithSkewSeries", clocksync.WithSkewSeries(1.0)},
		{"WithFault", clocksync.WithFault(0, clocksync.FaultSilent)},
		{"WithAdversary", clocksync.WithAdversary("skewmax")},
		{"WithRejoiner", clocksync.WithRejoiner(1, 3, 0.1)},
		{"WithTrace", clocksync.WithTrace(10)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := clocksync.New(60, 0, clocksync.WithClusters(6), tc.opt)
			if err == nil {
				t.Fatalf("New accepted %s with a two-tier topology", tc.name)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Errorf("error %q does not name %s", err, tc.name)
			}
		})
	}
	// f is f_out in two-tier mode: a budget the cluster count cannot
	// support must be rejected by the outer tier's A2.
	if _, err := clocksync.New(60, 5, clocksync.WithClusters(6)); err == nil {
		t.Error("New accepted f_out = 5 with only 10 clusters (needs ≥ 16)")
	}
	// Oversized cluster.
	if _, err := clocksync.New(10, 0, clocksync.WithClusters(11)); err == nil {
		t.Error("New accepted a cluster size exceeding n")
	}
}
