package clocksync

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
)

// Report summarizes one maintenance run: measured quantities side by side
// with the paper's closed-form bounds.
type Report struct {
	// Rounds completed by every nonfaulty process.
	Rounds int

	// MaxSkew is the largest |L_p(t) − L_q(t)| over nonfaulty p, q and all
	// sampled t (compare Gamma).
	MaxSkew float64
	// SteadySkew is MaxSkew restricted to the second half of the run.
	SteadySkew float64
	// Gamma is the Theorem 16 agreement bound for the parameters.
	Gamma float64

	// BetaSeries is the measured per-round spread of round beginnings.
	BetaSeries []float64
	// BetaFloor is the paper's steady-state estimate 4ε+4ρP.
	BetaFloor float64

	// MaxAdjustment is the largest |ADJ| any nonfaulty process applied.
	MaxAdjustment float64
	// AdjBound is the Theorem 4(a) bound (1+ρ)(β+ε)+ρδ.
	AdjBound float64

	// ValidityViolation is the worst violation of the Theorem 19 envelope;
	// ≤ 0 means validity held at every sample.
	ValidityViolation float64

	// MessagesSent counts ordinary message copies; MessagesLost counts
	// copies dropped by a lossy channel.
	MessagesSent, MessagesLost int64

	// SkewSeries is the per-bucket max skew if WithSkewSeries was used.
	SkewSeries []float64

	// Rejoined reports whether a WithRejoiner process completed §9.1
	// reintegration (false when none was configured).
	Rejoined bool

	// TwoTier reports the run used the two-tier hierarchical topology
	// (WithTopology / WithClusters). Gamma then holds the composed envelope
	// γ_composed = 2γ_in + γ_out + AdjBound_out, the adjustment, validity
	// and beta sections are not populated, and AgreementHolds judges the
	// steady-state skew — the composition converges through an initial
	// discipline transient before the envelope applies.
	TwoTier bool
	// Clusters and ClusterSize describe the two-tier topology (zero for
	// flat runs).
	Clusters, ClusterSize int
	// InnerAgreementOK is the runtime hier-agreement invariant's verdict
	// for two-tier runs: from warmup on, the global spread stayed within
	// γ_composed and every cluster stayed within its own inner envelope.
	InnerAgreementOK bool

	// Trace is the rendered action log when WithTrace was used.
	Trace string
}

func buildReport(cfg core.Config, res *exp.Result, rj *core.Rejoiner) *Report {
	r := &Report{
		Rounds:            res.Rounds.Rounds(),
		MaxSkew:           res.Skew.Max(),
		SteadySkew:        res.Skew.MaxAfterWarmup(),
		Gamma:             cfg.Gamma(),
		BetaSeries:        res.Rounds.BetaSeries(),
		BetaFloor:         cfg.BetaFloor(),
		MaxAdjustment:     res.Rounds.MaxAbsAdj(0),
		AdjBound:          cfg.AdjBound(),
		ValidityViolation: res.Validity.WorstViolation(),
		MessagesSent:      res.MessagesSent(),
		MessagesLost:      res.MessagesLost(),
		SkewSeries:        res.Skew.Series(),
	}
	if rj != nil {
		r.Rejoined = rj.Joined()
	}
	return r
}

// AgreementHolds reports whether the measured skew respected Theorem 16
// (flat: all samples vs. γ) or the composed envelope (two-tier: steady
// samples vs. γ_composed).
func (r *Report) AgreementHolds() bool {
	if r.TwoTier {
		return r.SteadySkew <= r.Gamma
	}
	return r.MaxSkew <= r.Gamma
}

// AdjustmentBoundHolds reports whether Theorem 4(a) held.
func (r *Report) AdjustmentBoundHolds() bool { return r.MaxAdjustment <= r.AdjBound }

// ValidityHolds reports whether the Theorem 19 envelope held.
func (r *Report) ValidityHolds() bool { return r.ValidityViolation <= 0 }

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	if r.TwoTier {
		fmt.Fprintf(&b, "topology:   two-tier, %d clusters of ≤ %d\n", r.Clusters, r.ClusterSize)
		fmt.Fprintf(&b, "rounds: %d\n", r.Rounds)
		fmt.Fprintf(&b, "agreement:  steady skew %s (max %s) vs γ_composed %s — %s\n",
			exp.FmtDur(r.SteadySkew), exp.FmtDur(r.MaxSkew), exp.FmtDur(r.Gamma), holds(r.AgreementHolds()))
		fmt.Fprintf(&b, "invariant:  hier-agreement (global + per-cluster) — %s\n", holds(r.InnerAgreementOK))
		fmt.Fprintf(&b, "messages:   %d sent, %d lost\n", r.MessagesSent, r.MessagesLost)
		return b.String()
	}
	fmt.Fprintf(&b, "rounds: %d\n", r.Rounds)
	fmt.Fprintf(&b, "agreement:  max skew %s (steady %s) vs γ %s — %s\n",
		exp.FmtDur(r.MaxSkew), exp.FmtDur(r.SteadySkew), exp.FmtDur(r.Gamma), holds(r.AgreementHolds()))
	fmt.Fprintf(&b, "adjustment: max |ADJ| %s vs bound %s — %s\n",
		exp.FmtDur(r.MaxAdjustment), exp.FmtDur(r.AdjBound), holds(r.AdjustmentBoundHolds()))
	fmt.Fprintf(&b, "validity:   worst envelope violation %s — %s\n",
		exp.FmtDur(r.ValidityViolation), holds(r.ValidityHolds()))
	if n := len(r.BetaSeries); n > 0 {
		fmt.Fprintf(&b, "beta:       first %s → last %s (floor %s)\n",
			exp.FmtDur(r.BetaSeries[0]), exp.FmtDur(r.BetaSeries[n-1]), exp.FmtDur(r.BetaFloor))
	}
	fmt.Fprintf(&b, "messages:   %d sent, %d lost\n", r.MessagesSent, r.MessagesLost)
	return b.String()
}

func holds(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}

// StartupReport summarizes a §9.2 establishment run.
type StartupReport struct {
	// BSeries is the measured closeness Bᵢ at the latest begin of each
	// round (Lemma 20's quantity).
	BSeries []float64
	// FinalSkew is the nonfaulty skew at the end of the run.
	FinalSkew float64
	// Floor is the Lemma 20 fixed point 4ε+4ρ(11δ+39ε).
	Floor float64
	// FourEps is 4ε, the paper's headline closeness.
	FourEps float64
	// Recurrence applies the Lemma 20 step B → B/2 + 2ε + 2ρ(11δ+39ε).
	Recurrence func(float64) float64
}

// Converged reports whether the final closeness is within the given factor
// of the Lemma 20 floor.
func (r *StartupReport) Converged(factor float64) bool {
	return r.FinalSkew <= r.Floor*factor
}

// String renders the Bᵢ decay.
func (r *StartupReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "startup rounds: %d, floor 4ε+4ρ(11δ+39ε) = %s\n", len(r.BSeries), exp.FmtDur(r.Floor))
	for i, v := range r.BSeries {
		if i > 12 {
			fmt.Fprintf(&b, "  …\n")
			break
		}
		fmt.Fprintf(&b, "  B%-2d = %s\n", i, exp.FmtDur(v))
	}
	fmt.Fprintf(&b, "final skew: %s (4ε = %s)\n", exp.FmtDur(r.FinalSkew), exp.FmtDur(r.FourEps))
	return b.String()
}
