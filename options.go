package clocksync

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

// FaultKind selects a Byzantine behavior for a process (see internal/faults
// for the semantics).
type FaultKind uint8

// Fault behaviors available through the public API.
const (
	// FaultSilent never sends anything (a crashed process).
	FaultSilent FaultKind = iota + 1
	// FaultTwoFaced sends its round message early to half the processes
	// and late to the rest — the canonical Byzantine attack on averaging.
	FaultTwoFaced
	// FaultNoise floods the system with bogus messages at random times.
	FaultNoise
	// FaultStaleReplay rebroadcasts an old round mark, always late.
	FaultStaleReplay
	// FaultCrashMidRun behaves correctly for five rounds and then stops.
	FaultCrashMidRun
)

// Averaging re-exports the §4/§7 averaging choices.
type Averaging = core.Averager

// Averaging function choices for WithAveraging.
const (
	// Midpoint is the paper's choice: error halves each round.
	Midpoint = core.Midpoint
	// Mean is the §7 variant: error contracts by ≈ f/(n−2f) per round.
	Mean = core.Mean
)

// DelayDistribution selects how message delays are drawn from [δ−ε, δ+ε].
type DelayDistribution uint8

// Delay distributions for WithDelayDistribution.
const (
	// DelayUniform draws every delay uniformly (the benign default).
	DelayUniform DelayDistribution = iota + 1
	// DelayConstant delivers every message in exactly δ.
	DelayConstant
	// DelayAdversarial pins each delay at a band edge chosen per recipient
	// — the worst case for the arrival-time estimator.
	DelayAdversarial
)

// Topology selects the synchronization topology for a Cluster.
type Topology uint8

// Topologies for WithTopology.
const (
	// TopologyFlat is the paper's all-to-all mesh (the default): every
	// process exchanges with every other, Θ(n²) messages per round.
	TopologyFlat Topology = iota
	// TopologyTwoTier composes the algorithm twice (see README
	// "Hierarchical synchronization"): clusters run it internally on a fast
	// substrate, elected representatives run it again across clusters, and
	// followers discipline to their representative — ≈ n·c + (n/c)² messages
	// per round instead of n².
	TopologyTwoTier
)

type options struct {
	rho           float64
	delta, eps    float64
	deltaSet      bool
	beta          float64
	betaSet       bool
	topology      Topology
	clusterSize   int
	roundLength   float64
	t0            float64
	averager      core.Averager
	k             int
	stagger       float64
	seed          int64
	shards        int
	initialSpread float64
	skewBucket    clock.Real
	delayDist     DelayDistribution
	randomDrift   bool
	deriveBeta    bool
	traceLimit    int
	faults        map[int]FaultKind
	adversary     string
	rejoinID      int
	rejoinWake    float64
	rejoinCorr    float64
}

func defaultOptions() options {
	return options{
		rho:         1e-5,
		delta:       10e-3,
		eps:         1e-3,
		beta:        5.5e-3,
		roundLength: 1.0,
		seed:        1,
		delayDist:   DelayUniform,
		rejoinID:    -1,
	}
}

func (o options) delayModel(cfg core.Config) sim.DelayModel {
	switch o.delayDist {
	case DelayConstant:
		return sim.ConstantDelay{Delta: cfg.Delta}
	case DelayAdversarial:
		return sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps}
	default:
		return sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps}
	}
}

func (o options) driftSchedule(cfg core.Config) clock.DriftSchedule {
	if o.randomDrift {
		return clock.RandomWalkDrift{RhoBound: cfg.Rho, SegmentDur: 5, Horizon: 3600, Seed: o.seed}
	}
	return clock.ConstantDrift{RhoBound: cfg.Rho}
}

// Option customizes a Cluster.
type Option func(*options)

// WithRho sets the clock drift bound ρ (A1).
func WithRho(rho float64) Option { return func(o *options) { o.rho = rho } }

// WithDelay sets the message delay parameters δ and ε (A3).
func WithDelay(delta, eps float64) Option {
	return func(o *options) { o.delta, o.eps, o.deltaSet = delta, eps, true }
}

// WithBeta sets the initial-closeness parameter β (A4).
func WithBeta(beta float64) Option { return func(o *options) { o.beta, o.betaSet = beta, true } }

// WithRoundLength sets the round length P (in local-time seconds). It must
// satisfy the §5.2 constraints for the other parameters.
func WithRoundLength(p float64) Option { return func(o *options) { o.roundLength = p } }

// WithT0 sets the first round mark T⁰.
func WithT0(t0 float64) Option { return func(o *options) { o.t0 = t0 } }

// WithAveraging selects the averaging function (Midpoint or Mean).
func WithAveraging(a Averaging) Option { return func(o *options) { o.averager = a } }

// WithKExchanges sets the §7 variant exchanging clock values k times per
// round.
func WithKExchanges(k int) Option { return func(o *options) { o.k = k } }

// WithStagger enables §9.3 staggered broadcasts with spacing σ.
func WithStagger(sigma float64) Option { return func(o *options) { o.stagger = sigma } }

// WithSeed makes the run reproducible under a different randomness stream.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithShards runs the simulation on the sharded time-window engine,
// partitioning the processes across k shards that drain conservative
// lookahead windows in parallel (see README "Sharded execution for large
// n"). The execution — every delivery, every measured quantity — is
// byte-identical for every k, so the knob trades nothing but hardware.
// Features the sharded engine rejects (an adversary strategy, per-delivery
// tracing) fail Run with a clear error; k ≤ 1 means the sequential engine.
func WithShards(k int) Option { return func(o *options) { o.shards = k } }

// WithInitialSpread spreads the initial logical clocks over the given real
// width (default 0.9β; pass more to watch convergence from out-of-spec
// initial states).
func WithInitialSpread(width float64) Option {
	return func(o *options) { o.initialSpread = width }
}

// WithSkewSeries collects a per-bucket max-skew series in the report.
func WithSkewSeries(bucket float64) Option {
	return func(o *options) { o.skewBucket = clock.Real(bucket) }
}

// WithDelayDistribution selects the delay distribution.
func WithDelayDistribution(d DelayDistribution) Option {
	return func(o *options) { o.delayDist = d }
}

// WithRandomDrift gives each clock a randomly wandering (still ρ-bounded)
// rate instead of a constant one.
func WithRandomDrift() Option { return func(o *options) { o.randomDrift = true } }

// WithFault makes process id faulty with the given behavior. At most f
// processes may be faulty.
func WithFault(id int, kind FaultKind) Option {
	return func(o *options) {
		if o.faults == nil {
			o.faults = make(map[int]FaultKind)
		}
		o.faults[id] = kind
	}
}

// WithAdversary installs a registered adversary strategy by name (see
// internal/faults: faults.Strategies lists them, cmd/wlsim -adversary-list
// prints them). Schedule-driven strategies make the top f processes faulty
// with the strategy's automata; adaptive strategies additionally (or, for
// pure retimers such as "skewmax", exclusively) install the strategy's
// network adversary on the engine's delivery pipeline, where its retiming
// is clamped to [δ−ε, δ+ε]. Mutually exclusive with WithFault and
// WithRejoiner (the strategy mix owns the fault slots).
func WithAdversary(name string) Option { return func(o *options) { o.adversary = name } }

// WithRejoiner replaces process id with a §9.1 reintegrating process that
// wakes at real time wakeAt with its clock off by initialCorr seconds. It
// counts toward the f fault budget until it rejoins.
func WithRejoiner(id int, wakeAt, initialCorr float64) Option {
	return func(o *options) {
		o.rejoinID = id
		o.rejoinWake = wakeAt
		o.rejoinCorr = initialCorr
	}
}

// WithTrace records the execution's action log (up to limit events; ≤ 0
// means a default cap) and exposes it as Report.Trace.
func WithTrace(limit int) Option {
	return func(o *options) {
		if limit <= 0 {
			limit = 10_000
		}
		o.traceLimit = limit
	}
}

// WithDerivedBeta derives the smallest feasible β for the configured ρ, δ,
// ε and round length (plus a safety margin) instead of using the default or
// a WithBeta value — the §5.2 feasibility computation done for you.
func WithDerivedBeta() Option { return func(o *options) { o.deriveBeta = true } }

// WithTopology selects the synchronization topology. TopologyTwoTier runs
// the two-tier hierarchy with clusters of ≈ √n processes (the
// traffic-optimal size; override with WithClusters) on the hierarchy's
// LAN-under-WAN substrate defaults — in two-tier mode the f argument of New
// bounds the Byzantine *representatives* f_out (0 derives the largest
// budget the cluster count supports) and the per-cluster budget f_in is
// derived from the cluster size. Options that configure the flat mesh's
// single substrate or its fault slots (WithDelay, WithBeta, WithFault,
// WithAdversary, …) are rejected with a named error; WithShards composes
// freely, draining the clusters' inner rounds in parallel.
func WithTopology(t Topology) Option { return func(o *options) { o.topology = t } }

// WithClusters runs the two-tier hierarchy with clusters of c processes
// (implies WithTopology(TopologyTwoTier); c ≤ 0 picks c ≈ √n).
func WithClusters(c int) Option {
	return func(o *options) { o.topology, o.clusterSize = TopologyTwoTier, c }
}
