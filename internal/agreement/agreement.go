// Package agreement implements synchronous approximate agreement in the
// style of Dolev, Lynch, Pinter, Stark and Weihl [DLPSW] — the work the
// paper's fault-tolerant averaging function is based on (§1, Appendix).
//
// n processes, at most f of them Byzantine (n ≥ 3f+1), each start with a
// real value. Each round every process broadcasts its value; Byzantine
// processes may send different values to different recipients. Each
// nonfaulty process applies mid(reduce_f(·)) (or mean(reduce_f(·))) to the n
// values it received. With the midpoint the diameter of nonfaulty values at
// least halves every round; with the mean it contracts by ≈ f/(n−2f).
// Validity holds throughout: nonfaulty values stay within the range of the
// initial nonfaulty values.
//
// Clock synchronization is an application of this machinery (the paper's
// closing claim): each round of the clock algorithm is one approximate
// agreement round on the real times at which clocks reach Tⁱ.
package agreement

import (
	"errors"
	"fmt"

	"repro/internal/multiset"
)

// Averager selects the ordinary averaging function applied after reduce_f.
type Averager uint8

// Averaging choices.
const (
	Midpoint Averager = iota + 1
	Mean
)

// Adversary supplies the values Byzantine processes send. Value returns what
// faulty process `from` sends to nonfaulty `to` in the given round — the
// two-faced freedom is the whole game.
type Adversary interface {
	Value(round, from, to int) float64
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(round, from, to int) float64

// Value implements Adversary.
func (f AdversaryFunc) Value(round, from, to int) float64 { return f(round, from, to) }

// SpreadAdversary is the canonical worst case: it sends the current minimum
// of the nonfaulty values to the lower half of recipients and the maximum to
// the upper half, trying to keep the group apart. It must be refreshed with
// the current range each round via Observe.
type SpreadAdversary struct {
	lo, hi float64
}

// Observe records the current nonfaulty range.
func (s *SpreadAdversary) Observe(lo, hi float64) { s.lo, s.hi = lo, hi }

// Value implements Adversary.
func (s *SpreadAdversary) Value(_, _, to int) float64 {
	if to%2 == 0 {
		return s.lo
	}
	return s.hi
}

// Config parameterizes a run.
type Config struct {
	N, F     int
	Averager Averager
	// Adversary may be nil when Faulty is all-false.
	Adversary Adversary
}

// Validate checks the protocol preconditions.
func (c Config) Validate() error {
	if c.N < 3*c.F+1 {
		return fmt.Errorf("agreement: need n ≥ 3f+1, got n=%d f=%d", c.N, c.F)
	}
	if c.F < 0 {
		return fmt.Errorf("agreement: negative f %d", c.F)
	}
	return nil
}

// State is one execution of the protocol.
type State struct {
	cfg    Config
	vals   []float64 // current values; faulty slots are ignored
	faulty []bool
	round  int
}

// New builds an execution from initial values. faulty marks the Byzantine
// processes (at most f true entries).
func New(cfg Config, initial []float64, faulty []bool) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(initial) != cfg.N || len(faulty) != cfg.N {
		return nil, fmt.Errorf("agreement: need %d initial values and faulty flags, got %d and %d",
			cfg.N, len(initial), len(faulty))
	}
	nf := 0
	for _, b := range faulty {
		if b {
			nf++
		}
	}
	if nf > cfg.F {
		return nil, fmt.Errorf("agreement: %d faulty processes exceed f=%d", nf, cfg.F)
	}
	if nf > 0 && cfg.Adversary == nil {
		return nil, errors.New("agreement: faulty processes but no adversary")
	}
	vals := make([]float64, cfg.N)
	copy(vals, initial)
	return &State{cfg: cfg, vals: vals, faulty: faulty}, nil
}

// Values returns the current nonfaulty values (indexed compactly).
func (s *State) Values() []float64 {
	out := make([]float64, 0, s.cfg.N)
	for i, v := range s.vals {
		if !s.faulty[i] {
			out = append(out, v)
		}
	}
	return out
}

// Diameter returns max−min of the nonfaulty values.
func (s *State) Diameter() float64 {
	m := multiset.New(s.Values()...)
	return m.Diam()
}

// Round returns the number of completed rounds.
func (s *State) Round() int { return s.round }

// Step executes one synchronous round.
func (s *State) Step() error {
	next := make([]float64, s.cfg.N)
	for p := 0; p < s.cfg.N; p++ {
		if s.faulty[p] {
			continue
		}
		received := make([]float64, 0, s.cfg.N)
		for q := 0; q < s.cfg.N; q++ {
			if s.faulty[q] {
				received = append(received, s.cfg.Adversary.Value(s.round, q, p))
			} else {
				received = append(received, s.vals[q])
			}
		}
		var av float64
		var err error
		m := multiset.New(received...)
		if s.cfg.Averager == Mean {
			av, err = multiset.FaultTolerantMean(m, s.cfg.F)
		} else {
			av, err = multiset.FaultTolerantMidpoint(m, s.cfg.F)
		}
		if err != nil {
			return fmt.Errorf("agreement: round %d process %d: %w", s.round, p, err)
		}
		next[p] = av
	}
	for p := 0; p < s.cfg.N; p++ {
		if !s.faulty[p] {
			s.vals[p] = next[p]
		}
	}
	s.round++
	return nil
}

// RunUntil steps until the nonfaulty diameter is ≤ target or maxRounds is
// reached, returning the diameter history (index 0 = initial diameter).
func (s *State) RunUntil(target float64, maxRounds int) ([]float64, error) {
	hist := []float64{s.Diameter()}
	for i := 0; i < maxRounds && hist[len(hist)-1] > target; i++ {
		if err := s.Step(); err != nil {
			return hist, err
		}
		hist = append(hist, s.Diameter())
	}
	return hist, nil
}
