package agreement_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/agreement"
	"repro/internal/clock"
	"repro/internal/sim"
)

// asyncByzantine sends a different random value to every recipient in every
// round, as fast as it can.
type asyncByzantine struct {
	rounds int
}

func (b *asyncByzantine) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	rng := ctx.Rand()
	for q := 0; q < ctx.N(); q++ {
		for r := 0; r < b.rounds; r++ {
			v := rng.NormFloat64() * 1e6
			if rng.Intn(4) == 0 {
				v = math.Inf(1) // also try to poison with non-finite values
			}
			ctx.Send(sim.ProcID(q), agreement.ValMsg{Round: r, V: v})
		}
	}
}

// runAsync executes the asynchronous protocol with nByz Byzantine processes
// occupying the top ids.
func runAsync(t *testing.T, cfg agreement.AsyncConfig, initial []float64, nByz int, seed int64) []*agreement.AsyncProc {
	t.Helper()
	n := cfg.N
	procs := make([]sim.Process, n)
	good := make([]*agreement.AsyncProc, 0, n-nByz)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	for i := 0; i < n; i++ {
		clocks[i] = clock.Linear(0, 1)
		starts[i] = clock.Real(i) * 1e-3
		if i >= n-nByz {
			procs[i] = &asyncByzantine{rounds: cfg.Rounds}
			continue
		}
		p := agreement.NewAsyncProc(cfg, initial[i])
		procs[i] = p
		good = append(good, p)
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: 10e-3, Eps: 8e-3}, // heavy jitter: async-ish
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(1e3); err != nil {
		t.Fatal(err)
	}
	return good
}

func TestAsyncConfigValidate(t *testing.T) {
	if err := (agreement.AsyncConfig{N: 6, F: 1, Rounds: 5}).Validate(); err != nil {
		t.Errorf("6,1 should validate: %v", err)
	}
	if err := (agreement.AsyncConfig{N: 5, F: 1, Rounds: 5}).Validate(); err == nil {
		t.Error("5,1 violates n ≥ 5f+1")
	}
	if err := (agreement.AsyncConfig{N: 6, F: 1, Rounds: 0}).Validate(); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestAsyncFaultFreeConvergence(t *testing.T) {
	cfg := agreement.AsyncConfig{N: 6, F: 1, Rounds: 20}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	initial := []float64{0, 10, 25, 40, 80, 100}
	good := runAsync(t, cfg, initial, 0, 1)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range good {
		if !p.Done() {
			t.Fatalf("process stalled at round %d", p.Round())
		}
		lo = math.Min(lo, p.Value())
		hi = math.Max(hi, p.Value())
	}
	if hi-lo > 100/math.Pow(2, 10) {
		t.Errorf("diameter %v after 20 rounds, want ≤ %v (halving)", hi-lo, 100/math.Pow(2, 10))
	}
	if lo < 0 || hi > 100 {
		t.Errorf("validity violated: [%v, %v] outside [0, 100]", lo, hi)
	}
}

func TestAsyncWithByzantine(t *testing.T) {
	cfg := agreement.AsyncConfig{N: 6, F: 1, Rounds: 25}
	initial := []float64{3, 7, 12, 20, 31} // the 6th process is Byzantine
	good := runAsync(t, cfg, initial, 1, 2)
	if len(good) != 5 {
		t.Fatalf("expected 5 nonfaulty, got %d", len(good))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range good {
		if !p.Done() {
			t.Fatalf("nonfaulty process stalled at round %d", p.Round())
		}
		lo = math.Min(lo, p.Value())
		hi = math.Max(hi, p.Value())
	}
	// Validity: within the initial nonfaulty range despite the flood of
	// Byzantine values (including +Inf).
	if lo < 3-1e-9 || hi > 31+1e-9 {
		t.Errorf("validity violated: [%v, %v] outside [3, 31]", lo, hi)
	}
	if hi-lo > 1e-3 {
		t.Errorf("diameter %v after 25 rounds with a Byzantine, want tiny", hi-lo)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	cfg := agreement.AsyncConfig{N: 6, F: 1, Rounds: 8}
	initial := []float64{1, 2, 3, 4, 5, 6}
	a := runAsync(t, cfg, initial, 0, 9)
	b := runAsync(t, cfg, initial, 0, 9)
	for i := range a {
		if a[i].Value() != b[i].Value() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAsyncRandomizedValidityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		cfg := agreement.AsyncConfig{N: 6, F: 1, Rounds: 12}
		initial := make([]float64, 5)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range initial {
			initial[i] = rng.NormFloat64() * 50
			lo = math.Min(lo, initial[i])
			hi = math.Max(hi, initial[i])
		}
		good := runAsync(t, cfg, initial, 1, int64(trial+100))
		for _, p := range good {
			if p.Value() < lo-1e-9 || p.Value() > hi+1e-9 {
				t.Fatalf("trial %d: value %v outside [%v, %v]", trial, p.Value(), lo, hi)
			}
		}
	}
}
