package agreement

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/multiset"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{N: 4, F: 1}).Validate(); err != nil {
		t.Errorf("4,1 should validate: %v", err)
	}
	if err := (Config{N: 3, F: 1}).Validate(); err == nil {
		t.Error("3,1 violates n ≥ 3f+1")
	}
	if err := (Config{N: 4, F: -1}).Validate(); err == nil {
		t.Error("negative f accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := Config{N: 4, F: 1}
	if _, err := New(cfg, []float64{1, 2, 3}, make([]bool, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := New(cfg, make([]float64, 4), []bool{true, true, false, false}); err == nil {
		t.Error("too many faulty accepted")
	}
	if _, err := New(cfg, make([]float64, 4), []bool{true, false, false, false}); err == nil {
		t.Error("faulty without adversary accepted")
	}
}

func TestFaultFreeMidpointHalvesExactly(t *testing.T) {
	cfg := Config{N: 4, F: 1, Averager: Midpoint}
	st, err := New(cfg, []float64{0, 1, 3, 8}, make([]bool, 4))
	if err != nil {
		t.Fatal(err)
	}
	d0 := st.Diameter()
	if err := st.Step(); err != nil {
		t.Fatal(err)
	}
	d1 := st.Diameter()
	if d1 > d0/2+1e-12 {
		t.Errorf("diameter %v → %v did not halve", d0, d1)
	}
}

func TestConvergenceWithByzantine(t *testing.T) {
	cfg := Config{N: 7, F: 2, Averager: Midpoint}
	adv := &SpreadAdversary{}
	cfg.Adversary = adv
	faulty := []bool{false, false, false, false, false, true, true}
	init := []float64{0, 2, 5, 9, 10, 999, -999}
	st, err := New(cfg, init, faulty)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		vals := multiset.New(st.Values()...)
		adv.Observe(vals.Min(), vals.Max())
		if err := st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if d := st.Diameter(); d > 1e-6 {
		t.Errorf("diameter %v after 40 rounds, want ≈ 0", d)
	}
}

// TestValidityProperty: nonfaulty values always stay within the initial
// nonfaulty range, under a randomized two-faced adversary.
func TestValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fc := rng.Intn(3)
		n := 3*fc + 1 + rng.Intn(4)
		init := make([]float64, n)
		faulty := make([]bool, n)
		for i := range init {
			init[i] = rng.NormFloat64() * 10
		}
		for i := 0; i < fc; i++ {
			faulty[rng.Intn(n)] = true // may mark < fc distinct, fine
		}
		adv := AdversaryFunc(func(round, from, to int) float64 {
			return rng.NormFloat64() * 1e3
		})
		cfg := Config{N: n, F: fc, Averager: Midpoint, Adversary: adv}
		st, err := New(cfg, init, faulty)
		if err != nil {
			return false
		}
		good := multiset.New(st.Values()...)
		lo, hi := good.Min(), good.Max()
		for r := 0; r < 6; r++ {
			if err := st.Step(); err != nil {
				return false
			}
			for _, v := range st.Values() {
				if v < lo-1e-9 || v > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestHalvingProperty: with the midpoint, the nonfaulty diameter at least
// halves each round regardless of adversary behavior.
func TestHalvingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fc := 1 + rng.Intn(2)
		n := 3*fc + 1 + rng.Intn(3)
		init := make([]float64, n)
		faulty := make([]bool, n)
		for i := range init {
			init[i] = rng.Float64() * 100
		}
		marked := 0
		for i := 0; i < n && marked < fc; i++ {
			if rng.Intn(2) == 0 {
				faulty[i] = true
				marked++
			}
		}
		adv := &SpreadAdversary{}
		cfg := Config{N: n, F: fc, Averager: Midpoint, Adversary: adv}
		st, err := New(cfg, init, faulty)
		if err != nil {
			return false
		}
		for r := 0; r < 5; r++ {
			vals := multiset.New(st.Values()...)
			adv.Observe(vals.Min(), vals.Max())
			before := st.Diameter()
			if err := st.Step(); err != nil {
				return false
			}
			if st.Diameter() > before/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMeanConvergenceRate: with f=1 and growing n, the mean contracts the
// diameter by ≈ f/(n−2f) per round under the spread adversary.
func TestMeanConvergenceRate(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		adv := &SpreadAdversary{}
		cfg := Config{N: n, F: 1, Averager: Mean, Adversary: adv}
		init := make([]float64, n)
		faulty := make([]bool, n)
		faulty[n-1] = true
		for i := 0; i < n-1; i++ {
			init[i] = float64(i) / float64(n-2) // nonfaulty spread over [0,1]
		}
		st, err := New(cfg, init, faulty)
		if err != nil {
			t.Fatal(err)
		}
		vals := multiset.New(st.Values()...)
		adv.Observe(vals.Min(), vals.Max())
		before := st.Diameter()
		if err := st.Step(); err != nil {
			t.Fatal(err)
		}
		after := st.Diameter()
		rate := after / before
		wantMax := float64(cfg.F)/float64(n-2*cfg.F) + 0.02
		if rate > wantMax {
			t.Errorf("n=%d: mean contraction rate %v exceeds f/(n−2f)=%v", n, rate, wantMax)
		}
	}
}

func TestRunUntil(t *testing.T) {
	cfg := Config{N: 4, F: 0, Averager: Midpoint}
	st, err := New(cfg, []float64{0, 1, 2, 16}, make([]bool, 4))
	if err != nil {
		t.Fatal(err)
	}
	hist, err := st.RunUntil(0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hist[0] != 16 {
		t.Errorf("initial diameter %v, want 16", hist[0])
	}
	if last := hist[len(hist)-1]; last > 0.1 {
		t.Errorf("did not reach target: %v", last)
	}
	if len(hist) > 10 {
		t.Errorf("took %d rounds, expected ≤ 9 halvings", len(hist)-1)
	}
	if st.Round() != len(hist)-1 {
		t.Errorf("Round() = %d, want %d", st.Round(), len(hist)-1)
	}
}

func TestRunUntilRespectsMaxRounds(t *testing.T) {
	cfg := Config{N: 4, F: 0, Averager: Midpoint}
	st, err := New(cfg, []float64{0, 0, 0, 1e12}, make([]bool, 4))
	if err != nil {
		t.Fatal(err)
	}
	// A negative target is unreachable (diameter ≥ 0), so RunUntil must
	// stop exactly at maxRounds.
	hist, err := st.RunUntil(-1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 6 {
		t.Errorf("history length %d, want maxRounds+1 = 6", len(hist))
	}
	if math.IsNaN(hist[5]) {
		t.Error("NaN diameter")
	}
}
