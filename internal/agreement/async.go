package agreement

import (
	"fmt"
	"math"

	"repro/internal/multiset"
	"repro/internal/sim"
)

// Async implements the *asynchronous* approximate agreement algorithm of
// [DLPSW2] on the message-passing engine: no clocks and no synchronized
// rounds — a process advances its round whenever it has collected n−f values
// of the current round, and applies mid(reduce_2f(·)) to them.
//
// Asynchrony is paid for twice: the resilience bound tightens to n ≥ 5f+1,
// and the trimming doubles to 2f (different processes may collect different
// (n−f)-subsets, so up to f faulty values *and* f extreme nonfaulty values
// must be discardable). The diameter of nonfaulty values still at least
// halves per round.
//
// This is the second half of the paper's lineage ([DLPSW] covers both
// models) and demonstrates that the §2 engine also hosts protocols that
// never read a clock.
type AsyncConfig struct {
	N, F int
	// Rounds is how many asynchronous rounds each process executes before
	// halting (processes cannot detect convergence without knowing the
	// target precision).
	Rounds int
}

// Validate checks the asynchronous resilience bound.
func (c AsyncConfig) Validate() error {
	if c.N < 5*c.F+1 {
		return fmt.Errorf("agreement: async needs n ≥ 5f+1, got n=%d f=%d", c.N, c.F)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("agreement: async needs positive rounds, got %d", c.Rounds)
	}
	return nil
}

// ValMsg carries a process's round-r value.
type ValMsg struct {
	Round int
	V     float64
}

// AsyncProc is one asynchronous approximate-agreement process.
type AsyncProc struct {
	cfg   AsyncConfig
	value float64
	round int
	// got[r] collects the first value received from each process for
	// round r (later duplicates are ignored, as the algorithm requires).
	got  map[int]map[sim.ProcID]float64
	done bool
}

var _ sim.Process = (*AsyncProc)(nil)

// NewAsyncProc builds a process with its initial value.
func NewAsyncProc(cfg AsyncConfig, initial float64) *AsyncProc {
	return &AsyncProc{
		cfg:   cfg,
		value: initial,
		got:   make(map[int]map[sim.ProcID]float64),
	}
}

// Value returns the process's current value.
func (p *AsyncProc) Value() float64 { return p.value }

// Round returns the process's current round.
func (p *AsyncProc) Round() int { return p.round }

// Done reports whether the process has executed all its rounds.
func (p *AsyncProc) Done() bool { return p.done }

// Receive implements sim.Process.
func (p *AsyncProc) Receive(ctx *sim.Context, m sim.Message) {
	switch m.Kind {
	case sim.KindStart:
		ctx.Broadcast(ValMsg{Round: 0, V: p.value})
	case sim.KindOrdinary:
		vm, ok := m.Payload.(ValMsg)
		if !ok || p.done {
			return
		}
		// Discard stale rounds and non-finite (necessarily Byzantine)
		// values: NaN would poison the multiset ordering.
		if vm.Round < p.round || math.IsNaN(vm.V) || math.IsInf(vm.V, 0) {
			return
		}
		set := p.got[vm.Round]
		if set == nil {
			set = make(map[sim.ProcID]float64)
			p.got[vm.Round] = set
		}
		if _, dup := set[m.From]; !dup {
			set[m.From] = vm.V
		}
		p.advance(ctx)
	}
}

// advance executes as many round transitions as the collected values allow.
func (p *AsyncProc) advance(ctx *sim.Context) {
	for !p.done {
		set := p.got[p.round]
		if len(set) < p.cfg.N-p.cfg.F {
			return
		}
		vals := make([]float64, 0, len(set))
		for _, v := range set {
			vals = append(vals, v)
		}
		av, err := multiset.FaultTolerantMidpoint(multiset.New(vals...), 2*p.cfg.F)
		if err != nil || math.IsNaN(av) || math.IsInf(av, 0) {
			// n−f ≥ 4f+1 > 4f values are always enough to reduce by 2f;
			// non-finite values can only come from a Byzantine sender.
			return
		}
		p.value = av
		delete(p.got, p.round)
		p.round++
		if p.round >= p.cfg.Rounds {
			p.done = true
			return
		}
		ctx.Broadcast(ValMsg{Round: p.round, V: p.value})
	}
}
