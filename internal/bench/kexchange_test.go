package bench

import (
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

// newLargeNKEngine builds a K-exchange variant of the LargeN workload: k
// exchanges per round at calendar scale, spread across the round (SubPeriod
// = P/k) or, with dense set, packed at the sub-period floor (PMin·1.05) so
// consecutive sub-round fan-outs tile into near-continuous traffic. The two
// shapes exercise the width tuner's gap handling: spread sub-rounds land a
// dead gap apart (the window must not stretch across it), dense ones leave
// no gap at all (the horizon floor must not chase the receding spill).
func newLargeNKEngine(n, k int, dense bool, seed int64) (*sim.Engine, core.Config, clock.Real, error) {
	cfg := core.Config{Params: analysis.Default(n, (n-1)/3), K: k}
	if k > 1 && !dense {
		cfg.SubPeriod = cfg.P / float64(k)
	}
	if err := cfg.Validate(); err != nil {
		return nil, cfg, 0, err
	}
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	for i := range clocks {
		clocks[i] = drift.Build(i, n)
	}
	corrs := core.InitialCorrsWithinBeta(cfg, clocks, 0.9*cfg.Beta)
	starts := core.StartTimes(cfg, clocks, corrs)
	procs := make([]sim.Process, n)
	for i := range procs {
		procs[i] = core.NewProc(cfg, corrs[i])
	}
	tmax0 := starts[0]
	for _, s := range starts[1:] {
		if s > tmax0 {
			tmax0 = s
		}
	}
	scfg := sim.Config{
		Procs:     procs,
		Clocks:    clocks,
		StartAt:   starts,
		Delay:     sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:      seed,
		MaxSteps:  1 << 40,
		EventHint: sim.DefaultEventHint(sim.BroadcastAuto, n),
	}
	eng, err := sim.New(scfg)
	return eng, cfg, tmax0, err
}

// BenchmarkLargeNK measures the calendar queue under K-exchange sub-rounds
// at n=1009 — the workload shape the ROADMAP flagged for profiling before
// adding tuner signals. Every variant should sit near the flat (k=1)
// events/sec; before the tuner's density gate and contiguity band, k=8
// (sub-period inside nearLimit) and k=8-dense (continuum traffic) ran ~1.8×
// slower with up to 10× the allocated bytes. Four maintenance rounds per op
// keep one op under a minute.
func BenchmarkLargeNK(b *testing.B) {
	for _, v := range []struct {
		k     int
		dense bool
	}{{1, false}, {2, false}, {4, false}, {8, false}, {8, true}} {
		name := "n=1009/k=" + strconv.Itoa(v.k)
		if v.dense {
			name += "-dense"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var events float64
			for i := 0; i < b.N; i++ {
				eng, cfg, tmax0, err := newLargeNKEngine(1009, v.k, v.dense, 1)
				if err != nil {
					b.Fatal(err)
				}
				rounds := 4
				horizon := tmax0 + clock.Real(float64(rounds)*cfg.P*(1+2*cfg.Rho)+2*cfg.Window()+cfg.Delta+1)
				if err := eng.Run(horizon); err != nil {
					b.Fatal(err)
				}
				if r := eng.Process(0).(*core.Proc).Round(); r < rounds {
					b.Fatalf("only %d rounds simulated", r)
				}
				events += float64(eng.Steps())
			}
			b.StopTimer()
			b.ReportMetric(events/float64(b.N), "events/op")
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(events/s, "events/sec")
			}
		})
	}
}
