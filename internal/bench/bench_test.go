package bench

import (
	"testing"

	"repro/internal/sim"
)

// steadyAllocGate runs the shared allocation gate against one steady-state
// engine: after warm-up, measured Run slices must stay allocation-free.
func steadyAllocGate(t *testing.T, n int) {
	t.Helper()
	eng, err := NewSteadyEngine(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	const perSlice = 5000
	horizon, err := Advance(eng, 0, 2000) // warm the queue and free list
	if err != nil {
		t.Fatal(err)
	}
	target := eng.Steps()
	before := eng.Steps()
	allocs := testing.AllocsPerRun(5, func() {
		target += perSlice
		var aerr error
		horizon, aerr = Advance(eng, horizon, target)
		if aerr != nil {
			panic(aerr)
		}
	})
	delivered := (eng.Steps() - before) / 6 // AllocsPerRun runs one warm-up + 5 measured
	if allocs > 2 {
		t.Errorf("steady state allocated %v times per Run slice (~%d events); want ≤ 2", allocs, delivered)
	}
	if delivered < perSlice {
		t.Fatalf("gate workload delivered only ~%d events per slice; not a meaningful measurement", delivered)
	}
}

// TestEngineSteadyStateAllocs is the allocation regression gate (wired into
// CI): after warm-up, the no-observer event loop must run allocation-free —
// queue slots are recycled from the free list, the Context is reused, delay
// sampling is inline, and observer fan-outs are empty. It measures the same
// engine configuration BenchmarkEngineThroughput/steady reports, via the
// same NewSteadyEngine/Advance harness, so the gate guards exactly the
// benchmarked regime. Each measured Run slice delivers thousands of events;
// even ≤ 2 allocations per slice is effectively zero per event.
func TestEngineSteadyStateAllocs(t *testing.T) {
	steadyAllocGate(t, 7) // n = 7: eager broadcasts, heap scheduler
}

// TestEngineLazySteadyStateAllocs is the same gate over the lazy broadcast
// path: at n = 40 BroadcastAuto resolves to lazy, so every fan-out runs the
// record/head machinery — record recycling, head re-push on pop, copy-slice
// reuse — which must be as allocation-free as the eager loop it replaced.
// TestShardedSteadyAllocs is the sharded allocation budget gate: the same
// n=1009 workload benchjson tracks, run sequentially and across 8 shards,
// with the sharded run's allocs/op capped at 4× the sequential engine's.
// The sharded engine's extra allocations are per-engine warm-up (k calendar
// arenas, the first round's cross-shard chunk slices); in steady state the
// copy pool recycles chunk capacity between shards, so a leak on the
// exchange path — a chunk slice dropped instead of pooled, a recycled
// record regrowing its copies from nil — multiplies per-round and blows the
// budget immediately (the pre-pool engine sat at ~14× sequential).
func TestShardedSteadyAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the n=1009 benchmark pair (~10s)")
	}
	seq := testing.Benchmark(LargeN(1009, sim.SchedulerAuto, sim.BroadcastAuto))
	sh := testing.Benchmark(LargeNSharded(1009, 8))
	seqAllocs, shAllocs := seq.AllocsPerOp(), sh.AllocsPerOp()
	if seqAllocs <= 0 {
		t.Fatalf("sequential n=1009 reported %d allocs/op; the gate has no baseline", seqAllocs)
	}
	if shAllocs > 4*seqAllocs {
		t.Errorf("sharded n=1009 k=8 allocated %d/op, over the budget of 4× the sequential %d/op — the pooled cross-shard exchange is leaking", shAllocs, seqAllocs)
	}
}

func TestEngineLazySteadyStateAllocs(t *testing.T) {
	eng, err := NewSteadyEngine(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.LazyBroadcast() {
		t.Fatal("n=40 engine did not resolve to lazy broadcasts; the gate would re-test the eager path")
	}
	steadyAllocGate(t, 40)
}
