// Package bench defines the standing engine benchmarks shared by the
// repository's `go test -bench` targets and cmd/benchjson, so the numbers
// committed to BENCH_engine.json are produced by exactly the code the
// benchmarks run.
//
// Two complementary views of the simulator hot path:
//
//   - EngineSteady: the no-observer steady state. One op is one delivered
//     event; allocs/op is the engine's own allocation rate (the
//     zero-allocation target of the event-loop refactor) and the events/sec
//     extra metric is raw queue/clock/delay/dispatch throughput.
//   - EngineWorkload: one full experiment-harness run (maintenance
//     algorithm, n=7 f=2, 10 rounds, all standard recorders attached) per
//     op — the end-to-end cost an experiment table actually pays per trial.
package bench

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/sim"
)

// beacon broadcasts an empty payload and re-arms its timer every period: a
// self-sustaining full mesh of traffic in which every delivered event is
// pure engine work, with no payload allocation and no observer listening.
type beacon struct{ period clock.Local }

func (b *beacon) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind == sim.KindOrdinary {
		return
	}
	ctx.Broadcast(nil)
	ctx.SetTimer(ctx.PhysNow()+b.period, nil)
}

// NewSteadyEngine builds the no-observer benchmark engine: n beacon
// processes on drifting clocks, uniform delays, no observers registered.
func NewSteadyEngine(n int, seed int64) (*sim.Engine, error) {
	procs := make([]sim.Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	drift := clock.ConstantDrift{RhoBound: 1e-5}
	for i := range procs {
		procs[i] = &beacon{period: 1e-3}
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 1e-4
	}
	return sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: 4e-4, Eps: 1e-4},
		Seed:    seed,
		// The bench loop sizes work by b.N events; never trip the runaway
		// guard under long -benchtime runs.
		MaxSteps: 1 << 40,
	})
}

// Advance runs eng in fixed horizon chunks until it has delivered at least
// target events, returning the horizon reached. Shared by the benchmarks and
// the CI allocation gate so both measure the same regime.
func Advance(eng *sim.Engine, horizon clock.Real, target int) (clock.Real, error) {
	const chunk = 0.05 // seconds of simulated time per Run call
	for eng.Steps() < target {
		horizon += chunk
		if err := eng.Run(horizon); err != nil {
			return horizon, err
		}
	}
	return horizon, nil
}

// runSteps is Advance with benchmark error handling.
func runSteps(b *testing.B, eng *sim.Engine, horizon clock.Real, target int) clock.Real {
	horizon, err := Advance(eng, horizon, target)
	if err != nil {
		b.Fatal(err)
	}
	return horizon
}

// EngineSteady benchmarks the no-observer steady state; one op is one
// delivered event.
func EngineSteady(b *testing.B) {
	eng, err := NewSteadyEngine(7, 1)
	if err != nil {
		b.Fatal(err)
	}
	horizon := runSteps(b, eng, 0, 2000) // warm the queue and free list
	warm := eng.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	runSteps(b, eng, horizon, warm+b.N)
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(eng.Steps()-warm)/s, "events/sec")
	}
}

// benchAdversary is the adversary-stage benchmark load: an adaptive
// retimer that reads the live spread (the cached view lookup a real
// adversary pays) and pins each copy to a window edge, plus a ReceiveHook
// so the dispatch path is measured too. It mirrors the faults.SkewMax
// shape without importing the strategy registry.
type benchAdversary struct{ recvs int64 }

func (a *benchAdversary) Retime(v *sim.AdversaryView, _, to sim.ProcID, _ clock.Real, base float64) float64 {
	d, e := v.Bounds()
	lo, hi, count := v.LocalTimeSpread(v.Now())
	if count >= 2 {
		if lt, ok := v.LocalTime(to, v.Now()); ok && lt >= (lo+hi)/2 {
			return d - e
		}
		return d + e
	}
	if int(to)%2 == 0 {
		return d - e
	}
	return d + e
}

func (a *benchAdversary) OnReceive(_ *sim.AdversaryView, _ sim.Message) { a.recvs++ }

// NewAdversarySteadyEngine is NewSteadyEngine with an adaptive adversary
// installed on the delivery pipeline — the regime benchjson gates so a
// pipeline-refactor regression on the adversary path fails the perf gate
// like any other.
func NewAdversarySteadyEngine(n int, seed int64) (*sim.Engine, error) {
	procs := make([]sim.Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	drift := clock.ConstantDrift{RhoBound: 1e-5}
	for i := range procs {
		procs[i] = &beacon{period: 1e-3}
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 1e-4
	}
	return sim.New(sim.Config{
		Procs:     procs,
		Clocks:    clocks,
		StartAt:   starts,
		Delay:     sim.UniformDelay{Delta: 4e-4, Eps: 1e-4},
		Seed:      seed,
		Adversary: &benchAdversary{},
		MaxSteps:  1 << 40,
	})
}

// EngineAdversary benchmarks the steady state with the adversary stage
// active: one op is one delivered event, every copy retimed and every
// delivery hook-dispatched.
func EngineAdversary(b *testing.B) {
	eng, err := NewAdversarySteadyEngine(7, 1)
	if err != nil {
		b.Fatal(err)
	}
	horizon := runSteps(b, eng, 0, 2000)
	warm := eng.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	runSteps(b, eng, horizon, warm+b.N)
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(eng.Steps()-warm)/s, "events/sec")
	}
}

// largeNWorkload assembles the large-n benchmark system: n maintenance
// automata (f = (n−1)/3 capacity, no actual faults) on drifting clocks with
// uniform delays and no observers — the round-structured n²-broadcast
// regime the calendar queue and lazy materialization exist for, with
// nothing but engine and automaton work on the clock.
func largeNWorkload(n int, seed int64) (sim.Config, core.Config, clock.Real, error) {
	cfg := core.Config{Params: analysis.Default(n, (n-1)/3)}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, cfg, 0, err
	}
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	for i := range clocks {
		clocks[i] = drift.Build(i, n)
	}
	corrs := core.InitialCorrsWithinBeta(cfg, clocks, 0.9*cfg.Beta)
	starts := core.StartTimes(cfg, clocks, corrs)
	procs := make([]sim.Process, n)
	for i := range procs {
		procs[i] = core.NewProc(cfg, corrs[i])
	}
	tmax0 := starts[0]
	for _, s := range starts[1:] {
		if s > tmax0 {
			tmax0 = s
		}
	}
	return sim.Config{
		Procs:    procs,
		Clocks:   clocks,
		StartAt:  starts,
		Delay:    sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:     seed,
		MaxSteps: 1 << 40,
	}, cfg, tmax0, nil
}

// NewLargeNEngine builds the large-n benchmark engine. The scheduler knob
// selects the queue implementation (heap baseline vs calendar) and the
// broadcast knob the materialization strategy (eager baseline vs lazy);
// every combination delivers the identical event sequence.
func NewLargeNEngine(n int, seed int64, s sim.Scheduler, m sim.BroadcastMode) (*sim.Engine, core.Config, clock.Real, error) {
	scfg, cfg, tmax0, err := largeNWorkload(n, seed)
	if err != nil {
		return nil, cfg, 0, err
	}
	scfg.Scheduler = s
	scfg.Broadcast = m
	scfg.EventHint = sim.DefaultEventHint(m, n)
	eng, err := sim.New(scfg)
	return eng, cfg, tmax0, err
}

// largeNRounds is how many synchronization rounds one LargeN op simulates.
const largeNRounds = 10

// LargeN returns a benchmark running largeNRounds maintenance rounds of an
// n-process system per op under the given scheduler and broadcast mode;
// events/sec is the headline metric (one round delivers ≈ n² messages
// inside one delay window) and peak-queue-events the memory one: the
// queue's population high-water mark, ≈ n² eager and O(n) lazy.
func LargeN(n int, s sim.Scheduler, m sim.BroadcastMode) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var events, msgs float64
		peak := 0
		for i := 0; i < b.N; i++ {
			eng, cfg, tmax0, err := NewLargeNEngine(n, 1, s, m)
			if err != nil {
				b.Fatal(err)
			}
			horizon := tmax0 + clock.Real(largeNRounds*cfg.P*(1+2*cfg.Rho)+2*cfg.Window()+cfg.Delta+1)
			if err := eng.Run(horizon); err != nil {
				b.Fatal(err)
			}
			if r := eng.Process(0).(*core.Proc).Round(); r < largeNRounds {
				b.Fatalf("only %d rounds simulated", r)
			}
			events += float64(eng.Steps())
			msgs = float64(eng.MessagesSent()) // deterministic: identical every op
			peak = eng.QueuePeak()
		}
		b.StopTimer()
		b.ReportMetric(events/float64(b.N), "events/op")
		b.ReportMetric(float64(peak), "peak-queue-events")
		b.ReportMetric(msgs/float64(largeNRounds), "msgs-per-round")
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(events/s, "events/sec")
		}
	}
}

// NewLargeNHierEngine builds the two-tier counterpart of the LargeN
// workload: n processes in clusters of c (internal/hier defaults) on the
// sequential engine, so the flat and hierarchical numbers differ only in
// topology.
func NewLargeNHierEngine(n, c int, seed int64) (*sim.Engine, *hier.System, error) {
	s, err := hier.Build(hier.Default(n, c))
	if err != nil {
		return nil, nil, err
	}
	scfg := s.SimConfig(largeNRounds, seed)
	scfg.MaxSteps = 1 << 40
	eng, err := sim.New(scfg)
	return eng, s, err
}

// LargeNHier returns a benchmark running largeNRounds maintenance rounds of
// the two-tier hierarchy at size n, cluster size c, per op. Same rounds and
// seed discipline as LargeN, so the events/sec and msgs-per-round entries
// committed next to the flat ones quantify the topology change alone: the
// per-round traffic collapses from n² to ≈ n·c + (n/c)², and with it the
// wall-clock cost of simulating (or running) one round.
func LargeNHier(n, c int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var events, msgs float64
		peak := 0
		for i := 0; i < b.N; i++ {
			eng, s, err := NewLargeNHierEngine(n, c, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Run(s.Horizon(largeNRounds)); err != nil {
				b.Fatal(err)
			}
			if r := eng.Process(0).(*hier.Member).Round(); r < largeNRounds {
				b.Fatalf("only %d rounds simulated", r)
			}
			events += float64(eng.Steps())
			msgs = float64(eng.MessagesSent()) // deterministic: identical every op
			peak = eng.QueuePeak()
		}
		b.StopTimer()
		b.ReportMetric(events/float64(b.N), "events/op")
		b.ReportMetric(float64(peak), "peak-queue-events")
		b.ReportMetric(msgs/float64(largeNRounds), "msgs-per-round")
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(events/s, "events/sec")
		}
	}
}

// NewLargeNShardedEngine builds the LargeN workload partitioned across k
// shards with conservative time-window synchronization (lookahead δ−ε).
func NewLargeNShardedEngine(n int, seed int64, k int) (*sim.ShardedEngine, core.Config, clock.Real, error) {
	scfg, cfg, tmax0, err := largeNWorkload(n, seed)
	if err != nil {
		return nil, cfg, 0, err
	}
	se, err := sim.NewSharded(scfg, k)
	return se, cfg, tmax0, err
}

// LargeNSharded returns a benchmark running the LargeN workload across k
// shards; events/sec measures the parallel window-drain throughput against
// the sequential LargeN numbers, peak-queue-events the largest per-shard
// population, and barrier-count the number of full cross-shard barriers the
// run paid — the window-batching win, deterministic per configuration and
// gated by the nightly benchjson comparison like the allocation numbers.
func LargeNSharded(n, k int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var events, msgs float64
		peak := 0
		var stats sim.ShardStats
		for i := 0; i < b.N; i++ {
			se, cfg, tmax0, err := NewLargeNShardedEngine(n, 1, k)
			if err != nil {
				b.Fatal(err)
			}
			horizon := tmax0 + clock.Real(largeNRounds*cfg.P*(1+2*cfg.Rho)+2*cfg.Window()+cfg.Delta+1)
			if err := se.Run(horizon); err != nil {
				b.Fatal(err)
			}
			if r := se.Shard(0).Process(0).(*core.Proc).Round(); r < largeNRounds {
				b.Fatalf("only %d rounds simulated", r)
			}
			events += float64(se.Steps())
			msgs = float64(se.MessagesSent()) // deterministic: identical every op
			peak = se.QueuePeak()
			stats = se.Stats() // deterministic: identical every op
		}
		b.StopTimer()
		if stats.BatchedWindows == 0 {
			b.Fatalf("window batching never fired: stats %+v (every traffic-free window should fold into its predecessor's barrier)", stats)
		}
		b.ReportMetric(events/float64(b.N), "events/op")
		b.ReportMetric(float64(peak), "peak-queue-events")
		b.ReportMetric(float64(stats.Barriers), "barrier-count")
		b.ReportMetric(msgs/float64(largeNRounds), "msgs-per-round")
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(events/s, "events/sec")
		}
	}
}

// EngineWorkload benchmarks one full experiment-harness run per op.
func EngineWorkload(b *testing.B) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	b.ReportAllocs()
	b.ResetTimer()
	var events, secs float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 10, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		events += float64(res.Engine.Steps())
	}
	b.StopTimer()
	secs = b.Elapsed().Seconds()
	b.ReportMetric(events/float64(b.N), "events/op")
	if secs > 0 {
		b.ReportMetric(events/secs, "events/sec")
	}
}
