package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/clock"
)

// popQueue abstracts the scheduler implementations under differential test:
// the legacy 4-ary heap and the hybrid sched in its various modes all
// expose the same pop contract.
type popQueue interface {
	push(ev *event)
	pop() event
	len() int
}

// heapAdapter gives eventQueue the pointer-push signature of sched.
type heapAdapter struct{ q eventQueue }

func (h *heapAdapter) push(ev *event) { h.q.push(*ev) }
func (h *heapAdapter) pop() event     { return h.q.pop() }
func (h *heapAdapter) len() int       { return h.q.len() }

// queueConfigs enumerates the scheduler implementations that must agree:
// the plain heap, an auto sched (which flips to the calendar mid-run when
// the population crosses the activation threshold), an eagerly-activated
// calendar, and calendars whose declared delay span wildly mismatches the
// generated traffic (forcing constant window rotation and overflow spill
// in both directions).
func queueConfigs() map[string]func() popQueue {
	return map[string]func() popQueue{
		"heap": func() popQueue { return &heapAdapter{} },
		"auto": func() popQueue {
			s := &sched{}
			s.init(SchedulerAuto, 0, 1e-2, 1e-3)
			return s
		},
		"calendar": func() popQueue {
			s := &sched{}
			s.init(SchedulerCalendar, 2048, 1e-2, 1e-3)
			return s
		},
		"calendar-narrow": func() popQueue {
			// Tiny declared span: nearly everything overflows at first and
			// the tuner has to widen through rotations.
			s := &sched{}
			s.init(SchedulerCalendar, 0, 1e-9, 0)
			return s
		},
		"calendar-wide": func() popQueue {
			// Huge declared span: the whole run lands in one window and
			// dense buckets exercise the sort paths.
			s := &sched{}
			s.init(SchedulerCalendar, 0, 1e3, 10)
			return s
		},
	}
}

// TestQueueMatchesNaiveSort cross-checks every scheduler implementation
// against a naive reference: under random push/pop interleavings, every pop
// must return exactly the minimum of the outstanding events in (DeliverAt,
// non-TIMER first, seq) order — the order a plain sort of the same events
// produces. Pushes respect the engine's scheduling contract (never earlier
// than the last popped delivery time); the generated times mix same-instant
// ties, dense clusters, and far-future jumps so the calendar's bucket
// rotation and overflow spill paths run constantly.
func TestQueueMatchesNaiveSort(t *testing.T) {
	for name, mk := range queueConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				q := mk()
				rng := rand.New(rand.NewSource(seed))
				total := 1 + rng.Intn(700)

				var pending []event // naive mirror of the queue's contents
				floor := clock.Real(0)
				popCheck := func() {
					min := 0
					for i := range pending {
						if eventLess(&pending[i], &pending[min]) {
							min = i
						}
					}
					want := pending[min]
					pending = append(pending[:min], pending[min+1:]...)
					got := q.pop()
					if got.seq != want.seq {
						t.Fatalf("seed %d: pop returned seq %d (t=%v %v), naive min is seq %d (t=%v %v)",
							seed, got.seq, got.msg.DeliverAt, got.msg.Kind,
							want.seq, want.msg.DeliverAt, want.msg.Kind)
					}
					if got.msg.DeliverAt != want.msg.DeliverAt || got.msg.Kind != want.msg.Kind {
						t.Fatalf("seed %d: seq %d popped with corrupted contents (t=%v %v, want t=%v %v)",
							seed, got.seq, got.msg.DeliverAt, got.msg.Kind,
							want.msg.DeliverAt, want.msg.Kind)
					}
					floor = got.msg.DeliverAt
				}

				pushed := 0
				for pushed < total {
					if len(pending) > 0 && rng.Intn(3) == 0 {
						popCheck()
						continue
					}
					ev := genEventAfter(rng, floor, uint64(pushed))
					q.push(&ev)
					pending = append(pending, ev)
					pushed++
				}

				// Drain what is left and compare the full pop sequence
				// against a sorted copy in one shot.
				ref := make([]event, len(pending))
				copy(ref, pending)
				sort.Slice(ref, func(i, j int) bool { return eventLess(&ref[i], &ref[j]) })
				for _, want := range ref {
					if got := q.pop(); got.seq != want.seq {
						t.Fatalf("seed %d: drain order diverges from naive sort: got seq %d, want %d",
							seed, got.seq, want.seq)
					}
				}
				if q.len() != 0 {
					t.Fatalf("seed %d: queue not empty after drain", seed)
				}
			}
		})
	}
}

// genEventAfter builds a random event delivered at or after floor — the
// engine's scheduling contract (a Receive only schedules at or after the
// current time). The offset distribution deliberately mixes exact ties
// (timer vs ordinary tie-breaks), sub-width jitter, cluster-scale offsets,
// and far-future jumps many windows out.
func genEventAfter(rng *rand.Rand, floor clock.Real, seq uint64) event {
	kinds := [...]Kind{KindOrdinary, KindStart, KindTimer}
	var off clock.Real
	switch rng.Intn(8) {
	case 0: // exact tie with the last popped delivery
	case 1, 2, 3: // within-cluster jitter
		off = clock.Real(rng.Float64() * 1e-3)
	case 4, 5: // one delay window ahead
		off = clock.Real(1e-2 + rng.Float64()*2e-3)
	case 6: // several windows ahead (overflow territory)
		off = clock.Real(rng.Float64() * 0.3)
	default: // next round / rejoin distance (deep overflow)
		off = clock.Real(1 + rng.Float64()*10)
	}
	return event{
		msg: Message{
			Kind:      kinds[rng.Intn(len(kinds))],
			From:      ProcID(rng.Intn(4)),
			To:        ProcID(rng.Intn(4)),
			DeliverAt: floor + off,
		},
		seq: seq,
	}
}

// TestQueuePopReleasesPayload checks the free-list hygiene: the slot a pop
// vacates must not pin the message payload.
func TestQueuePopReleasesPayload(t *testing.T) {
	var q eventQueue
	q.push(event{msg: Message{Payload: "x", DeliverAt: 1}})
	q.push(event{msg: Message{Payload: "y", DeliverAt: 2}})
	q.pop()
	q.pop()
	for i := 0; i < cap(q.items); i++ {
		if q.items[:cap(q.items)][i].msg.Payload != nil {
			t.Fatalf("free-list slot %d still holds payload %v", i, q.items[:cap(q.items)][i].msg.Payload)
		}
	}
}

// TestQueueGrowPreservesContents checks that pre-sizing the free list keeps
// already-queued events intact.
func TestQueueGrowPreservesContents(t *testing.T) {
	var q eventQueue
	q.push(event{msg: Message{DeliverAt: 2}, seq: 0})
	q.push(event{msg: Message{DeliverAt: 1}, seq: 1})
	q.grow(64)
	if cap(q.items) < 64 {
		t.Fatalf("cap = %d after grow(64)", cap(q.items))
	}
	if ev := q.pop(); ev.seq != 1 {
		t.Fatalf("pop after grow returned seq %d, want 1", ev.seq)
	}
	if ev := q.pop(); ev.seq != 0 {
		t.Fatalf("pop after grow returned seq %d, want 0", ev.seq)
	}
}
