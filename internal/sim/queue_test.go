package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/clock"
)

// genEvent builds a random event with the given sequence number. Delivery
// times are drawn from a handful of discrete values so kind and sequence
// tie-breaks are exercised constantly.
func genEvent(rng *rand.Rand, seq uint64) event {
	kinds := [...]Kind{KindOrdinary, KindStart, KindTimer}
	return event{
		msg: Message{
			Kind:      kinds[rng.Intn(len(kinds))],
			From:      ProcID(rng.Intn(4)),
			To:        ProcID(rng.Intn(4)),
			DeliverAt: clock.Real(rng.Intn(7)),
		},
		seq: seq,
	}
}

// TestQueueMatchesNaiveSort cross-checks the 4-ary heap against a naive
// reference: under random push/pop interleavings, every pop must return
// exactly the minimum of the outstanding events in (DeliverAt, non-TIMER
// first, seq) order — the order a plain sort of the same events produces.
func TestQueueMatchesNaiveSort(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		total := 1 + rng.Intn(200)

		var q eventQueue
		var pending []event // naive mirror of the queue's contents
		popCheck := func() {
			min := 0
			for i := range pending {
				if q.less(&pending[i], &pending[min]) {
					min = i
				}
			}
			want := pending[min]
			pending = append(pending[:min], pending[min+1:]...)
			got := q.pop()
			if got.seq != want.seq {
				t.Fatalf("seed %d: pop returned seq %d (t=%v %v), naive min is seq %d (t=%v %v)",
					seed, got.seq, got.msg.DeliverAt, got.msg.Kind,
					want.seq, want.msg.DeliverAt, want.msg.Kind)
			}
		}

		pushed := 0
		for pushed < total {
			if len(pending) > 0 && rng.Intn(3) == 0 {
				popCheck()
				continue
			}
			ev := genEvent(rng, uint64(pushed))
			q.push(ev)
			pending = append(pending, ev)
			pushed++
		}

		// Drain what is left and compare the full pop sequence against a
		// sorted copy in one shot.
		ref := make([]event, len(pending))
		copy(ref, pending)
		sort.Slice(ref, func(i, j int) bool { return q.less(&ref[i], &ref[j]) })
		for _, want := range ref {
			if got := q.pop(); got.seq != want.seq {
				t.Fatalf("seed %d: drain order diverges from naive sort: got seq %d, want %d",
					seed, got.seq, want.seq)
			}
		}
		if q.len() != 0 {
			t.Fatalf("seed %d: queue not empty after drain", seed)
		}
	}
}

// TestQueuePopReleasesPayload checks the free-list hygiene: the slot a pop
// vacates must not pin the message payload.
func TestQueuePopReleasesPayload(t *testing.T) {
	var q eventQueue
	q.push(event{msg: Message{Payload: "x", DeliverAt: 1}})
	q.push(event{msg: Message{Payload: "y", DeliverAt: 2}})
	q.pop()
	q.pop()
	for i := 0; i < cap(q.items); i++ {
		if q.items[:cap(q.items)][i].msg.Payload != nil {
			t.Fatalf("free-list slot %d still holds payload %v", i, q.items[:cap(q.items)][i].msg.Payload)
		}
	}
}

// TestQueueGrowPreservesContents checks that pre-sizing the free list keeps
// already-queued events intact.
func TestQueueGrowPreservesContents(t *testing.T) {
	var q eventQueue
	q.push(event{msg: Message{DeliverAt: 2}, seq: 0})
	q.push(event{msg: Message{DeliverAt: 1}, seq: 1})
	q.grow(64)
	if cap(q.items) < 64 {
		t.Fatalf("cap = %d after grow(64)", cap(q.items))
	}
	if ev := q.pop(); ev.seq != 1 {
		t.Fatalf("pop after grow returned seq %d, want 1", ev.seq)
	}
	if ev := q.pop(); ev.seq != 0 {
		t.Fatalf("pop after grow returned seq %d, want 0", ev.seq)
	}
}
