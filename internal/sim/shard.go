package sim

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/exp/runner"
)

// This file implements the sharded execution mode: a conservative
// time-window parallelization of the engine in the classic PDES style
// (Chandy–Misra lookahead). Assumption A3 — every message delay lies in
// [δ−ε, δ+ε] — gives the model an intrinsic lookahead of L = δ−ε: a message
// sent at or after real time t cannot be delivered before t+L, so events in
// the half-open window [t, t+L) are causally independent across processes
// and may execute in parallel.
//
// The processes are partitioned into contiguous shards, each owning a
// private Engine that holds only its processes' pending events. A window
// runs as: (1) find the globally earliest pending event time m; (2) let
// every shard drain its events in [m, m+L) concurrently via runner.Map;
// (3) at the barrier, exchange cross-shard traffic — single-threaded — and
// repeat. Every cross-shard message produced inside the window has delivery
// time ≥ m+L, i.e. beyond the window, so no shard can miss an event
// (checked at exchange time; a delay model violating its declared bounds is
// reported, not silently reordered).
//
// Determinism is independent of the shard count (the oracle E19 and
// TestShardedDeterminism pin): two mechanisms replace the sequential
// engine's shared mutable order state. Delay sampling draws from per-sender
// streams (senderSeed) instead of one interleaved engine stream, so a
// copy's delay depends only on the sender's own send history. Sequence
// numbers — the (DeliverAt, seq) tie-break — are packed per-copy keys
// (packShardSeq) instead of a shared counter, so tie-break order is a pure
// function of (sender, send index, recipient). Both are fixed properties of
// the execution, not of the partition. The cost: a sharded execution is a
// different (equally valid) execution of the same system than the
// sequential engine's — except under deterministic delay models, where the
// two coincide exactly (TestShardedMatchesSequential).
//
// Restrictions, validated at NewSharded: the channel must be stateless
// (FullMesh or LossyLinks; Ether's contention bookkeeping is inherently
// sequential), no adversary (its omniscient PendingDeliveries view and
// retime hooks observe a global order), no observers (sampling happens at
// window barriers via OnWindow instead), no timeline (its actions mutate
// global routing/delay state mid-window), and δ−ε must be positive — with
// zero lookahead no window can make progress.

// shardSeqBits: a packed sequence key is from(13) | sendIndex(37) | to(13),
// with bit 63 left clear for the calendar's TIMER flag. 13 bits cap the
// sharded system size at 8192 processes; 37 bits of send index outlast any
// step-bounded execution.
const (
	shardToBits   = 13
	shardSidxBits = 37
	maxShardProcs = 1 << shardToBits
)

// packShardSeq builds the deterministic sequence key of one message copy.
// Key order refines (sender, send index, recipient) — a total order on
// copies that depends only on the execution's causal structure, never on
// the shard count or the interleaving of windows.
func packShardSeq(from ProcID, sidx uint64, to ProcID) uint64 {
	return uint64(from)<<(shardSidxBits+shardToBits) | sidx<<shardToBits | uint64(to)
}

// ShardedEngine runs one system configuration partitioned across several
// shard engines with conservative time-window synchronization. Build with
// NewSharded, drive with Run; per-window sampling hooks in via OnWindow.
type ShardedEngine struct {
	// OnWindow, when non-nil, is called single-threaded after every window
	// barrier with the window's cut time: all events strictly before cut
	// have been delivered and no others, so clock/correction reads at cut
	// are well-defined. This replaces the sequential engine's observers,
	// whose per-event callbacks have no deterministic global order here.
	OnWindow func(se *ShardedEngine, cut clock.Real)

	shards    []*Engine
	owner     []int32 // process → shard index
	lookahead float64 // L = δ−ε
	workers   int
	now       clock.Real
	windows   int
	maxSteps  int
}

// NewSharded validates the configuration for sharded execution and builds
// one shard engine per partition, with processes assigned to shards in
// contiguous blocks. All shard engines share the configuration's process,
// clock and fault slices read-only.
func NewSharded(cfg Config, shards int) (*ShardedEngine, error) {
	n := len(cfg.Procs)
	if shards < 1 {
		return nil, fmt.Errorf("sim: %d shards", shards)
	}
	if shards > n {
		return nil, fmt.Errorf("sim: %d shards for %d processes", shards, n)
	}
	if n > maxShardProcs {
		return nil, fmt.Errorf("sim: %d processes exceeds the sharded-mode cap %d (packed sequence keys)", n, maxShardProcs)
	}
	if cfg.Adversary != nil {
		return nil, errors.New("sim: sharded execution does not support an adversary (its omniscient view requires the sequential engine)")
	}
	if len(cfg.Timeline) > 0 {
		return nil, errors.New("sim: sharded execution does not support a timeline (actions mutate global routing/delay state mid-window)")
	}
	switch cfg.Channel.(type) {
	case nil, FullMesh, LossyLinks:
	default:
		return nil, fmt.Errorf("sim: sharded execution requires a stateless channel, got %T", cfg.Channel)
	}
	if cfg.Delay == nil {
		return nil, errors.New("sim: nil delay model")
	}
	d, eps := cfg.Delay.Bounds()
	lookahead := d - eps
	if !(lookahead > 0) {
		return nil, fmt.Errorf("sim: sharded execution needs positive lookahead δ−ε, got δ=%v ε=%v", d, eps)
	}

	owner := make([]int32, n)
	per := (n + shards - 1) / shards
	for i := range owner {
		owner[i] = int32(i / per)
	}
	se := &ShardedEngine{
		owner:     owner,
		lookahead: lookahead,
		workers:   shards,
		maxSteps:  cfg.MaxSteps,
	}
	if se.maxSteps <= 0 {
		se.maxSteps = defaultMaxSteps
	}
	for s := 0; s < shards; s++ {
		local := make([]bool, n)
		nLocal := 0
		for i := range local {
			if owner[i] == int32(s) {
				local[i] = true
				nLocal++
			}
		}
		scfg := cfg
		if scfg.EventHint <= 0 {
			// Per-shard population: every in-flight fan-out contributes at
			// most one head here (lazy), or its local copies (eager), plus
			// the shard's own timers.
			if cfg.Broadcast.Resolve(n) == BroadcastLazy {
				scfg.EventHint = 2*n + 2*nLocal + 16
			} else {
				scfg.EventHint = n*nLocal + 2*nLocal + 8
			}
		}
		eng, err := newEngine(scfg, &shardSetup{local: local, owner: owner, shards: shards})
		if err != nil {
			return nil, err
		}
		se.shards = append(se.shards, eng)
	}
	return se, nil
}

// Shards returns the number of shard engines.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard engine i (tests and metrics; treat as read-only).
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// N returns the number of processes.
func (se *ShardedEngine) N() int { return len(se.owner) }

// Now returns the current window cut: all events strictly before it have
// been delivered.
func (se *ShardedEngine) Now() clock.Real { return se.now }

// Windows returns how many synchronization windows have run.
func (se *ShardedEngine) Windows() int { return se.windows }

// Steps returns the total number of delivered messages across all shards.
func (se *ShardedEngine) Steps() int {
	t := 0
	for _, e := range se.shards {
		t += e.steps
	}
	return t
}

// MessagesSent returns the total ordinary message copies scheduled.
func (se *ShardedEngine) MessagesSent() int64 {
	var t int64
	for _, e := range se.shards {
		t += e.msgsSent
	}
	return t
}

// MessagesLost returns the total copies dropped by the channel.
func (se *ShardedEngine) MessagesLost() int64 {
	var t int64
	for _, e := range se.shards {
		t += e.msgsLost
	}
	return t
}

// TimersLapsed returns the total set-timer calls that named a past time.
func (se *ShardedEngine) TimersLapsed() int64 {
	var t int64
	for _, e := range se.shards {
		t += e.timersLapsed
	}
	return t
}

// QueuePeak returns the largest per-shard queue population high-water mark.
func (se *ShardedEngine) QueuePeak() int {
	p := 0
	for _, e := range se.shards {
		if q := e.QueuePeak(); q > p {
			p = q
		}
	}
	return p
}

// LocalTimeSpread returns the min/max nonfaulty local time at t (all shard
// engines hold the full clock and correction arrays; reads are safe at
// window barriers, where OnWindow fires).
func (se *ShardedEngine) LocalTimeSpread(t clock.Real) (lo, hi clock.Local, count int) {
	return se.shards[0].LocalTimeSpread(t)
}

// minPending returns the earliest pending event time across all shards.
func (se *ShardedEngine) minPending() (clock.Real, bool) {
	var m clock.Real
	any := false
	for _, e := range se.shards {
		if at, ok := e.queue.peekTime(); ok && (!any || at < m) {
			m = at
			any = true
		}
	}
	return m, any
}

// Run executes windows until no shard holds an event at or before until, or
// the step limit is hit. Like Engine.Run it may be called repeatedly with
// increasing horizons; OnWindow fires once per window barrier.
func (se *ShardedEngine) Run(until clock.Real) error {
	for {
		m, any := se.minPending()
		if !any || m > until {
			if se.now < until {
				se.now = until
			}
			return nil
		}
		if se.Steps() >= se.maxSteps {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", se.maxSteps, se.now)
		}
		hi := m + clock.Real(se.lookahead)
		if _, err := runner.Map(se.workers, len(se.shards), func(i int) (int, error) {
			return se.shards[i].runWindow(hi, until)
		}); err != nil {
			return err
		}
		if err := se.exchange(hi); err != nil {
			return err
		}
		se.windows++
		cut := hi
		if until < cut {
			cut = until
		}
		se.now = cut
		if se.OnWindow != nil {
			se.OnWindow(se, cut)
		}
	}
}

// exchange moves the window's cross-shard traffic — eager/unicast events
// and lazy broadcast chunks — into the destination shards' queues.
// Single-threaded; runs at every window barrier.
func (se *ShardedEngine) exchange(hi clock.Real) error {
	for _, src := range se.shards {
		for i := range src.outbox {
			ev := &src.outbox[i]
			if ev.msg.DeliverAt < hi {
				return fmt.Errorf("sim: delay model violated its declared lower bound: copy %d→%d delivers at %v inside the window ending %v",
					ev.msg.From, ev.msg.To, ev.msg.DeliverAt, hi)
			}
			se.shards[se.owner[ev.msg.To]].queue.push(ev)
			ev.msg = Message{} // release the payload reference
		}
		src.outbox = src.outbox[:0]
		for d := range src.outChunks {
			dst := se.shards[d]
			for i := range src.outChunks[d] {
				ch := &src.outChunks[d][i]
				if len(ch.copies) > 0 && clock.Real(ch.copies[0].at) < hi {
					return fmt.Errorf("sim: delay model violated its declared lower bound: broadcast copy from %d delivers at %v inside the window ending %v",
						ch.from, ch.copies[0].at, hi)
				}
				dst.queue.adoptBroadcast(ch)
				*ch = bcastChunk{}
			}
			src.outChunks[d] = src.outChunks[d][:0]
		}
	}
	return nil
}

// runWindow drains one shard's events in [current, hi) ∩ (-∞, until],
// producing cross-shard traffic into the engine's outbox/outChunks. It is
// the only engine code that runs concurrently: each shard touches its own
// queue and its own processes' state; clocks and remote corrections are
// read-only here.
func (e *Engine) runWindow(hi, until clock.Real) (int, error) {
	var m Message
	steps := 0
	for {
		at, ok := e.queue.peekTime()
		if !ok || at >= hi || at > until {
			adv := hi
			if until < adv {
				adv = until
			}
			if e.now < adv {
				e.now = adv
				e.spreadOK = false
			}
			return steps, nil
		}
		if e.steps >= e.maxSteps {
			return steps, fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxSteps, e.now)
		}
		e.queue.popMsg(&m)
		e.now = m.DeliverAt
		e.spreadOK = false
		e.steps++
		steps++
		e.ctx.pid = m.To
		e.procs[m.To].Receive(&e.ctx, m)
	}
}
