package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime/debug"
	"slices"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/exp/runner"
)

// This file implements the sharded execution mode: a conservative
// time-window parallelization of the engine in the classic PDES style
// (Chandy–Misra lookahead). Assumption A3 — every message delay lies in
// [δ−ε, δ+ε] — gives the model an intrinsic lookahead of L = δ−ε: a message
// sent at or after real time t cannot be delivered before t+L, so events in
// the half-open window [t, t+L) are causally independent across processes
// and may execute in parallel.
//
// The processes are partitioned into contiguous shards, each owning a
// private Engine that holds only its processes' pending events. A window
// runs as: (1) find the globally earliest pending event time m; (2) let
// every shard drain its events in [m, m+L) concurrently; (3) synchronize,
// exchange cross-shard traffic — single-threaded — and repeat. Every
// cross-shard message produced inside the window has delivery time ≥ m+L,
// i.e. beyond the window, so no shard can miss an event (checked at
// exchange time; a delay model violating its declared bounds is reported,
// not silently reordered).
//
// Windows are *batched*: the only reason a shard must stop at a window
// boundary is cross-shard traffic another shard may have produced. When a
// window produces none anywhere — the common case in round-structured
// workloads, where only the window containing the round's broadcasts sends
// across shards and the following delivery windows are silent — the
// exchange is a no-op and the next window starts immediately on a
// lightweight in-place barrier (an atomic arrival counter plus a release
// channel) inside one runner.Map invocation, instead of tearing the worker
// set down and spawning a new one. One runner.Map call therefore covers a
// maximal run of traffic-free windows plus the window that finally produced
// traffic; ShardStats separates the full barriers from the batched windows
// so benchmarks can assert the collapse fires (barrier count trends toward
// O(rounds) while the window count stays O(rounds·windows)).
//
// Determinism is independent of the shard count (the oracle E19 and
// TestShardedDeterminism pin): two mechanisms replace the sequential
// engine's shared mutable order state. Delay sampling draws from per-sender
// streams (senderSeed) instead of one interleaved engine stream, so a
// copy's delay depends only on the sender's own send history. Sequence
// numbers — the (DeliverAt, seq) tie-break — are packed per-copy keys
// (Engine.packSeq) instead of a shared counter, so tie-break order is a
// pure function of (sender, send index, recipient). Both are fixed
// properties of the execution, not of the partition. The cost: a sharded
// execution is a different (equally valid) execution of the same system
// than the sequential engine's — except under deterministic delay models,
// where the two coincide exactly (TestShardedMatchesSequential).
//
// Restrictions, validated at NewSharded: the channel must be stateless
// (FullMesh or LossyLinks; Ether's contention bookkeeping is inherently
// sequential), no adversary (its omniscient PendingDeliveries view and
// retime hooks observe a global order), no timeline (its actions mutate
// global routing/delay state mid-window), and δ−ε must be positive — with
// zero lookahead no window can make progress. Observers are supported at
// window-barrier resolution via ShardedEngine.Observe: Sampler and
// AnnotationSink observers fire single-threaded at every window cut in a
// deterministic merged order; per-delivery observers are rejected (inside a
// window, deliveries on different shards have no global order).

// maxShardProcs caps the sharded system size. A packed sequence key splits
// 63 bits (bit 63 is the calendar's TIMER flag) as
// from(b) | sendIndex(63−2b) | to(b) with b = ⌈log₂ n⌉, so at the cap
// (2¹⁷ processes) 29 bits of per-sender send index remain — far beyond any
// step-bounded execution.
const maxShardProcs = 1 << 17

// packSeq builds the deterministic sequence key of one message copy. Key
// order refines (sender, send index, recipient) — a total order on copies
// that depends only on the execution's causal structure, never on the shard
// count or the interleaving of windows. The bit split is sized to the
// system at NewSharded (seqToBits/seqFromShift); a send index outgrowing
// its field would silently corrupt the order, so it panics instead.
func (e *Engine) packSeq(from ProcID, sidx uint64, to ProcID) uint64 {
	if sidx > e.sidxMax {
		panic(fmt.Sprintf("sim: sender %d send index %d overflows the packed sequence key (n=%d leaves %d index bits)",
			from, sidx, len(e.procs), 63-2*int(e.seqToBits)))
	}
	return uint64(from)<<e.seqFromShift | sidx<<e.seqToBits | uint64(to)
}

// ShardStats counts the synchronization work of a sharded run.
type ShardStats struct {
	// Windows is how many lookahead windows have executed.
	Windows int
	// Barriers is how many full stop-the-world barriers ran (runner.Map
	// worker-set spawns, one per maximal batch of windows).
	Barriers int
	// BatchedWindows is how many windows completed inside a batch — after a
	// window in which no shard produced cross-shard traffic, so the next
	// window started on the in-place barrier without a worker-set respawn.
	// Windows = Barriers + BatchedWindows.
	BatchedWindows int
}

// ShardedEngine runs one system configuration partitioned across several
// shard engines with conservative time-window synchronization. Build with
// NewSharded, drive with Run; per-window sampling hooks in via OnWindow or
// Observe.
type ShardedEngine struct {
	// OnWindow, when non-nil, is called single-threaded after every window
	// with the window's cut time: all events strictly before cut have been
	// delivered and no others, so clock/correction reads at cut are
	// well-defined.
	OnWindow func(se *ShardedEngine, cut clock.Real)

	shards    []*Engine
	owner     []int32 // process → shard index
	lookahead float64 // L = δ−ε
	workers   int
	now       clock.Real
	maxSteps  int
	stats     ShardStats

	samplers   []Sampler
	annotSinks []AnnotationSink
	annotMerge []Annotation // reused window-merge scratch
}

// NewSharded validates the configuration for sharded execution and builds
// one shard engine per partition, with processes assigned to shards in
// contiguous blocks. All shard engines share the configuration's process,
// clock and fault slices read-only.
func NewSharded(cfg Config, shards int) (*ShardedEngine, error) {
	n := len(cfg.Procs)
	if shards < 1 {
		return nil, fmt.Errorf("sim: %d shards", shards)
	}
	if shards > n {
		return nil, fmt.Errorf("sim: %d shards for %d processes", shards, n)
	}
	if n > maxShardProcs {
		return nil, fmt.Errorf("sim: %d processes exceeds the sharded-mode cap %d (packed sequence keys)", n, maxShardProcs)
	}
	if cfg.Adversary != nil {
		return nil, errors.New("sim: sharded execution does not support an adversary (its omniscient view requires the sequential engine)")
	}
	if len(cfg.Timeline) > 0 {
		return nil, errors.New("sim: sharded execution does not support a timeline (actions mutate global routing/delay state mid-window)")
	}
	switch cfg.Channel.(type) {
	case nil, FullMesh, LossyLinks:
	default:
		return nil, fmt.Errorf("sim: sharded execution requires a stateless channel, got %T", cfg.Channel)
	}
	if cfg.Delay == nil {
		return nil, errors.New("sim: nil delay model")
	}
	d, eps := cfg.Delay.Bounds()
	lookahead := d - eps
	if !(lookahead > 0) {
		return nil, fmt.Errorf("sim: sharded execution needs positive lookahead δ−ε, got δ=%v ε=%v", d, eps)
	}

	owner := make([]int32, n)
	per := (n + shards - 1) / shards
	for i := range owner {
		owner[i] = int32(i / per)
	}
	shardProcs := make([]int32, shards)
	for _, o := range owner {
		shardProcs[o]++
	}
	procBits := bits.Len(uint(n - 1))
	if procBits < 1 {
		procBits = 1
	}
	se := &ShardedEngine{
		owner:     owner,
		lookahead: lookahead,
		workers:   shards,
		maxSteps:  cfg.MaxSteps,
	}
	if se.maxSteps <= 0 {
		se.maxSteps = defaultMaxSteps
	}
	for s := 0; s < shards; s++ {
		local := make([]bool, n)
		nLocal := 0
		for i := range local {
			if owner[i] == int32(s) {
				local[i] = true
				nLocal++
			}
		}
		scfg := cfg
		if scfg.EventHint > 0 {
			// A caller-supplied hint describes the whole system; this engine
			// only ever buffers its own processes' share — roughly hint/k —
			// plus up to one lazy head per in-flight fan-out. Passing the
			// whole-system figure through would oversize every shard's
			// calendar k-fold (TestShardedEventHintScaling pins this).
			scfg.EventHint = cfg.EventHint/shards + n + 2*(n/shards) + 16
		} else {
			// Per-shard population: every in-flight fan-out contributes at
			// most one head here (lazy), or its local copies (eager), plus
			// the shard's own timers.
			if cfg.Broadcast.Resolve(n) == BroadcastLazy {
				scfg.EventHint = 2*n + 2*nLocal + 16
			} else {
				scfg.EventHint = n*nLocal + 2*nLocal + 8
			}
		}
		eng, err := newEngine(scfg, &shardSetup{
			local: local, owner: owner, shards: shards,
			shardProcs: shardProcs, procBits: procBits,
		})
		if err != nil {
			return nil, err
		}
		se.shards = append(se.shards, eng)
	}
	return se, nil
}

// Observe registers an observer at window-barrier resolution, classifying
// it once by capability. Must be called before Run. Samplers fire once per
// window at the cut time; annotations emitted inside a window are buffered
// per shard and dispatched at the cut in a deterministic merged order
// (sorted by (At, Proc); per-process emission order preserved) — identical
// for every shard count. Per-delivery observers are rejected: inside a
// window, deliveries on different shards have no global order to replay.
func (se *ShardedEngine) Observe(o Observer) error {
	if _, ok := o.(DeliveryObserver); ok {
		return fmt.Errorf("sim: sharded execution cannot run per-delivery observer %T (deliveries inside a window have no deterministic global order; use Sampler/AnnotationSink observers or OnWindow, sampled at window barriers)", o)
	}
	matched := false
	if s, ok := o.(Sampler); ok {
		se.samplers = append(se.samplers, s)
		matched = true
	}
	if a, ok := o.(AnnotationSink); ok {
		se.annotSinks = append(se.annotSinks, a)
		for _, e := range se.shards {
			e.annotCapture = true
		}
		matched = true
	}
	if !matched {
		return fmt.Errorf("sim: Observe(%T): type implements neither Sampler nor AnnotationSink", o)
	}
	return nil
}

// Shards returns the number of shard engines.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard engine i (tests and metrics; treat as read-only).
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// N returns the number of processes.
func (se *ShardedEngine) N() int { return len(se.owner) }

// Now returns the current window cut: all events strictly before it have
// been delivered.
func (se *ShardedEngine) Now() clock.Real { return se.now }

// Windows returns how many synchronization windows have run.
func (se *ShardedEngine) Windows() int { return se.stats.Windows }

// Stats returns the synchronization counters of the run so far.
func (se *ShardedEngine) Stats() ShardStats { return se.stats }

// Steps returns the total number of delivered messages across all shards.
func (se *ShardedEngine) Steps() int {
	t := 0
	for _, e := range se.shards {
		t += e.steps
	}
	return t
}

// MessagesSent returns the total ordinary message copies scheduled.
func (se *ShardedEngine) MessagesSent() int64 {
	var t int64
	for _, e := range se.shards {
		t += e.msgsSent
	}
	return t
}

// MessagesLost returns the total copies dropped by the channel.
func (se *ShardedEngine) MessagesLost() int64 {
	var t int64
	for _, e := range se.shards {
		t += e.msgsLost
	}
	return t
}

// TimersLapsed returns the total set-timer calls that named a past time.
func (se *ShardedEngine) TimersLapsed() int64 {
	var t int64
	for _, e := range se.shards {
		t += e.timersLapsed
	}
	return t
}

// QueuePeak returns the largest per-shard queue population high-water mark.
func (se *ShardedEngine) QueuePeak() int {
	p := 0
	for _, e := range se.shards {
		if q := e.QueuePeak(); q > p {
			p = q
		}
	}
	return p
}

// LocalTimeSpread returns the min/max nonfaulty local time at t (all shard
// engines hold the full clock and correction arrays; reads are safe at
// window barriers, where OnWindow and the observers fire).
func (se *ShardedEngine) LocalTimeSpread(t clock.Real) (lo, hi clock.Local, count int) {
	return se.shards[0].LocalTimeSpread(t)
}

// minPending returns the earliest pending event time across all shards.
func (se *ShardedEngine) minPending() (clock.Real, bool) {
	var m clock.Real
	any := false
	for _, e := range se.shards {
		if at, ok := e.queue.peekTime(); ok && (!any || at < m) {
			m = at
			any = true
		}
	}
	return m, any
}

// pendNext is one shard's earliest pending event time after a window drain.
type pendNext struct {
	at clock.Real
	ok bool
}

// shardBatch is the shared state of one runner.Map invocation: a maximal
// run of consecutive windows executed on one worker set. Between windows,
// shards synchronize on an in-place barrier — each arrives by incrementing
// a counter, the last arriver becomes the coordinator (it finishes the
// window single-threaded, decides whether the batch continues, and releases
// the rest by closing the release channel). All cross-shard reads are
// ordered by the arrival counter (atomic Add observed by the coordinator's
// Add) on the way in and by the channel close on the way out.
type shardBatch struct {
	se    *ShardedEngine
	until clock.Real

	hi      clock.Real    // current window's exclusive drain bound
	release chan struct{} // closed by the coordinator to end the wait
	stop    bool          // set before the final release: batch over
	errs    []error       // per-shard window errors
	next    []pendNext    // per-shard earliest pending time after the drain
	arrived atomic.Int32
	outSeen atomic.Bool // a shard produced cross-shard traffic this window
	bailed  atomic.Bool // a shard panicked and force-released the barrier
}

// runShard is one shard's batch loop: drain the window, publish next-pending
// and traffic flags, arrive, coordinate if last, wait for release. It never
// returns before the coordinator ends the batch — a shard returning early
// would strand its siblings at the barrier — so panics from process code or
// window callbacks are converted to errors here, and the first panicking
// shard force-releases the barrier exactly once.
func (b *shardBatch) runShard(i int) (err error) {
	e := b.se.shards[i]
	var rel chan struct{}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sim: shard %d panicked: %v\n%s", i, p, debug.Stack())
			if b.bailed.CompareAndSwap(false, true) {
				b.stop = true
				close(rel)
			}
		}
	}()
	for {
		// Read the release channel before arriving: once the last shard
		// arrives it may coordinate, swap in the next window's channel and
		// close this one, so a later read would race the swap.
		rel = b.release
		if b.stop {
			return b.errs[i]
		}
		if _, werr := e.runWindow(b.hi, b.until); werr != nil {
			b.errs[i] = werr
		}
		if len(e.outbox) > 0 {
			b.outSeen.Store(true)
		} else {
			for d := range e.outChunks {
				if len(e.outChunks[d]) > 0 {
					b.outSeen.Store(true)
					break
				}
			}
		}
		at, ok := e.queue.peekTime()
		b.next[i] = pendNext{at: at, ok: ok}
		if int(b.arrived.Add(1)) == len(b.se.shards) {
			b.coordinate(rel)
		}
		<-rel
	}
}

// coordinate runs on the last-arriving shard, with every other shard parked
// at the barrier (their pre-arrival writes are visible through the arrival
// counter). It ends the batch — leaving the just-drained window for Run to
// exchange and finish — when a shard errored, when cross-shard traffic
// needs a real exchange, or when no next window fits before the horizon or
// the step limit. Otherwise the exchange is a no-op, so it finishes the
// window in place and opens the next one.
func (b *shardBatch) coordinate(rel chan struct{}) {
	se := b.se
	for _, err := range b.errs {
		if err != nil {
			b.stop = true
			close(rel)
			return
		}
	}
	if b.outSeen.Load() {
		b.stop = true
		close(rel)
		return
	}
	var m clock.Real
	any := false
	for _, p := range b.next {
		if p.ok && (!any || p.at < m) {
			m = p.at
			any = true
		}
	}
	if !any || m > b.until || se.Steps() >= se.maxSteps {
		b.stop = true
		close(rel)
		return
	}
	se.finishWindow(b.hi, b.until)
	se.stats.BatchedWindows++
	b.hi = m + clock.Real(se.lookahead)
	b.outSeen.Store(false)
	b.arrived.Store(0)
	b.release = make(chan struct{})
	close(rel)
}

// finishWindow completes one drained (and, if needed, exchanged) window:
// advance the cut, dispatch the buffered annotations in merged order, fire
// the window samplers, then the OnWindow hook. Single-threaded — called by
// Run behind the batch join, or by the coordinator while every other shard
// is parked at the barrier.
func (se *ShardedEngine) finishWindow(hi, until clock.Real) {
	cut := hi
	if until < cut {
		cut = until
	}
	se.stats.Windows++
	se.now = cut
	se.dispatchAnnotations()
	if len(se.samplers) > 0 {
		// Shard 0's engine carries the full clock/correction view and its
		// now equals the cut, so samplers read it exactly as they would the
		// sequential engine at a sample point.
		e0 := se.shards[0]
		for _, s := range se.samplers {
			s.Sample(e0, false)
		}
	}
	if se.OnWindow != nil {
		se.OnWindow(se, cut)
	}
}

// dispatchAnnotations merges the shards' buffered annotations and replays
// them to the registered sinks in (At, Proc) order — deterministic for
// every shard count: each process lives on exactly one shard and its buffer
// is in emission order, which the stable sort preserves within equal keys.
func (se *ShardedEngine) dispatchAnnotations() {
	if len(se.annotSinks) == 0 {
		return
	}
	buf := se.annotMerge[:0]
	for _, e := range se.shards {
		buf = append(buf, e.annotBuf...)
		e.annotBuf = e.annotBuf[:0]
	}
	se.annotMerge = buf[:0]
	if len(buf) == 0 {
		return
	}
	slices.SortStableFunc(buf, func(a, b Annotation) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		return int(a.Proc) - int(b.Proc)
	})
	e0 := se.shards[0]
	for i := range buf {
		for _, s := range se.annotSinks {
			s.OnAnnotation(e0, buf[i])
		}
		buf[i] = Annotation{}
	}
}

// Run executes windows until no shard holds an event at or before until, or
// the step limit is hit. Like Engine.Run it may be called repeatedly with
// increasing horizons; OnWindow and the observers fire once per window.
func (se *ShardedEngine) Run(until clock.Real) error {
	k := len(se.shards)
	b := &shardBatch{
		se:    se,
		until: until,
		errs:  make([]error, k),
		next:  make([]pendNext, k),
	}
	for {
		m, any := se.minPending()
		if !any || m > until {
			if se.now < until {
				se.now = until
			}
			return nil
		}
		if se.Steps() >= se.maxSteps {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", se.maxSteps, se.now)
		}
		b.hi = m + clock.Real(se.lookahead)
		b.stop = false
		b.outSeen.Store(false)
		b.bailed.Store(false)
		b.arrived.Store(0)
		b.release = make(chan struct{})
		for i := range b.errs {
			b.errs[i] = nil
		}
		se.stats.Barriers++
		if _, err := runner.Map(se.workers, k, func(i int) (struct{}, error) {
			return struct{}{}, b.runShard(i)
		}); err != nil {
			return err
		}
		if err := se.exchange(b.hi); err != nil {
			return err
		}
		se.finishWindow(b.hi, until)
	}
}

// exchange moves the window's cross-shard traffic — eager/unicast events
// and lazy broadcast chunks — into the destination shards' queues.
// Single-threaded; runs once per batch, for the window that produced the
// traffic (batched windows produced none, so their exchange is skipped).
func (se *ShardedEngine) exchange(hi clock.Real) error {
	for _, src := range se.shards {
		for i := range src.outbox {
			ev := &src.outbox[i]
			if ev.msg.DeliverAt < hi {
				return fmt.Errorf("sim: delay model violated its declared lower bound: copy %d→%d delivers at %v inside the window ending %v",
					ev.msg.From, ev.msg.To, ev.msg.DeliverAt, hi)
			}
			se.shards[se.owner[ev.msg.To]].queue.push(ev)
			ev.msg = Message{} // release the payload reference
		}
		src.outbox = src.outbox[:0]
		for d := range src.outChunks {
			dst := se.shards[d]
			for i := range src.outChunks[d] {
				ch := &src.outChunks[d][i]
				if len(ch.copies) > 0 && clock.Real(ch.copies[0].at) < hi {
					return fmt.Errorf("sim: delay model violated its declared lower bound: broadcast copy from %d delivers at %v inside the window ending %v",
						ch.from, ch.copies[0].at, hi)
				}
				dst.queue.adoptBroadcast(ch)
				// Ownership of the copies slice moved to dst's record store
				// (it returns to dst's copy pool on exhaustion); the chunk
				// struct itself is reused in place next window.
				ch.copies = nil
				ch.payload = nil
			}
			src.outChunks[d] = src.outChunks[d][:0]
		}
	}
	return nil
}

// runWindow drains one shard's events in [current, hi) ∩ (-∞, until],
// producing cross-shard traffic into the engine's outbox/outChunks. It is
// the only engine code that runs concurrently: each shard touches its own
// queue and its own processes' state; clocks and remote corrections are
// read-only here.
func (e *Engine) runWindow(hi, until clock.Real) (int, error) {
	var m Message
	steps := 0
	for {
		at, ok := e.queue.peekTime()
		if !ok || at >= hi || at > until {
			adv := hi
			if until < adv {
				adv = until
			}
			if e.now < adv {
				e.now = adv
				e.spreadOK = false
			}
			return steps, nil
		}
		if e.steps >= e.maxSteps {
			return steps, fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxSteps, e.now)
		}
		e.queue.popMsg(&m)
		e.now = m.DeliverAt
		e.spreadOK = false
		e.steps++
		steps++
		e.ctx.pid = m.To
		e.procs[m.To].Receive(&e.ctx, m)
	}
}
