package sim

import "testing"

func TestRNGDeterministicPerSeed(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: same seed diverged: %x vs %x", i, x, y)
		}
	}
	c := NewRNG(43)
	if a := NewRNG(42); a.Uint64() == c.Uint64() {
		t.Error("different seeds produced the same first draw")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	var min, max float64 = 1, 0
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	// With 10k draws the extremes should come close to the interval ends;
	// this catches scaling bugs (e.g. dividing by 2⁶⁴ instead of 2⁵³).
	if min > 0.01 || max < 0.99 {
		t.Errorf("draws span [%v, %v]; expected nearly [0,1)", min, max)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d of 10 values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGInt63NonNegative(t *testing.T) {
	r := NewRNG(-5)
	for i := 0; i < 1000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 = %d", v)
		}
	}
}

func TestProcSeedSeparation(t *testing.T) {
	seen := make(map[int64]ProcID)
	for pid := ProcID(0); pid < 64; pid++ {
		s := procSeed(1, pid)
		if prev, dup := seen[s]; dup {
			t.Fatalf("procSeed(1, %d) == procSeed(1, %d)", pid, prev)
		}
		seen[s] = pid
	}
	if procSeed(1, 0) == procSeed(2, 0) {
		t.Error("different engine seeds gave process 0 the same stream")
	}
}
