package sim

import "repro/internal/clock"

// LossyLinks is a channel that permanently drops all traffic on a configured
// set of directed links — the link-failure model of [HSSD] (§10 of the
// paper: their algorithm "can tolerate any number of process and link
// failures as long as the nonfaulty processes can still communicate").
// Loopback never fails.
type LossyLinks struct {
	// Dead holds the failed directed links.
	Dead map[Link]bool
}

// Link is a directed process pair.
type Link struct {
	From, To ProcID
}

var _ Channel = LossyLinks{}

// NewLossyLinks builds a channel with the given failed directed links. Pass
// pairs as (from, to); use BreakBothWays for symmetric failures.
func NewLossyLinks(links ...Link) LossyLinks {
	dead := make(map[Link]bool, len(links))
	for _, l := range links {
		dead[l] = true
	}
	return LossyLinks{Dead: dead}
}

// BreakBothWays returns a channel with both directions of the (a, b) link
// failed in addition to the receiver's dead links. The receiver is left
// untouched: the dead-link set is cloned, not mutated, so a LossyLinks value
// can be used as a template for several fault patterns. (It used to write
// through the shared Dead map, silently breaking the links in every "copy".)
func (c LossyLinks) BreakBothWays(a, b ProcID) LossyLinks {
	dead := make(map[Link]bool, len(c.Dead)+2)
	for l := range c.Dead {
		dead[l] = true
	}
	dead[Link{From: a, To: b}] = true
	dead[Link{From: b, To: a}] = true
	return LossyLinks{Dead: dead}
}

// Route implements Channel; the delivery pipeline's RouteStage batches
// fan-outs over it, so the dead-link probe lives only here.
func (c LossyLinks) Route(from, to ProcID, sentAt clock.Real, baseDelay float64) (clock.Real, bool) {
	if from != to && c.Dead[Link{From: from, To: to}] {
		return 0, false
	}
	return sentAt + clock.Real(baseDelay), true
}
