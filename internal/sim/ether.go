package sim

import "repro/internal/clock"

// Ether models the §9.3 implementation substrate: an Ethernet-like datagram
// network. Broadcast is available but not reliable — each receiver has a
// bounded datagram buffer, and "if too many arrive at once, the old ones are
// overwritten". When all processes broadcast at (almost) the same instant,
// copies are lost in the traffic jam; staggering the broadcast times by p·σ
// (§9.3) avoids the loss.
//
// Concretely: a copy scheduled to arrive at real time a at receiver q is
// dropped if, counting arrivals at q within the window (a−Window, a], it
// would be the (Buffer+1)-th or later. This is the drop-new variant of the
// paper's overwrite-old buffer; DESIGN.md records the substitution — either
// variant loses exactly the colliding traffic, which is the phenomenon the
// experiment needs.
type Ether struct {
	// Window is the interval within which arrivals contend for buffer
	// slots (roughly the datagram service time times the buffer depth).
	Window clock.Real
	// Buffer is the number of datagrams a receiver can hold per window.
	Buffer int

	arrivals map[ProcID][]clock.Real
	dropped  int64
}

var _ Channel = (*Ether)(nil)

// NewEther builds an Ether channel with the given contention window and
// per-receiver buffer capacity.
func NewEther(window clock.Real, buffer int) *Ether {
	return &Ether{Window: window, Buffer: buffer, arrivals: make(map[ProcID][]clock.Real)}
}

// Route implements Channel.
func (e *Ether) Route(from, to ProcID, sentAt clock.Real, baseDelay float64) (clock.Real, bool) {
	at := sentAt + clock.Real(baseDelay)
	if from == to {
		// Loopback does not cross the wire; it never contends.
		return at, true
	}
	q := e.arrivals[to]
	// Drop bookkeeping older than the window to keep the slice short. The
	// slice is kept sorted, so this is a prefix scan.
	cutoff := at - e.Window
	i := 0
	for i < len(q) && q[i] <= cutoff {
		i++
	}
	q = q[i:]
	// Count arrivals contending with this one: the drop-new rule looks only
	// at datagrams already in the buffer when this one lands, i.e. arrivals
	// within (at−Window, at]. Copies scheduled to arrive *after* at must not
	// evict it — they are not in the buffer yet. (An earlier version counted
	// the double-sided window (at−Window, at+Window], so a copy routed first
	// but arriving later could push out the current one; with out-of-order
	// routing that over-dropped the §9.3 broadcast storms.)
	contending := 0
	for _, a := range q {
		if a > cutoff && a <= at {
			contending++
		}
	}
	if contending >= e.Buffer {
		e.dropped++
		e.arrivals[to] = q
		return 0, false
	}
	// Insert at its sorted position by shifting the (short) tail: arrivals
	// land almost in order, so this replaces the sort.Slice the old code ran
	// per delivered copy — which allocated for the closure and re-sorted the
	// whole window every time.
	q = append(q, at)
	for j := len(q) - 1; j > 0 && q[j-1] > q[j]; j-- {
		q[j-1], q[j] = q[j], q[j-1]
	}
	e.arrivals[to] = q
	return at, true
}

// Dropped returns the number of copies lost to buffer contention.
func (e *Ether) Dropped() int64 { return e.dropped }
