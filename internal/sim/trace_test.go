package sim

import (
	"strings"
	"testing"

	"repro/internal/clock"
)

// traceActor broadcasts a payload and annotates on START.
type traceActor struct{}

func (traceActor) Receive(ctx *Context, m Message) {
	if m.Kind != KindStart {
		return
	}
	ctx.Broadcast("ping")
	ctx.Annotate("mark", 1)
	ctx.SetTimer(ctx.PhysNow()+1, nil)
}

func traceEngine(t *testing.T, tr *Tracer) *Engine {
	t.Helper()
	n := 2
	procs := []Process{traceActor{}, traceActor{}}
	e, err := New(Config{
		Procs:   procs,
		Clocks:  []clock.Clock{clock.Linear(0, 1), clock.Linear(0, 1)},
		StartAt: []clock.Real{0, 0},
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	e.Observe(tr)
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTracerRecordsEverything(t *testing.T) {
	tr := NewTracer(0)
	traceEngine(t, tr)
	// 2 STARTs, 4 ordinary deliveries (each broadcast reaches both),
	// 2 timers, 2 annotations = 10 events.
	if got := len(tr.Events()); got != 10 {
		t.Fatalf("recorded %d events, want 10", got)
	}
	var starts, ord, timers, annots int
	for _, ev := range tr.Events() {
		switch {
		case ev.IsAnnot:
			annots++
		case ev.Kind == KindStart:
			starts++
		case ev.Kind == KindOrdinary:
			ord++
		case ev.Kind == KindTimer:
			timers++
		}
	}
	if starts != 2 || ord != 4 || timers != 2 || annots != 2 {
		t.Errorf("event mix starts=%d ord=%d timers=%d annots=%d", starts, ord, timers, annots)
	}
	if tr.Truncated() {
		t.Error("unexpected truncation")
	}
}

func TestTracerOnlyFilter(t *testing.T) {
	tr := NewTracer(0)
	tr.FilterTo(1)
	traceEngine(t, tr)
	for _, ev := range tr.Events() {
		if ev.Proc != 1 {
			t.Fatalf("filtered trace contains event for p%d", ev.Proc)
		}
	}
	if len(tr.Events()) == 0 {
		t.Error("filter recorded nothing")
	}
}

// TestTracerZeroValueTracesAll is the regression test for the zero-value
// footgun: a Tracer{} literal used to trace only process 0, because the
// filter's zero value was a valid ProcID.
func TestTracerZeroValueTracesAll(t *testing.T) {
	tr := &Tracer{}
	traceEngine(t, tr)
	seen := map[ProcID]bool{}
	for _, ev := range tr.Events() {
		seen[ev.Proc] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("Tracer{} zero value should trace every process, saw %v", seen)
	}
	// FilterTo(0) must still be able to select process 0 specifically,
	// and Unfiltered must restore the trace-everything default.
	tr2 := &Tracer{}
	tr2.FilterTo(0)
	traceEngine(t, tr2)
	for _, ev := range tr2.Events() {
		if ev.Proc != 0 {
			t.Fatalf("FilterTo(0) trace contains event for p%d", ev.Proc)
		}
	}
	if len(tr2.Events()) == 0 {
		t.Error("FilterTo(0) recorded nothing")
	}
	tr2.Unfiltered()
	if tr2.skip(1) {
		t.Error("Unfiltered should restore the all-processes default")
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(3)
	traceEngine(t, tr)
	if len(tr.Events()) != 3 {
		t.Fatalf("limit ignored: %d events", len(tr.Events()))
	}
	if !tr.Truncated() {
		t.Error("truncation not reported")
	}
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "truncated") {
		t.Error("rendered trace missing truncation notice")
	}
}

func TestTracerRendering(t *testing.T) {
	tr := NewTracer(0)
	traceEngine(t, tr)
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"START", "ORDINARY", "TIMER", "# mark=1", "← p0", "ping"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 10 {
		t.Errorf("trace has %d lines, want 10", lines)
	}
}
