package sim

import (
	"math"
	"testing"

	"repro/internal/clock"
)

// chatter is a minimal traffic generator: on START and every TIMER it
// broadcasts, unicasts to its right neighbor, and re-arms its timer.
type chatter struct{ period clock.Local }

func (c *chatter) Receive(ctx *Context, m Message) {
	if m.Kind == KindOrdinary {
		return
	}
	ctx.Broadcast("b")
	ctx.Send(ProcID((int(ctx.ID())+1)%ctx.N()), "u")
	ctx.SetTimer(ctx.PhysNow()+c.period, nil)
}

func chatterEngine(t *testing.T, n int, adv Adversary, delay DelayModel, ch Channel) *Engine {
	t.Helper()
	procs := make([]Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	drift := clock.ConstantDrift{RhoBound: 1e-5}
	for i := range procs {
		procs[i] = &chatter{period: 1e-3}
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 1e-4
	}
	eng, err := New(Config{
		Procs:     procs,
		Clocks:    clocks,
		StartAt:   starts,
		Delay:     delay,
		Channel:   ch,
		Seed:      7,
		Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// wildRetimer returns a rotating sequence of pathological desired delays —
// NaN, ±Inf, far outside the envelope — exercising the clamp on every copy.
type wildRetimer struct {
	vals []float64
	i    int
	n    int
}

func (w *wildRetimer) Retime(_ *AdversaryView, _, _ ProcID, _ clock.Real, base float64) float64 {
	v := w.vals[w.i%len(w.vals)]
	w.i++
	w.n++
	return v
}

// envelopeCheck asserts every ordinary delivery lies within [δ−ε, δ+ε] of
// its send time.
type envelopeCheck struct {
	t      *testing.T
	lo, hi float64
	seen   int
}

func (c *envelopeCheck) OnDeliver(_ *Engine, m Message) {
	if m.Kind != KindOrdinary {
		return
	}
	c.seen++
	d := float64(m.DeliverAt - m.SentAt)
	if d < c.lo-1e-12 || d > c.hi+1e-12 {
		c.t.Errorf("delivery outside envelope: delay %v not in [%v, %v]", d, c.lo, c.hi)
	}
}

// TestAdversaryClampContract checks the clamp directly: NaN falls back to
// the sampled delay, everything else is forced into [δ−ε, δ+ε].
func TestAdversaryClampContract(t *testing.T) {
	eng := chatterEngine(t, 4, &wildRetimer{vals: []float64{0}}, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	ctl := eng.Adversary()
	if ctl == nil {
		t.Fatal("no controller installed")
	}
	// Runtime subtraction, matching the controller's own arithmetic (the
	// compile-time constant 4e-4−1e-4 folds exactly and differs by 1 ulp).
	d, e := 4e-4, 1e-4
	lo, hi := d-e, d+e
	cases := []struct {
		desired, sampled, want float64
	}{
		{math.NaN(), 4e-4, 4e-4},
		{math.Inf(1), 4e-4, hi},
		{math.Inf(-1), 4e-4, lo},
		{1e9, 4e-4, hi},
		{-1e9, 4e-4, lo},
		{4.2e-4, lo, 4.2e-4}, // inside the envelope: untouched
	}
	for _, c := range cases {
		if got := ctl.Clamp(c.desired, c.sampled); got != c.want {
			t.Errorf("Clamp(%v, %v) = %v, want %v", c.desired, c.sampled, got, c.want)
		}
	}
}

// TestAdversaryRetimeStaysInEnvelope drives a rotating set of pathological
// retimes (NaN, ±Inf, out-of-band) through a full run and asserts every
// ordinary delivery — broadcast fan-out and unicast alike — stays inside
// the declared [δ−ε, δ+ε] window.
func TestAdversaryRetimeStaysInEnvelope(t *testing.T) {
	adv := &wildRetimer{vals: []float64{math.NaN(), math.Inf(1), math.Inf(-1), 12.5, -3, 0, 4.4e-4}}
	eng := chatterEngine(t, 5, adv, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	check := &envelopeCheck{t: t, lo: 3e-4, hi: 5e-4}
	eng.Observe(check)
	if err := eng.Run(0.2); err != nil {
		t.Fatal(err)
	}
	if check.seen == 0 || adv.n == 0 {
		t.Fatalf("vacuous run: %d deliveries checked, %d retimes", check.seen, adv.n)
	}
	if adv.n < check.seen {
		t.Errorf("adversary saw %d copies but %d were delivered — some copies bypassed the pipeline", adv.n, check.seen)
	}
}

// hookRecorder counts hook dispatches and asserts the view is live.
type hookRecorder struct {
	sends, recvs int
	pendingMax   int
}

func (h *hookRecorder) Retime(v *AdversaryView, _, _ ProcID, _ clock.Real, base float64) float64 {
	n := 0
	v.PendingDeliveries(func(*Message) bool { n++; return true })
	if n > h.pendingMax {
		h.pendingMax = n
	}
	return base
}

func (h *hookRecorder) OnSend(v *AdversaryView, m Message) {
	if m.Kind != KindOrdinary {
		panic("OnSend announced a non-ordinary message")
	}
	h.sends++
}

func (h *hookRecorder) OnReceive(v *AdversaryView, m Message) {
	if m.Kind != KindOrdinary {
		panic("OnReceive announced a non-ordinary message")
	}
	h.recvs++
}

// TestAdversaryHooksSeeEveryCopy checks the hook contract on a reliable
// mesh: OnSend fires once per scheduled copy, OnReceive once per delivered
// ordinary message, and the pending-deliveries view sees buffered traffic.
func TestAdversaryHooksSeeEveryCopy(t *testing.T) {
	h := &hookRecorder{}
	eng := chatterEngine(t, 5, h, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	if err := eng.Run(0.1); err != nil {
		t.Fatal(err)
	}
	if int64(h.sends) != eng.MessagesSent() {
		t.Errorf("OnSend fired %d times for %d scheduled copies", h.sends, eng.MessagesSent())
	}
	if h.recvs == 0 || h.recvs > h.sends {
		t.Errorf("OnReceive fired %d times (sends %d)", h.recvs, h.sends)
	}
	if h.pendingMax == 0 {
		t.Error("PendingDeliveries never saw a buffered message")
	}
}

// passthrough returns the sampled delay unchanged: with it installed the
// pipeline must replay exactly the no-adversary execution.
type passthrough struct{}

func (passthrough) Retime(_ *AdversaryView, _, _ ProcID, _ clock.Real, base float64) float64 {
	return base
}

// deliverySeq records (time, from, to, kind) per delivery.
type deliverySeq struct {
	log [][4]float64
}

func (d *deliverySeq) OnDeliver(_ *Engine, m Message) {
	d.log = append(d.log, [4]float64{float64(m.DeliverAt), float64(m.From), float64(m.To), float64(m.Kind)})
}

// TestPassthroughAdversaryPreservesExecution runs the same workload bare
// and with a passthrough adversary installed on every channel type; the
// delivery sequences must be identical — the interceptor chain adds no
// behavior of its own.
func TestPassthroughAdversaryPreservesExecution(t *testing.T) {
	channels := map[string]func() Channel{
		"fullmesh": func() Channel { return nil },
		"ether":    func() Channel { return NewEther(2e-4, 3) },
		"lossy":    func() Channel { return NewLossyLinks(Link{From: 0, To: 2}, Link{From: 3, To: 1}) },
	}
	for name, mk := range channels {
		t.Run(name, func(t *testing.T) {
			run := func(adv Adversary) [][4]float64 {
				eng := chatterEngine(t, 5, adv, UniformDelay{Delta: 4e-4, Eps: 1e-4}, mk())
				seq := &deliverySeq{}
				eng.Observe(seq)
				if err := eng.Run(0.1); err != nil {
					t.Fatal(err)
				}
				return seq.log
			}
			bare, intercepted := run(nil), run(passthrough{})
			if len(bare) == 0 {
				t.Fatal("no deliveries recorded")
			}
			if len(bare) != len(intercepted) {
				t.Fatalf("delivery counts differ: %d bare vs %d with passthrough adversary", len(bare), len(intercepted))
			}
			for i := range bare {
				if bare[i] != intercepted[i] {
					t.Fatalf("delivery %d differs: bare %v vs intercepted %v", i, bare[i], intercepted[i])
				}
			}
		})
	}
}

// TestPipelineStageClassification checks the one-time capability
// classification: batch delay models and the full-mesh inline route are
// recognized, per-copy-only models fall back.
func TestPipelineStageClassification(t *testing.T) {
	eng := chatterEngine(t, 4, nil, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	p := eng.Pipeline()
	if p.Delay.batch == nil {
		t.Error("UniformDelay not classified as a batch delay model")
	}
	if !p.Route.mesh {
		t.Error("default channel not classified as the full-mesh inline route")
	}
	if p.Adversary.active() {
		t.Error("adversary stage active with no adversary configured")
	}
	if eng.Adversary() != nil {
		t.Error("controller built with no adversary configured")
	}

	eng2 := chatterEngine(t, 4, passthrough{}, CenterDelay{Delta: 4e-4, Eps: 1e-4}, NewEther(2e-4, 3))
	p2 := eng2.Pipeline()
	if p2.Route.mesh {
		t.Error("Ether channel classified as full mesh")
	}
	if !p2.Adversary.active() {
		t.Error("adversary stage inactive with an adversary configured")
	}
	if d, e := p2.Delay.Bounds(); d != 4e-4 || e != 1e-4 {
		t.Errorf("CenterDelay bounds (%v, %v), want (4e-4, 1e-4)", d, e)
	}
}

// TestCenterDelaySamplesCenter pins the E18 substrate: declared bounds keep
// the full ε band, every sample sits exactly at δ.
func TestCenterDelaySamplesCenter(t *testing.T) {
	d := CenterDelay{Delta: 10e-3, Eps: 1e-3}
	rng := NewRNG(1)
	if got := d.Sample(0, 1, 0, &rng); got != 10e-3 {
		t.Errorf("Sample = %v, want δ", got)
	}
	out := make([]float64, 5)
	d.SampleAll(0, 5, 0, &rng, out)
	for i, v := range out {
		if v != 10e-3 {
			t.Errorf("SampleAll[%d] = %v, want δ", i, v)
		}
	}
}
