package sim

import "repro/internal/clock"

// This file implements the delivery pipeline: every ordinary message copy —
// unicast or batched broadcast fan-out — flows through an ordered chain of
// typed stages before it is enqueued:
//
//	DelayStage      sample the copy's base delay from the workload's
//	                DelayModel (batched via SampleAll on the broadcast path)
//	AdversaryStage  give a registered adaptive adversary one clamped
//	                retiming pass (inactive — a nil-check — when no
//	                adversary is installed)
//	RouteStage      map the base delay to a delivery time, or drop the
//	                copy (FullMesh/Ether/LossyLinks loss and contention)
//
// The chain replaces the closed sample→route→enqueue sequence that used to
// live inline in Engine.send and Engine.Broadcast. Each stage is a concrete
// struct resolved once at engine construction (interface capabilities such
// as BatchDelayModel are classified at build time, not per event), so with
// no adversary installed the pipeline compiles down to exactly the old fast
// path: the same calls in the same order with one extra nil comparison per
// send — the steady state stays allocation-free and every existing
// execution replays byte-identically.
//
// The AdversaryStage is the refactor's point: it is the seam through which
// the lower-bound experiments retime deliveries inside the [δ−ε, δ+ε]
// uncertainty window (see adversary.go for the controller, the omniscient
// read view, and the clamp contract).

// DelayStage samples per-copy base delays. It wraps the workload's
// DelayModel, with the batched SampleAll fast path classified once at
// construction (nil batch means the broadcast path falls back to per-copy
// Sample calls — same rng draws, same order).
type DelayStage struct {
	model DelayModel
	batch BatchDelayModel
}

// newDelayStage classifies the model's capabilities once.
func newDelayStage(model DelayModel) DelayStage {
	s := DelayStage{model: model}
	if b, ok := model.(BatchDelayModel); ok {
		s.batch = b
	}
	return s
}

// Model returns the wrapped delay model.
func (s *DelayStage) Model() DelayModel { return s.model }

// Bounds returns the model's (δ, ε).
func (s *DelayStage) Bounds() (delta, eps float64) { return s.model.Bounds() }

// sample draws one copy's base delay.
func (s *DelayStage) sample(from, to ProcID, at clock.Real, rng *RNG) float64 {
	return s.model.Sample(from, to, at, rng)
}

// sampleAll fills out[q] with the delay of the copy to process q, drawing
// exactly the stream n per-copy sample calls would.
func (s *DelayStage) sampleAll(from ProcID, n int, at clock.Real, rng *RNG, out []float64) {
	if s.batch != nil {
		s.batch.SampleAll(from, n, at, rng, out)
		return
	}
	for q := 0; q < n; q++ {
		out[q] = s.model.Sample(from, ProcID(q), at, rng)
	}
}

// RouteStage maps base delays to delivery times (or losses). It wraps the
// workload's Channel and owns the one batched fan-out loop: the per-channel
// RouteAll implementations that used to be copy-pasted across FullMesh,
// Ether and LossyLinks are gone — lossy/collision logic lives only in each
// channel's Route, and this stage loops it. The reliable full mesh keeps a
// dispatch-free inline path (classified once at construction) because it is
// the no-channel default every benchmark regime runs through.
type RouteStage struct {
	channel Channel
	mesh    bool // channel is the reliable FullMesh: route inline
}

// newRouteStage classifies the channel once.
func newRouteStage(ch Channel) RouteStage {
	_, mesh := ch.(FullMesh)
	return RouteStage{channel: ch, mesh: mesh}
}

// Channel returns the wrapped channel.
func (s *RouteStage) Channel() Channel { return s.channel }

// route maps one copy's base delay to a delivery time, or reports it lost.
func (s *RouteStage) route(from, to ProcID, sentAt clock.Real, base float64) (clock.Real, bool) {
	if s.mesh {
		return sentAt + clock.Real(base), true
	}
	return s.channel.Route(from, to, sentAt, base)
}

// routeAll routes the copy to every process q = 0..n−1 in pid order,
// evolving any channel state (e.g. Ether's per-receiver contention
// bookkeeping) exactly as n successive Route calls would.
func (s *RouteStage) routeAll(from ProcID, sentAt clock.Real, base []float64, at []clock.Real, ok []bool) {
	if s.mesh {
		for q := range base {
			at[q] = sentAt + clock.Real(base[q])
			ok[q] = true
		}
		return
	}
	for q := range base {
		at[q], ok[q] = s.channel.Route(from, ProcID(q), sentAt, base[q])
	}
}

// AdversaryStage is the optional interceptor between delay sampling and
// routing: when a controller is installed it offers the adversary one
// retiming pass per copy, clamped to the model's [δ−ε, δ+ε] envelope. The
// zero value (nil controller) is inactive and costs one nil comparison.
type AdversaryStage struct {
	ctl *AdversaryController
}

// active reports whether an adversary can retime deliveries.
func (s *AdversaryStage) active() bool { return s.ctl != nil }

// retime gives the adversary its clamped pass over one copy.
func (s *AdversaryStage) retime(from, to ProcID, sentAt clock.Real, base float64) float64 {
	return s.ctl.retime(from, to, sentAt, base)
}

// Pipeline is the ordered interceptor chain every ordinary message copy
// flows through: DelayStage → AdversaryStage → RouteStage. The engine owns
// one pipeline, assembled at New from the validated configuration.
type Pipeline struct {
	Delay     DelayStage
	Adversary AdversaryStage
	Route     RouteStage
}

// newPipeline assembles the chain. adv may be nil (the common case): the
// adversary stage then short-circuits to the legacy two-stage path.
func newPipeline(model DelayModel, ch Channel, ctl *AdversaryController) Pipeline {
	return Pipeline{
		Delay:     newDelayStage(model),
		Adversary: AdversaryStage{ctl: ctl},
		Route:     newRouteStage(ch),
	}
}

// unicast runs one copy through the full chain, returning its delivery time
// or reporting it lost.
func (p *Pipeline) unicast(from, to ProcID, sentAt clock.Real, rng *RNG) (clock.Real, bool) {
	base := p.Delay.sample(from, to, sentAt, rng)
	if p.Adversary.active() {
		base = p.Adversary.retime(from, to, sentAt, base)
	}
	return p.Route.route(from, to, sentAt, base)
}

// broadcast runs a full fan-out through the chain using the engine's
// reusable per-broadcast buffers: one batched delay-sampling pass, one
// (optional) adversary pass per copy, one routing pass.
func (p *Pipeline) broadcast(from ProcID, n int, sentAt clock.Real, rng *RNG, base []float64, at []clock.Real, ok []bool) {
	p.Delay.sampleAll(from, n, sentAt, rng, base)
	if p.Adversary.active() {
		for q := 0; q < n; q++ {
			base[q] = p.Adversary.retime(from, ProcID(q), sentAt, base[q])
		}
	}
	p.Route.routeAll(from, sentAt, base, at, ok)
}
