package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
)

// pinger broadcasts on START and then once per second of physical time.
type pinger struct{}

func (pinger) Receive(ctx *Context, m Message) {
	switch m.Kind {
	case KindStart, KindTimer:
		ctx.Broadcast("ping")
		ctx.SetTimer(ctx.PhysNow()+1, nil)
	}
}

// logObserver appends one line per delivered ordinary message to a shared log.
type logObserver struct{ log *[]string }

func (o logObserver) OnDeliver(e *Engine, m Message) {
	if m.Kind == KindOrdinary {
		*o.log = append(*o.log, fmt.Sprintf("deliver t=%.3f p%d←p%d", float64(m.DeliverAt), m.To, m.From))
	}
}

func pingConfig(n int, extra func(*Config)) Config {
	procs := make([]Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	for i := range procs {
		procs[i] = pinger{}
		clocks[i] = clock.Linear(0, 1)
	}
	cfg := Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   ConstantDelay{Delta: 0.01},
	}
	if extra != nil {
		extra(&cfg)
	}
	return cfg
}

// TestTimelineOrdering checks the interleaving contract: an action at time t
// runs after every delivery strictly before t and before any delivery at or
// after t — including exact ties — and actions due by the horizon fire even
// after the queue drains past them.
func TestTimelineOrdering(t *testing.T) {
	var log []string
	cfg := pingConfig(2, func(c *Config) {
		c.Timeline = []TimedAction{
			// Exactly ties the first broadcast's delivery time (0.01): the
			// action must be logged first.
			{At: 0.01, Name: "tie", Do: func(e *Engine) {
				log = append(log, fmt.Sprintf("action tie t=%.3f", float64(e.Now())))
			}},
			{At: 1.5, Name: "mid", Do: func(e *Engine) {
				log = append(log, fmt.Sprintf("action mid t=%.3f", float64(e.Now())))
			}},
		}
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(logObserver{&log})
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("empty log")
	}
	tieAt, midAt := -1, -1
	for i, line := range log {
		if strings.HasPrefix(line, "action tie") {
			tieAt = i
		}
		if strings.HasPrefix(line, "action mid") {
			midAt = i
		}
	}
	if tieAt == -1 || midAt == -1 {
		t.Fatalf("actions missing from log:\n%s", strings.Join(log, "\n"))
	}
	if tieAt != 0 {
		t.Errorf("tie action at index %d, want 0 (before the t=0.010 deliveries it ties):\n%s",
			tieAt, strings.Join(log, "\n"))
	}
	for i, line := range log {
		var at float64
		if _, err := fmt.Sscanf(line, "deliver t=%f", &at); err != nil {
			continue
		}
		if at < 1.5 && i > midAt {
			t.Errorf("delivery %q after the t=1.5 action", line)
		}
		if at >= 1.5 && i < midAt {
			t.Errorf("delivery %q before the t=1.5 action", line)
		}
	}
	if e.TimelineRemaining() != 0 {
		t.Errorf("%d actions unfired", e.TimelineRemaining())
	}
}

// TestTimelineFiresAfterQueueDrains: a silent system (no traffic at all)
// still fires actions due by the horizon, and actions past the horizon wait
// for a later Run call.
func TestTimelineFiresAfterQueueDrains(t *testing.T) {
	fired := []float64{}
	cfg := Config{
		Procs:   []Process{silentSink{}},
		Clocks:  []clock.Clock{clock.Linear(0, 1)},
		StartAt: []clock.Real{0},
		Delay:   ConstantDelay{Delta: 0.01},
		Timeline: []TimedAction{
			{At: 4, Name: "a", Do: func(e *Engine) { fired = append(fired, float64(e.Now())) }},
			{At: 10, Name: "b", Do: func(e *Engine) { fired = append(fired, float64(e.Now())) }},
		},
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 4 {
		t.Fatalf("after Run(5): fired=%v, want [4]", fired)
	}
	if e.TimelineRemaining() != 1 {
		t.Fatalf("remaining=%d, want 1", e.TimelineRemaining())
	}
	if e.Now() != 5 {
		t.Errorf("Now=%v, want horizon 5", e.Now())
	}
	if err := e.Run(12); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 10 {
		t.Fatalf("after Run(12): fired=%v, want [4 10]", fired)
	}
}

type silentSink struct{}

func (silentSink) Receive(*Context, Message) {}

// TestTimelineSetChannel partitions the 2-process system mid-run and heals
// it: copies sent while the cut is in force are lost, traffic before and
// after flows.
func TestTimelineSetChannel(t *testing.T) {
	cut := NewLossyLinks().BreakBothWays(0, 1)
	cfg := pingConfig(2, func(c *Config) {
		c.Timeline = []TimedAction{
			{At: 1.5, Name: "cut", Do: func(e *Engine) { e.SetChannel(cut) }},
			{At: 3.5, Name: "heal", Do: func(e *Engine) { e.SetChannel(nil) }},
		}
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	// Broadcast instants: 0, 1, 2, 3, 4, 5 (+10ms delivery offsets). The
	// cut covers the sends at t=2 and t=3: each loses the two cross copies.
	if e.MessagesLost() != 4 {
		t.Errorf("lost %d copies, want 4 (2 broadcasts × 2 cross links)", e.MessagesLost())
	}
	if e.MessagesSent() != 2*6*2-4 {
		t.Errorf("sent %d copies, want %d", e.MessagesSent(), 2*6*2-4)
	}
}

// TestTimelineSetDelayModel shifts the delay band mid-run; traffic sent after
// the shift arrives with the new latency. Copies already in flight keep
// their old delivery times.
func TestTimelineSetDelayModel(t *testing.T) {
	var log []string
	cfg := pingConfig(1, func(c *Config) {
		c.Timeline = []TimedAction{
			{At: 1.5, Name: "shift", Do: func(e *Engine) {
				if err := e.SetDelayModel(ConstantDelay{Delta: 0.2}); err != nil {
					t.Errorf("SetDelayModel: %v", err)
				}
			}},
		}
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(logObserver{&log})
	if err := e.Run(3); err != nil {
		t.Fatal(err)
	}
	// Self-broadcasts at t=0, 1 arrive +10ms; at t=2 (after the shift) +200ms.
	want := []string{
		"deliver t=0.010 p0←p0",
		"deliver t=1.010 p0←p0",
		"deliver t=2.200 p0←p0",
	}
	if got := strings.Join(log, "\n"); got != strings.Join(want, "\n") {
		t.Errorf("deliveries:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

// TestTimelineSetDelayModelRejectsA3 verifies the swap hook enforces the
// same A3 validation as New.
func TestTimelineSetDelayModelRejectsA3(t *testing.T) {
	e, err := New(pingConfig(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetDelayModel(UniformDelay{Delta: 0.01, Eps: 0.05}); err == nil {
		t.Error("ε > δ accepted")
	}
	if err := e.SetDelayModel(nil); err == nil {
		t.Error("nil model accepted")
	}
}

// TestTimelineSetAdversary installs and removes an adversary mid-run and
// checks the pipeline stage classification follows.
func TestTimelineSetAdversary(t *testing.T) {
	e, err := New(pingConfig(2, func(c *Config) {
		c.Delay = UniformDelay{Delta: 0.01, Eps: 0.002}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if e.Adversary() != nil {
		t.Fatal("adversary installed at New without configuration")
	}
	e.SetAdversary(maxDelayAdversary{})
	if e.Adversary() == nil {
		t.Fatal("SetAdversary did not install a controller")
	}
	if lo, hi := e.Adversary().lo, e.Adversary().hi; lo != 0.008 || hi != 0.012 {
		t.Errorf("clamp envelope [%v, %v], want [0.008, 0.012]", lo, hi)
	}
	// The envelope must follow a subsequent delay-band shift.
	if err := e.SetDelayModel(UniformDelay{Delta: 0.02, Eps: 0.001}); err != nil {
		t.Fatal(err)
	}
	if lo, hi := e.Adversary().lo, e.Adversary().hi; lo != 0.019 || hi != 0.021 {
		t.Errorf("clamp envelope [%v, %v] after shift, want [0.019, 0.021]", lo, hi)
	}
	e.SetAdversary(nil)
	if e.Adversary() != nil {
		t.Error("SetAdversary(nil) left a controller installed")
	}
	if err := e.Run(2); err != nil {
		t.Fatal(err)
	}
}

// maxDelayAdversary pins every copy to the top of the clamp envelope.
type maxDelayAdversary struct{}

func (maxDelayAdversary) Retime(*AdversaryView, ProcID, ProcID, clock.Real, float64) float64 {
	return 1e9
}

// TestTimelineNilDo: a timeline entry without a Do function is a
// configuration error, not a run-time panic.
func TestTimelineNilDo(t *testing.T) {
	_, err := New(pingConfig(1, func(c *Config) {
		c.Timeline = []TimedAction{{At: 1, Name: "broken"}}
	}))
	if err == nil {
		t.Error("nil Do accepted")
	}
}

// TestShardedRejectsTimeline: the sharded engine cannot honor mid-window
// mutations of global state.
func TestShardedRejectsTimeline(t *testing.T) {
	cfg := pingConfig(4, func(c *Config) {
		c.Timeline = []TimedAction{{At: 1, Name: "x", Do: func(*Engine) {}}}
	})
	if _, err := NewSharded(cfg, 2); err == nil {
		t.Error("sharded engine accepted a timeline")
	}
}

// TestTimelineNoopPreservesExecution: a timeline whose actions mutate
// nothing leaves the execution byte-identical to a run with no timeline.
func TestTimelineNoopPreservesExecution(t *testing.T) {
	run := func(withTimeline bool) string {
		tr := NewTracer(0)
		cfg := pingConfig(3, func(c *Config) {
			c.Delay = UniformDelay{Delta: 0.01, Eps: 0.002}
			c.Seed = 42
			if withTimeline {
				c.Timeline = []TimedAction{
					{At: 0.5, Name: "noop", Do: func(*Engine) {}},
					{At: 2.5, Name: "noop", Do: func(*Engine) {}},
				}
			}
		})
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Observe(tr)
		if err := e.Run(4); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if _, err := tr.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if plain, noop := run(false), run(true); plain != noop {
		t.Error("no-op timeline perturbed the execution")
	}
}
