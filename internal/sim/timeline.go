package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/clock"
)

// This file implements the engine's timeline stage: a script of mutations to
// apply to live engine state at scheduled real times. The timeline is what
// the scenario DSL (internal/scenario) compiles its event scripts onto —
// crash a process at t, heal a partition, shift the delay band, swap the
// adversary — without the scenario runner having to chop Engine.Run into
// segments or the event queue having to carry non-message entries.
//
// Actions fire on the engine's single event-loop goroutine, interleaved
// deterministically with deliveries: an action scheduled at real time t runs
// after every delivery strictly before t and before any delivery at or after
// t (ties go to the action — a state swap at t governs the traffic of t).
// Actions never consume queue slots, draw from the delay RNG, or perturb the
// (DeliverAt, seq) order, so an empty timeline leaves executions
// byte-identical and the steady state allocation-free.
//
// The swap hooks actions typically call — SetChannel, SetDelayModel,
// SetAdversary — re-run the same capability classification the pipeline
// stages perform at New, so a swapped-in channel or model gets its batch
// fast paths exactly as if it had been configured up front. Delivery times
// already fixed by the pipeline are untouched: a swap governs traffic sent
// after it, which is the §2.2 buffer semantics (a message's delivery time is
// decided when it enters the buffer).

// TimedAction is one scheduled mutation of engine state: at real time At,
// the engine invokes Do with itself. Name labels the action in errors and
// debugging output.
type TimedAction struct {
	At   clock.Real
	Name string
	Do   func(e *Engine)
}

// initTimeline installs the configured actions, sorted by time with the
// configuration order preserved among ties.
func (e *Engine) initTimeline(actions []TimedAction) error {
	if len(actions) == 0 {
		return nil
	}
	tl := make([]TimedAction, len(actions))
	copy(tl, actions)
	for i, a := range tl {
		if a.Do == nil {
			return fmt.Errorf("sim: timeline action %d (%q) has nil Do", i, a.Name)
		}
	}
	sort.SliceStable(tl, func(i, j int) bool { return tl[i].At < tl[j].At })
	e.timeline = tl
	return nil
}

// TimelineRemaining returns how many scheduled actions have not fired yet.
func (e *Engine) TimelineRemaining() int { return len(e.timeline) - e.tlIdx }

// fireTimeline runs every action due at or before bound (the next delivery
// time or the run horizon, whichever is earlier), advancing real time to
// each action's scheduled instant. Returns true if any action fired, in
// which case the caller must re-peek the queue: an action may have swapped
// state that pushes or reorders future traffic.
func (e *Engine) fireTimeline(bound clock.Real) bool {
	fired := false
	for e.tlIdx < len(e.timeline) && e.timeline[e.tlIdx].At <= bound {
		a := e.timeline[e.tlIdx]
		e.tlIdx++
		// An action scheduled before the current instant (e.g. before the
		// first START) fires immediately; time never moves backward.
		if a.At > e.now {
			e.now = a.At
		}
		e.spreadOK = false
		a.Do(e)
		e.spreadOK = false // the action may have changed corrections or clocks
		fired = true
	}
	return fired
}

// SetChannel swaps the delivery channel for all traffic sent from now on,
// re-classifying the route stage's capabilities (the FullMesh inline path)
// exactly as New does. Copies already in the buffer keep the delivery times
// the old channel assigned them. A nil channel restores the reliable full
// mesh.
func (e *Engine) SetChannel(ch Channel) {
	if ch == nil {
		ch = FullMesh{}
	}
	e.pipe.Route = newRouteStage(ch)
}

// SetDelayModel swaps the delay substrate for all traffic sent from now on,
// validating assumption A3 (0 ≤ ε ≤ δ) and re-classifying the delay stage's
// batch capability. When an adversary is installed, its clamp envelope
// follows the new band, so retiming stays A3-legal against the substrate
// actually in force. The swapped-in model sees the same RNG stream the old
// one was drawing from (scenario delay-band shifts stay deterministic).
func (e *Engine) SetDelayModel(m DelayModel) error {
	if m == nil {
		return errors.New("sim: SetDelayModel: nil delay model")
	}
	d, eps := m.Bounds()
	if d < eps || eps < 0 {
		return fmt.Errorf("sim: SetDelayModel: delay bounds δ=%v ε=%v violate assumption A3 (0 ≤ ε ≤ δ)", d, eps)
	}
	e.pipe.Delay = newDelayStage(m)
	if e.advCtl != nil {
		e.advCtl.lo, e.advCtl.hi = d-eps, d+eps
	}
	return nil
}

// SetAdversary installs, replaces, or (with nil) removes the delivery
// pipeline's adaptive adversary mid-run. The controller is rebuilt with the
// current delay model's clamp envelope and the adversary's hook capabilities
// classified exactly as New does; with nil the adversary stage reverts to
// the allocation-free fast path.
func (e *Engine) SetAdversary(adv Adversary) {
	if adv == nil {
		e.advCtl = nil
		e.pipe.Adversary = AdversaryStage{}
		return
	}
	d, eps := e.pipe.Delay.Bounds()
	e.advCtl = newAdversaryController(e, adv, d, eps)
	e.pipe.Adversary = AdversaryStage{ctl: e.advCtl}
}
