package sim

// RNG is the engine's allocation-free random stream: a splitmix64 generator
// (Steele, Lea & Flood; the same mixer the sweep runner's DeriveSeed uses for
// per-trial seeds). It replaces the math/rand.Rand the engine used to carry
// for delay sampling — a concrete value type the compiler can keep in
// registers, with no interface indirection per draw and no heap state beyond
// the engine itself.
//
// The stream is deterministic in the seed, so a fixed-seed run replays
// byte-identically regardless of worker count or host.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) RNG { return RNG{state: uint64(seed)} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1) with full 53-bit resolution.
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) * (1.0 / (1 << 53)) }

// Intn returns a uniform int in [0, n). It panics if n <= 0. (The modulo
// bias is below 2⁻⁵² for any n a simulation plausibly passes; delay models
// and fault strategies draw at most thousands of values per run.)
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche of all 64 bits.
// The same published constants appear in runner.DeriveSeed (kept separate so
// the generic worker pool does not import the simulator); procSeedTag above
// keeps the streams disjoint either way.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// procSeedTag domain-separates Context.Rand seeding from every other
// splitmix64 consumer: without it, procSeed(seed, pid) would be bit-for-bit
// the engine delay stream's (pid+1)-th Uint64 draw and identical to the
// sweep runner's DeriveSeed(seed, pid).
const procSeedTag = 0xd1b54a32d192ed03

// procSeed derives the per-process Context.Rand seed from the engine seed.
// Streams depend only on (seed, pid) — never on step counts or scheduling —
// so per-process randomness is reproducible and well separated across
// processes, the delay stream, and per-trial sweep seeds.
func procSeed(seed int64, pid ProcID) int64 {
	return int64(mix64((uint64(seed) ^ procSeedTag) + 0x9e3779b97f4a7c15*uint64(pid+1)))
}

// senderSeedTag domain-separates the sharded engine's per-sender delay
// streams from Context.Rand streams and every other splitmix64 consumer.
const senderSeedTag = 0x9e6c63d0876a9a47

// senderSeed derives the per-sender delay-sampling seed sharded executions
// use. Keying the stream on (seed, sender) — instead of the sequential
// engine's single interleaved stream — makes every sender's delay draws a
// function of its own send history only, so delays are independent of how
// processes are partitioned into shards and of window interleaving.
func senderSeed(seed int64, pid ProcID) int64 {
	return int64(mix64((uint64(seed) ^ senderSeedTag) + 0x9e3779b97f4a7c15*uint64(pid+1)))
}
