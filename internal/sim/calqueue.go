package sim

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"slices"

	"repro/internal/clock"
)

// This file implements the round-structured scheduler: a bucketed calendar
// queue for the near-future event cluster, spilling far-future events
// (timers, rejoin wake-ups) into a 4-ary overflow heap, behind a small
// hybrid front end (sched) that picks the structure automatically from the
// workload shape.
//
// Motivation: the Lundelius–Lynch algorithm is round-structured — every
// resynchronization round all n processes broadcast to all n peers, so n²
// near-simultaneous messages land inside one bounded-delay window
// [δ−ε, δ+ε]. A comparison heap pays O(log m) sift work (m ≈ n² in flight)
// per push and per pop in exactly that regime. A calendar queue keyed by
// delivery time makes both amortized O(1): a push appends to the bucket
// floor((t−start)/width) and a pop drains the current bucket in order,
// advancing bucket by bucket through the window.
//
// The calendar does not store the 64-byte Message values the comparison
// heap sifts around. Buffered messages live in a side slab, and the queue
// structures move 24-byte pointer-free entries — the full sort key plus a
// slab index — so bucket appends, sorts, and heap↔calendar migrations
// carry no GC write barriers, the garbage collector never scans bucket
// storage, and the cache footprint of a queue operation shrinks by ~3×.
// Payload-release hygiene concentrates in one place: the slab zeroes a slot
// the moment its message is taken.
//
// Ordering is bit-for-bit identical to the heap's. entryLess realizes the
// same total order (DeliverAt, non-TIMER first, seq) — the tie-break packs
// into a single uint64 with the TIMER flag above the sequence bits —
// buckets cover disjoint half-open time ranges, so concatenating per-bucket
// order gives the global order, and within a bucket entries are sorted by
// the same relation (total, since seq is unique, so sorting is
// deterministic). Every pop sequence, and therefore every golden experiment
// table, is independent of which scheduler ran it; the differential tests
// in queue_test.go and the FuzzBucketWidth target enforce this.

// Scheduler selects the event-queue implementation.
type Scheduler uint8

const (
	// SchedulerAuto (the default) starts on the 4-ary heap and switches to
	// the calendar queue when the number of buffered events crosses
	// calActivateLen — small systems never pay calendar overhead, large
	// broadcast storms never pay per-event sift work. A Config.EventHint
	// of at least calActivateLen activates the calendar eagerly, skipping
	// the migration.
	SchedulerAuto Scheduler = iota
	// SchedulerHeap forces the 4-ary heap of full event values (the
	// pre-calendar scheduler, byte-for-byte); benchmarks use it as the
	// baseline.
	SchedulerHeap
	// SchedulerCalendar forces the calendar queue from the first event.
	SchedulerCalendar
)

const (
	// calActivateLen is the buffered-event count at which SchedulerAuto
	// switches to the calendar: below it (n ≲ 22 full-mesh systems) heap
	// sift depth is short and cache-resident, above it the O(log m) work
	// and 64-byte event swaps dominate the queue cost.
	calActivateLen = 512
	// calMaxBuckets bounds the bucket array (memory: 24 B of slice header
	// plus one occupancy bit plus calArenaFill pre-carved entries per
	// bucket).
	calMaxBuckets = 32768
	// calTargetFill is the per-bucket population the width tuner steers
	// toward. The bucket count is sized for ~1–3 events per bucket over
	// the active part of a window (pop order inside a bucket needs a sort,
	// so near-singleton buckets make pops O(1)); the tuner shrinks the
	// width only when buckets run well past that.
	calTargetFill = 4
	// calArenaFill is the per-bucket capacity pre-carved out of the shared
	// arena allocation at activation; buckets busier than this grow
	// individually. Sized above the typical active-span fill so steady
	// windows allocate nothing.
	calArenaFill = 4
	// calNearFactor classifies a spilled event as "near future" when it
	// lies within this many declared delay windows of the current window
	// start. Near spills are traffic the window should have covered (they
	// drive the horizon signal of the width tuner); anything further —
	// next-round timers a full period away, rejoin wake-ups — belongs in
	// the overflow heap and must not stretch the window.
	calNearFactor = 16
	// calDenseFill is the average per-bucket fill above which a finished
	// window counts as message-dense, disqualifying its near spills from
	// raising the horizon floor (see sched.rotate). Sized a few multiples
	// above calTargetFill so ordinary round windows (which run overfull by
	// design once the floor is set) are classified dense, while timer-drain
	// windows (a handful of entries per bucket at most) stay sparse.
	calDenseFill = 4 * calTargetFill
	// calContLead, in declared delay windows, is how far past a window's
	// end a spill still counts as contiguous with the window's own traffic
	// for the horizon ratchet. Events pushed during a drain land at most
	// about one delay window past the drain position (a fan-out's delivery
	// lead), so a spill further out than span + calContLead·spanHint is a
	// separate future cluster across a dead gap — the rotation machinery
	// jumps to it and the overflow scan sizes its window; stretching the
	// current window across the gap only dilutes bucket resolution.
	calContLead = 2
	// calMinWidth floors the bucket width so degenerate tuning inputs
	// (ε = δ = 0, fuzzed NaN/Inf spans) cannot collapse the window to a
	// zero- or negative-width bucket.
	calMinWidth = 1e-12
)

// entryTimerBit flags TIMER messages in an entry key; it sits above the
// sequence bits so that at equal delivery times non-TIMER messages order
// first and insertion order breaks the remaining ties — exactly eventLess.
const entryTimerBit = uint64(1) << 63

// bcopy is one unmaterialized copy of a lazy broadcast: its delivery time,
// its recipient, and its tie-break rank. In counter-sequence mode the rank is
// the copy's offset from the record's base sequence number (the position the
// copy holds among the broadcast's delivered copies, in pid order — exactly
// the sequence number the eager path would have assigned); in deterministic-
// sequence mode (sharded execution) it is the recipient pid, which the
// packed key ORs into its low bits.
type bcopy struct {
	at   float64 // Message.DeliverAt
	pid  int32
	rank int32
}

// bcastRec is one logical broadcast whose copies have not all been delivered
// yet. The queue holds only the record's head — the earliest unmaterialized
// copy, in the record's (at, rank) order — and popping the head pushes the
// next one, so a broadcast contributes exactly one queue entry however many
// copies remain. Copies are fully determined at broadcast time (the delivery
// pipeline runs eagerly — see Engine.Broadcast), so materialization is pure
// Message assembly: no RNG draw, no channel state, no pipeline stage runs at
// pop time, which is what keeps lazy executions byte-identical to eager ones.
type bcastRec struct {
	copies  []bcopy
	next    int32 // copies[next:] are unmaterialized; copies[next] is the head
	det     bool  // deterministic (packed) sequence numbers: seq = seqBase | pid
	adopted bool  // copies came from a cross-shard chunk; return to the pool
	from    ProcID
	seqBase uint64
	sentAt  clock.Real
	payload any
}

// seqAt returns the sequence number of one copy (see bcopy on rank).
func (r *bcastRec) seqAt(c bcopy) uint64 {
	if r.det {
		return r.seqBase | uint64(c.rank)
	}
	return r.seqBase + uint64(c.rank)
}

// bcastChunk is the cross-shard transfer form of a lazy broadcast: the
// per-destination-shard slice of a fan-out, built by the sending shard at
// broadcast time and adopted into the destination's record store at the next
// window barrier. Copies are already sorted by (at, rank).
type bcastChunk struct {
	copies  []bcopy
	det     bool
	from    ProcID
	seqBase uint64
	sentAt  clock.Real
	payload any
}

// bcastStore holds the live broadcast records. Records are recycled through
// a free stack, and a recycled record keeps its copies capacity, so the
// steady state allocates nothing per broadcast.
type bcastStore struct {
	recs []bcastRec
	free []int32
}

func (st *bcastStore) alloc() int32 {
	if n := len(st.free); n > 0 {
		b := st.free[n-1]
		st.free = st.free[:n-1]
		return b
	}
	st.recs = append(st.recs, bcastRec{})
	return int32(len(st.recs) - 1)
}

// sortCopies orders a record's copies by (at, rank) — the projection of the
// queue's total order (DeliverAt, seq) onto one broadcast's copies, so
// head-chaining releases them in exactly the order the eager path would have
// popped them. The comparator is total (ranks are unique within a record),
// so the unstable sort is deterministic.
func sortCopies(cs []bcopy) {
	slices.SortFunc(cs, func(a, b bcopy) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		return int(a.rank) - int(b.rank)
	})
}

// entry is the calendar's compact, pointer-free handle to one buffered
// message: the full sort key plus the slab slot holding the Message.
type entry struct {
	at  float64 // Message.DeliverAt
	key uint64  // TIMER flag | sequence number
	ref int32   // msgSlab slot
	_   int32
}

// packKey builds an entry key from a message kind and sequence number.
func packKey(kind Kind, seq uint64) uint64 {
	if kind == KindTimer {
		return seq | entryTimerBit
	}
	return seq
}

// entryLess is eventLess on packed entries.
func entryLess(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// entryCmp adapts entryLess for slices.SortFunc. The order is total (seq is
// unique per engine), so no two distinct entries compare equal.
func entryCmp(a, b entry) int {
	if entryLess(&a, &b) {
		return -1
	}
	return 1
}

// msgSlab stores the buffered Message values the compact queues reference.
// Slots are recycled through a free stack; take zeroes the vacated slot so
// no stale Payload reference outlives its message (the hygiene the heap's
// free list provided, concentrated in one place).
type msgSlab struct {
	msgs []Message
	free []int32
}

func (s *msgSlab) grow(c int) {
	if cap(s.msgs) < c {
		msgs := make([]Message, len(s.msgs), c)
		copy(msgs, s.msgs)
		s.msgs = msgs
	}
	if cap(s.free) < c {
		free := make([]int32, len(s.free), c)
		copy(free, s.free)
		s.free = free
	}
}

func (s *msgSlab) put(m *Message) int32 {
	if n := len(s.free); n > 0 {
		i := s.free[n-1]
		s.free = s.free[:n-1]
		s.msgs[i] = *m
		return i
	}
	s.msgs = append(s.msgs, *m)
	return int32(len(s.msgs) - 1)
}

func (s *msgSlab) take(i int32, out *Message) {
	*out = s.msgs[i]
	s.msgs[i] = Message{}
	s.free = append(s.free, i)
}

// entryHeap is a 4-ary min-heap of entries ordered by entryLess — the
// overflow store for events beyond the calendar window. Identical layout
// logic to eventQueue, but sifting 24-byte pointer-free entries.
type entryHeap struct {
	items []entry
}

func (q *entryHeap) len() int { return len(q.items) }

func (q *entryHeap) grow(c int) {
	if cap(q.items) < c {
		items := make([]entry, len(q.items), c)
		copy(items, q.items)
		q.items = items
	}
}

func (q *entryHeap) push(en entry) {
	q.items = append(q.items, en)
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(&q.items[i], &q.items[p]) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *entryHeap) peek() *entry {
	if len(q.items) == 0 {
		return nil
	}
	return &q.items[0]
}

func (q *entryHeap) pop() entry {
	items := q.items
	min := items[0]
	n := len(items) - 1
	items[0] = items[n]
	items = items[:n]
	q.items = items

	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := i
		end := first + 4
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if entryLess(&items[c], &items[best]) {
				best = c
			}
		}
		if best == i {
			break
		}
		items[i], items[best] = items[best], items[i]
		i = best
	}
	return min
}

// calQueue is the calendar: len(buckets) disjoint half-open time ranges
// [start + i·width, start + (i+1)·width) covering one window of the
// execution. Events beyond the window are the caller's (sched's) problem.
// Buckets are filled append-only and sorted lazily when the drain position
// first enters them; a push into the already-sorted live bucket does an
// ordered insert into its unpopped tail. Empty stretches are skipped
// through an occupancy bitmap.
type calQueue struct {
	buckets  [][]entry
	occ      []uint64   // occupancy bitmap, one bit per bucket
	start    clock.Real // lower edge of bucket 0 for the current window
	width    float64    // bucket width in real-time seconds
	invWidth float64    // 1/width (a multiply per push instead of a divide)
	cur      int        // bucket currently being drained
	pos      int        // popped prefix of buckets[cur]
	sorted   bool       // buckets[cur][pos:] is in entryLess order
	count    int        // unpopped entries held across all buckets

	// Window statistics feeding the width tuner (see sched.rotate).
	inserted  int     // entries accepted into this window
	used      int     // buckets that went nonempty this window
	maxDtNear float64 // furthest near-future spill past the window end
	maxDtCont float64 // furthest near spill contiguous with the window (≤ contLimit)
	contLimit float64 // contiguity band: span + contLead (recomputed per reset)
	contLead  float64 // calContLead · spanHint (set once at activation)
	nearLimit float64 // near/far spill boundary (calNearFactor · span)
	reqWidth  float64 // sticky horizon floor: max contiguous spill/buckets so far
}

// reset rewinds the calendar to a fresh window anchored at start. All
// buckets must already be drained (count == 0); their backing arrays are
// kept for reuse, so a steady-state rotation allocates nothing.
func (c *calQueue) reset(start clock.Real, width float64) {
	if c.cur < len(c.buckets) {
		c.buckets[c.cur] = c.buckets[c.cur][:0]
	}
	clear(c.occ)
	c.start = start
	c.width = width
	c.invWidth = 1 / width
	c.cur, c.pos, c.sorted = 0, 0, false
	c.inserted, c.used, c.maxDtNear, c.maxDtCont = 0, 0, 0, 0
	c.contLimit = width*float64(len(c.buckets)) + c.contLead
}

// tryPush files en into its bucket, or reports false when the event lies
// beyond the current window (the caller spills it into the overflow heap).
// Events are never earlier than the drain position: the engine only
// schedules at or after the current time, which lives in bucket cur.
func (c *calQueue) tryPush(en entry) bool {
	dt := en.at - float64(c.start)
	f := dt * c.invWidth
	if !(f < float64(len(c.buckets))) { // also catches NaN defensively
		if dt < c.nearLimit {
			if dt > c.maxDtNear {
				c.maxDtNear = dt
			}
			if dt <= c.contLimit && dt > c.maxDtCont {
				c.maxDtCont = dt
			}
		}
		return false
	}
	i := int(f)
	if i < c.cur {
		// Float-rounding guard: a delivery at exactly the drain position's
		// time must stay poppable. In-bucket ordering keeps it correct.
		i = c.cur
	}
	b := c.buckets[i]
	if i == c.cur && c.sorted {
		// The live bucket is already sorted and partially drained: insert
		// into its unpopped tail. This only happens for deliveries scheduled
		// within the width of the bucket being drained (e.g. δ = ε), so the
		// shifted tail is short.
		b = append(b, entry{})
		j := len(b) - 1
		for j > c.pos && entryLess(&en, &b[j-1]) {
			b[j] = b[j-1]
			j--
		}
		b[j] = en
	} else {
		b = append(b, en)
	}
	c.buckets[i] = b
	c.occ[i>>6] |= 1 << (uint(i) & 63)
	c.count++
	c.inserted++
	return true
}

// peek returns the minimum entry; the caller must ensure count > 0. The
// pointer is valid only until the next push or pop. Advancing into a bucket
// sorts it once; empty stretches between clusters are skipped through the
// occupancy bitmap (64 buckets per word scan), so sparse windows cost
// nearly nothing to cross.
func (c *calQueue) peek() *entry {
	for {
		b := c.buckets[c.cur]
		if c.pos < len(b) {
			if !c.sorted {
				// First entry into this bucket: sort it, and count it for
				// the width tuner's fill estimate (the drain enters each
				// nonempty bucket exactly once per window, so tallying
				// here keeps the stat off the push hot path).
				c.used++
				sortBucket(b[c.pos:])
				c.sorted = true
			}
			return &b[c.pos]
		}
		// Recycle the drained bucket. Entries are pointer-free, so stale
		// slots pin nothing — no scrubbing needed.
		c.buckets[c.cur] = b[:0]
		c.occ[c.cur>>6] &^= 1 << (uint(c.cur) & 63)
		c.cur = c.nextOccupied(c.cur + 1)
		c.pos, c.sorted = 0, false
	}
}

// nextOccupied returns the first bucket index ≥ i with its occupancy bit
// set. The caller guarantees one exists (count > 0).
func (c *calQueue) nextOccupied(i int) int {
	w := i >> 6
	word := c.occ[w] & (^uint64(0) << (uint(i) & 63))
	for word == 0 {
		w++
		word = c.occ[w]
	}
	return w<<6 + bits.TrailingZeros64(word)
}

// pop removes and returns the minimum entry.
func (c *calQueue) pop() entry {
	en := *c.peek()
	c.pos++
	c.count--
	return en
}

// sortBucket orders a bucket's unpopped tail by entryLess. Buckets are
// near-singleton by construction (the width tuner and bucket-count sizing
// steer toward a few entries), so the common cases are handled inline and
// the general sorter only sees the occasional dense spike (e.g. ε = 0
// delays landing a whole fan-out on one instant).
func sortBucket(b []entry) {
	switch {
	case len(b) < 2:
		return
	case len(b) <= 16:
		for i := 1; i < len(b); i++ {
			en := b[i]
			j := i
			for j > 0 && entryLess(&en, &b[j-1]) {
				b[j] = b[j-1]
				j--
			}
			b[j] = en
		}
	default:
		slices.SortFunc(b, entryCmp)
	}
}

// sched is the hybrid scheduler the engine talks to. In heap mode (small
// workloads, or forced) events live as full values in the legacy 4-ary
// eventQueue and the calendar machinery is dormant — the byte-for-byte
// pre-calendar scheduler. In calendar mode messages live in the slab and
// compact entries flow through the calendar and the overflow entryHeap;
// every overflow entry is strictly later than every calendar entry (the
// window ranges are disjoint), so the calendar minimum is the global
// minimum whenever the calendar is nonempty.
type sched struct {
	heap      eventQueue // heap mode storage (full events)
	slab      msgSlab    // calendar mode message storage
	cal       calQueue
	oheap     entryHeap  // calendar mode far-future overflow
	bcasts    bcastStore // lazy broadcast records (heads are in the queue)
	copyPool  [][]bcopy  // recycled bcopy capacity for cross-shard chunks
	scanBuf   []float64  // rotate's overflow-scan scratch (reused)
	calOn     bool
	mode      Scheduler
	spanHint  float64 // declared delay window δ+2ε, seeds the bucket width
	eventHint int     // expected peak buffered events (Config.EventHint)
	peak      int     // high-water mark of buffered (structural) events
}

// trackPeak records the population high-water mark; callers invoke it after
// every insertion. len() is two integer reads, so the hot path barely sees it.
func (s *sched) trackPeak() {
	if l := s.len(); l > s.peak {
		s.peak = l
	}
}

// init records the workload shape. span is the declared one-way delay
// window δ+2ε — the real-time interval one broadcast's fan-out lands in —
// which seeds the bucket width; the tuner refines it from observed traffic
// at every window rotation.
func (s *sched) init(mode Scheduler, hint int, delta, eps float64) {
	s.mode = mode
	s.eventHint = hint
	span := delta + 2*eps
	if !(span > 0) || math.IsInf(span, 1) {
		span = 1e-3
	}
	s.spanHint = span
	if mode == SchedulerCalendar || (mode == SchedulerAuto && hint >= calActivateLen) {
		s.activate()
	}
}

func (s *sched) len() int {
	if s.calOn {
		return s.cal.count + s.oheap.len()
	}
	return s.heap.len()
}

// grow pre-sizes the backing stores for about c buffered events: the free
// list in heap mode; the slab plus a slice of the overflow heap (timers and
// rejoin wake-ups, a small fraction of c) in calendar mode.
func (s *sched) grow(c int) {
	if s.calOn {
		s.slab.grow(c)
		s.oheap.grow(c/8 + 64)
		return
	}
	s.heap.grow(c)
}

func (s *sched) push(ev *event) {
	if s.calOn {
		en := entry{
			at:  float64(ev.msg.DeliverAt),
			key: packKey(ev.msg.Kind, ev.seq),
		}
		if ev.bref != 0 {
			// Lazy-broadcast head: the record owns the message, so the slab
			// holds nothing — the entry references the record instead,
			// encoded as a negative ref (slab slots are never negative).
			en.ref = -ev.bref
		} else {
			en.ref = s.slab.put(&ev.msg)
		}
		if !s.cal.tryPush(en) {
			s.oheap.push(en)
		}
		s.trackPeak()
		return
	}
	s.heap.push(*ev)
	s.trackPeak()
	if s.mode == SchedulerAuto && s.heap.len() >= calActivateLen {
		s.activate()
	}
}

// pushHead enqueues the head copy of broadcast record b — the next entry of
// its (at, rank)-sorted chain. In calendar mode the head is a 24-byte entry
// whose negative ref points at the record; in heap mode it is a fully
// materialized event carrying bref so pop can advance the chain (and so an
// auto-mode migration to the calendar re-files it as a record reference).
func (s *sched) pushHead(b int32) {
	rec := &s.bcasts.recs[b]
	c := rec.copies[rec.next]
	if s.calOn {
		en := entry{at: c.at, key: rec.seqAt(c), ref: -(b + 1)}
		if !s.cal.tryPush(en) {
			s.oheap.push(en)
		}
		s.trackPeak()
		return
	}
	ev := event{
		msg: Message{
			From: rec.from, To: ProcID(c.pid), Kind: KindOrdinary,
			Payload: rec.payload, SentAt: rec.sentAt, DeliverAt: clock.Real(c.at),
		},
		seq:  rec.seqAt(c),
		bref: b + 1,
	}
	s.push(&ev)
}

// pushBroadcast files one logical broadcast as a lazy record and enqueues its
// head. at/ok are the delivery pipeline's per-recipient results (the pipeline
// already ran — see Engine.Broadcast); local, when non-nil, filters the
// record to the copies this engine owns (sharded mode; remote copies travel
// as bcastChunks). seqBase/det fix the copies' sequence numbers exactly as
// the eager path would have assigned them.
func (s *sched) pushBroadcast(from ProcID, sentAt clock.Real, payload any, at []clock.Real, ok, local []bool, seqBase uint64, det bool) {
	b := s.bcasts.alloc()
	rec := &s.bcasts.recs[b]
	rec.from, rec.sentAt, rec.payload = from, sentAt, payload
	rec.seqBase, rec.det, rec.next, rec.adopted = seqBase, det, 0, false
	copies := rec.copies[:0]
	if cap(copies) == 0 {
		// The record's previous copies slice was adopted from a cross-shard
		// chunk and donated to the pool on exhaustion (see advanceBcast);
		// draw capacity back out instead of regrowing from nil.
		copies = s.takeCopySlice()
	}
	rank := int32(0)
	for q := range ok {
		if !ok[q] {
			continue
		}
		r := rank
		rank++
		if local != nil && !local[q] {
			continue
		}
		if det {
			r = int32(q)
		}
		copies = append(copies, bcopy{at: float64(at[q]), pid: int32(q), rank: r})
	}
	if len(copies) == 0 {
		rec.payload = nil
		s.bcasts.free = append(s.bcasts.free, b)
		return
	}
	sortCopies(copies)
	rec.copies = copies
	s.pushHead(b)
}

// adoptBroadcast installs a cross-shard broadcast chunk as a local record,
// taking ownership of its (already sorted) copies slice. Called only at
// window barriers, single-threaded. Any copies capacity the recycled record
// already held goes to the copy pool rather than being dropped, and the
// record is marked adopted so exhaustion returns the chunk's capacity
// there too — the pool feeds this shard's own outgoing chunks
// (Engine.chunkRemote), closing the recycle loop across shards.
func (s *sched) adoptBroadcast(ch *bcastChunk) {
	if len(ch.copies) == 0 {
		return
	}
	b := s.bcasts.alloc()
	rec := &s.bcasts.recs[b]
	rec.from, rec.sentAt, rec.payload = ch.from, ch.sentAt, ch.payload
	rec.seqBase, rec.det, rec.next = ch.seqBase, ch.det, 0
	if cap(rec.copies) > 0 {
		s.putCopySlice(rec.copies)
	}
	rec.copies = ch.copies
	rec.adopted = true
	s.pushHead(b)
}

// takeCopySlice pops a recycled bcopy slice (length 0) from the pool, or
// returns nil when the pool is empty. Sharded mode only; each shard touches
// only its own pool during a window drain, and adoption at the barrier is
// single-threaded.
func (s *sched) takeCopySlice() []bcopy {
	if n := len(s.copyPool); n > 0 {
		c := s.copyPool[n-1]
		s.copyPool[n-1] = nil
		s.copyPool = s.copyPool[:n-1]
		return c
	}
	return nil
}

// putCopySlice returns a bcopy slice's capacity to the pool.
func (s *sched) putCopySlice(c []bcopy) {
	if cap(c) == 0 {
		return
	}
	s.copyPool = append(s.copyPool, c[:0])
}

// advanceBcast moves record b's chain past its just-materialized head:
// either the next copy becomes the new head, or the exhausted record is
// recycled (dropping its payload reference).
func (s *sched) advanceBcast(b int32) {
	rec := &s.bcasts.recs[b]
	rec.next++
	if int(rec.next) < len(rec.copies) {
		s.pushHead(b)
		return
	}
	rec.payload = nil
	if rec.adopted {
		// The copies arrived as a cross-shard chunk: hand the capacity to
		// the copy pool, where this shard's outgoing chunks draw from.
		s.putCopySlice(rec.copies)
		rec.copies = nil
		rec.adopted = false
	} else {
		rec.copies = rec.copies[:0]
	}
	s.bcasts.free = append(s.bcasts.free, b)
}

// materializeHead assembles the head copy of record b into out, returns its
// sequence number, and advances the record's chain.
func (s *sched) materializeHead(b int32, out *Message) uint64 {
	rec := &s.bcasts.recs[b]
	c := rec.copies[rec.next]
	*out = Message{
		From: rec.from, To: ProcID(c.pid), Kind: KindOrdinary,
		Payload: rec.payload, SentAt: rec.sentAt, DeliverAt: clock.Real(c.at),
	}
	seq := rec.seqAt(c)
	s.advanceBcast(b)
	return seq
}

// peekTime returns the delivery time of the minimum buffered event, or
// ok == false when the queue is empty.
func (s *sched) peekTime() (clock.Real, bool) {
	if !s.calOn {
		ev := s.heap.peek()
		if ev == nil {
			return 0, false
		}
		return ev.msg.DeliverAt, true
	}
	if s.cal.count == 0 {
		if s.oheap.len() == 0 {
			return 0, false
		}
		s.rotate()
	}
	return clock.Real(s.cal.peek().at), true
}

// popMsg removes the minimum event, writing its message directly into out
// (no intermediate event value crosses the call boundary — this is the once
// -per-delivered-event path). The caller must ensure the queue is nonempty.
func (s *sched) popMsg(out *Message) {
	if !s.calOn {
		ev := s.heap.pop()
		*out = ev.msg
		if ev.bref != 0 {
			s.advanceBcast(ev.bref - 1)
		}
		return
	}
	if s.cal.count == 0 {
		s.rotate()
	}
	en := s.cal.pop()
	if en.ref < 0 {
		s.materializeHead(-en.ref-1, out)
		return
	}
	s.slab.take(en.ref, out)
}

// pop removes and returns the minimum event; the caller must ensure the
// queue is nonempty. (Tests use it; the engine's event loop goes through
// popMsg.)
func (s *sched) pop() event {
	if !s.calOn {
		ev := s.heap.pop()
		if ev.bref != 0 {
			s.advanceBcast(ev.bref - 1)
			ev.bref = 0
		}
		return ev
	}
	if s.cal.count == 0 {
		s.rotate()
	}
	en := s.cal.pop()
	ev := event{seq: en.key &^ entryTimerBit}
	if en.ref < 0 {
		s.materializeHead(-en.ref-1, &ev.msg)
		return ev
	}
	s.slab.take(en.ref, &ev.msg)
	return ev
}

// forEachPending calls fn for every buffered message until fn returns
// false. Iteration order is unspecified (heap layout in heap mode, slab
// layout in calendar mode — free slab slots are zeroed and skipped by their
// zero Kind). Read-only view for the adversary seam; never on the hot path.
func (s *sched) forEachPending(fn func(m *Message) bool) {
	// Lazy-broadcast copies first, synthesized from their records: every
	// copy not yet materialized, including each record's queued head (the
	// head lives in the queue only as a reference — or, in heap mode, as a
	// bref-marked duplicate skipped below — so the view stays exactly one
	// entry per pending copy).
	var m Message
	for i := range s.bcasts.recs {
		rec := &s.bcasts.recs[i]
		for j := int(rec.next); j < len(rec.copies); j++ {
			c := rec.copies[j]
			m = Message{
				From: rec.from, To: ProcID(c.pid), Kind: KindOrdinary,
				Payload: rec.payload, SentAt: rec.sentAt, DeliverAt: clock.Real(c.at),
			}
			if !fn(&m) {
				return
			}
		}
	}
	if s.calOn {
		for i := range s.slab.msgs {
			if s.slab.msgs[i].Kind == 0 {
				continue
			}
			if !fn(&s.slab.msgs[i]) {
				return
			}
		}
		return
	}
	for i := range s.heap.items {
		if s.heap.items[i].bref != 0 {
			continue
		}
		if !fn(&s.heap.items[i].msg) {
			return
		}
	}
}

// activate switches to calendar mode, migrating whatever the heap holds.
// The bucket count scales to about twice the expected population (hint or
// current size), clamped to a power of two in [256, calMaxBuckets]: a
// window's events concentrate in its active span (a delay window's worth of
// a horizon that also covers the round's timers), so 2× buckets puts the
// active-span fill near a few entries and pops stay near sort-free. The
// initial width spreads twice the declared delay window across the buckets:
// a round's traffic stretches past one span (senders spread over β keep
// broadcasting while the first fan-outs land), and a too-short first window
// would send the whole opening round through the overflow heap before the
// tuner could react — a cost every fresh engine would pay again. Too wide
// merely leaves the bitmap sparser.
func (s *sched) activate() {
	if s.calOn || s.mode == SchedulerHeap {
		return
	}
	target := s.heap.len()
	if s.eventHint > target {
		target = s.eventHint
	}
	nb := 256
	for nb < calMaxBuckets && nb < 2*target {
		nb *= 2
	}
	// Carve every bucket's initial capacity out of one pointer-free
	// backing array (the three-index slice caps each bucket at
	// calArenaFill, so an overfull bucket reallocates itself without
	// clobbering its neighbors). One allocation replaces nb small ones,
	// and the steady state appends into recycled capacity.
	s.cal.buckets = make([][]entry, nb)
	s.cal.occ = make([]uint64, nb/64)
	arena := make([]entry, nb*calArenaFill)
	for i := range s.cal.buckets {
		o := i * calArenaFill
		s.cal.buckets[i] = arena[o : o : o+calArenaFill]
	}
	s.cal.nearLimit = calNearFactor * s.spanHint
	s.cal.contLead = calContLead * s.spanHint
	s.calOn = true

	start := clock.Real(0)
	if ev := s.heap.peek(); ev != nil {
		start = ev.msg.DeliverAt
	}
	s.cal.reset(start, sanitizeWidth(2*s.spanHint/float64(nb)))
	if s.heap.len() == 0 {
		return
	}
	// Re-file the buffered events through the slab: near ones into
	// buckets, far ones into the overflow heap. The old backing array is
	// iterated in place — heap order is irrelevant here, tryPush ignores
	// arrival order on unsorted buckets — then released.
	old := s.heap.items
	s.heap.items = nil
	s.slab.grow(max(s.eventHint, len(old)))
	for i := range old {
		s.push(&old[i])
	}
}

// calDebug (environment variable CALDEBUG, any non-empty value) prints one
// line per window rotation — width, events accepted, buckets used, furthest
// near-future spill, overflow population — to stderr. It is the intended
// way to watch the width tuner converge on a new workload shape before
// codifying the expectation in a test (TestCalendarTunerConverges was
// written from exactly this output).
var calDebug = os.Getenv("CALDEBUG") != ""

// rotate advances the calendar to a new window anchored at the earliest
// overflow event, retuning the bucket width from the finished window's
// observed traffic first, then migrating every overflow entry that fits
// the new window (a 24-byte entry move each — slab slots stay put). Called
// when the calendar drains while overflow remains.
func (s *sched) rotate() {
	c := &s.cal
	if calDebug {
		// Explicitly stderr: rotation diagnostics must never interleave with
		// experiment/golden table output on stdout.
		fmt.Fprintf(os.Stderr, "rotate: width(ns)=%d inserted=%d used=%d maxDtCont(ns)=%d maxDtNear(ns)=%d span(ns)=%d heapLen=%d\n",
			int64(c.width*1e9), c.inserted, c.used, int64(c.maxDtCont*1e9), int64(c.maxDtNear*1e9),
			int64(c.width*float64(len(c.buckets))*1e9), s.oheap.len())
	}
	// Width tuning, from two decoupled signals of the finished window:
	//
	//   - resolution: if buckets ran overfull, shrink toward the width
	//     that puts calTargetFill events in a bucket (this signal only
	//     ever shrinks — sparse windows, e.g. timer-only ones, must not
	//     inflate the width);
	//   - horizon: if near-future events spilled past the window end, the
	//     observed delay spread outgrew the window (broadcast fan-outs
	//     landing δ+ε after senders spread over β, staggered or
	//     adversarially lagged traffic) — widen so the furthest of them
	//     fits the next window.
	//
	// The horizon signal wins, and it is sticky: the delay spread of a
	// round is a property of the workload, not of the single window that
	// happened to observe the spill — round-structured traffic alternates
	// message-dense windows (which would vote to shrink) with timer
	// windows whose fan-outs need the full horizon, and letting each
	// window retune in isolation oscillates the width and sends every
	// other round through the heap. An overfull bucket costs a slightly
	// longer sort; a too-short window costs O(log m) heap traffic for
	// whole rounds — so the floor only ever rises. It converges within a
	// rotation or two because it is computed from observed times, not
	// stepped by fixed factors, and stays bounded by nearLimit/buckets.
	//
	// Two refinements, both found by profiling K-exchange sub-rounds at
	// calendar scale (the ROADMAP's "inter-cluster gap" question):
	//
	//   - Only a *sparse* window may raise the floor. A window that was
	//     already message-dense (average fill past calDenseFill) and still
	//     spilled is not looking at an undersized view of one cluster — it
	//     is draining continuous traffic (sub-rounds packed at their
	//     minimum spacing tile into a continuum), where the spill horizon
	//     recedes with the window itself: spill ≈ span + sub-period,
	//     whatever the span. Chasing that target ratchets the width up to
	//     the nearLimit cap, thousands of entries per bucket, and O(tail)
	//     insertion shifts into the live bucket. Round-structured traffic
	//     is unaffected: its floor is set by the sparse timer-drain windows
	//     between clusters, which stay eligible. Measured at n=1009, K=8,
	//     sub-period at its floor: ungated, the width ratchets 2.9µs → 15µs
	//     and climbing by round 4, throughput drops ~1.9× and bucket
	//     regrowth allocates ~10× the bytes.
	//
	//   - Only spills *contiguous* with the window's traffic (maxDtCont,
	//     within calContLead delay windows past the end) set the target.
	//     A spill across a dead gap is a distinct future cluster — e.g.
	//     sub-rounds spaced well apart but still inside nearLimit — and
	//     stretching the window over the gap dilutes every bucket the
	//     actual traffic lands in. Measured at n=1009, K=8, sub-period
	//     P/8 ≈ 125 ms (inside nearLimit ≈ 166 ms): ungated, the sparse
	//     timer windows stretch the span to ≈ 108 ms, fill ≈ 5200 per
	//     bucket, and throughput drops ~1.8×; gated, the span stays at one
	//     cluster and rotation jumps the gap through the overflow heap.
	nb1 := float64(len(c.buckets) - 1)
	sparse := c.inserted <= calDenseFill*c.used
	if wh := c.maxDtCont / nb1; sparse && wh > c.reqWidth {
		c.reqWidth = wh
	}
	// The push-time spill signal only sees traffic that arrived while a
	// window was active. Events that land in the overflow heap wholesale —
	// a far-future cluster the drain is about to jump to — would otherwise
	// teach the tuner one window-length per rotation. One pass over the
	// (unsorted) overflow array reads the cluster's near-future spread
	// directly, so the next window covers it in full. The heap is small in
	// steady state (timers, rejoin wake-ups), so the scan is cheap.
	//
	// "Spread" here means the contiguous cluster anchored at the earliest
	// event, not the furthest near-future distance: the heap routinely
	// holds the imminent cluster and the one after it (sub-round timers a
	// sub-period away, still inside nearLimit), and measuring across both
	// would stretch the window over the dead gap between them — the same
	// failure mode the contiguity band guards against on the push path.
	// Chaining sorted gaps ≤ contLead gives the imminent cluster's true
	// extent, whatever its internal shape.
	base := s.oheap.peek().at
	s.scanBuf = s.scanBuf[:0]
	for i := range s.oheap.items {
		if dt := s.oheap.items[i].at - base; dt < c.nearLimit {
			s.scanBuf = append(s.scanBuf, dt)
		}
	}
	slices.Sort(s.scanBuf)
	spread := 0.0
	for _, dt := range s.scanBuf {
		if dt-spread > c.contLead {
			break
		}
		spread = dt
	}
	if wh := spread / nb1; wh > c.reqWidth {
		c.reqWidth = wh
	}
	w := c.width
	if c.used > 0 {
		if avg := float64(c.inserted) / float64(c.used); avg > calTargetFill {
			w = w * calTargetFill / avg
		}
	}
	if w < c.reqWidth {
		w = c.reqWidth
	}
	c.reset(clock.Real(base), sanitizeWidth(w))
	for s.oheap.len() > 0 {
		if !c.tryPush(*s.oheap.peek()) {
			break // first event beyond the window; heap order ⇒ so is the rest
		}
		s.oheap.pop()
	}
}

// sanitizeWidth clamps a bucket width to a positive finite value, guarding
// the tuner against degenerate spans (ε = δ = 0) and fuzzed NaN/Inf inputs.
func sanitizeWidth(w float64) float64 {
	if !(w > calMinWidth) { // catches NaN, zero, negatives
		return calMinWidth
	}
	if math.IsInf(w, 1) || w > 1e18 {
		return 1e18
	}
	return w
}
