package sim

import (
	"fmt"
	"io"

	"repro/internal/clock"
)

// TraceEvent is one recorded action of an execution: the delivery of a
// message (ordinary, START or TIMER) or an annotation emitted by a process.
type TraceEvent struct {
	At      clock.Real
	Proc    ProcID // recipient (or annotating process)
	From    ProcID // sender; equals Proc for timers/annotations
	Kind    Kind   // zero for annotations
	Phys    clock.Local
	Detail  string // rendered payload or annotation tag=value
	IsAnnot bool
}

// Tracer records the execution as a bounded event log — the §2.3 sequence of
// actions, made inspectable. Register it with Engine.Observe and render with
// WriteTo. A Limit of 0 keeps the default 10k events; recording stops
// silently at the limit (Truncated reports it).
type Tracer struct {
	// Limit bounds the number of recorded events.
	Limit int

	// only holds the process filter shifted by one (id+1), so the zero
	// value means "trace everything". (It used to be an exported ProcID
	// field whose zero value was a valid id: a Tracer{} literal silently
	// traced only process 0.)
	only      ProcID
	events    []TraceEvent
	truncated bool
}

const defaultTraceLimit = 10_000

var (
	_ AnnotationSink   = (*Tracer)(nil)
	_ DeliveryObserver = (*Tracer)(nil)
)

// NewTracer returns a tracer for all processes.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = defaultTraceLimit
	}
	return &Tracer{Limit: limit}
}

// FilterTo restricts recording to process p's deliveries and annotations.
func (t *Tracer) FilterTo(p ProcID) { t.only = p + 1 }

// Unfiltered removes the process filter, restoring the all-processes default.
func (t *Tracer) Unfiltered() { t.only = 0 }

// skip reports whether the filter excludes process p.
func (t *Tracer) skip(p ProcID) bool { return t.only != 0 && p != t.only-1 }

// OnDeliver implements DeliveryObserver.
func (t *Tracer) OnDeliver(e *Engine, m Message) {
	if t.skip(m.To) {
		return
	}
	detail := ""
	if m.Payload != nil {
		detail = fmt.Sprintf("%+v", m.Payload)
	}
	t.record(TraceEvent{
		At:     e.Now(),
		Proc:   m.To,
		From:   m.From,
		Kind:   m.Kind,
		Phys:   e.PhysTime(m.To, e.Now()),
		Detail: detail,
	})
}

// OnAnnotation implements AnnotationSink.
func (t *Tracer) OnAnnotation(e *Engine, a Annotation) {
	if t.skip(a.Proc) {
		return
	}
	t.record(TraceEvent{
		At:      a.At,
		Proc:    a.Proc,
		From:    a.Proc,
		Phys:    e.PhysTime(a.Proc, a.At),
		Detail:  fmt.Sprintf("%s=%g", a.Tag, a.Value),
		IsAnnot: true,
	})
}

func (t *Tracer) record(ev TraceEvent) {
	limit := t.Limit
	if limit <= 0 {
		limit = defaultTraceLimit
	}
	if len(t.events) >= limit {
		t.truncated = true
		return
	}
	t.events = append(t.events, ev)
}

// Events returns the recorded log in delivery order.
func (t *Tracer) Events() []TraceEvent { return t.events }

// Truncated reports whether the limit cut the log short.
func (t *Tracer) Truncated() bool { return t.truncated }

// WriteTo renders the log, one line per action:
//
//	t=5.010000s  p2 ← p0  ORDINARY  {Mark:5}         (phys 5.010050)
//	t=5.016500s  p2      TIMER                        (phys 5.016550)
//	t=5.016500s  p2      # adj=0.000123               (phys 5.016550)
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, ev := range t.events {
		var line string
		switch {
		case ev.IsAnnot:
			line = fmt.Sprintf("t=%.6fs  p%-2d      # %-28s (phys %.6f)\n",
				float64(ev.At), ev.Proc, ev.Detail, float64(ev.Phys))
		case ev.Kind == KindOrdinary:
			line = fmt.Sprintf("t=%.6fs  p%-2d ← p%-2d %-9s %-18s (phys %.6f)\n",
				float64(ev.At), ev.Proc, ev.From, ev.Kind, ev.Detail, float64(ev.Phys))
		default:
			line = fmt.Sprintf("t=%.6fs  p%-2d      %-9s %-18s (phys %.6f)\n",
				float64(ev.At), ev.Proc, ev.Kind, ev.Detail, float64(ev.Phys))
		}
		n, err := io.WriteString(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if t.truncated {
		n, err := io.WriteString(w, "… trace truncated at limit\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
