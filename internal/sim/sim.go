// Package sim implements the system model of §2 of the paper: a set of
// interrupt-driven process automata with read-only physical clocks,
// communicating through a global message buffer that delivers every message
// within [δ−ε, δ+ε] real time.
//
// The engine reproduces the execution properties of §2.3 literally:
//
//  1. finitely many actions before any fixed real time (guaranteed by the
//     event queue plus a step limit),
//  2. executions begin from initial process and buffer states (only START
//     messages are pending initially),
//  3. configurations match up (single-threaded event loop),
//  4. TIMER messages that arrive at real time t are ordered after ordinary
//     messages for the same process arriving at t,
//  5. a receive occurs exactly when the buffer holds a message with that
//     delivery time,
//  6. only the recipient's state and the buffer change at a step; nonfaulty
//     steps follow the transition function (here: Process.Receive).
//
// Setting a timer for a physical-clock value T places a TIMER message with
// delivery time Ph⁻¹(T) in the buffer, unless that real time has passed, in
// which case nothing is placed (§2.2).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/clock"
)

// ProcID identifies a process, 0 ≤ id < n.
type ProcID int

// Kind distinguishes the three interrupt sources of the model (§2.1).
type Kind uint8

// Message kinds. START indicates the recipient should begin its algorithm;
// TIMER is received when the recipient's physical clock reaches a designated
// value; everything else is an ordinary message.
const (
	KindOrdinary Kind = iota + 1
	KindStart
	KindTimer
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOrdinary:
		return "ORDINARY"
	case KindStart:
		return "START"
	case KindTimer:
		return "TIMER"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is an entry of the global message buffer together with its
// scheduled delivery time.
type Message struct {
	From      ProcID
	To        ProcID
	Kind      Kind
	Payload   any
	SentAt    clock.Real
	DeliverAt clock.Real
}

// Annotation is a measurement emitted by a process and timestamped with real
// time by the engine; experiments derive the paper's quantities (tᵢ spreads,
// ADJ sizes, …) from annotations.
type Annotation struct {
	At    clock.Real
	Proc  ProcID
	Tag   string
	Value float64
}

// Process is an automaton in the sense of §2.1: its entire behavior is a
// transition function invoked once per received message. Nonfaulty processes
// must interact with the system only through the Context. Faulty processes
// implement the same interface but may behave arbitrarily.
type Process interface {
	Receive(ctx *Context, msg Message)
}

// CorrHolder is implemented by processes whose local time is Ph + CORR; it
// lets the engine (and metrics) evaluate L_p(t) without touching process
// internals.
type CorrHolder interface {
	Corr() clock.Local
}

// Observer receives engine callbacks. Sample is called twice per action —
// immediately before the configuration changes and immediately after — which
// brackets every linear segment of every local-time function, so a sampling
// observer sees the exact extremes of piecewise-linear quantities such as
// pairwise skew.
type Observer interface {
	Sample(e *Engine, preDeliver bool)
	OnAnnotation(e *Engine, a Annotation)
}

// DeliveryObserver is an optional extension of Observer: implementations
// additionally receive every delivered message (used by the execution
// tracer). Checked dynamically so existing observers need not implement it.
type DeliveryObserver interface {
	OnDeliver(e *Engine, m Message)
}

// Channel decides, per message copy, its delivery time or its loss. The
// default full-mesh channel is reliable; the Ethernet-like channel of §9.3
// drops copies that collide at a receiver.
type Channel interface {
	// Route maps a sampled base delay to a delivery time, or reports the
	// copy lost.
	Route(from, to ProcID, sentAt clock.Real, baseDelay float64) (clock.Real, bool)
}

// Config assembles a system of processes with clocks (§2.1).
type Config struct {
	Procs   []Process     // one automaton per process
	Clocks  []clock.Clock // physical clocks, same length as Procs
	StartAt []clock.Real  // real delivery time of each START message
	Delay   DelayModel    // message delay model (A3)
	Channel Channel       // nil means reliable full mesh
	Faulty  []bool        // which processes count as faulty (metrics only)
	Seed    int64         // seed for delay sampling
	// MaxSteps bounds the number of delivered messages; 0 means a large
	// default. Guards against runaway (e.g. adversarial) executions.
	MaxSteps int
}

// Engine executes a system configuration event by event.
type Engine struct {
	procs    []Process
	clocks   []clock.Clock
	faulty   []bool
	delay    DelayModel
	channel  Channel
	rng      *rand.Rand
	queue    eventQueue
	now      clock.Real
	seq      uint64
	steps    int
	maxSteps int
	obs      []Observer

	msgsSent     int64 // ordinary message copies scheduled
	msgsLost     int64 // copies dropped by the channel
	timersSet    int64
	timersLapsed int64 // timers requested for the past (dropped per §2.2)
}

const defaultMaxSteps = 10_000_000

// New validates the configuration and builds an engine with the START
// messages pending, matching the initial buffer state of §2.2.
func New(cfg Config) (*Engine, error) {
	n := len(cfg.Procs)
	if n == 0 {
		return nil, errors.New("sim: no processes")
	}
	if len(cfg.Clocks) != n {
		return nil, fmt.Errorf("sim: %d clocks for %d processes", len(cfg.Clocks), n)
	}
	if len(cfg.StartAt) != n {
		return nil, fmt.Errorf("sim: %d start times for %d processes", len(cfg.StartAt), n)
	}
	if cfg.Faulty != nil && len(cfg.Faulty) != n {
		return nil, fmt.Errorf("sim: %d faulty flags for %d processes", len(cfg.Faulty), n)
	}
	for i, p := range cfg.Procs {
		if p == nil {
			return nil, fmt.Errorf("sim: process %d is nil", i)
		}
		if cfg.Clocks[i] == nil {
			return nil, fmt.Errorf("sim: clock %d is nil", i)
		}
	}
	delay := cfg.Delay
	if delay == nil {
		return nil, errors.New("sim: nil delay model")
	}
	if d, e := delay.Bounds(); d < e || e < 0 || d-e < 0 {
		return nil, fmt.Errorf("sim: delay bounds δ=%v ε=%v violate assumption A3 (0 ≤ δ−ε, ε ≥ 0)", d, e)
	}
	ch := cfg.Channel
	if ch == nil {
		ch = FullMesh{}
	}
	faulty := cfg.Faulty
	if faulty == nil {
		faulty = make([]bool, n)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	e := &Engine{
		procs:    cfg.Procs,
		clocks:   cfg.Clocks,
		faulty:   faulty,
		delay:    delay,
		channel:  ch,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		maxSteps: maxSteps,
	}
	for i := 0; i < n; i++ {
		e.push(Message{
			From:      ProcID(i),
			To:        ProcID(i),
			Kind:      KindStart,
			SentAt:    cfg.StartAt[i],
			DeliverAt: cfg.StartAt[i],
		})
	}
	return e, nil
}

// Observe registers an observer. Must be called before Run.
func (e *Engine) Observe(o Observer) { e.obs = append(e.obs, o) }

// N returns the number of processes.
func (e *Engine) N() int { return len(e.procs) }

// Now returns the current real time (the delivery time of the last action).
func (e *Engine) Now() clock.Real { return e.now }

// Steps returns the number of delivered messages so far.
func (e *Engine) Steps() int { return e.steps }

// MessagesSent returns the count of ordinary message copies scheduled so far
// (the paper's per-round message complexity derives from this).
func (e *Engine) MessagesSent() int64 { return e.msgsSent }

// MessagesLost returns copies dropped by the channel (nonzero only for lossy
// channels such as the §9.3 Ethernet model).
func (e *Engine) MessagesLost() int64 { return e.msgsLost }

// TimersLapsed returns how many set-timer calls named a time already past.
func (e *Engine) TimersLapsed() int64 { return e.timersLapsed }

// Faulty reports whether p is marked faulty in the configuration.
func (e *Engine) Faulty(p ProcID) bool { return e.faulty[p] }

// NonfaultyIDs returns the ids of processes not marked faulty.
func (e *Engine) NonfaultyIDs() []ProcID {
	ids := make([]ProcID, 0, len(e.procs))
	for i := range e.procs {
		if !e.faulty[i] {
			ids = append(ids, ProcID(i))
		}
	}
	return ids
}

// PhysTime returns Ph_p(t).
func (e *Engine) PhysTime(p ProcID, t clock.Real) clock.Local {
	return e.clocks[p].At(t)
}

// LocalTime returns L_p(t) = Ph_p(t) + CORR_p for the process's current CORR
// value. ok is false if the process does not expose a correction variable.
func (e *Engine) LocalTime(p ProcID, t clock.Real) (clock.Local, bool) {
	ch, ok := e.procs[p].(CorrHolder)
	if !ok {
		return 0, false
	}
	return e.clocks[p].At(t) + ch.Corr(), true
}

// Process returns the automaton of p (used by tests and metrics).
func (e *Engine) Process(p ProcID) Process { return e.procs[p] }

// Run processes events in delivery order until the queue empties, real time
// would exceed until, or the step limit is hit (an error). It may be called
// repeatedly with increasing horizons.
func (e *Engine) Run(until clock.Real) error {
	for {
		m, ok := e.peek()
		if !ok || m.DeliverAt > until {
			// Advance the clock to the horizon so metrics sampled at
			// e.Now() reflect the full interval.
			if e.now < until {
				e.now = until
				e.sample(true)
			}
			return nil
		}
		if e.steps >= e.maxSteps {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxSteps, e.now)
		}
		e.pop()
		e.now = m.DeliverAt
		e.steps++
		e.sample(true) // configuration immediately before the action
		for _, o := range e.obs {
			if d, ok := o.(DeliveryObserver); ok {
				d.OnDeliver(e, m)
			}
		}
		ctx := &Context{eng: e, pid: m.To}
		e.procs[m.To].Receive(ctx, m)
		e.sample(false) // configuration immediately after the action
	}
}

func (e *Engine) sample(pre bool) {
	for _, o := range e.obs {
		o.Sample(e, pre)
	}
}

func (e *Engine) annotate(p ProcID, tag string, v float64) {
	a := Annotation{At: e.now, Proc: p, Tag: tag, Value: v}
	for _, o := range e.obs {
		o.OnAnnotation(e, a)
	}
}

// send schedules one ordinary message copy.
func (e *Engine) send(from, to ProcID, payload any) {
	base := e.delay.Sample(from, to, e.now, e.rng)
	at, ok := e.channel.Route(from, to, e.now, base)
	if !ok {
		e.msgsLost++
		return
	}
	e.msgsSent++
	e.push(Message{From: from, To: to, Kind: KindOrdinary, Payload: payload, SentAt: e.now, DeliverAt: at})
}

// setTimer places a TIMER for process p at physical-clock time T, i.e. real
// time Ph_p⁻¹(T); a timer for the past is dropped (§2.2).
func (e *Engine) setTimer(p ProcID, T clock.Local, payload any) {
	at := e.clocks[p].Inv(T)
	if at <= e.now {
		e.timersLapsed++
		return
	}
	e.timersSet++
	e.push(Message{From: p, To: p, Kind: KindTimer, Payload: payload, SentAt: e.now, DeliverAt: at})
}

// Context is the interface a process step has to the system: its identity,
// its physical clock reading, and the actions the model allows (send,
// broadcast, set a timer). A Context is valid only for the duration of the
// Receive call it was passed to.
type Context struct {
	eng *Engine
	pid ProcID
}

// ID returns the process's own id.
func (c *Context) ID() ProcID { return c.pid }

// N returns the total number of processes in the system.
func (c *Context) N() int { return len(c.eng.procs) }

// PhysNow returns the process's physical clock reading Ph_p(t) at the current
// instant. Processes never see real time.
func (c *Context) PhysNow() clock.Local { return c.eng.clocks[c.pid].At(c.eng.now) }

// Send places an ordinary message to q in the buffer.
func (c *Context) Send(to ProcID, payload any) { c.eng.send(c.pid, to, payload) }

// Broadcast sends the payload to every process, including the sender (§2.2:
// every process can communicate with every process, including itself). Each
// copy's delay is drawn independently within [δ−ε, δ+ε].
func (c *Context) Broadcast(payload any) {
	for q := range c.eng.procs {
		c.eng.send(c.pid, ProcID(q), payload)
	}
}

// SetTimer requests a TIMER interrupt when the process's physical clock
// reaches T. The payload is returned in the TIMER message.
func (c *Context) SetTimer(T clock.Local, payload any) { c.eng.setTimer(c.pid, T, payload) }

// Annotate emits a measurement observers can timestamp with real time.
func (c *Context) Annotate(tag string, v float64) { c.eng.annotate(c.pid, tag, v) }

// Rand returns a deterministic per-process random source (used by randomized
// fault strategies; nonfaulty algorithms in this repository are
// deterministic and never call it).
func (c *Context) Rand() *rand.Rand {
	return rand.New(rand.NewSource(int64(c.pid)*7_919 + int64(c.eng.steps)))
}
