// Package sim implements the system model of §2 of the paper: a set of
// interrupt-driven process automata with read-only physical clocks,
// communicating through a global message buffer that delivers every message
// within [δ−ε, δ+ε] real time.
//
// The engine reproduces the execution properties of §2.3 literally:
//
//  1. finitely many actions before any fixed real time (guaranteed by the
//     event queue plus a step limit),
//  2. executions begin from initial process and buffer states (only START
//     messages are pending initially),
//  3. configurations match up (single-threaded event loop),
//  4. TIMER messages that arrive at real time t are ordered after ordinary
//     messages for the same process arriving at t,
//  5. a receive occurs exactly when the buffer holds a message with that
//     delivery time,
//  6. only the recipient's state and the buffer change at a step; nonfaulty
//     steps follow the transition function (here: Process.Receive).
//
// Setting a timer for a physical-clock value T places a TIMER message with
// delivery time Ph⁻¹(T) in the buffer, unless that real time has passed, in
// which case nothing is placed (§2.2).
//
// The event loop is the per-trial hot path of every experiment, so it is
// built to run allocation-free in the steady state: the queue is a concrete
// 4-ary heap of event values (no interface boxing), one Context per engine is
// reused across deliveries, observers are classified into typed slices at
// registration time (no per-event type assertions), and delay sampling draws
// from an inline splitmix64 stream. The no-observer steady state performs
// zero allocations per delivered event (enforced in CI by
// TestEngineSteadyStateAllocs in internal/bench, which gates the same
// workload the engine benchmarks measure).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/clock"
)

// ProcID identifies a process, 0 ≤ id < n.
type ProcID int

// Kind distinguishes the three interrupt sources of the model (§2.1).
type Kind uint8

// Message kinds. START indicates the recipient should begin its algorithm;
// TIMER is received when the recipient's physical clock reaches a designated
// value; everything else is an ordinary message.
const (
	KindOrdinary Kind = iota + 1
	KindStart
	KindTimer
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOrdinary:
		return "ORDINARY"
	case KindStart:
		return "START"
	case KindTimer:
		return "TIMER"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is an entry of the global message buffer together with its
// scheduled delivery time.
type Message struct {
	From      ProcID
	To        ProcID
	Kind      Kind
	Payload   any
	SentAt    clock.Real
	DeliverAt clock.Real
}

// Annotation is a measurement emitted by a process and timestamped with real
// time by the engine; experiments derive the paper's quantities (tᵢ spreads,
// ADJ sizes, …) from annotations.
type Annotation struct {
	At    clock.Real
	Proc  ProcID
	Tag   string
	Value float64
}

// Process is an automaton in the sense of §2.1: its entire behavior is a
// transition function invoked once per received message. Nonfaulty processes
// must interact with the system only through the Context. Faulty processes
// implement the same interface but may behave arbitrarily.
type Process interface {
	Receive(ctx *Context, msg Message)
}

// CorrHolder is implemented by processes whose local time is Ph + CORR; it
// lets the engine (and metrics) evaluate L_p(t) without touching process
// internals.
type CorrHolder interface {
	Corr() clock.Local
}

// Observer is anything the engine can call back into. Capabilities are
// declared by implementing one or more of Sampler, AnnotationSink and
// DeliveryObserver; Observe classifies each observer once, at registration
// time, so the event loop dispatches through pre-typed slices with no
// per-event type assertions and skips callback fan-outs that have no
// listeners entirely. (Before this split, every observer carried no-op stubs
// for the callbacks it did not use, and the engine paid the full dynamic
// fan-out twice per action even when nothing was listening.)
type Observer = any

// Sampler is called twice per action — immediately before the configuration
// changes and immediately after — which brackets every linear segment of
// every local-time function, so a sampling observer sees the exact extremes
// of piecewise-linear quantities such as pairwise skew.
type Sampler interface {
	Sample(e *Engine, preDeliver bool)
}

// AnnotationSink receives every measurement emitted by a process, already
// timestamped with real time by the engine.
type AnnotationSink interface {
	OnAnnotation(e *Engine, a Annotation)
}

// DeliveryObserver receives every delivered message (used by the execution
// tracer).
type DeliveryObserver interface {
	OnDeliver(e *Engine, m Message)
}

// Channel decides, per message copy, its delivery time or its loss. The
// default full-mesh channel is reliable; the Ethernet-like channel of §9.3
// drops copies that collide at a receiver.
type Channel interface {
	// Route maps a sampled base delay to a delivery time, or reports the
	// copy lost.
	Route(from, to ProcID, sentAt clock.Real, baseDelay float64) (clock.Real, bool)
}

// Config assembles a system of processes with clocks (§2.1).
type Config struct {
	Procs   []Process     // one automaton per process
	Clocks  []clock.Clock // physical clocks, same length as Procs
	StartAt []clock.Real  // real delivery time of each START message
	Delay   DelayModel    // message delay model (A3)
	Channel Channel       // nil means reliable full mesh
	Faulty  []bool        // which processes count as faulty (metrics only)
	Seed    int64         // seed for delay sampling
	// Adversary, when non-nil, is installed on the delivery pipeline's
	// adversary stage: it gets one clamped Retime pass over every ordinary
	// message copy and — if it implements SendHook/ReceiveHook — observes
	// copies entering and leaving the buffer. See adversary.go.
	Adversary Adversary
	// MaxSteps bounds the number of delivered messages; 0 means a large
	// default. Guards against runaway (e.g. adversarial) executions.
	MaxSteps int
	// Scheduler selects the event-queue implementation; the zero value
	// (SchedulerAuto) picks heap or calendar from the workload shape. Every
	// scheduler produces the identical event order — the knob exists for
	// benchmarking the structures against each other.
	Scheduler Scheduler
	// Broadcast selects eager or lazy broadcast materialization; the zero
	// value (BroadcastAuto) picks lazily for systems large enough to
	// benefit. Every mode produces the identical event order — see
	// BroadcastMode.
	Broadcast BroadcastMode
	// Timeline is an optional script of state mutations (channel swaps,
	// delay-band shifts, adversary changes, process crashes staged by
	// wrapper processes) applied at scheduled real times, interleaved
	// deterministically with deliveries. See timeline.go; the scenario DSL
	// (internal/scenario) compiles its event scripts onto this. Not
	// supported by sharded engines.
	Timeline []TimedAction
	// EventHint is the expected peak number of buffered events. A hint
	// pre-sizes the queue's backing stores so large-n runs skip
	// growth-doubling copies, and lets SchedulerAuto activate the calendar
	// eagerly instead of migrating mid-run. Zero derives the default from
	// the process count and the resolved broadcast mode: eager broadcasts
	// keep ≈ n² copies plus a timer per process in flight (n² + 2n + 8);
	// lazy broadcasts keep one head per in-flight fan-out plus the timers
	// (DefaultEventHint).
	EventHint int
}

// BroadcastMode selects how Engine.Broadcast populates the event queue.
// Either way the delivery pipeline — delay sampling, adversary retiming,
// channel routing — runs in full at broadcast time (preserving the exact RNG
// stream, channel state evolution and hook order), so both modes produce
// byte-identical executions; the modes differ only in when the n Message
// copies take queue space.
type BroadcastMode uint8

const (
	// BroadcastAuto (the default) materializes lazily for systems of at
	// least lazyBroadcastMinN processes and eagerly below that, where the
	// n² population is trivial and the record indirection isn't worth it.
	BroadcastAuto BroadcastMode = iota
	// BroadcastEager enqueues all n copies of a fan-out immediately — the
	// pre-lazy engine, byte-for-byte, with O(n²) copies buffered per round.
	BroadcastEager
	// BroadcastLazy files one record per fan-out and keeps only the
	// record's earliest undelivered copy in the queue (popping it releases
	// the next), so queue population per round drops from O(n²) to O(n).
	BroadcastLazy
)

// lazyBroadcastMinN is the system size at which BroadcastAuto switches to
// lazy materialization: below it a round's full fan-out population (n²)
// stays cache-resident and the per-pop record hop buys nothing.
const lazyBroadcastMinN = 32

// Resolve returns the concrete mode (eager or lazy) that m selects for an
// n-process system.
func (m BroadcastMode) Resolve(n int) BroadcastMode {
	if m == BroadcastAuto {
		if n >= lazyBroadcastMinN {
			return BroadcastLazy
		}
		return BroadcastEager
	}
	return m
}

// DefaultEventHint is the queue population estimate Config.EventHint
// defaults to: the expected peak number of simultaneously buffered events
// for an n-process all-to-all round under the given broadcast mode.
func DefaultEventHint(m BroadcastMode, n int) int {
	if m.Resolve(n) == BroadcastLazy {
		// One head per in-flight fan-out, one timer per process, slack for
		// overlapping rounds and auxiliary traffic.
		return 4*n + 16
	}
	return n*n + 2*n + 8
}

// Engine executes a system configuration event by event.
type Engine struct {
	procs     []Process
	clocks    []clock.Clock
	faulty    []bool
	nonfaulty []ProcID     // cached ids of non-faulty processes (fixed at New)
	corr      []CorrHolder // per-process CorrHolder, asserted once at New (nil if none)
	// pipe is the delivery pipeline every ordinary copy flows through:
	// DelayStage → AdversaryStage → RouteStage (see pipeline.go). Stage
	// capabilities (batch fast paths, the full-mesh inline route, adversary
	// hooks) are classified once here at New.
	pipe Pipeline
	// advCtl is the adversary controller backing the pipeline's adversary
	// stage; nil when no adversary is configured (the common case).
	advCtl *AdversaryController
	// Reusable per-broadcast buffers (length n), so a batched broadcast
	// performs no allocation.
	bcastDelay []float64
	bcastAt    []clock.Real
	bcastOK    []bool
	seed       int64
	rng        RNG          // delay-sampling stream (splitmix64)
	prand      []*rand.Rand // per-process Context.Rand streams, built lazily
	queue      sched
	now        clock.Real
	seq        uint64
	steps      int
	maxSteps   int
	lazy       bool    // resolved broadcast mode (see BroadcastMode)
	ctx        Context // one reusable per-delivery context per engine

	// Sharded-execution plumbing, nil/zero for ordinary engines (see
	// shard.go). detSeq switches sequence numbering from the shared counter
	// to per-copy packed keys (shard-count independent); senderRNG gives
	// every sender its own delay stream; local marks the processes this
	// engine owns, and cross-shard traffic accumulates in outbox (eager
	// copies, unicasts) and outChunks (lazy fan-out slices per destination
	// shard) until the window barrier exchanges it.
	detSeq     bool
	sidx       []uint64 // per-sender send index feeding packed sequence keys
	senderRNG  []RNG
	local      []bool
	shardOf    []int32
	shardProcs []int32 // processes per shard (chunk capacity hint)
	outbox     []event
	outChunks  [][]bcastChunk
	// Packed-key bit split, sized to the system at NewSharded: a key is
	// from(seqToBits′)|sidx|to(seqToBits) with seqFromShift = 63−seqToBits;
	// sidxMax guards the send-index field (see Engine.packSeq).
	seqToBits    uint
	seqFromShift uint
	sidxMax      uint64

	// Sharded annotation capture: when the ShardedEngine has annotation
	// sinks, per-delivery annotations buffer here (reused across windows)
	// and dispatch in merged deterministic order at the window cut.
	annotCapture bool
	annotBuf     []Annotation

	// Cached nonfaulty local-time spread for the current sample point.
	// Several observers (skew recorder, validity recorder, the invariant
	// checkers) need min/max nonfaulty local time at every sample; the
	// engine computes the O(n) scan once per sample point and serves the
	// rest from this cache. Invalidated whenever real time advances or a
	// delivery/annotation may have changed a correction.
	spreadLo    clock.Local
	spreadHi    clock.Local
	spreadCount int
	spreadAt    clock.Real
	spreadOK    bool

	// Timeline actions pending execution (sorted by At); tlIdx is the next
	// action to fire. See timeline.go.
	timeline []TimedAction
	tlIdx    int

	samplers []Sampler
	annots   []AnnotationSink
	delivery []DeliveryObserver

	msgsSent     int64 // ordinary message copies scheduled
	msgsLost     int64 // copies dropped by the channel
	timersSet    int64
	timersLapsed int64 // timers requested for the past (dropped per §2.2)
}

const defaultMaxSteps = 10_000_000

// New validates the configuration and builds an engine with the START
// messages pending, matching the initial buffer state of §2.2.
func New(cfg Config) (*Engine, error) {
	return newEngine(cfg, nil)
}

// shardSetup carries the per-shard wiring NewSharded injects: which
// processes this engine owns and how many sibling shards exist. It switches
// the engine to deterministic (packed) sequence numbers and per-sender delay
// streams so executions are independent of the shard count.
type shardSetup struct {
	local      []bool
	owner      []int32
	shards     int
	shardProcs []int32
	procBits   int // bit width of a ProcID in packed sequence keys
}

func newEngine(cfg Config, sh *shardSetup) (*Engine, error) {
	n := len(cfg.Procs)
	if n == 0 {
		return nil, errors.New("sim: no processes")
	}
	if len(cfg.Clocks) != n {
		return nil, fmt.Errorf("sim: %d clocks for %d processes", len(cfg.Clocks), n)
	}
	if len(cfg.StartAt) != n {
		return nil, fmt.Errorf("sim: %d start times for %d processes", len(cfg.StartAt), n)
	}
	if cfg.Faulty != nil && len(cfg.Faulty) != n {
		return nil, fmt.Errorf("sim: %d faulty flags for %d processes", len(cfg.Faulty), n)
	}
	for i, p := range cfg.Procs {
		if p == nil {
			return nil, fmt.Errorf("sim: process %d is nil", i)
		}
		if cfg.Clocks[i] == nil {
			return nil, fmt.Errorf("sim: clock %d is nil", i)
		}
	}
	delay := cfg.Delay
	if delay == nil {
		return nil, errors.New("sim: nil delay model")
	}
	if d, eps := delay.Bounds(); d < eps || eps < 0 {
		return nil, fmt.Errorf("sim: delay bounds δ=%v ε=%v violate assumption A3 (0 ≤ ε ≤ δ)", d, eps)
	}
	ch := cfg.Channel
	if ch == nil {
		ch = FullMesh{}
	}
	faulty := cfg.Faulty
	if faulty == nil {
		faulty = make([]bool, n)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	e := &Engine{
		procs:    cfg.Procs,
		clocks:   cfg.Clocks,
		faulty:   faulty,
		seed:     cfg.Seed,
		rng:      NewRNG(cfg.Seed),
		prand:    make([]*rand.Rand, n),
		maxSteps: maxSteps,
	}
	e.ctx.eng = e
	// Assemble the delivery pipeline, classifying each stage's capabilities
	// (batch fast paths, the full-mesh inline route, adversary hooks) once.
	if cfg.Adversary != nil {
		d, eps := delay.Bounds()
		e.advCtl = newAdversaryController(e, cfg.Adversary, d, eps)
	}
	e.pipe = newPipeline(delay, ch, e.advCtl)
	e.bcastDelay = make([]float64, n)
	e.bcastAt = make([]clock.Real, n)
	e.bcastOK = make([]bool, n)
	e.corr = make([]CorrHolder, n)
	for i, p := range cfg.Procs {
		if h, ok := p.(CorrHolder); ok {
			e.corr[i] = h
		}
	}
	e.nonfaulty = make([]ProcID, 0, n)
	for i, f := range faulty {
		if !f {
			e.nonfaulty = append(e.nonfaulty, ProcID(i))
		}
	}
	e.lazy = cfg.Broadcast.Resolve(n) == BroadcastLazy
	if err := e.initTimeline(cfg.Timeline); err != nil {
		return nil, err
	}
	if sh != nil {
		e.detSeq = true
		e.sidx = make([]uint64, n)
		e.senderRNG = make([]RNG, n)
		for i := range e.senderRNG {
			e.senderRNG[i] = NewRNG(senderSeed(cfg.Seed, ProcID(i)))
		}
		e.local = sh.local
		e.shardOf = sh.owner
		e.shardProcs = sh.shardProcs
		e.outChunks = make([][]bcastChunk, sh.shards)
		e.seqToBits = uint(sh.procBits)
		e.seqFromShift = uint(63 - sh.procBits)
		e.sidxMax = uint64(1)<<(63-2*sh.procBits) - 1
	}
	// Pre-size the queue's backing stores for the expected peak population
	// under the resolved broadcast mode (see Config.EventHint), unless the
	// workload supplied a sharper hint. The hint also decides the scheduler
	// shape up front (see Scheduler/EventHint), so large-n runs start on
	// the calendar with no mid-run migration.
	hint := cfg.EventHint
	if hint <= 0 {
		mode := BroadcastEager
		if e.lazy {
			mode = BroadcastLazy
		}
		hint = DefaultEventHint(mode, n)
	}
	d, eps := delay.Bounds()
	sched := cfg.Scheduler
	if sched == SchedulerAuto && e.lazy {
		// Auto-lazy means the workload is a broadcast storm whose *traffic
		// rate* is O(n²) per delay window even though the buffered
		// population is only O(n) — too small to ever trip the calendar's
		// population-based migration, yet each delivery re-pushes a record
		// head, which the calendar files in O(1) where the heap pays a
		// sift. Activate the calendar on the traffic shape directly (the
		// stores stay sized by the small lazy hint).
		sched = SchedulerCalendar
	}
	e.queue.init(sched, hint, d, eps)
	e.queue.grow(hint)
	for i := 0; i < n; i++ {
		if e.local != nil && !e.local[i] {
			continue // sharded: a process STARTs on its home shard only
		}
		e.push(Message{
			From:      ProcID(i),
			To:        ProcID(i),
			Kind:      KindStart,
			SentAt:    cfg.StartAt[i],
			DeliverAt: cfg.StartAt[i],
		})
	}
	return e, nil
}

// Observe registers an observer, classifying it once by capability. Must be
// called before Run. It panics if o implements none of the observer
// interfaces — such a registration would silently observe nothing.
func (e *Engine) Observe(o Observer) {
	matched := false
	if s, ok := o.(Sampler); ok {
		e.samplers = append(e.samplers, s)
		matched = true
	}
	if a, ok := o.(AnnotationSink); ok {
		e.annots = append(e.annots, a)
		matched = true
	}
	if d, ok := o.(DeliveryObserver); ok {
		e.delivery = append(e.delivery, d)
		matched = true
	}
	if !matched {
		panic(fmt.Sprintf("sim: Observe(%T): type implements none of Sampler, AnnotationSink, DeliveryObserver", o))
	}
}

// N returns the number of processes.
func (e *Engine) N() int { return len(e.procs) }

// Now returns the current real time (the delivery time of the last action).
func (e *Engine) Now() clock.Real { return e.now }

// Steps returns the number of delivered messages so far.
func (e *Engine) Steps() int { return e.steps }

// LazyBroadcast reports whether the engine resolved to lazy broadcast
// materialization (see BroadcastMode).
func (e *Engine) LazyBroadcast() bool { return e.lazy }

// QueueLen returns the current number of structural queue entries: buffered
// events plus one head per in-flight lazy broadcast (each record's
// unmaterialized copies occupy no queue slots).
func (e *Engine) QueueLen() int { return e.queue.len() }

// QueuePeak returns the high-water mark of QueueLen over the execution —
// the population the queue structures actually had to organize. Under eager
// broadcasts a round peaks at O(n²); under lazy ones at O(n). The benchjson
// memory metric reports this.
func (e *Engine) QueuePeak() int { return e.queue.peak }

// MessagesSent returns the count of ordinary message copies scheduled so far
// (the paper's per-round message complexity derives from this).
func (e *Engine) MessagesSent() int64 { return e.msgsSent }

// MessagesLost returns copies dropped by the channel (nonzero only for lossy
// channels such as the §9.3 Ethernet model).
func (e *Engine) MessagesLost() int64 { return e.msgsLost }

// TimersLapsed returns how many set-timer calls named a time already past.
func (e *Engine) TimersLapsed() int64 { return e.timersLapsed }

// Faulty reports whether p is marked faulty in the configuration.
func (e *Engine) Faulty(p ProcID) bool { return e.faulty[p] }

// NonfaultyIDs returns the ids of processes not marked faulty. The slice is
// computed once at New (the fault assignment is fixed for the execution) and
// shared: callers must not modify it. Rebuilding it allocated on every
// metrics sample, which dominated the observer hot path.
func (e *Engine) NonfaultyIDs() []ProcID { return e.nonfaulty }

// PhysTime returns Ph_p(t).
func (e *Engine) PhysTime(p ProcID, t clock.Real) clock.Local {
	return e.clocks[p].At(t)
}

// LocalTime returns L_p(t) = Ph_p(t) + CORR_p for the process's current CORR
// value. ok is false if the process does not expose a correction variable.
func (e *Engine) LocalTime(p ProcID, t clock.Real) (clock.Local, bool) {
	h := e.corr[p]
	if h == nil {
		return 0, false
	}
	return e.clocks[p].At(t) + h.Corr(), true
}

// LocalTimeSpread returns the minimum and maximum nonfaulty local times at
// real time t in one pass over the cached nonfaulty ids, together with how
// many processes exposed a local time. When t is the current sample point the
// result is cached, so every observer interrogating the spread at the same
// instant (skew, validity, the invariant checkers) shares a single O(n) clock
// scan instead of each walking all clocks itself.
func (e *Engine) LocalTimeSpread(t clock.Real) (lo, hi clock.Local, count int) {
	if e.spreadOK && e.spreadAt == t {
		return e.spreadLo, e.spreadHi, e.spreadCount
	}
	lo, hi = clock.Local(math.Inf(1)), clock.Local(math.Inf(-1))
	for _, p := range e.nonfaulty {
		h := e.corr[p]
		if h == nil {
			continue
		}
		v := e.clocks[p].At(t) + h.Corr()
		count++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if t == e.now {
		e.spreadLo, e.spreadHi, e.spreadCount = lo, hi, count
		e.spreadAt, e.spreadOK = t, true
	}
	return lo, hi, count
}

// Process returns the automaton of p (used by tests and metrics).
func (e *Engine) Process(p ProcID) Process { return e.procs[p] }

// Pipeline returns the engine's delivery pipeline (used by tests asserting
// stage classification).
func (e *Engine) Pipeline() *Pipeline { return &e.pipe }

// Adversary returns the engine's adversary controller, nil when no
// adversary is installed.
func (e *Engine) Adversary() *AdversaryController { return e.advCtl }

// Run processes events in delivery order until the queue empties, real time
// would exceed until, or the step limit is hit (an error). It may be called
// repeatedly with increasing horizons.
func (e *Engine) Run(until clock.Real) error {
	var m Message
	for {
		at, ok := e.queue.peekTime()
		if e.tlIdx < len(e.timeline) {
			// Fire timeline actions due before the next delivery (ties go
			// to the action) or, when the queue is drained past them, before
			// the horizon. An action may swap routing/delay/adversary state
			// or enqueue traffic, so re-peek afterwards.
			bound := until
			if ok && at < bound {
				bound = at
			}
			if e.fireTimeline(bound) {
				continue
			}
		}
		if !ok || at > until {
			// Advance the clock to the horizon so metrics sampled at
			// e.Now() reflect the full interval.
			if e.now < until {
				e.now = until
				e.spreadOK = false
				e.sample(true)
			}
			return nil
		}
		if e.steps >= e.maxSteps {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxSteps, e.now)
		}
		e.queue.popMsg(&m)
		e.now = m.DeliverAt
		e.spreadOK = false
		e.steps++
		// The observer fan-outs are pre-classified at Observe time; skip
		// the call overhead entirely on the (benchmark-typical) paths with
		// nobody listening rather than iterating empty slices per event.
		if len(e.samplers) > 0 {
			e.sample(true) // configuration immediately before the action
		}
		for _, d := range e.delivery {
			d.OnDeliver(e, m)
		}
		if e.advCtl != nil && m.Kind == KindOrdinary {
			// The adversary's observed-arrival record: every ordinary
			// delivery, announced immediately before the recipient acts.
			e.advCtl.onReceive(m)
		}
		e.ctx.pid = m.To
		e.procs[m.To].Receive(&e.ctx, m)
		e.spreadOK = false // the delivery may have changed a correction
		if len(e.samplers) > 0 {
			e.sample(false) // configuration immediately after the action
		}
	}
}

func (e *Engine) sample(pre bool) {
	for _, s := range e.samplers {
		s.Sample(e, pre)
	}
}

func (e *Engine) annotate(p ProcID, tag string, v float64) {
	// Annotations fire mid-Receive, typically right after the process
	// changed its correction, so a spread cached at the pre-delivery sample
	// is stale for sinks that read clocks now.
	e.spreadOK = false
	a := Annotation{At: e.now, Proc: p, Tag: tag, Value: v}
	if e.annotCapture {
		// Sharded execution: buffer for deterministic merged dispatch at
		// the window cut (see ShardedEngine.dispatchAnnotations).
		e.annotBuf = append(e.annotBuf, a)
		return
	}
	for _, s := range e.annots {
		s.OnAnnotation(e, a)
	}
}

// Broadcast schedules one ordinary message copy from p to every process,
// including itself, as a single batched fan-out through the delivery
// pipeline: delays for all n copies are sampled in one call (in fixed pid
// order, drawing exactly the stream the per-copy path would), the adversary
// stage — when installed — retimes each copy inside its clamp envelope, and
// the route stage maps them to delivery times in one pass. The pipeline runs
// in full here regardless of materialization mode, so the RNG stream, any
// channel state (e.g. Ether contention), the send hooks and the sent/lost
// counters evolve identically whether copies then enter the queue eagerly
// (one queue slot per copy) or lazily (one record whose copies surface at
// pop time — see BroadcastMode and bcastRec). The payload is shared across
// copies, and the per-copy (DeliverAt, seq) order is identical to n
// successive Send calls, so executions are byte-for-byte unchanged.
func (e *Engine) Broadcast(from ProcID, payload any) {
	n := len(e.procs)
	base, at, ok := e.bcastDelay[:n], e.bcastAt[:n], e.bcastOK[:n]
	e.pipe.broadcast(from, n, e.now, e.rngFor(from), base, at, ok)
	var sidx uint64
	if e.detSeq {
		sidx = e.sidx[from]
		e.sidx[from]++
	}
	if e.lazy {
		e.broadcastLazy(from, payload, at, ok, sidx)
		return
	}
	// Eager: one template event, patched per receiver — the 64-byte struct
	// and its write-barriered Payload words are built once and copied
	// exactly once per copy, into the queue slot.
	ev := event{msg: Message{From: from, Kind: KindOrdinary, Payload: payload, SentAt: e.now}}
	for q := 0; q < n; q++ {
		if !ok[q] {
			e.msgsLost++
			continue
		}
		e.msgsSent++
		ev.msg.To = ProcID(q)
		ev.msg.DeliverAt = at[q]
		if e.detSeq {
			ev.seq = e.packSeq(from, sidx, ProcID(q))
		} else {
			ev.seq = e.seq
			e.seq++
		}
		if e.local != nil && !e.local[q] {
			e.outbox = append(e.outbox, ev)
		} else {
			e.queue.push(&ev)
		}
		if e.advCtl != nil {
			e.advCtl.onSend(ev.msg)
		}
	}
}

// broadcastLazy is Broadcast's lazy tail: per-copy accounting and hooks run
// here, in pid order, exactly as the eager loop would, then the surviving
// copies are filed as one record (plus, in sharded mode, one chunk per
// remote shard) instead of n queue slots.
func (e *Engine) broadcastLazy(from ProcID, payload any, at []clock.Real, ok []bool, sidx uint64) {
	seqBase := e.seq
	if e.detSeq {
		seqBase = e.packSeq(from, sidx, 0)
	}
	delivered := uint64(0)
	for q := range ok {
		if !ok[q] {
			e.msgsLost++
			continue
		}
		e.msgsSent++
		if e.advCtl != nil {
			e.advCtl.onSend(Message{
				From: from, To: ProcID(q), Kind: KindOrdinary,
				Payload: payload, SentAt: e.now, DeliverAt: at[q],
			})
		}
		delivered++
	}
	if !e.detSeq {
		e.seq += delivered
	}
	if delivered == 0 {
		return
	}
	if e.local != nil {
		// Sharded: file the remote copies as one chunk per destination
		// shard (adopted into that shard's record store at the barrier).
		e.chunkRemote(from, payload, at, ok, seqBase)
	}
	e.queue.pushBroadcast(from, e.now, payload, at, ok, e.local, seqBase, e.detSeq)
}

// chunkRemote splits a lazy fan-out's non-local copies into per-destination-
// shard chunks, sorted and sequence-keyed exactly as the destination's
// record chain requires.
func (e *Engine) chunkRemote(from ProcID, payload any, at []clock.Real, ok []bool, seqBase uint64) {
	for q := range ok {
		if !ok[q] || e.local[q] {
			continue
		}
		d := e.shardOf[q]
		cl := e.outChunks[d]
		if len(cl) == 0 || cl[len(cl)-1].from != from || cl[len(cl)-1].seqBase != seqBase {
			// Chunk copies recycle through the shard's copy pool: adopted
			// chunks return their capacity on exhaustion (advanceBcast), and
			// cross-shard traffic is symmetric enough that the pool feeds the
			// outgoing side — steady-state windows allocate no chunk storage.
			copies := e.queue.takeCopySlice()
			if copies == nil {
				copies = make([]bcopy, 0, e.shardProcs[d])
			}
			cl = append(cl, bcastChunk{
				from: from, sentAt: e.now, payload: payload,
				seqBase: seqBase, det: true, copies: copies,
			})
		}
		ch := &cl[len(cl)-1]
		ch.copies = append(ch.copies, bcopy{at: float64(at[q]), pid: int32(q), rank: int32(q)})
		e.outChunks[d] = cl
	}
	for d := range e.outChunks {
		cl := e.outChunks[d]
		if len(cl) > 0 && cl[len(cl)-1].seqBase == seqBase && cl[len(cl)-1].from == from {
			sortCopies(cl[len(cl)-1].copies)
		}
	}
}

// send schedules one ordinary message copy through the delivery pipeline.
func (e *Engine) send(from, to ProcID, payload any) {
	at, ok := e.pipe.unicast(from, to, e.now, e.rngFor(from))
	var sidx uint64
	if e.detSeq {
		sidx = e.sidx[from]
		e.sidx[from]++
	}
	if !ok {
		e.msgsLost++
		return
	}
	e.msgsSent++
	m := Message{From: from, To: to, Kind: KindOrdinary, Payload: payload, SentAt: e.now, DeliverAt: at}
	if e.detSeq {
		ev := event{msg: m, seq: e.packSeq(from, sidx, to)}
		if e.local != nil && !e.local[to] {
			e.outbox = append(e.outbox, ev)
		} else {
			e.queue.push(&ev)
		}
	} else {
		e.push(m)
	}
	if e.advCtl != nil {
		e.advCtl.onSend(m)
	}
}

// rngFor returns the delay-sampling stream for copies sent by p: the single
// engine stream normally, p's own stream in sharded executions (see
// senderSeed).
func (e *Engine) rngFor(p ProcID) *RNG {
	if e.senderRNG != nil {
		return &e.senderRNG[p]
	}
	return &e.rng
}

// setTimer places a TIMER for process p at physical-clock time T, i.e. real
// time Ph_p⁻¹(T); a timer for the past is dropped (§2.2).
func (e *Engine) setTimer(p ProcID, T clock.Local, payload any) {
	at := e.clocks[p].Inv(T)
	if at <= e.now {
		e.timersLapsed++
		return
	}
	e.timersSet++
	e.push(Message{From: p, To: p, Kind: KindTimer, Payload: payload, SentAt: e.now, DeliverAt: at})
}

// Context is the interface a process step has to the system: its identity,
// its physical clock reading, and the actions the model allows (send,
// broadcast, set a timer). A Context is valid only for the duration of the
// Receive call it was passed to; the engine reuses one context across
// deliveries, so a process must never retain it.
type Context struct {
	eng *Engine
	pid ProcID
}

// ID returns the process's own id.
func (c *Context) ID() ProcID { return c.pid }

// N returns the total number of processes in the system.
func (c *Context) N() int { return len(c.eng.procs) }

// PhysNow returns the process's physical clock reading Ph_p(t) at the current
// instant. Processes never see real time.
func (c *Context) PhysNow() clock.Local { return c.eng.clocks[c.pid].At(c.eng.now) }

// Send places an ordinary message to q in the buffer.
func (c *Context) Send(to ProcID, payload any) { c.eng.send(c.pid, to, payload) }

// Broadcast sends the payload to every process, including the sender (§2.2:
// every process can communicate with every process, including itself). Each
// copy's delay is drawn independently within [δ−ε, δ+ε]. The fan-out runs
// through the engine's batched path (Engine.Broadcast): one delay-sampling
// call, one routing call, one queue pass for all n copies.
func (c *Context) Broadcast(payload any) { c.eng.Broadcast(c.pid, payload) }

// SetTimer requests a TIMER interrupt when the process's physical clock
// reaches T. The payload is returned in the TIMER message.
func (c *Context) SetTimer(T clock.Local, payload any) { c.eng.setTimer(c.pid, T, payload) }

// Annotate emits a measurement observers can timestamp with real time.
func (c *Context) Annotate(tag string, v float64) { c.eng.annotate(c.pid, tag, v) }

// Rand returns the process's deterministic random source (used by randomized
// fault strategies; nonfaulty algorithms in this repository are deterministic
// and never call it). The generator is created on first use, seeded from the
// engine seed and the process id, and cached for the rest of the execution,
// so consecutive calls continue one stream. (It was previously re-seeded from
// (pid, step count) on every call, which made two calls within a single
// Receive return identical values.)
func (c *Context) Rand() *rand.Rand {
	e := c.eng
	if r := e.prand[c.pid]; r != nil {
		return r
	}
	r := rand.New(rand.NewSource(procSeed(e.seed, c.pid)))
	e.prand[c.pid] = r
	return r
}
