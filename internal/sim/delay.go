package sim

import "repro/internal/clock"

// DelayModel realizes assumption A3: every message delay lies in [δ−ε, δ+ε].
// Implementations must be deterministic given the rng stream so runs are
// reproducible.
type DelayModel interface {
	// Sample returns the delay for one message copy. rng is the engine's
	// allocation-free splitmix64 stream; models that need randomness draw
	// from it, others ignore it.
	Sample(from, to ProcID, at clock.Real, rng *RNG) float64
	// Bounds returns (δ, ε).
	Bounds() (delta, eps float64)
}

// BatchDelayModel is the broadcast fan-out fast path: SampleAll fills
// out[q] with the delay of the copy to process q for q = 0..n−1, exactly
// the values n successive Sample(from, q, …) calls would return — same rng
// draws, same fixed pid order — but with one call for the whole fan-out.
// Models that don't implement it are sampled per copy by the engine, with
// identical results.
type BatchDelayModel interface {
	DelayModel
	SampleAll(from ProcID, n int, at clock.Real, rng *RNG, out []float64)
}

// ConstantDelay delivers every message in exactly δ (ε = 0) — the idealized
// network in which the algorithm's estimator ARR−(T+δ) is exact.
type ConstantDelay struct {
	Delta float64
}

var _ BatchDelayModel = ConstantDelay{}

// Sample implements DelayModel.
func (d ConstantDelay) Sample(_, _ ProcID, _ clock.Real, _ *RNG) float64 { return d.Delta }

// SampleAll implements BatchDelayModel.
func (d ConstantDelay) SampleAll(_ ProcID, n int, _ clock.Real, _ *RNG, out []float64) {
	for q := 0; q < n; q++ {
		out[q] = d.Delta
	}
}

// Bounds implements DelayModel.
func (d ConstantDelay) Bounds() (float64, float64) { return d.Delta, 0 }

// UniformDelay draws each delay uniformly from [δ−ε, δ+ε], the standard
// benign model.
type UniformDelay struct {
	Delta float64
	Eps   float64
}

var _ BatchDelayModel = UniformDelay{}

// Sample implements DelayModel.
func (d UniformDelay) Sample(_, _ ProcID, _ clock.Real, rng *RNG) float64 {
	return d.Delta - d.Eps + 2*d.Eps*rng.Float64()
}

// SampleAll implements BatchDelayModel: n draws from the same stream in the
// same order as n Sample calls, without the per-copy interface dispatch.
func (d UniformDelay) SampleAll(_ ProcID, n int, _ clock.Real, rng *RNG, out []float64) {
	lo, span := d.Delta-d.Eps, 2*d.Eps
	for q := 0; q < n; q++ {
		out[q] = lo + span*rng.Float64()
	}
}

// Bounds implements DelayModel.
func (d UniformDelay) Bounds() (float64, float64) { return d.Delta, d.Eps }

// ExtremalDelay is the adversarial network: every delay is pinned to one end
// of the band depending on the recipient, which maximizes the error of the
// arrival-time estimator (the ±ε term of Lemma 5). With SlowTo selecting
// half the processes, it drives executions toward the 4ε skew floor.
type ExtremalDelay struct {
	Delta float64
	Eps   float64
	// SlowTo reports whether messages *to* q take δ+ε (otherwise δ−ε).
	// A nil SlowTo slows the upper half of the id space.
	SlowTo func(from, to ProcID) bool
}

var _ BatchDelayModel = ExtremalDelay{}

// SampleAll implements BatchDelayModel.
func (d ExtremalDelay) SampleAll(from ProcID, n int, at clock.Real, rng *RNG, out []float64) {
	for q := 0; q < n; q++ {
		out[q] = d.Sample(from, ProcID(q), at, rng)
	}
}

// Sample implements DelayModel.
func (d ExtremalDelay) Sample(from, to ProcID, _ clock.Real, _ *RNG) float64 {
	slow := false
	if d.SlowTo != nil {
		slow = d.SlowTo(from, to)
	} else {
		slow = int(to)%2 == 1
	}
	if slow {
		return d.Delta + d.Eps
	}
	return d.Delta - d.Eps
}

// Bounds implements DelayModel.
func (d ExtremalDelay) Bounds() (float64, float64) { return d.Delta, d.Eps }

// PerLinkDelay gives each ordered link (p,q) a fixed delay in [δ−ε, δ+ε],
// deterministically derived from the seed — a network with stable asymmetric
// latencies, the hardest benign case for validity.
type PerLinkDelay struct {
	Delta float64
	Eps   float64
	Seed  int64
}

var _ BatchDelayModel = PerLinkDelay{}

// SampleAll implements BatchDelayModel.
func (d PerLinkDelay) SampleAll(from ProcID, n int, at clock.Real, rng *RNG, out []float64) {
	for q := 0; q < n; q++ {
		out[q] = d.Sample(from, ProcID(q), at, rng)
	}
}

// Sample implements DelayModel.
func (d PerLinkDelay) Sample(from, to ProcID, _ clock.Real, _ *RNG) float64 {
	h := uint64(d.Seed)*0x9E3779B97F4A7C15 + uint64(from)*0xBF58476D1CE4E5B9 + uint64(to)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	frac := float64(h%(1<<52)) / float64(uint64(1)<<52)
	return d.Delta - d.Eps + 2*d.Eps*frac
}

// Bounds implements DelayModel.
func (d PerLinkDelay) Bounds() (float64, float64) { return d.Delta, d.Eps }

// CenterDelay declares the full [δ−ε, δ+ε] uncertainty band of assumption
// A3 but samples every delay at the band center δ. It is the substrate of
// the lower-bound experiments (E18): the ε-freedom belongs entirely to the
// adversary stage of the delivery pipeline rather than to ambient sampling
// noise, so any skew beyond the drift floor is attributable to deliberate
// retiming inside the window — exactly the adversary of the shifting
// argument.
type CenterDelay struct {
	Delta float64
	Eps   float64
}

var _ BatchDelayModel = CenterDelay{}

// Sample implements DelayModel.
func (d CenterDelay) Sample(_, _ ProcID, _ clock.Real, _ *RNG) float64 { return d.Delta }

// SampleAll implements BatchDelayModel.
func (d CenterDelay) SampleAll(_ ProcID, n int, _ clock.Real, _ *RNG, out []float64) {
	for q := 0; q < n; q++ {
		out[q] = d.Delta
	}
}

// Bounds implements DelayModel.
func (d CenterDelay) Bounds() (float64, float64) { return d.Delta, d.Eps }

// FullMesh is the reliable fully connected channel: every copy is delivered
// at sentAt + delay. The delivery pipeline's RouteStage recognizes it and
// routes fan-outs inline (batched fan-out routing lives there; channels
// only implement the per-copy Route).
type FullMesh struct{}

// Route implements Channel.
func (FullMesh) Route(_, _ ProcID, sentAt clock.Real, baseDelay float64) (clock.Real, bool) {
	return sentAt + clock.Real(baseDelay), true
}
