package sim

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/clock"
)

// spreadProc is a minimal CorrHolder automaton: it re-arms a periodic timer
// and nudges its correction on every delivery, so local times keep changing
// and the spread cache is exercised across invalidations.
type spreadProc struct {
	corr clock.Local
	step clock.Local
}

func (p *spreadProc) Receive(ctx *Context, m Message) {
	p.corr += p.step
	if m.Kind == KindOrdinary {
		return
	}
	ctx.Broadcast(nil)
	ctx.SetTimer(ctx.PhysNow()+5e-3, nil)
}

func (p *spreadProc) Corr() clock.Local { return p.corr }

func newSpreadEngine(t testing.TB, n int) *Engine {
	procs := make([]Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	for i := range procs {
		procs[i] = &spreadProc{corr: clock.Local(i) * 1e-3, step: clock.Local(i%3-1) * 1e-6}
		clocks[i] = clock.Linear(clock.Local(i)*1e-4, 1+1e-5*float64(i%2))
		starts[i] = clock.Real(i) * 1e-4
	}
	eng, err := New(Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   UniformDelay{Delta: 2e-3, Eps: 1e-3},
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// legacySpread is the pre-batching scan every observer used to run for
// itself: one LocalTime call per nonfaulty process per observer. Kept as the
// reference implementation for the correctness check and the "before" side
// of the benchmark.
func legacySpread(e *Engine, t clock.Real) (lo, hi clock.Local, count int) {
	lo, hi = clock.Local(math.Inf(1)), clock.Local(math.Inf(-1))
	for _, p := range e.NonfaultyIDs() {
		lt, ok := e.LocalTime(p, t)
		if !ok {
			continue
		}
		count++
		if lt < lo {
			lo = lt
		}
		if lt > hi {
			hi = lt
		}
	}
	return lo, hi, count
}

// spreadChecker cross-checks the cached spread against a fresh legacy scan at
// every sample point, pre and post delivery, including repeated reads (which
// hit the cache).
type spreadChecker struct {
	t       *testing.T
	samples int
}

func (c *spreadChecker) Sample(e *Engine, pre bool) {
	c.samples++
	wantLo, wantHi, wantN := legacySpread(e, e.Now())
	for i := 0; i < 2; i++ { // second read must serve the cache, unchanged
		lo, hi, n := e.LocalTimeSpread(e.Now())
		if lo != wantLo || hi != wantHi || n != wantN {
			c.t.Fatalf("sample %d (pre=%v, read %d): LocalTimeSpread = (%v, %v, %d), legacy scan = (%v, %v, %d)",
				c.samples, pre, i, lo, hi, n, wantLo, wantHi, wantN)
		}
	}
}

func TestLocalTimeSpreadMatchesLegacyScan(t *testing.T) {
	eng := newSpreadEngine(t, 9)
	chk := &spreadChecker{t: t}
	eng.Observe(chk)
	if err := eng.Run(0.5); err != nil {
		t.Fatal(err)
	}
	if chk.samples < 1000 {
		t.Fatalf("only %d samples; workload too small to be meaningful", chk.samples)
	}
}

// TestLocalTimeSpreadHistoricalTime checks that asking for a time other than
// the current sample point bypasses (and does not poison) the cache.
func TestLocalTimeSpreadHistoricalTime(t *testing.T) {
	eng := newSpreadEngine(t, 5)
	if err := eng.Run(0.2); err != nil {
		t.Fatal(err)
	}
	now := eng.Now()
	lo, hi, n := eng.LocalTimeSpread(now) // cache now
	past := now - 0.05
	plo, phi, pn := eng.LocalTimeSpread(past)
	wlo, whi, wn := legacySpread(eng, past)
	if plo != wlo || phi != whi || pn != wn {
		t.Fatalf("historical spread = (%v, %v, %d), want (%v, %v, %d)", plo, phi, pn, wlo, whi, wn)
	}
	if l2, h2, n2 := eng.LocalTimeSpread(now); l2 != lo || h2 != hi || n2 != n {
		t.Fatalf("cache poisoned by historical query: (%v, %v, %d) != (%v, %v, %d)", l2, h2, n2, lo, hi, n)
	}
}

// BenchmarkSpreadScan compares the cost of one sample point's spread reads
// before and after batching. The standard experiment harness attaches three
// spread readers (skew recorder, validity recorder, and — with conformance
// checking on — the agreement invariant), so one iteration is three reads:
// per-observer-rescan walks all clocks for each reader (the old behavior),
// batched-cached walks once and serves the rest from the engine cache.
func BenchmarkSpreadScan(b *testing.B) {
	const readers = 3
	for _, n := range []int{7, 31} {
		eng := newSpreadEngine(b, n)
		if err := eng.Run(0.1); err != nil {
			b.Fatal(err)
		}
		t := eng.Now()
		b.Run("per-observer-rescan/n="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < readers; r++ {
					legacySpread(eng, t)
				}
			}
		})
		b.Run("batched-cached/n="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.spreadOK = false // new sample point
				for r := 0; r < readers; r++ {
					eng.LocalTimeSpread(t)
				}
			}
		})
	}
}
