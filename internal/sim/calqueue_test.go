package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/clock"
)

// TestSchedulerEquivalenceOnEngine runs one full engine workload — beacon
// processes broadcasting every period on drifting clocks, big enough that
// SchedulerAuto activates the calendar — under all three scheduler modes
// and demands bit-identical delivery sequences: same (DeliverAt, From, To,
// Kind) for every event, in the same order. This is the engine-level
// counterpart of the queue differential test; together with the golden
// experiment tables it backs the claim that the scheduler is a pure
// performance knob.
func TestSchedulerEquivalenceOnEngine(t *testing.T) {
	type delivered struct {
		at   clock.Real
		from ProcID
		to   ProcID
		kind Kind
	}
	run := func(s Scheduler) []delivered {
		t.Helper()
		const n = 26 // n² ≈ 700 in-flight: crosses calActivateLen
		procs := make([]Process, n)
		clocks := make([]clock.Clock, n)
		starts := make([]clock.Real, n)
		drift := clock.ConstantDrift{RhoBound: 1e-5}
		for i := range procs {
			procs[i] = &testBeacon{period: 1e-3}
			clocks[i] = drift.Build(i, n)
			starts[i] = clock.Real(i) * 1e-4
		}
		eng, err := New(Config{
			Procs:     procs,
			Clocks:    clocks,
			StartAt:   starts,
			Delay:     UniformDelay{Delta: 4e-4, Eps: 1e-4},
			Seed:      7,
			Scheduler: s,
		})
		if err != nil {
			t.Fatal(err)
		}
		var log []delivered
		eng.Observe(observerFunc(func(_ *Engine, m Message) {
			log = append(log, delivered{at: m.DeliverAt, from: m.From, to: m.To, kind: m.Kind})
		}))
		if err := eng.Run(0.05); err != nil {
			t.Fatal(err)
		}
		if len(log) < 10*n*n {
			t.Fatalf("scheduler %d: only %d deliveries — not a meaningful comparison", s, len(log))
		}
		return log
	}

	heap := run(SchedulerHeap)
	for _, s := range []Scheduler{SchedulerAuto, SchedulerCalendar} {
		got := run(s)
		if len(got) != len(heap) {
			t.Fatalf("scheduler %d delivered %d events, heap delivered %d", s, len(got), len(heap))
		}
		for i := range got {
			if got[i] != heap[i] {
				t.Fatalf("scheduler %d diverges at event %d: %+v vs heap %+v", s, i, got[i], heap[i])
			}
		}
	}
}

// testBeacon is a minimal self-sustaining broadcaster (the bench beacon,
// local to the sim tests).
type testBeacon struct{ period clock.Local }

func (b *testBeacon) Receive(ctx *Context, m Message) {
	if m.Kind == KindOrdinary {
		return
	}
	ctx.Broadcast(nil)
	ctx.SetTimer(ctx.PhysNow()+b.period, nil)
}

// observerFunc adapts a function to DeliveryObserver.
type observerFunc func(e *Engine, m Message)

func (f observerFunc) OnDeliver(e *Engine, m Message) { f(e, m) }

// TestSlabReleasesPayload is the calendar-mode counterpart of
// TestQueuePopReleasesPayload: once an event is popped, no slab slot may
// keep its Payload alive.
func TestSlabReleasesPayload(t *testing.T) {
	s := &sched{}
	s.init(SchedulerCalendar, 0, 1e-2, 1e-3)
	for i := 0; i < 10; i++ {
		ev := event{msg: Message{Payload: "x", DeliverAt: clock.Real(i) * 1e-3}, seq: uint64(i)}
		s.push(&ev)
	}
	for s.len() > 0 {
		s.pop()
	}
	for i := range s.slab.msgs {
		if s.slab.msgs[i].Payload != nil {
			t.Fatalf("slab slot %d still holds payload %v after drain", i, s.slab.msgs[i].Payload)
		}
	}
}

// TestCalendarTunerConverges checks the width tuner's two signals on the
// adversarial shape that used to defeat it: traffic whose spread is far
// wider than the declared delay window (the horizon signal must widen and
// stay widened — it is sticky), interleaved with dense same-instant spikes
// (the resolution signal must not shrink the window back below the observed
// spread, which would send whole clusters through the overflow heap every
// rotation).
func TestCalendarTunerConverges(t *testing.T) {
	s := &sched{}
	s.init(SchedulerCalendar, 1024, 1e-3, 0) // declared span 1ms
	rng := rand.New(rand.NewSource(5))

	floor := clock.Real(0)
	seq := uint64(0)
	var pending []event
	push := func(at clock.Real) {
		ev := event{msg: Message{DeliverAt: at}, seq: seq}
		seq++
		s.push(&ev)
		pending = append(pending, ev)
	}
	drain := func() { // drain and verify order against the naive reference
		t.Helper()
		for s.len() > 0 {
			got := s.pop()
			min := 0
			for i := range pending {
				if eventLess(&pending[i], &pending[min]) {
					min = i
				}
			}
			if got.seq != pending[min].seq {
				t.Fatalf("pop seq %d, naive min seq %d", got.seq, pending[min].seq)
			}
			pending = append(pending[:min], pending[min+1:]...)
			floor = got.msg.DeliverAt
		}
	}
	for round := 0; round < 6; round++ {
		base := floor + 0.1 // far jump: forces a rotation per round
		// 200 events spread over 8 ms — 8× the declared span — plus a
		// same-instant spike of 40.
		for i := 0; i < 200; i++ {
			push(base + clock.Real(rng.Float64()*8e-3))
		}
		for i := 0; i < 40; i++ {
			push(base + 4e-3)
		}
		drain()
	}
	// After several rounds the window must cover the observed ~8ms spread
	// (the exact spread is the max of the random draws, a hair under 8ms):
	// the sticky horizon floor guarantees rotations stop spilling.
	if got := s.cal.width * float64(len(s.cal.buckets)); got < 7.5e-3 {
		t.Fatalf("tuned horizon %.3gs never grew to the observed ~8ms spread", got)
	}
}

// TestCalendarTunerIgnoresGapSeparatedClusters checks the horizon signal's
// contiguity band: clusters whose spacing fits inside nearLimit but leaves a
// dead gap wider than the contiguity lead must NOT stretch the window across
// the gap — the rotation machinery jumps it instead. (K-exchange sub-rounds
// at sub-period P/k land exactly here; before the band, the tuner widened
// the span to the inter-cluster distance and bucket fill grew ~25×.)
func TestCalendarTunerIgnoresGapSeparatedClusters(t *testing.T) {
	s := &sched{}
	s.init(SchedulerCalendar, 1024, 1e-3, 0) // span 1ms, contiguity lead 2ms, nearLimit 16ms
	rng := rand.New(rand.NewSource(9))

	seq := uint64(0)
	var pending []event
	push := func(at clock.Real) {
		ev := event{msg: Message{DeliverAt: at}, seq: seq}
		seq++
		s.push(&ev)
		pending = append(pending, ev)
	}
	drain := func() {
		t.Helper()
		for s.len() > 0 {
			got := s.pop()
			min := 0
			for i := range pending {
				if eventLess(&pending[i], &pending[min]) {
					min = i
				}
			}
			if got.seq != pending[min].seq {
				t.Fatalf("pop seq %d, naive min seq %d", got.seq, pending[min].seq)
			}
			pending = append(pending[:min], pending[min+1:]...)
		}
	}
	// Rounds of two clusters 10ms apart (inside nearLimit = 16ms, gap far
	// beyond the 2ms contiguity lead), each cluster ~1ms wide. Push both
	// before draining so the second cluster sits in the overflow heap at
	// every rotation — the shape that used to teach the tuner the
	// inter-cluster distance.
	base := clock.Real(0)
	for round := 0; round < 6; round++ {
		for c := 0; c < 2; c++ {
			cbase := base + clock.Real(c)*10e-3
			for i := 0; i < 100; i++ {
				push(cbase + clock.Real(rng.Float64()*1e-3))
			}
		}
		drain()
		base += 20e-3
	}
	// The window must cover one cluster (~1ms plus the seeded 2·span), not
	// the 10ms inter-cluster distance.
	if got := s.cal.width * float64(len(s.cal.buckets)); got > 5e-3 {
		t.Fatalf("tuned horizon %.3gs stretched across the 10ms inter-cluster gap", got)
	}
}

// FuzzBucketWidth feeds the width tuner degenerate and adversarial inputs —
// zero, denormal, huge, NaN and Inf delay spans, hint sizes from empty to
// huge, and arbitrary traffic shapes — and checks the full pop contract
// against a naive sort. The tuner may pick any width it likes; it must
// never reorder, drop, or duplicate an event.
func FuzzBucketWidth(f *testing.F) {
	f.Add(1e-2, 1e-3, int64(1), uint8(50))
	f.Add(0.0, 0.0, int64(2), uint8(100))
	f.Add(math.NaN(), math.Inf(1), int64(3), uint8(30))
	f.Add(-5.0, math.MaxFloat64, int64(4), uint8(80))
	f.Add(5e-324, 1e300, int64(5), uint8(60))
	f.Fuzz(func(t *testing.T, delta, eps float64, seed int64, count uint8) {
		s := &sched{}
		s.init(SchedulerCalendar, int(count), delta, eps)
		rng := rand.New(rand.NewSource(seed))

		var pending []event
		floor := clock.Real(0)
		for i := 0; i <= int(count); i++ {
			if len(pending) > 0 && rng.Intn(3) == 0 {
				got := s.pop()
				min := 0
				for j := range pending {
					if eventLess(&pending[j], &pending[min]) {
						min = j
					}
				}
				if got.seq != pending[min].seq {
					t.Fatalf("pop seq %d, naive min seq %d (δ=%v ε=%v)", got.seq, pending[min].seq, delta, eps)
				}
				floor = got.msg.DeliverAt
				pending = append(pending[:min], pending[min+1:]...)
				continue
			}
			ev := genEventAfter(rng, floor, uint64(i))
			s.push(&ev)
			pending = append(pending, ev)
		}
		ref := make([]event, len(pending))
		copy(ref, pending)
		sort.Slice(ref, func(i, j int) bool { return eventLess(&ref[i], &ref[j]) })
		for _, want := range ref {
			if got := s.pop(); got.seq != want.seq {
				t.Fatalf("drain diverges: got seq %d, want %d (δ=%v ε=%v)", got.seq, want.seq, delta, eps)
			}
		}
		if s.len() != 0 {
			t.Fatalf("queue not empty after drain")
		}
	})
}
