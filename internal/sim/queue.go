package sim

import "container/heap"

// event is a buffered message plus a sequence number for stable ordering.
type event struct {
	msg Message
	seq uint64
}

// eventQueue orders events by delivery time; at equal times, ordinary (and
// START) messages precede TIMER messages — execution property 4 of §2.3
// ("messages that arrive at the same time as a timer is due to go off get in
// just under the wire") — and ties beyond that break by insertion order.
type eventQueue struct {
	items []event
}

var _ heap.Interface = (*eventQueue)(nil)

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.msg.DeliverAt != b.msg.DeliverAt {
		return a.msg.DeliverAt < b.msg.DeliverAt
	}
	at, bt := a.msg.Kind == KindTimer, b.msg.Kind == KindTimer
	if at != bt {
		return !at // non-TIMER first
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// push enqueues a message with the next sequence number.
func (e *Engine) push(m Message) {
	heap.Push(&e.queue, event{msg: m, seq: e.seq})
	e.seq++
}

// peek returns the next message without removing it.
func (e *Engine) peek() (Message, bool) {
	if e.queue.Len() == 0 {
		return Message{}, false
	}
	return e.queue.items[0].msg, true
}

// pop removes and returns the next message.
func (e *Engine) pop() Message {
	return heap.Pop(&e.queue).(event).msg
}
