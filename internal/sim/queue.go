package sim

// event is a buffered message plus a sequence number for stable ordering.
// bref, when nonzero, marks the event as the materialized head of lazy
// broadcast record bref−1 (see bcastStore in calqueue.go): popping it must
// advance the record's chain so the next unmaterialized copy enters the
// queue.
type event struct {
	msg  Message
	seq  uint64
	bref int32
}

// eventQueue is a 4-ary min-heap of event values ordered by delivery time; at
// equal times, ordinary (and START) messages precede TIMER messages —
// execution property 4 of §2.3 ("messages that arrive at the same time as a
// timer is due to go off get in just under the wire") — and ties beyond that
// break by insertion order. The sequence number makes the order total, so the
// pop sequence is independent of heap shape or arity.
//
// The queue is deliberately not a container/heap.Interface: heap.Push(x any)
// boxes every event into an interface value, which costs one heap allocation
// per scheduled message. Here events live as values in a single backing
// array, and that array doubles as the free list — a popped slot is zeroed
// (releasing its Payload reference to the GC) and recycled by the next push,
// so the steady-state engine schedules timers and messages with no per-event
// allocation at all. The 4-ary layout halves tree depth versus a binary heap
// and scans each node's children within one cache line.
type eventQueue struct {
	items []event
}

// eventLess orders a before b by (DeliverAt, non-TIMER first, seq). It is
// the single comparator shared by the 4-ary heap and the calendar queue's
// bucket sort, so both schedulers produce the same total pop order.
func eventLess(a, b *event) bool {
	if a.msg.DeliverAt != b.msg.DeliverAt {
		return a.msg.DeliverAt < b.msg.DeliverAt
	}
	at, bt := a.msg.Kind == KindTimer, b.msg.Kind == KindTimer
	if at != bt {
		return !at // non-TIMER first
	}
	return a.seq < b.seq
}

// less delegates to eventLess (kept as a method for the heap's call sites).
func (q *eventQueue) less(a, b *event) bool { return eventLess(a, b) }

func (q *eventQueue) len() int { return len(q.items) }

// grow pre-sizes the backing array (the free list) to capacity c, so engine
// start-up absorbs the growth reallocations instead of the event loop.
func (q *eventQueue) grow(c int) {
	if cap(q.items) < c {
		items := make([]event, len(q.items), c)
		copy(items, q.items)
		q.items = items
	}
}

// push enqueues ev, sifting it up from the first free slot.
func (q *eventQueue) push(ev event) {
	q.items = append(q.items, ev)
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(&q.items[i], &q.items[p]) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

// peek returns the minimum event, or nil when the queue is empty. The pointer
// is valid only until the next push or pop.
func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return &q.items[0]
}

// pop removes and returns the minimum event. The vacated tail slot is zeroed
// so the free list holds no stale Payload references.
func (q *eventQueue) pop() event {
	items := q.items
	min := items[0]
	n := len(items) - 1
	items[0] = items[n]
	items[n] = event{}
	items = items[:n]
	q.items = items

	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := i
		end := first + 4
		if end > n {
			end = n
		}
		for c := first; c < end; c++ {
			if q.less(&items[c], &items[best]) {
				best = c
			}
		}
		if best == i {
			break
		}
		items[i], items[best] = items[best], items[i]
		i = best
	}
	return min
}

// push enqueues a message with the next sequence number: the shared counter
// normally, or — in sharded executions — a packed per-sender key that is
// independent of shard count and window interleaving (see packShardSeq).
func (e *Engine) push(m Message) {
	var ev event
	if e.detSeq {
		ev = event{msg: m, seq: e.packSeq(m.From, e.sidx[m.From], m.To)}
		e.sidx[m.From]++
	} else {
		ev = event{msg: m, seq: e.seq}
		e.seq++
	}
	e.queue.push(&ev)
}
