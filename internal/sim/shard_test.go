package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/clock"
)

// shardBeacon is the sharded-mode differential process: a self-sustaining
// broadcaster that folds every delivery into an order-sensitive FNV digest.
// Because the fold is order-sensitive, two executions produce the same
// digest only if every process saw the same deliveries in the same order —
// a window-boundary or sequencing bug cannot hide behind commutativity.
type shardBeacon struct {
	period clock.Local
	corr   clock.Local
	digest uint64
	count  int
}

func (b *shardBeacon) Corr() clock.Local { return b.corr }

func (b *shardBeacon) Receive(ctx *Context, m Message) {
	h := b.digest
	if h == 0 {
		h = 1469598103934665603 // FNV offset basis
	}
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(m.From))
	mix(uint64(m.Kind))
	mix(math.Float64bits(float64(m.DeliverAt)))
	mix(math.Float64bits(float64(m.SentAt)))
	b.digest = h
	b.count++
	if m.Kind == KindOrdinary {
		return
	}
	ctx.Broadcast(nil)
	ctx.SetTimer(ctx.PhysNow()+b.period, nil)
}

// shardWorkload builds n shardBeacons on drifting clocks with distinct
// start times (distinct enough that no two copies to one recipient ever tie,
// so deterministic delay models yield one well-defined delivery order).
func shardWorkload(n int, delay DelayModel, ch Channel) Config {
	procs := make([]Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	drift := clock.ConstantDrift{RhoBound: 1e-5}
	for i := range procs {
		procs[i] = &shardBeacon{period: 1e-3, corr: clock.Local(i) * 1e-7}
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 1.37e-6
	}
	return Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   delay,
		Channel: ch,
		Seed:    11,
	}
}

// shardDigests runs cfg across k shards to the horizon and returns the
// per-process (digest, count) trace plus the engine totals and a spread
// trace sampled at every window barrier.
type shardRun struct {
	digests []uint64
	counts  []int
	sent    int64
	lost    int64
	steps   int
	windows int
	spreads []clock.Local
}

func runSharded(t *testing.T, cfg Config, k int, horizon clock.Real) *shardRun {
	t.Helper()
	se, err := NewSharded(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := &shardRun{}
	se.OnWindow = func(se *ShardedEngine, cut clock.Real) {
		lo, hi, _ := se.LocalTimeSpread(cut)
		r.spreads = append(r.spreads, hi-lo)
	}
	if err := se.Run(horizon); err != nil {
		t.Fatal(err)
	}
	for _, p := range cfg.Procs {
		b := p.(*shardBeacon)
		r.digests = append(r.digests, b.digest)
		r.counts = append(r.counts, b.count)
	}
	r.sent, r.lost = se.MessagesSent(), se.MessagesLost()
	r.steps, r.windows = se.Steps(), se.Windows()
	return r
}

// equalShardRuns compares two runs field by field and names the first
// divergence. (Each runSharded call builds a fresh Config — shardBeacon
// digests are per-run state.)
func equalShardRuns(a, b *shardRun) (string, bool) {
	if a.sent != b.sent || a.lost != b.lost || a.steps != b.steps || a.windows != b.windows {
		return "engine totals", false
	}
	if len(a.spreads) != len(b.spreads) {
		return "spread trace length", false
	}
	for i := range a.spreads {
		if a.spreads[i] != b.spreads[i] {
			return "spread trace", false
		}
	}
	for i := range a.digests {
		if a.digests[i] != b.digests[i] || a.counts[i] != b.counts[i] {
			return "per-process delivery digest", false
		}
	}
	return "", true
}

// TestShardedDeterminism is the determinism oracle of the sharded engine:
// the same system run across 1, 2, 4 and 8 shards must produce identical
// per-process delivery digests, engine totals, window counts, and
// barrier-sampled spread traces. Per-sender RNG streams and packed sequence
// keys are exactly what this pins — any leak of shard-local state into
// delay sampling or tie-break order diverges the digests.
func TestShardedDeterminism(t *testing.T) {
	const n = 64
	horizon := clock.Real(0.012)
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	base := runSharded(t, shardWorkload(n, delay, nil), 1, horizon)
	if base.steps < 5*n*n {
		t.Fatalf("only %d steps — not a meaningful workload", base.steps)
	}
	for _, k := range []int{2, 4, 8} {
		got := runSharded(t, shardWorkload(n, delay, nil), k, horizon)
		if what, ok := equalShardRuns(base, got); !ok {
			t.Fatalf("k=%d diverges from k=1 in %s", k, what)
		}
	}
}

// TestShardedLossyAccounting repeats the determinism oracle with dead links
// in the mesh: the per-copy lost/sent split must be shard-count-invariant
// and the lossy path must actually fire.
func TestShardedLossyAccounting(t *testing.T) {
	const n = 48
	ch := LossyLinks{}.BreakBothWays(0, 47).BreakBothWays(3, 30)
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	base := runSharded(t, shardWorkload(n, delay, ch), 1, 0.012)
	if base.lost == 0 {
		t.Fatal("no copies lost — dead links never exercised")
	}
	for _, k := range []int{3, 8} {
		got := runSharded(t, shardWorkload(n, delay, ch), k, 0.012)
		if what, ok := equalShardRuns(base, got); !ok {
			t.Fatalf("k=%d diverges from k=1 in %s", k, what)
		}
	}
}

// TestShardedMatchesSequential: under a deterministic delay model the
// sharded execution is not merely internally consistent — it coincides
// exactly with the sequential engine's execution, because no RNG draws
// exist to differ between the shared stream and the per-sender streams.
// PerLinkDelay is the richest such model (fixed asymmetric per-link
// latencies).
func TestShardedMatchesSequential(t *testing.T) {
	const n = 40
	horizon := clock.Real(0.012)
	delay := PerLinkDelay{Delta: 4e-4, Eps: 1e-4, Seed: 3}

	cfg := shardWorkload(n, delay, nil)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(horizon); err != nil {
		t.Fatal(err)
	}
	seq := &shardRun{sent: eng.MessagesSent(), lost: eng.MessagesLost(), steps: eng.Steps()}
	for _, p := range cfg.Procs {
		b := p.(*shardBeacon)
		seq.digests = append(seq.digests, b.digest)
		seq.counts = append(seq.counts, b.count)
	}

	sh := runSharded(t, shardWorkload(n, delay, nil), 4, horizon)
	if seq.sent != sh.sent || seq.lost != sh.lost || seq.steps != sh.steps {
		t.Fatalf("totals diverge: sequential sent=%d lost=%d steps=%d, sharded sent=%d lost=%d steps=%d",
			seq.sent, seq.lost, seq.steps, sh.sent, sh.lost, sh.steps)
	}
	for i := range seq.digests {
		if seq.digests[i] != sh.digests[i] || seq.counts[i] != sh.counts[i] {
			t.Fatalf("process %d diverges: sequential (digest=%x count=%d), sharded (digest=%x count=%d)",
				i, seq.digests[i], seq.counts[i], sh.digests[i], sh.counts[i])
		}
	}
}

// TestNewShardedValidation walks the constructor's rejection table: every
// unsupported configuration must fail loudly at build time, never silently
// fall back to wrong parallel semantics.
func TestNewShardedValidation(t *testing.T) {
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	cases := []struct {
		name string
		cfg  Config
		k    int
		want string
	}{
		{"zero shards", shardWorkload(8, delay, nil), 0, "shards"},
		{"more shards than processes", shardWorkload(8, delay, nil), 9, "shards"},
		{"adversary", func() Config {
			c := shardWorkload(8, delay, nil)
			c.Adversary = &pendingSnapshotter{trigger: 1}
			return c
		}(), 2, "adversary"},
		{"stateful channel", shardWorkload(8, delay, &Ether{}), 2, "stateless channel"},
		{"zero lookahead", shardWorkload(8, UniformDelay{Delta: 1e-4, Eps: 1e-4}, nil), 2, "lookahead"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSharded(tc.cfg, tc.k)
			if err == nil {
				t.Fatalf("accepted invalid configuration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestShardedStress is the -race workout for the parallel window drain: a
// larger mesh across the full worker fan-out, long enough that every shard
// crosses into calendar-queue territory and thousands of windows' worth of
// cross-shard chunks move through exchange. Correctness assertions are
// minimal — the value of this test is running the real concurrent path
// under the race detector (CI runs the package with -race).
func TestShardedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: skipped under -short")
	}
	const n = 192
	cfg := shardWorkload(n, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	se, err := NewSharded(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Run(0.02); err != nil {
		t.Fatal(err)
	}
	if se.Steps() < 10*n*n {
		t.Fatalf("only %d steps — stress workload too small", se.Steps())
	}
	for _, p := range cfg.Procs {
		if p.(*shardBeacon).count == 0 {
			t.Fatal("a process never received anything")
		}
	}
}
