package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/clock"
)

// shardBeacon is the sharded-mode differential process: a self-sustaining
// broadcaster that folds every delivery into an order-sensitive FNV digest.
// Because the fold is order-sensitive, two executions produce the same
// digest only if every process saw the same deliveries in the same order —
// a window-boundary or sequencing bug cannot hide behind commutativity.
type shardBeacon struct {
	period clock.Local
	corr   clock.Local
	digest uint64
	count  int
	mute   bool // fold deliveries but never send (zero-sender topology)
}

func (b *shardBeacon) Corr() clock.Local { return b.corr }

func (b *shardBeacon) Receive(ctx *Context, m Message) {
	h := b.digest
	if h == 0 {
		h = 1469598103934665603 // FNV offset basis
	}
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(m.From))
	mix(uint64(m.Kind))
	mix(math.Float64bits(float64(m.DeliverAt)))
	mix(math.Float64bits(float64(m.SentAt)))
	b.digest = h
	b.count++
	if m.Kind == KindOrdinary || b.mute {
		return
	}
	ctx.Broadcast(nil)
	ctx.SetTimer(ctx.PhysNow()+b.period, nil)
}

// shardWorkload builds n shardBeacons on drifting clocks with distinct
// start times (distinct enough that no two copies to one recipient ever tie,
// so deterministic delay models yield one well-defined delivery order).
func shardWorkload(n int, delay DelayModel, ch Channel) Config {
	procs := make([]Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	drift := clock.ConstantDrift{RhoBound: 1e-5}
	for i := range procs {
		procs[i] = &shardBeacon{period: 1e-3, corr: clock.Local(i) * 1e-7}
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 1.37e-6
	}
	return Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   delay,
		Channel: ch,
		Seed:    11,
	}
}

// shardDigests runs cfg across k shards to the horizon and returns the
// per-process (digest, count) trace plus the engine totals and a spread
// trace sampled at every window barrier.
type shardRun struct {
	digests []uint64
	counts  []int
	sent    int64
	lost    int64
	steps   int
	windows int
	spreads []clock.Local
}

func runSharded(t *testing.T, cfg Config, k int, horizon clock.Real) *shardRun {
	t.Helper()
	se, err := NewSharded(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := &shardRun{}
	se.OnWindow = func(se *ShardedEngine, cut clock.Real) {
		lo, hi, _ := se.LocalTimeSpread(cut)
		r.spreads = append(r.spreads, hi-lo)
	}
	if err := se.Run(horizon); err != nil {
		t.Fatal(err)
	}
	for _, p := range cfg.Procs {
		b := p.(*shardBeacon)
		r.digests = append(r.digests, b.digest)
		r.counts = append(r.counts, b.count)
	}
	r.sent, r.lost = se.MessagesSent(), se.MessagesLost()
	r.steps, r.windows = se.Steps(), se.Windows()
	return r
}

// equalShardRuns compares two runs field by field and names the first
// divergence. (Each runSharded call builds a fresh Config — shardBeacon
// digests are per-run state.)
func equalShardRuns(a, b *shardRun) (string, bool) {
	if a.sent != b.sent || a.lost != b.lost || a.steps != b.steps || a.windows != b.windows {
		return "engine totals", false
	}
	if len(a.spreads) != len(b.spreads) {
		return "spread trace length", false
	}
	for i := range a.spreads {
		if a.spreads[i] != b.spreads[i] {
			return "spread trace", false
		}
	}
	for i := range a.digests {
		if a.digests[i] != b.digests[i] || a.counts[i] != b.counts[i] {
			return "per-process delivery digest", false
		}
	}
	return "", true
}

// TestShardedDeterminism is the determinism oracle of the sharded engine:
// the same system run across 1, 2, 4, 8 and 16 shards must produce identical
// per-process delivery digests, engine totals, window counts, and
// barrier-sampled spread traces. Per-sender RNG streams and packed sequence
// keys are exactly what this pins — any leak of shard-local state into
// delay sampling or tie-break order diverges the digests. Window batching
// must not disturb it either: the cut sequence (and so the spread trace) is
// defined by the global minimum pending time, however many barriers ran.
func TestShardedDeterminism(t *testing.T) {
	const n = 64
	horizon := clock.Real(0.012)
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	base := runSharded(t, shardWorkload(n, delay, nil), 1, horizon)
	if base.steps < 5*n*n {
		t.Fatalf("only %d steps — not a meaningful workload", base.steps)
	}
	for _, k := range []int{2, 4, 8, 16} {
		got := runSharded(t, shardWorkload(n, delay, nil), k, horizon)
		if what, ok := equalShardRuns(base, got); !ok {
			t.Fatalf("k=%d diverges from k=1 in %s", k, what)
		}
	}
}

// TestShardedBatching pins the window-batching machinery: delivery-only
// windows (no cross-shard traffic anywhere) must complete inside a batch
// instead of paying a worker-set respawn, and the counters must reconcile.
// The beacon workload has the round structure batching exists for — one
// window per period carries the broadcasts, the following windows only
// deliver — so a run where batching never fires is a regression.
func TestShardedBatching(t *testing.T) {
	const n = 64
	se, err := NewSharded(shardWorkload(n, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Run(0.012); err != nil {
		t.Fatal(err)
	}
	st := se.Stats()
	if st.Windows != st.Barriers+st.BatchedWindows {
		t.Fatalf("stats do not reconcile: windows=%d barriers=%d batched=%d", st.Windows, st.Barriers, st.BatchedWindows)
	}
	if st.BatchedWindows == 0 {
		t.Fatalf("batching never fired over %d windows (%d barriers)", st.Windows, st.Barriers)
	}
	if st.Windows != se.Windows() {
		t.Fatalf("Windows() = %d, stats say %d", se.Windows(), st.Windows)
	}
	// A single-shard run has no cross-shard traffic at all, so the whole
	// execution must collapse into one batch per Run call.
	se1, err := NewSharded(shardWorkload(n, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := se1.Run(0.012); err != nil {
		t.Fatal(err)
	}
	if st1 := se1.Stats(); st1.Barriers != 1 {
		t.Fatalf("k=1 run took %d barriers for %d windows; want 1", st1.Barriers, st1.Windows)
	}
}

// TestShardedLossyAccounting repeats the determinism oracle with dead links
// in the mesh: the per-copy lost/sent split must be shard-count-invariant
// and the lossy path must actually fire.
func TestShardedLossyAccounting(t *testing.T) {
	const n = 48
	ch := LossyLinks{}.BreakBothWays(0, 47).BreakBothWays(3, 30)
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	base := runSharded(t, shardWorkload(n, delay, ch), 1, 0.012)
	if base.lost == 0 {
		t.Fatal("no copies lost — dead links never exercised")
	}
	for _, k := range []int{3, 8} {
		got := runSharded(t, shardWorkload(n, delay, ch), k, 0.012)
		if what, ok := equalShardRuns(base, got); !ok {
			t.Fatalf("k=%d diverges from k=1 in %s", k, what)
		}
	}
}

// TestShardedMatchesSequential: under a deterministic delay model the
// sharded execution is not merely internally consistent — it coincides
// exactly with the sequential engine's execution, because no RNG draws
// exist to differ between the shared stream and the per-sender streams.
// PerLinkDelay is the richest such model (fixed asymmetric per-link
// latencies).
func TestShardedMatchesSequential(t *testing.T) {
	const n = 40
	horizon := clock.Real(0.012)
	delay := PerLinkDelay{Delta: 4e-4, Eps: 1e-4, Seed: 3}

	cfg := shardWorkload(n, delay, nil)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(horizon); err != nil {
		t.Fatal(err)
	}
	seq := &shardRun{sent: eng.MessagesSent(), lost: eng.MessagesLost(), steps: eng.Steps()}
	for _, p := range cfg.Procs {
		b := p.(*shardBeacon)
		seq.digests = append(seq.digests, b.digest)
		seq.counts = append(seq.counts, b.count)
	}

	sh := runSharded(t, shardWorkload(n, delay, nil), 4, horizon)
	if seq.sent != sh.sent || seq.lost != sh.lost || seq.steps != sh.steps {
		t.Fatalf("totals diverge: sequential sent=%d lost=%d steps=%d, sharded sent=%d lost=%d steps=%d",
			seq.sent, seq.lost, seq.steps, sh.sent, sh.lost, sh.steps)
	}
	for i := range seq.digests {
		if seq.digests[i] != sh.digests[i] || seq.counts[i] != sh.counts[i] {
			t.Fatalf("process %d diverges: sequential (digest=%x count=%d), sharded (digest=%x count=%d)",
				i, seq.digests[i], seq.counts[i], sh.digests[i], sh.counts[i])
		}
	}
}

// TestNewShardedValidation walks the constructor's rejection table: every
// unsupported configuration must fail loudly at build time, never silently
// fall back to wrong parallel semantics.
func TestNewShardedValidation(t *testing.T) {
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	cases := []struct {
		name string
		cfg  Config
		k    int
		want string
	}{
		{"zero shards", shardWorkload(8, delay, nil), 0, "shards"},
		{"more shards than processes", shardWorkload(8, delay, nil), 9, "shards"},
		{"adversary", func() Config {
			c := shardWorkload(8, delay, nil)
			c.Adversary = &pendingSnapshotter{trigger: 1}
			return c
		}(), 2, "adversary"},
		{"stateful channel", shardWorkload(8, delay, &Ether{}), 2, "stateless channel"},
		{"zero lookahead", shardWorkload(8, UniformDelay{Delta: 1e-4, Eps: 1e-4}, nil), 2, "lookahead"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSharded(tc.cfg, tc.k)
			if err == nil {
				t.Fatalf("accepted invalid configuration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// annotBeacon is a shardBeacon that also emits an annotation on every
// delivery, exercising the sharded annotation capture/merge path.
type annotBeacon struct {
	shardBeacon
}

func (b *annotBeacon) Receive(ctx *Context, m Message) {
	b.shardBeacon.Receive(ctx, m)
	ctx.Annotate("tick", float64(b.count))
}

// annotWorkload is shardWorkload with annotating beacons.
func annotWorkload(n int, delay DelayModel) Config {
	cfg := shardWorkload(n, delay, nil)
	for i := range cfg.Procs {
		b := cfg.Procs[i].(*shardBeacon)
		cfg.Procs[i] = &annotBeacon{shardBeacon: *b}
	}
	return cfg
}

// windowProbe records everything the sharded observer path hands it.
type windowProbe struct {
	samples []float64
	annots  []Annotation
}

func (p *windowProbe) Sample(e *Engine, _ bool) {
	lo, hi, _ := e.LocalTimeSpread(e.Now())
	p.samples = append(p.samples, float64(hi-lo))
}

func (p *windowProbe) OnAnnotation(_ *Engine, a Annotation) {
	p.annots = append(p.annots, a)
}

// deliverySpy implements only the per-delivery interface, which sharded
// mode must reject.
type deliverySpy struct{}

func (deliverySpy) OnDeliver(*Engine, Message) {}

// TestShardedObservers pins the v2 observer support: Sampler and
// AnnotationSink observers fire at window barriers with traces that are
// byte-identical across shard counts (samples at every cut; annotations in
// merged (At, Proc) order with per-process emission order preserved), and
// per-delivery observers are rejected with a useful error.
func TestShardedObservers(t *testing.T) {
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	const n = 48
	run := func(k int) *windowProbe {
		se, err := NewSharded(annotWorkload(n, delay), k)
		if err != nil {
			t.Fatal(err)
		}
		p := &windowProbe{}
		if err := se.Observe(p); err != nil {
			t.Fatal(err)
		}
		if err := se.Run(0.01); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := run(1)
	if len(base.samples) == 0 || len(base.annots) == 0 {
		t.Fatalf("observer saw nothing: %d samples, %d annotations", len(base.samples), len(base.annots))
	}
	for i := 1; i < len(base.annots); i++ {
		a, b := base.annots[i-1], base.annots[i]
		if b.At < a.At || (b.At == a.At && b.Proc < a.Proc) {
			t.Fatalf("annotations out of (At, Proc) order at %d: %+v then %+v", i, a, b)
		}
	}
	for _, k := range []int{2, 6, 8} {
		got := run(k)
		if len(got.samples) != len(base.samples) {
			t.Fatalf("k=%d: %d samples, k=1 had %d", k, len(got.samples), len(base.samples))
		}
		for i := range base.samples {
			if got.samples[i] != base.samples[i] {
				t.Fatalf("k=%d sample %d diverges: %v vs %v", k, i, got.samples[i], base.samples[i])
			}
		}
		if len(got.annots) != len(base.annots) {
			t.Fatalf("k=%d: %d annotations, k=1 had %d", k, len(got.annots), len(base.annots))
		}
		for i := range base.annots {
			if got.annots[i] != base.annots[i] {
				t.Fatalf("k=%d annotation %d diverges: %+v vs %+v", k, i, got.annots[i], base.annots[i])
			}
		}
	}

	se, err := NewSharded(shardWorkload(8, delay, nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Observe(deliverySpy{}); err == nil {
		t.Fatal("per-delivery observer accepted")
	} else if !strings.Contains(err.Error(), "per-delivery") {
		t.Fatalf("rejection %q does not explain the per-delivery restriction", err)
	}
	if err := se.Observe(struct{ Observer }{}); err == nil {
		t.Fatal("non-observer accepted")
	}
}

// TestShardedEventHintScaling is the calendar pre-sizing regression test: a
// caller-supplied whole-system EventHint must be scaled down to the shard's
// own share, not passed through — the old behavior oversized every shard's
// queue stores k-fold.
func TestShardedEventHintScaling(t *testing.T) {
	const n, k = 1024, 8
	cfg := shardWorkload(n, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	cfg.EventHint = n*n + 2*n + 8 // the whole-system eager figure exp.Run would pass
	se, err := NewSharded(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		got := se.Shard(i).queue.eventHint
		if got >= cfg.EventHint/2 {
			t.Fatalf("shard %d hint %d is not scaled down from the whole-system %d", i, got, cfg.EventHint)
		}
		if got < n {
			t.Fatalf("shard %d hint %d cannot cover one head per in-flight fan-out (n=%d)", i, got, n)
		}
	}
	// The per-shard defaults (hint unset) must likewise be per-shard sized.
	cfg2 := shardWorkload(n, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	se2, err := NewSharded(cfg2, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := se2.Shard(0).queue.eventHint; got > 8*n {
		t.Fatalf("default lazy per-shard hint %d is system-sized (n=%d)", got, n)
	}
}

// TestShardedTopologyEdges walks the partition edge cases: one process per
// shard (k = n), more shards than processes (rejected), everything on one
// shard (k = 1), a shard whose processes never send, and start times spread
// wider than the lookahead so early windows hold events for only some
// shards (other shards drain empty windows).
func TestShardedTopologyEdges(t *testing.T) {
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	t.Run("one process per shard", func(t *testing.T) {
		const n = 8
		base := runSharded(t, shardWorkload(n, delay, nil), 1, 0.01)
		got := runSharded(t, shardWorkload(n, delay, nil), n, 0.01)
		if what, ok := equalShardRuns(base, got); !ok {
			t.Fatalf("k=n diverges from k=1 in %s", what)
		}
	})
	t.Run("more shards than processes", func(t *testing.T) {
		_, err := NewSharded(shardWorkload(4, delay, nil), 5)
		if err == nil || !strings.Contains(err.Error(), "shards") {
			t.Fatalf("k>n not rejected: %v", err)
		}
	})
	t.Run("zero-sender shard", func(t *testing.T) {
		mute := func() Config {
			cfg := shardWorkload(12, delay, nil)
			for i := 9; i < 12; i++ { // the k=4 partition's last block
				cfg.Procs[i].(*shardBeacon).mute = true
			}
			return cfg
		}
		base := runSharded(t, mute(), 1, 0.01)
		got := runSharded(t, mute(), 4, 0.01)
		if base.steps == 0 {
			t.Fatal("empty workload")
		}
		if what, ok := equalShardRuns(base, got); !ok {
			t.Fatalf("zero-sender shard diverges in %s", what)
		}
	})
	t.Run("starts wider than lookahead", func(t *testing.T) {
		wide := func() Config {
			cfg := shardWorkload(9, delay, nil)
			for i := range cfg.StartAt {
				// 3 windows' worth of spread between consecutive shards:
				// while shard 0 runs its START windows the others are empty.
				cfg.StartAt[i] = clock.Real(i/3) * 1e-3
			}
			return cfg
		}
		base := runSharded(t, wide(), 1, 0.01)
		got := runSharded(t, wide(), 3, 0.01)
		if what, ok := equalShardRuns(base, got); !ok {
			t.Fatalf("wide starts diverge in %s", what)
		}
	})
}

// TestShardedSeqPacking pins the dynamic packed-key bit split that lifted
// the n ≤ 8192 cap: the split is sized from n alone (so it cannot vary with
// the shard count), keys order by (from, sidx, to), the send-index field is
// overflow-guarded, and the new cap is enforced.
func TestShardedSeqPacking(t *testing.T) {
	delay := UniformDelay{Delta: 4e-4, Eps: 1e-4}
	se, err := NewSharded(shardWorkload(10, delay, nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	e := se.Shard(0)
	if e.seqToBits != 4 || e.seqFromShift != 59 {
		t.Fatalf("n=10 split: toBits=%d fromShift=%d, want 4/59", e.seqToBits, e.seqFromShift)
	}
	if want := uint64(1)<<55 - 1; e.sidxMax != want {
		t.Fatalf("sidxMax = %d, want %d", e.sidxMax, want)
	}
	if got, want := e.packSeq(3, 5, 7), uint64(3)<<59|5<<4|7; got != want {
		t.Fatalf("packSeq(3,5,7) = %x, want %x", got, want)
	}
	// Lexicographic (from, sidx, to) order must map to key order.
	keys := []uint64{
		e.packSeq(0, 0, 0), e.packSeq(0, 0, 9), e.packSeq(0, 1, 0),
		e.packSeq(1, 0, 3), e.packSeq(9, 2, 2),
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("key order broken at %d: %x then %x", i, keys[i-1], keys[i])
		}
	}
	if top := e.packSeq(9, e.sidxMax, 9); top&(1<<63) != 0 {
		t.Fatalf("maximal key %x collides with the calendar TIMER bit", top)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("send-index overflow not caught")
			}
		}()
		e.packSeq(0, e.sidxMax+1, 0)
	}()

	// The cap itself: 2^17 processes fit, one more is rejected before any
	// engine is built (so nil procs are fine here).
	over := Config{Procs: make([]Process, maxShardProcs+1), Delay: delay}
	if _, err := NewSharded(over, 2); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("n > %d not rejected: %v", maxShardProcs, err)
	}
}

// TestShardedStress is the -race workout for the parallel window drain: a
// n=192, k=4 mesh long enough that every shard crosses into calendar-queue
// territory and thousands of windows' worth of cross-shard chunks move
// through the pooled exchange. Correctness assertions are minimal — the
// value of this test is running the real concurrent path (batched barriers,
// copy-pool recycling, observer dispatch) under the race detector; the main
// CI workflow invokes it by name as the sharded race smoke.
func TestShardedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: skipped under -short")
	}
	const n = 192
	cfg := shardWorkload(n, UniformDelay{Delta: 4e-4, Eps: 1e-4}, nil)
	se, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Run(0.02); err != nil {
		t.Fatal(err)
	}
	if se.Steps() < 10*n*n {
		t.Fatalf("only %d steps — stress workload too small", se.Steps())
	}
	for _, p := range cfg.Procs {
		if p.(*shardBeacon).count == 0 {
			t.Fatal("a process never received anything")
		}
	}
}
