package sim

import (
	"math"

	"repro/internal/clock"
)

// This file implements the adaptive-adversary seam of the delivery
// pipeline. The paper's lower bound (ε(1−1/n), shown by a shifting argument
// in the companion Lundelius–Lynch work and cited in §1) is proved against
// an adversary that *reacts* to the execution: it watches the system and
// retimes message deliveries anywhere inside the [δ−ε, δ+ε] uncertainty
// window that assumption A3 grants the network. The schedule-driven faulty
// automata in internal/faults cannot express that adversary — they commit
// to their timing before the run starts — so the engine exposes it
// directly:
//
//   - an Adversary registered in Config gets one Retime pass over every
//     ordinary message copy, unicast or broadcast fan-out, between delay
//     sampling and routing;
//   - the AdversaryController clamps every retimed delay back into the
//     model's [δ−ε, δ+ε] envelope (NaN falls back to the sampled delay),
//     so assumptions A1–A3 hold *by construction* no matter what the
//     adversary returns — the upper-bound theorems keep their hypotheses
//     and the invariant checkers remain sound;
//   - the AdversaryView is the omniscient read side: nonfaulty local
//     clocks, the cached spread scan, pending buffered deliveries, and —
//     via the ReceiveHook/SendHook interfaces — the observed send and
//     arrival times of every copy as it moves through the buffer.
//
// The controller is engine-owned and inert when no adversary is installed:
// the pipeline's adversary stage is then a nil comparison and the hook
// dispatch loops are never entered, which is what keeps the no-adversary
// steady state allocation-free and byte-identical to the pre-pipeline
// engine.

// Adversary is an adaptive message-timing adversary: a single Retime pass
// over each ordinary message copy, between delay sampling and routing.
// Implementations return the base delay they want for the copy; the
// controller clamps the result to the delay model's [δ−ε, δ+ε] envelope,
// so a Retime cannot take an execution outside assumption A3 (returning
// NaN, ±Inf, or any out-of-envelope value degrades to the nearest legal
// delay — or the sampled one for NaN).
//
// Retime runs on the engine's single event-loop goroutine; implementations
// may keep per-run state without locking but must not retain the view.
// Adversaries that also implement ReceiveHook and/or SendHook observe
// deliveries and sends as they happen.
type Adversary interface {
	Retime(v *AdversaryView, from, to ProcID, sentAt clock.Real, base float64) float64
}

// SendHook observes every ordinary message copy as it enters the global
// buffer, after the pipeline fixed its delivery time. Copies lost to the
// channel are not announced (they never enter the buffer).
type SendHook interface {
	OnSend(v *AdversaryView, m Message)
}

// ReceiveHook observes every ordinary message delivery, immediately before
// the recipient's Receive runs — the adversary-side record of observed
// arrival times.
type ReceiveHook interface {
	OnReceive(v *AdversaryView, m Message)
}

// AdversaryView is the omniscient read capability granted to a registered
// adversary: real time, the fault assignment, every process's local clock,
// the cached nonfaulty spread, and the buffered (pending) deliveries. It is
// engine-owned and reused across calls; adversaries must not retain it.
type AdversaryView struct {
	eng *Engine
}

// Now returns the current real time.
func (v *AdversaryView) Now() clock.Real { return v.eng.now }

// N returns the number of processes.
func (v *AdversaryView) N() int { return len(v.eng.procs) }

// Bounds returns the delay model's (δ, ε) — the envelope every retimed
// delay is clamped to.
func (v *AdversaryView) Bounds() (delta, eps float64) { return v.eng.pipe.Delay.Bounds() }

// Faulty reports whether p is marked faulty.
func (v *AdversaryView) Faulty(p ProcID) bool { return v.eng.faulty[p] }

// NonfaultyIDs returns the cached nonfaulty ids (shared; do not modify).
func (v *AdversaryView) NonfaultyIDs() []ProcID { return v.eng.nonfaulty }

// LocalTime returns L_p(t); ok is false when p exposes no correction.
func (v *AdversaryView) LocalTime(p ProcID, t clock.Real) (clock.Local, bool) {
	return v.eng.LocalTime(p, t)
}

// LocalTimeSpread returns the minimum and maximum nonfaulty local time at t
// (served from the engine's per-sample cache when t is the current instant).
func (v *AdversaryView) LocalTimeSpread(t clock.Real) (lo, hi clock.Local, count int) {
	return v.eng.LocalTimeSpread(t)
}

// PendingDeliveries calls fn for every message currently buffered (ordinary,
// START and TIMER alike) until fn returns false. Iteration order is
// unspecified — it depends on the scheduler's internal layout — so adaptive
// strategies that need determinism must reduce what they read to an
// order-independent quantity (count, min, max, …). The pointer is valid
// only for the duration of the call; fn must not retain or modify it.
func (v *AdversaryView) PendingDeliveries(fn func(m *Message) bool) {
	v.eng.queue.forEachPending(fn)
}

// AdversaryController is the engine-owned write side of the adversary seam:
// it holds the registered adversary, its hook capabilities (classified once
// at construction, like engine observers), the clamp envelope, and the
// shared view. One controller per engine, built at New when Config.Adversary
// is set.
type AdversaryController struct {
	adv  Adversary
	send SendHook    // non-nil iff adv observes sends
	recv ReceiveHook // non-nil iff adv observes deliveries
	view AdversaryView
	lo   float64 // δ−ε: earliest legal base delay
	hi   float64 // δ+ε: latest legal base delay
}

// newAdversaryController classifies the adversary's capabilities and caches
// the clamp envelope from the validated delay model.
func newAdversaryController(e *Engine, adv Adversary, delta, eps float64) *AdversaryController {
	c := &AdversaryController{adv: adv, lo: delta - eps, hi: delta + eps}
	c.view.eng = e
	if h, ok := adv.(SendHook); ok {
		c.send = h
	}
	if h, ok := adv.(ReceiveHook); ok {
		c.recv = h
	}
	return c
}

// Clamp forces a desired base delay into the [δ−ε, δ+ε] envelope, falling
// back to the honestly sampled delay for NaN. Exported for tests asserting
// the clamp contract directly.
func (c *AdversaryController) Clamp(desired, sampled float64) float64 {
	if math.IsNaN(desired) {
		return sampled
	}
	if desired < c.lo {
		return c.lo
	}
	if desired > c.hi {
		return c.hi
	}
	return desired
}

// retime runs the adversary's pass over one copy and clamps the result.
func (c *AdversaryController) retime(from, to ProcID, sentAt clock.Real, base float64) float64 {
	return c.Clamp(c.adv.Retime(&c.view, from, to, sentAt, base), base)
}

// onSend dispatches the send hook, if the adversary has one.
func (c *AdversaryController) onSend(m Message) {
	if c.send != nil {
		c.send.OnSend(&c.view, m)
	}
}

// onReceive dispatches the receive hook, if the adversary has one.
func (c *AdversaryController) onReceive(m Message) {
	if c.recv != nil {
		c.recv.OnReceive(&c.view, m)
	}
}
