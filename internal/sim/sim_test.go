package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

// recorder is a minimal process that logs everything it receives and can
// perform scripted actions on START.
type recorder struct {
	got     []Message
	onStart func(ctx *Context)
	corr    clock.Local
}

func (r *recorder) Receive(ctx *Context, m Message) {
	r.got = append(r.got, m)
	if m.Kind == KindStart && r.onStart != nil {
		r.onStart(ctx)
	}
}

func (r *recorder) Corr() clock.Local { return r.corr }

func perfectClocks(n int) []clock.Clock {
	cs := make([]clock.Clock, n)
	for i := range cs {
		cs[i] = clock.Linear(0, 1)
	}
	return cs
}

func starts(n int, at clock.Real) []clock.Real {
	s := make([]clock.Real, n)
	for i := range s {
		s[i] = at
	}
	return s
}

func TestNewValidation(t *testing.T) {
	good := Config{
		Procs:   []Process{&recorder{}},
		Clocks:  perfectClocks(1),
		StartAt: starts(1, 0),
		Delay:   ConstantDelay{Delta: 0.01},
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no processes", func(c *Config) { c.Procs = nil }},
		{"clock count mismatch", func(c *Config) { c.Clocks = nil }},
		{"start count mismatch", func(c *Config) { c.StartAt = nil }},
		{"faulty count mismatch", func(c *Config) { c.Faulty = []bool{true, false} }},
		{"nil process", func(c *Config) { c.Procs = []Process{nil} }},
		{"nil clock", func(c *Config) { c.Clocks = []clock.Clock{nil} }},
		{"nil delay", func(c *Config) { c.Delay = nil }},
		{"delay violates A3: eps above delta", func(c *Config) { c.Delay = UniformDelay{Delta: 1, Eps: 2} }},
		{"delay violates A3: negative eps", func(c *Config) { c.Delay = UniformDelay{Delta: 1, Eps: -0.5} }},
		{"delay violates A3: negative delta", func(c *Config) { c.Delay = ConstantDelay{Delta: -1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("expected config error")
			}
		})
	}
	if _, err := New(good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	// δ = ε (zero lower edge) is the boundary A3 still allows.
	edge := good
	edge.Delay = UniformDelay{Delta: 1, Eps: 1}
	if _, err := New(edge); err != nil {
		t.Errorf("boundary δ=ε rejected: %v", err)
	}
}

func TestStartDelivery(t *testing.T) {
	n := 3
	procs := make([]Process, n)
	recs := make([]*recorder, n)
	for i := range procs {
		recs[i] = &recorder{}
		procs[i] = recs[i]
	}
	e, err := New(Config{
		Procs:   procs,
		Clocks:  perfectClocks(n),
		StartAt: []clock.Real{1, 2, 3},
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if len(r.got) != 1 || r.got[0].Kind != KindStart {
			t.Fatalf("process %d: got %v, want exactly one START", i, r.got)
		}
		if r.got[0].DeliverAt != clock.Real(i+1) {
			t.Errorf("process %d START at %v, want %v", i, r.got[0].DeliverAt, i+1)
		}
	}
}

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	n := 4
	procs := make([]Process, n)
	recs := make([]*recorder, n)
	for i := range procs {
		recs[i] = &recorder{}
		procs[i] = recs[i]
	}
	recs[0].onStart = func(ctx *Context) { ctx.Broadcast("hello") }
	e, err := New(Config{
		Procs:   procs,
		Clocks:  perfectClocks(n),
		StartAt: starts(n, 0),
		Delay:   ConstantDelay{Delta: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		var ordinary int
		for _, m := range r.got {
			if m.Kind == KindOrdinary {
				ordinary++
				if m.Payload != "hello" || m.From != 0 {
					t.Errorf("process %d got unexpected message %+v", i, m)
				}
				if m.DeliverAt != 0.5 {
					t.Errorf("process %d delivery at %v, want 0.5", i, m.DeliverAt)
				}
			}
		}
		if ordinary != 1 {
			t.Errorf("process %d received %d ordinary messages, want 1 (self included for i=0)", i, ordinary)
		}
	}
	if e.MessagesSent() != int64(n) {
		t.Errorf("MessagesSent = %d, want %d", e.MessagesSent(), n)
	}
}

func TestTimerFiresAtPhysicalInverse(t *testing.T) {
	// A clock running at rate 2 reaches physical time 10 at real time 5.
	rec := &recorder{}
	rec.onStart = func(ctx *Context) { ctx.SetTimer(10, "tick") }
	e, err := New(Config{
		Procs:   []Process{rec},
		Clocks:  []clock.Clock{clock.Linear(0, 2)},
		StartAt: starts(1, 0),
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 2 {
		t.Fatalf("got %d messages, want START + TIMER", len(rec.got))
	}
	tm := rec.got[1]
	if tm.Kind != KindTimer || tm.Payload != "tick" {
		t.Fatalf("second message = %+v, want TIMER tick", tm)
	}
	if math.Abs(float64(tm.DeliverAt-5)) > 1e-9 {
		t.Errorf("TIMER at %v, want 5", tm.DeliverAt)
	}
}

func TestTimerInThePastIsDropped(t *testing.T) {
	rec := &recorder{}
	rec.onStart = func(ctx *Context) { ctx.SetTimer(ctx.PhysNow()-1, nil) }
	e, err := New(Config{
		Procs:   []Process{rec},
		Clocks:  []clock.Clock{clock.Linear(0, 1)},
		StartAt: starts(1, 5),
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 1 {
		t.Fatalf("got %d messages, want only START (timer dropped)", len(rec.got))
	}
	if e.TimersLapsed() != 1 {
		t.Errorf("TimersLapsed = %d, want 1", e.TimersLapsed())
	}
}

// TestTimerOrderedAfterOrdinaryAtSameInstant checks execution property 4: an
// ordinary message arriving at exactly the timer's real time is delivered
// first ("just under the wire").
func TestTimerOrderedAfterOrdinaryAtSameInstant(t *testing.T) {
	// Process 1 sets a timer for physical time 2 (real time 2). Process 0
	// sends process 1 a message at time 1 with delay 1: arrival also at 2.
	// Even though the timer is enqueued first, the ordinary message must be
	// delivered first.
	r0 := &recorder{}
	r1 := &recorder{}
	r1.onStart = func(ctx *Context) { ctx.SetTimer(2, nil) }
	r0.onStart = func(ctx *Context) { ctx.Send(1, "x") }
	e, err := New(Config{
		Procs:   []Process{r0, r1},
		Clocks:  perfectClocks(2),
		StartAt: []clock.Real{1, 0}, // p1 sets timer at t=0; p0 sends at t=1
		Delay:   ConstantDelay{Delta: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, m := range r1.got {
		kinds = append(kinds, m.Kind)
	}
	want := []Kind{KindStart, KindOrdinary, KindTimer}
	if len(kinds) != len(want) {
		t.Fatalf("process 1 received %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("process 1 received %v, want %v", kinds, want)
		}
	}
	if r1.got[1].DeliverAt != r1.got[2].DeliverAt {
		t.Fatal("test setup broken: ordinary and timer not at same instant")
	}
}

func TestRunHorizonAndResume(t *testing.T) {
	rec := &recorder{}
	rec.onStart = func(ctx *Context) {
		ctx.SetTimer(5, nil)
		ctx.SetTimer(15, nil)
	}
	e, err := New(Config{
		Procs:   []Process{rec},
		Clocks:  perfectClocks(1),
		StartAt: starts(1, 0),
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 2 {
		t.Fatalf("after horizon 10: %d messages, want 2", len(rec.got))
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want horizon 10", e.Now())
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 3 {
		t.Fatalf("after horizon 20: %d messages, want 3", len(rec.got))
	}
}

func TestStepLimit(t *testing.T) {
	// A process that reschedules itself forever must trip the step limit.
	var ping func(ctx *Context)
	rec := &recorder{}
	ping = func(ctx *Context) { ctx.SetTimer(ctx.PhysNow()+0.001, nil) }
	rec.onStart = ping
	e, err := New(Config{
		Procs:    []Process{&timerLoop{}},
		Clocks:   perfectClocks(1),
		StartAt:  starts(1, 0),
		Delay:    ConstantDelay{Delta: 0.01},
		MaxSteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1e9); err == nil {
		t.Error("expected step-limit error")
	}
	_ = rec
}

type timerLoop struct{}

func (l *timerLoop) Receive(ctx *Context, _ Message) { ctx.SetTimer(ctx.PhysNow()+0.001, nil) }

func TestLocalTime(t *testing.T) {
	rec := &recorder{corr: 7}
	e, err := New(Config{
		Procs:   []Process{rec, &timerLoop{}},
		Clocks:  []clock.Clock{clock.Linear(0, 1), clock.Linear(0, 1)},
		StartAt: starts(2, 1000), // nothing runs
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	lt, ok := e.LocalTime(0, 3)
	if !ok || lt != 10 {
		t.Errorf("LocalTime(0,3) = %v,%v, want 10,true", lt, ok)
	}
	if _, ok := e.LocalTime(1, 3); ok {
		t.Error("LocalTime should report false for a process without Corr")
	}
}

func TestNonfaultyIDs(t *testing.T) {
	e, err := New(Config{
		Procs:   []Process{&recorder{}, &recorder{}, &recorder{}},
		Clocks:  perfectClocks(3),
		StartAt: starts(3, 0),
		Delay:   ConstantDelay{Delta: 0.01},
		Faulty:  []bool{false, true, false},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := e.NonfaultyIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("NonfaultyIDs = %v", ids)
	}
	if !e.Faulty(1) || e.Faulty(0) {
		t.Error("Faulty flags wrong")
	}
}

type annObserver struct {
	anns []Annotation
	pre  int
	post int
}

func (o *annObserver) Sample(_ *Engine, pre bool) {
	if pre {
		o.pre++
	} else {
		o.post++
	}
}
func (o *annObserver) OnAnnotation(_ *Engine, a Annotation) { o.anns = append(o.anns, a) }

func TestAnnotationsAndSampling(t *testing.T) {
	rec := &recorder{}
	rec.onStart = func(ctx *Context) { ctx.Annotate("mark", 42) }
	e, err := New(Config{
		Procs:   []Process{rec},
		Clocks:  perfectClocks(1),
		StartAt: starts(1, 3),
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := &annObserver{}
	e.Observe(obs)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(obs.anns) != 1 {
		t.Fatalf("annotations = %v, want one", obs.anns)
	}
	a := obs.anns[0]
	if a.Tag != "mark" || a.Value != 42 || a.Proc != 0 || a.At != 3 {
		t.Errorf("annotation = %+v", a)
	}
	// One action → one pre and one post sample, plus one horizon sample.
	if obs.post != 1 || obs.pre != 2 {
		t.Errorf("samples pre=%d post=%d, want 2/1", obs.pre, obs.post)
	}
}

func TestDelayModelsWithinBounds(t *testing.T) {
	rng := NewRNG(1)
	pick := NewRNG(2)
	models := []DelayModel{
		ConstantDelay{Delta: 0.01},
		UniformDelay{Delta: 0.01, Eps: 0.002},
		ExtremalDelay{Delta: 0.01, Eps: 0.002},
		PerLinkDelay{Delta: 0.01, Eps: 0.002, Seed: 3},
	}
	for _, m := range models {
		delta, eps := m.Bounds()
		for i := 0; i < 200; i++ {
			from, to := ProcID(pick.Intn(8)), ProcID(pick.Intn(8))
			d := m.Sample(from, to, clock.Real(pick.Float64()*100), &rng)
			if d < delta-eps-1e-12 || d > delta+eps+1e-12 {
				t.Fatalf("%T: delay %v outside [%v, %v]", m, d, delta-eps, delta+eps)
			}
		}
	}
}

func TestPerLinkDelayDeterministic(t *testing.T) {
	m := PerLinkDelay{Delta: 0.01, Eps: 0.002, Seed: 5}
	rng := NewRNG(0)
	a := m.Sample(1, 2, 0, &rng)
	b := m.Sample(1, 2, 99, &rng)
	if a != b {
		t.Error("per-link delay not stable across time")
	}
	c := m.Sample(2, 1, 0, &rng)
	if a == c {
		t.Error("per-link delay should be asymmetric in general")
	}
}

func TestExtremalDelayCustomSplit(t *testing.T) {
	m := ExtremalDelay{Delta: 0.01, Eps: 0.001, SlowTo: func(_, to ProcID) bool { return to == 3 }}
	rng := NewRNG(0)
	if got := m.Sample(0, 3, 0, &rng); math.Abs(got-0.011) > 1e-15 {
		t.Errorf("slow recipient delay = %v, want 0.011", got)
	}
	if got := m.Sample(0, 2, 0, &rng); math.Abs(got-0.009) > 1e-15 {
		t.Errorf("fast recipient delay = %v, want 0.009", got)
	}
}

// TestQueueOrderingProperty checks by property that pops come out sorted by
// (time, non-timer-first, seq).
func TestQueueOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &Engine{}
		n := 2 + rng.Intn(50)
		for i := 0; i < n; i++ {
			k := KindOrdinary
			if rng.Intn(2) == 0 {
				k = KindTimer
			}
			e.push(Message{Kind: k, DeliverAt: clock.Real(rng.Intn(5))})
		}
		var last Message
		first := true
		for e.queue.len() > 0 {
			m := e.queue.pop().msg
			if !first {
				if m.DeliverAt < last.DeliverAt {
					return false
				}
				if m.DeliverAt == last.DeliverAt && last.Kind == KindTimer && m.Kind != KindTimer {
					return false
				}
			}
			last, first = m, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEtherCollisions(t *testing.T) {
	// Buffer of 1, window 1ms: two arrivals within 1ms at the same receiver
	// lose the second copy; spaced arrivals survive.
	ch := NewEther(0.001, 1)
	if _, ok := ch.Route(0, 5, 0, 0.010); !ok {
		t.Fatal("first copy should be delivered")
	}
	if _, ok := ch.Route(1, 5, 0, 0.0105); ok {
		t.Fatal("colliding copy should be dropped")
	}
	if ch.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", ch.Dropped())
	}
	if _, ok := ch.Route(2, 5, 0.1, 0.010); !ok {
		t.Fatal("spaced copy should be delivered")
	}
	// Different receiver does not contend.
	if _, ok := ch.Route(1, 6, 0, 0.0105); !ok {
		t.Fatal("copy to different receiver should be delivered")
	}
}

func TestEtherLoopbackNeverContends(t *testing.T) {
	ch := NewEther(0.001, 1)
	if _, ok := ch.Route(0, 5, 0, 0.010); !ok {
		t.Fatal("first copy delivered")
	}
	if _, ok := ch.Route(5, 5, 0, 0.0101); !ok {
		t.Error("loopback should bypass the wire")
	}
}

func TestEtherBufferDepth(t *testing.T) {
	ch := NewEther(0.001, 3)
	delivered := 0
	for i := 0; i < 5; i++ {
		if _, ok := ch.Route(ProcID(i), 9, 0, 0.010+float64(i)*1e-5); ok {
			delivered++
		}
	}
	if delivered != 3 {
		t.Errorf("delivered %d of 5 simultaneous copies, want buffer depth 3", delivered)
	}
}

// TestEtherOutOfOrderArrival is the regression test for the double-sided
// contention window: a copy routed first but scheduled to arrive *later*
// must not evict a copy arriving now — the drop-new rule counts only
// datagrams already in the buffer, i.e. arrivals within (a−Window, a].
func TestEtherOutOfOrderArrival(t *testing.T) {
	// Window 6, buffer 1. Copy A is routed first and arrives at t=10; copy B
	// is routed second but arrives at t=5. A is 5 > 0 away from B's arrival,
	// inside the old double-width window (−1, 11] but outside the documented
	// (−1, 5] one: B must be delivered.
	ch := NewEther(6, 1)
	if _, ok := ch.Route(0, 2, 0, 10); !ok {
		t.Fatal("copy A should be delivered into an empty buffer")
	}
	if _, ok := ch.Route(1, 2, 0, 5); !ok {
		t.Error("copy B arrives before A: a datagram not yet arrived must not evict it")
	}
	// The documented semantics still drop a copy contending with an arrival
	// inside its own trailing window: C arrives at t=9, with B at 5 > 9−6.
	if _, ok := ch.Route(3, 2, 0, 9); ok {
		t.Error("copy C should be dropped: B already sits in its (a−Window, a] window and the buffer holds 1")
	}
	if got := ch.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
}

// TestContextRandDistinctWithinReceive is the regression test for the old
// Context.Rand bug: the generator was re-seeded from (pid, step count) on
// every call, so two draws within one Receive returned identical values.
func TestContextRandDistinctWithinReceive(t *testing.T) {
	var draws []float64
	rec := &recorder{}
	rec.onStart = func(ctx *Context) {
		draws = append(draws, ctx.Rand().Float64(), ctx.Rand().Float64())
	}
	e, err := New(Config{
		Procs:   []Process{rec},
		Clocks:  perfectClocks(1),
		StartAt: starts(1, 0),
		Delay:   ConstantDelay{Delta: 0.01},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(draws) != 2 {
		t.Fatalf("recorded %d draws, want 2", len(draws))
	}
	if draws[0] == draws[1] {
		t.Fatalf("two Rand() draws within one Receive are identical (%v): per-call re-seeding bug is back", draws[0])
	}
}

// TestContextRandDeterministicAndPerProcess checks the replacement contract:
// streams depend only on (engine seed, pid) — reproducible across runs,
// separated across processes.
func TestContextRandDeterministicAndPerProcess(t *testing.T) {
	run := func(seed int64) [][]float64 {
		n := 3
		out := make([][]float64, n)
		procs := make([]Process, n)
		for i := 0; i < n; i++ {
			i := i
			r := &recorder{}
			r.onStart = func(ctx *Context) {
				for k := 0; k < 4; k++ {
					out[i] = append(out[i], ctx.Rand().Float64())
				}
			}
			procs[i] = r
		}
		e, err := New(Config{
			Procs:   procs,
			Clocks:  perfectClocks(n),
			StartAt: starts(n, 0),
			Delay:   ConstantDelay{Delta: 0.01},
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(1); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(11), run(11)
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("process %d draw %d differs across identical runs", i, k)
			}
		}
	}
	if a[0][0] == a[1][0] && a[0][1] == a[1][1] {
		t.Error("processes 0 and 1 share a stream")
	}
	c := run(12)
	if a[0][0] == c[0][0] && a[0][1] == c[0][1] {
		t.Error("engine seed does not reach per-process streams")
	}
}

// TestObserveClassification checks the registration-time split: a type
// implementing only some observer interfaces is called back only on those,
// and registering a type implementing none panics instead of silently
// observing nothing.
func TestObserveClassification(t *testing.T) {
	rec := &recorder{}
	rec.onStart = func(ctx *Context) { ctx.Annotate("a", 1) }
	e, err := New(Config{
		Procs:   []Process{rec},
		Clocks:  perfectClocks(1),
		StartAt: starts(1, 0),
		Delay:   ConstantDelay{Delta: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := &annObserver{}
	e.Observe(obs)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Observe of a non-observer did not panic")
			}
		}()
		e.Observe(42)
	}()
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(obs.anns) != 1 || obs.pre == 0 {
		t.Errorf("classified observer missed callbacks: anns=%d pre=%d", len(obs.anns), obs.pre)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindOrdinary: "ORDINARY",
		KindStart:    "START",
		KindTimer:    "TIMER",
		Kind(9):      "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind.String() = %q, want %q", got, want)
		}
	}
}

func TestLossyLinks(t *testing.T) {
	ch := NewLossyLinks(Link{From: 0, To: 1}).BreakBothWays(2, 3)
	if _, ok := ch.Route(0, 1, 0, 0.01); ok {
		t.Error("dead link 0→1 delivered")
	}
	if _, ok := ch.Route(1, 0, 0, 0.01); !ok {
		t.Error("reverse of a one-way dead link should deliver")
	}
	if _, ok := ch.Route(2, 3, 0, 0.01); ok {
		t.Error("dead link 2→3 delivered")
	}
	if _, ok := ch.Route(3, 2, 0, 0.01); ok {
		t.Error("dead link 3→2 delivered")
	}
	if at, ok := ch.Route(4, 5, 1, 0.01); !ok || at != 1.01 {
		t.Errorf("healthy link: at=%v ok=%v", at, ok)
	}
	// Loopback always works, even if configured dead.
	ch.Dead[Link{From: 6, To: 6}] = true
	if _, ok := ch.Route(6, 6, 0, 0.01); !ok {
		t.Error("loopback dropped")
	}
}
