package sim

import (
	"io"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/clock"
)

// lazyTestEngine builds the standard lazy-vs-eager differential workload: n
// beacon processes with near-simultaneous starts (so whole fan-out bursts
// are in flight together), drifting clocks, and a randomized delay model.
func lazyTestEngine(t *testing.T, n int, s Scheduler, b BroadcastMode, ch Channel, adv Adversary) *Engine {
	t.Helper()
	procs := make([]Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	drift := clock.ConstantDrift{RhoBound: 1e-5}
	for i := range procs {
		procs[i] = &testBeacon{period: 1e-3}
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 1e-6
	}
	eng, err := New(Config{
		Procs:     procs,
		Clocks:    clocks,
		StartAt:   starts,
		Delay:     UniformDelay{Delta: 4e-4, Eps: 1e-4},
		Channel:   ch,
		Seed:      7,
		Scheduler: s,
		Broadcast: b,
		Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBroadcastModeEquivalence is the eager-vs-lazy differential demanded by
// the materialization change: the same workload under every scheduler ×
// broadcast-mode combination must produce the bit-identical delivery
// sequence — same (DeliverAt, From, To, Kind) for every event, in the same
// order. Lazy materialization only changes *when* fan-out copies occupy
// queue slots; any drift in delay sampling, sequencing, or tie-break order
// shows up here as a first-divergence index.
func TestBroadcastModeEquivalence(t *testing.T) {
	type delivered struct {
		at   clock.Real
		from ProcID
		to   ProcID
		kind Kind
	}
	run := func(s Scheduler, b BroadcastMode) []delivered {
		t.Helper()
		const n = 101 // far above lazyBroadcastMinN and calActivateLen
		eng := lazyTestEngine(t, n, s, b, nil, nil)
		if want := b == BroadcastLazy || b == BroadcastAuto; eng.LazyBroadcast() != want {
			t.Fatalf("mode %d at n=%d: LazyBroadcast()=%v, want %v", b, n, eng.LazyBroadcast(), want)
		}
		var log []delivered
		eng.Observe(observerFunc(func(_ *Engine, m Message) {
			log = append(log, delivered{at: m.DeliverAt, from: m.From, to: m.To, kind: m.Kind})
		}))
		if err := eng.Run(0.01); err != nil {
			t.Fatal(err)
		}
		if len(log) < 5*n*n {
			t.Fatalf("scheduler %d mode %d: only %d deliveries — not a meaningful comparison", s, b, len(log))
		}
		return log
	}

	ref := run(SchedulerHeap, BroadcastEager)
	for _, s := range []Scheduler{SchedulerHeap, SchedulerAuto, SchedulerCalendar} {
		for _, b := range []BroadcastMode{BroadcastEager, BroadcastLazy, BroadcastAuto} {
			if s == SchedulerHeap && b == BroadcastEager {
				continue
			}
			got := run(s, b)
			if len(got) != len(ref) {
				t.Fatalf("scheduler %d mode %d delivered %d events, reference delivered %d", s, b, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("scheduler %d mode %d diverges at event %d: %+v vs reference %+v", s, b, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestLazyAccountingEquivalence pins the delivery-accounting contract under
// lazy materialization: MessagesSent counts materialized-equivalent copies
// (one per recipient actually routed), MessagesLost counts per-copy channel
// drops, and the delivered-step totals agree with eager mode exactly — with
// a lossy channel in the path, so the lost/sent split is exercised too.
func TestLazyAccountingEquivalence(t *testing.T) {
	const n = 48
	ch := LossyLinks{}.BreakBothWays(0, 1).BreakBothWays(2, 40).BreakBothWays(17, 33)
	type account struct {
		sent, lost int64
		steps      int
	}
	run := func(b BroadcastMode) account {
		t.Helper()
		eng := lazyTestEngine(t, n, SchedulerAuto, b, ch, nil)
		if err := eng.Run(0.02); err != nil {
			t.Fatal(err)
		}
		return account{sent: eng.MessagesSent(), lost: eng.MessagesLost(), steps: eng.Steps()}
	}
	eager := run(BroadcastEager)
	lazy := run(BroadcastLazy)
	if eager != lazy {
		t.Fatalf("accounting diverges: eager %+v, lazy %+v", eager, lazy)
	}
	if eager.lost == 0 {
		t.Fatal("no copies lost — the lossy split was not exercised")
	}
	if eager.sent <= int64(eager.steps)/2 {
		t.Fatalf("implausible accounting: sent=%d steps=%d", eager.sent, eager.steps)
	}
}

// pendingSnapshotter is an adversary that, on its trigger'th Retime call,
// snapshots the full pending-delivery multiset through the omniscient view.
// Retiming is the identity, so installing it does not perturb the execution.
type pendingSnapshotter struct {
	trigger int
	calls   int
	snap    []Message
}

func (p *pendingSnapshotter) Retime(v *AdversaryView, _, _ ProcID, _ clock.Real, base float64) float64 {
	p.calls++
	if p.calls == p.trigger {
		v.PendingDeliveries(func(m *Message) bool {
			p.snap = append(p.snap, *m)
			return true
		})
	}
	return base
}

// TestLazyPendingDeliveriesView checks the adversary's PendingDeliveries
// view under lazy materialization: unmaterialized fan-out copies must be
// visible per-copy, exactly as in eager mode. The snapshot is taken
// mid-burst (while fan-outs are in flight) and compared as a multiset —
// iteration order is explicitly unspecified.
func TestLazyPendingDeliveriesView(t *testing.T) {
	const n = 48
	snapshot := func(b BroadcastMode) []Message {
		t.Helper()
		adv := &pendingSnapshotter{trigger: 10 * n}
		eng := lazyTestEngine(t, n, SchedulerAuto, b, nil, adv)
		if err := eng.Run(0.02); err != nil {
			t.Fatal(err)
		}
		if adv.snap == nil {
			t.Fatalf("mode %d: snapshot never triggered (%d retime calls)", b, adv.calls)
		}
		sort.Slice(adv.snap, func(i, j int) bool {
			a, b := adv.snap[i], adv.snap[j]
			if a.DeliverAt != b.DeliverAt {
				return a.DeliverAt < b.DeliverAt
			}
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Kind < b.Kind
		})
		return adv.snap
	}
	eager := snapshot(BroadcastEager)
	lazy := snapshot(BroadcastLazy)
	if len(eager) != len(lazy) {
		t.Fatalf("pending multiset size diverges: eager %d, lazy %d", len(eager), len(lazy))
	}
	if len(eager) < n {
		t.Fatalf("only %d pending events at snapshot — no fan-out in flight", len(eager))
	}
	for i := range eager {
		e, l := eager[i], lazy[i]
		if e.DeliverAt != l.DeliverAt || e.From != l.From || e.To != l.To || e.Kind != l.Kind || e.SentAt != l.SentAt {
			t.Fatalf("pending multiset diverges at %d: eager %+v, lazy %+v", i, e, l)
		}
	}
}

// TestLazyQueuePeakLinear is the memory half of the tentpole: with every
// process broadcasting each period, the eager queue holds Θ(n²) copies at
// the burst peak while the lazy queue holds one head per fan-out plus the
// timers — O(n). The high-water mark (QueuePeak) makes the bound testable.
func TestLazyQueuePeakLinear(t *testing.T) {
	const n = 101
	peak := func(b BroadcastMode) int {
		t.Helper()
		eng := lazyTestEngine(t, n, SchedulerAuto, b, nil, nil)
		if err := eng.Run(0.01); err != nil {
			t.Fatal(err)
		}
		return eng.QueuePeak()
	}
	eager := peak(BroadcastEager)
	lazy := peak(BroadcastLazy)
	if eager < n*(n-1)/2 {
		t.Fatalf("eager peak %d below n(n−1)/2=%d — the burst never overlapped, weak test", eager, n*(n-1)/2)
	}
	if lazy > 8*n {
		t.Fatalf("lazy peak %d exceeds 8n=%d — queue population is not O(n)", lazy, 8*n)
	}
}

// TestBreakBothWaysClone is the regression test for the map-aliasing bug:
// BreakBothWays used to write the new dead links into the receiver's own
// map, so every derived channel silently mutated its parent (and any other
// channel sharing the map). Each call must clone.
func TestBreakBothWaysClone(t *testing.T) {
	base := LossyLinks{}.BreakBothWays(0, 1)
	d1 := base.BreakBothWays(2, 3)
	d2 := base.BreakBothWays(4, 5)

	if len(base.Dead) != 2 {
		t.Fatalf("base mutated by derivation: %d dead links, want 2", len(base.Dead))
	}
	if len(d1.Dead) != 4 || len(d2.Dead) != 4 {
		t.Fatalf("derived channels have %d and %d dead links, want 4 each", len(d1.Dead), len(d2.Dead))
	}
	if d1.Dead[Link{From: 4, To: 5}] || d2.Dead[Link{From: 2, To: 3}] {
		t.Fatal("sibling derivations share a map")
	}
	if _, ok := base.Dead[Link{From: 2, To: 3}]; ok {
		t.Fatal("base channel acquired the derived link")
	}
	// Route still honors both generations on the derived channel.
	if _, ok := d1.Route(0, 1, 0, 1e-3); ok {
		t.Fatal("inherited dead link 0→1 routes on derived channel")
	}
	if _, ok := d1.Route(3, 2, 0, 1e-3); ok {
		t.Fatal("new dead link 3→2 routes on derived channel")
	}
	if _, ok := base.Route(2, 3, 0, 1e-3); !ok {
		t.Fatal("base channel lost link 2→3 it never broke")
	}
}

// TestCalDebugWritesStderrOnly pins the calDebug fix: rotation diagnostics
// are debug chatter and must go to stderr — a run with CALDEBUG=1 used to
// interleave them into stdout, corrupting piped table/JSON output
// (cmd/experiments -md, cmd/benchjson). Not parallel: it swaps the global
// os.Stdout/os.Stderr.
func TestCalDebugWritesStderrOnly(t *testing.T) {
	defer func(v bool) { calDebug = v }(calDebug)
	calDebug = true

	capture := func(f **os.File) (restore func() string) {
		old := *f
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		*f = w
		return func() string {
			w.Close()
			*f = old
			b, _ := io.ReadAll(r)
			r.Close()
			return string(b)
		}
	}
	readStdout := capture(&os.Stdout)
	readStderr := capture(&os.Stderr)

	// Far-jumping traffic forces a rotation (and a diagnostic line) per round.
	s := &sched{}
	s.init(SchedulerCalendar, 64, 1e-3, 1e-4)
	at := clock.Real(0)
	seq := uint64(0)
	for round := 0; round < 4; round++ {
		at += 0.1
		for i := 0; i < 64; i++ {
			ev := event{msg: Message{DeliverAt: at + clock.Real(i)*1e-5}, seq: seq}
			seq++
			s.push(&ev)
		}
		for s.len() > 0 {
			s.pop()
		}
	}

	gotOut := readStdout()
	gotErr := readStderr()
	if gotOut != "" {
		t.Fatalf("CALDEBUG diagnostics leaked to stdout: %q", gotOut)
	}
	if !strings.Contains(gotErr, "rotate:") {
		t.Fatalf("no rotation diagnostics on stderr — the debug path never fired: %q", gotErr)
	}
}
