package faults

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

// This file holds the adaptive adversaries: strategies that react to the
// live execution through the delivery pipeline's adversary stage
// (sim.Adversary + ReceiveHook/SendHook) instead of committing to a
// schedule before the run starts. Their write capability is clamped by the
// engine to the [δ−ε, δ+ε] envelope of assumption A3, so they model
// exactly the adversary of the paper's lower-bound shifting argument: the
// network may place any delivery anywhere inside its uncertainty window,
// and nothing else.
//
//   - skewmax reproduces the lower bound experimentally: it greedily
//     retimes every delivery to widen the nonfaulty local-time spread,
//     driving executions toward (and past) ε(1−1/n) with zero faulty
//     processes — delay uncertainty alone is the weapon.
//   - splitter is the faulty-side counterpart: its members run the
//     classic two-faced schedule, but the *split* — who is pulled early,
//     who late — is chosen live from observed arrivals, bisecting the
//     nonfaulty set along its current clock ordering, and the members'
//     copies are additionally edge-retimed in the same directions.
//
// Adaptive strategies register through the same faults.Register as the
// schedule-driven ones (so cmd/wlsim -adversary resolves them by name) but
// are excluded from the E17 conformance sweep via Strategy.Adaptive; the
// lower-bound experiment E18 is their harness.

// SkewMax is the greedy shifting-argument adversary. For every message
// copy to a nonfaulty receiver it reads the current nonfaulty local-time
// spread (one cached O(1) lookup) and pins the copy's delay to the window
// edge that reinforces the receiver's side of the split: receivers in the
// upper half of the spread get δ−ε (an early arrival reads as "everyone
// else is ahead", pulling the receiver's correction up — true for the
// paper's algorithm, [LM]'s egocentric mean, and [ST]'s acceptance rule
// alike), the lower half gets δ+ε. The two halves accumulate opposite
// ε-sized estimation errors every round, which no averaging function can
// distinguish from honest delays — the executions are literally A3-legal —
// so the steady spread is pushed to the scale of the ε(1−1/n) bound.
type SkewMax struct{}

var _ sim.Adversary = SkewMax{}

// Retime implements sim.Adversary.
func (SkewMax) Retime(v *sim.AdversaryView, _, to sim.ProcID, _ clock.Real, base float64) float64 {
	if v.Faulty(to) {
		return base
	}
	now := v.Now()
	lt, ok := v.LocalTime(to, now)
	if !ok {
		return base
	}
	lo, hi, count := v.LocalTimeSpread(now)
	if count < 2 {
		return base
	}
	d, e := v.Bounds()
	if float64(hi-lo) < 1e-12 {
		// Degenerate spread (perfectly synchronized clocks): seed an
		// asymmetry by id parity so the greedy split has something to
		// reinforce next round.
		if int(to)%2 == 0 {
			return d - e
		}
		return d + e
	}
	if lt >= (lo+hi)/2 {
		return d - e // upper half: early arrivals drag it further up
	}
	return d + e // lower half: late arrivals drag it further down
}

// splitState is the observation record shared between the splitter's
// two-faced automata and its retiming adversary: the most recent broadcast
// instant observed (via delivered copies) per nonfaulty sender. Broadcast
// order tracks clock order — a faster logical clock reaches its round mark
// earlier in real time — so ranking processes by it bisects the nonfaulty
// set without ever reading a clock directly.
type splitState struct {
	lastSend []clock.Real
	seen     []bool
	member   []bool
}

// fastHalf reports whether q currently ranks in the earlier-broadcasting
// half of the observed nonfaulty processes (ties broken by id). Before q
// has been observed it falls back to an id-parity split, which seeds the
// first round.
func (s *splitState) fastHalf(q sim.ProcID) bool {
	if int(q) >= len(s.seen) || !s.seen[q] {
		return int(q)%2 == 0
	}
	earlier, total := 0, 0
	for p := range s.lastSend {
		if !s.seen[p] || s.member[p] {
			continue
		}
		total++
		if s.lastSend[p] < s.lastSend[q] || (s.lastSend[p] == s.lastSend[q] && p < int(q)) {
			earlier++
		}
	}
	return earlier*2 < total
}

// splitterAdv is the network half of the splitter: it records observed
// arrivals into the shared splitState and edge-retimes the members' copies
// along the current split.
type splitterAdv struct {
	st         *splitState
	delta, eps float64
}

var (
	_ sim.Adversary   = (*splitterAdv)(nil)
	_ sim.ReceiveHook = (*splitterAdv)(nil)
)

// OnReceive implements sim.ReceiveHook: every delivered nonfaulty copy
// reveals its sender's broadcast instant (SentAt rides in the message; an
// eavesdropper reconstructs it from the arrival and the window).
func (a *splitterAdv) OnReceive(v *sim.AdversaryView, m sim.Message) {
	if v.Faulty(m.From) {
		return
	}
	a.st.lastSend[m.From] = m.SentAt
	a.st.seen[m.From] = true
}

// Retime implements sim.Adversary: copies sent by members ride the window
// edge matching the recipient's side of the split; honest traffic passes
// untouched.
func (a *splitterAdv) Retime(v *sim.AdversaryView, from, to sim.ProcID, _ clock.Real, base float64) float64 {
	if int(from) >= len(a.st.member) || !a.st.member[from] || v.Faulty(to) {
		return base
	}
	if a.st.fastHalf(to) {
		return a.delta - a.eps
	}
	return a.delta + a.eps
}

func init() {
	Register(Strategy{
		Name: "skewmax",
		Desc: "adaptive: retimes every delivery inside [δ−ε, δ+ε] to widen the nonfaulty spread toward ε(1−1/n)",
		// The attack is pure delay retiming; it needs no faulty automata
		// (the lower bound holds even with f = 0).
		WantsMembers: false,
		BuildAdaptive: func(cfg core.Config, members []sim.ProcID, _ int64) ([]sim.Process, sim.Adversary) {
			// Members are incidental (callers normally pass none); any that
			// are named simply stay silent.
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = Silent{}
			}
			return out, SkewMax{}
		},
	})
	Register(Strategy{
		Name:         "splitter",
		Desc:         "adaptive: two-faced sends timed off observed arrivals, bisecting the nonfaulty set",
		WantsMembers: true,
		BuildAdaptive: func(cfg core.Config, members []sim.ProcID, _ int64) ([]sim.Process, sim.Adversary) {
			st := &splitState{
				lastSend: make([]clock.Real, cfg.N),
				seen:     make([]bool, cfg.N),
				member:   make([]bool, cfg.N),
			}
			for _, id := range members {
				st.member[id] = true
			}
			adv := &splitterAdv{st: st, delta: cfg.Delta, eps: cfg.Eps}
			pull := cfg.Beta - cfg.Eps
			out := make([]sim.Process, len(members))
			for i := range out {
				// The classic two-faced schedule, but the early/late split
				// re-evaluates against the live observation record on every
				// send decision.
				out[i] = &TwoFaced{Cfg: cfg, Lead: pull, Lag: pull, EarlyTo: st.fastHalf}
			}
			return out, adv
		},
	})
}
