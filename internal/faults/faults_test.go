package faults_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/sim"
)

func cfg7() core.Config { return core.Config{Params: analysis.Default(7, 2)} }

func runWith(t *testing.T, cfg core.Config, mix map[sim.ProcID]func() sim.Process) *exp.Result {
	t.Helper()
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 12, Faults: mix})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSilentTolerated(t *testing.T) {
	cfg := cfg7()
	res := runWith(t, cfg, map[sim.ProcID]func() sim.Process{
		1: func() sim.Process { return faults.Silent{} },
		4: func() sim.Process { return faults.Silent{} },
	})
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("skew %v exceeds γ %v with silent faults", got, cfg.Gamma())
	}
}

func TestCrashAfterStopsActing(t *testing.T) {
	cfg := cfg7()
	res := runWith(t, cfg, map[sim.ProcID]func() sim.Process{
		6: func() sim.Process {
			return &faults.CrashAfter{Inner: core.NewProc(cfg, 0), At: 5.0}
		},
	})
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("skew %v exceeds γ %v with a mid-run crash", got, cfg.Gamma())
	}
	// The crashed process's automaton must be frozen: its round counter
	// stays near where it was at the crash (physical time 5 ≈ round 5).
	ca := res.Engine.Process(6).(*faults.CrashAfter)
	inner := ca.Inner.(*core.Proc)
	if inner.Round() > 6 {
		t.Errorf("crashed process advanced to round %d after its crash time", inner.Round())
	}
}

func TestNoiseTolerated(t *testing.T) {
	cfg := cfg7()
	res := runWith(t, cfg, map[sim.ProcID]func() sim.Process{
		0: func() sim.Process { return &faults.Noise{Cfg: cfg, Burst: 4} },
		3: func() sim.Process { return &faults.Noise{Cfg: cfg, Burst: 4} },
	})
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("skew %v exceeds γ %v with noise faults", got, cfg.Gamma())
	}
}

func TestStaleReplayTolerated(t *testing.T) {
	cfg := cfg7()
	res := runWith(t, cfg, map[sim.ProcID]func() sim.Process{
		2: func() sim.Process { return &faults.StaleReplay{Cfg: cfg, Offset: 3e-3} },
		5: func() sim.Process { return &faults.StaleReplay{Cfg: cfg, Offset: 5e-3} },
	})
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("skew %v exceeds γ %v with stale-replay faults", got, cfg.Gamma())
	}
}

func TestTwoFacedTolerated(t *testing.T) {
	cfg := cfg7()
	res := runWith(t, cfg, map[sim.ProcID]func() sim.Process{
		5: func() sim.Process { return &faults.TwoFaced{Cfg: cfg, Lead: 4e-3, Lag: 4e-3} },
		6: func() sim.Process { return &faults.TwoFaced{Cfg: cfg, Lead: 4e-3, Lag: 4e-3} },
	})
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("skew %v exceeds γ %v with two-faced faults", got, cfg.Gamma())
	}
}

func TestLyingMarkHarmless(t *testing.T) {
	cfg := cfg7()
	// A LyingMark process is *not* marked faulty here: it behaves honestly
	// in timing, so agreement must hold even counting it as nonfaulty.
	res, err := exp.Run(exp.Workload{
		Cfg:    cfg,
		Rounds: 12,
		MakeProc: func(id sim.ProcID, corr clock.Local) sim.Process {
			p := core.NewProc(cfg, corr)
			if id == 3 {
				return &faults.LyingMark{Inner: p}
			}
			return p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("skew %v exceeds γ %v with a lying-mark process", got, cfg.Gamma())
	}
}
