package faults

import (
	"math"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

// This file holds the adversaries built for the conformance harness: a
// colluding clique, an edge-rider, a drift-maximizer, a crash/recover loop,
// and an RNG-driven random-timing attacker. Like the original behaviors in
// faults.go they influence nonfaulty state only through arrival times, which
// is the entire attack surface the algorithm exposes (§2.1, Lemma 6).

// cliquePlan is the state shared by a colluding clique: one plan per round,
// drawn from a common RNG stream by whichever member reaches the round
// first, so all f faulty arrival entries move through reduce_f together —
// strictly harder to discard than f independently-timed attackers.
type cliquePlan struct {
	rng     sim.RNG
	planned int     // rounds planned so far
	jitter  float64 // current round's common intensity scale
}

// advance draws round r's plan if nobody has yet.
func (c *cliquePlan) advance(r int) {
	for c.planned <= r {
		c.jitter = 0.75 + 0.25*c.rng.Float64()
		c.planned++
	}
}

// CliqueTuning parameterizes a colluding clique. The zero value derives
// everything from the algorithm config and seed.
type CliqueTuning struct {
	// Lead and Lag are the local-time offsets applied to the early and late
	// recipient groups; zero means β+ε, the strongest pull that still lands
	// inside every honest collection window.
	Lead, Lag float64
	// EarlyTo selects the recipients pulled early; nil draws a persistent
	// random pivot split from the seed (the same split for every member —
	// that persistence is what makes the clique's pull accumulate).
	EarlyTo func(to sim.ProcID) bool
}

// cliqueMember is one colluding process; all members of a clique share one
// plan.
type cliqueMember struct {
	cfg   core.Config
	lead  float64
	lag   float64
	early func(to sim.ProcID) bool
	plan  *cliquePlan
	round int
}

var _ sim.Process = (*cliqueMember)(nil)

// NewClique builds `members` colluding processes. See CliqueTuning for the
// knobs; the default clique pushes a random persistent split of the
// recipients apart at intensity β+ε with a shared per-round jitter.
func NewClique(cfg core.Config, members int, seed int64, tune CliqueTuning) []sim.Process {
	plan := &cliquePlan{rng: sim.NewRNG(seed)}
	lead, lag := tune.Lead, tune.Lag
	if lead == 0 {
		lead = cfg.Beta + cfg.Eps
	}
	if lag == 0 {
		lag = cfg.Beta + cfg.Eps
	}
	early := tune.EarlyTo
	if early == nil {
		// Persistent random split: recipients below a random pivot are
		// pulled early, the rest late, all rounds, all members.
		pivot := 1 + plan.rng.Intn(cfg.N-1)
		early = func(to sim.ProcID) bool { return int(to) < pivot }
	}
	out := make([]sim.Process, members)
	for i := range out {
		out[i] = &cliqueMember{cfg: cfg, lead: lead, lag: lag, early: early, plan: plan}
	}
	return out
}

// Receive implements sim.Process.
func (c *cliqueMember) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	if p, ok := m.Payload.(sendAt); ok {
		ctx.Send(p.to, p.payload)
		return
	}
	c.plan.advance(c.round)
	j := c.plan.jitter
	mark := c.cfg.T0 + float64(c.round)*c.cfg.P
	payload := core.TMsg{Mark: clock.Local(mark)}
	for q := 0; q < ctx.N(); q++ {
		at := mark + c.lag*j
		if c.early(sim.ProcID(q)) {
			at = mark - c.lead*j
		}
		ctx.SetTimer(clock.Local(at), sendAt{to: sim.ProcID(q), payload: payload})
	}
	c.round++
	next := c.cfg.T0 + float64(c.round)*c.cfg.P
	ctx.SetTimer(clock.Local(next-c.lead-1e-9), nextRound{})
}

// EdgeRider pins every arrival to an edge of the recipient's collection
// window: even-id recipients get the earliest-believable copy, odd-id
// recipients the latest-believable one — the process-side analogue of the
// ExtremalDelay network, riding the δ±ε envelope from the sender's seat.
type EdgeRider struct {
	Cfg core.Config
	// Lead and Lag are the local-time offsets to the two edges; zero means
	// β+ε, the extreme that still lands inside every honest window.
	Lead, Lag float64

	round int
}

var _ sim.Process = (*EdgeRider)(nil)

// Receive implements sim.Process.
func (r *EdgeRider) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	if p, ok := m.Payload.(sendAt); ok {
		ctx.Send(p.to, p.payload)
		return
	}
	lead, lag := r.Lead, r.Lag
	if lead == 0 {
		lead = r.Cfg.Beta + r.Cfg.Eps
	}
	if lag == 0 {
		lag = r.Cfg.Beta + r.Cfg.Eps
	}
	mark := r.Cfg.T0 + float64(r.round)*r.Cfg.P
	payload := core.TMsg{Mark: clock.Local(mark)}
	for q := 0; q < ctx.N(); q++ {
		at := mark + lag
		if q%2 == 0 {
			at = mark - lead
		}
		ctx.SetTimer(clock.Local(at), sendAt{to: sim.ProcID(q), payload: payload})
	}
	r.round++
	next := r.Cfg.T0 + float64(r.round)*r.Cfg.P
	ctx.SetTimer(clock.Local(next-lead-1e-9), nextRound{})
}

// DriftMax follows the honest round schedule but pretends its physical clock
// drifts at Rate, far beyond the ρ bound honest clocks obey (A1): round i's
// broadcast happens at mark + i·Rate·P, dragging its arrivals steadily
// across — and eventually beyond — the honest collection windows.
type DriftMax struct {
	Cfg core.Config
	// Rate is the virtual drift rate; zero means 2e-3 (two hundred times
	// the experiments' ρ = 1e-5), which leaves every honest window within
	// a dozen rounds.
	Rate float64

	round int
}

var _ sim.Process = (*DriftMax)(nil)

// Receive implements sim.Process.
func (d *DriftMax) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	rate := d.Rate
	if rate == 0 {
		rate = 2e-3
	}
	mark := d.Cfg.T0 + float64(d.round)*d.Cfg.P
	ctx.Broadcast(core.TMsg{Mark: clock.Local(mark)})
	d.round++
	// Next round's broadcast at the virtually-drifted mark.
	next := d.Cfg.T0 + float64(d.round)*d.Cfg.P*(1+rate)
	ctx.SetTimer(clock.Local(next), nil)
}

// FlakyRejoin loops through crash and recovery: AliveRounds rounds of honest
// round-mark broadcasts, DeadRounds rounds of silence, then a rejoin that
// replays the stale mark of its last alive round alongside the current one —
// a process that keeps crashing and coming back with old state.
type FlakyRejoin struct {
	Cfg core.Config
	// AliveRounds and DeadRounds set the duty cycle; zero means 2 each.
	AliveRounds, DeadRounds int

	round int
}

var _ sim.Process = (*FlakyRejoin)(nil)

// Receive implements sim.Process.
func (f *FlakyRejoin) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	alive, dead := f.AliveRounds, f.DeadRounds
	if alive <= 0 {
		alive = 2
	}
	if dead <= 0 {
		dead = 2
	}
	phase := f.round % (alive + dead)
	mark := f.Cfg.T0 + float64(f.round)*f.Cfg.P
	if phase < alive {
		if phase == 0 && f.round > 0 {
			// Rejoin storm: replay the mark it was broadcasting before the
			// crash, then the current one.
			stale := mark - float64(dead+1)*f.Cfg.P
			ctx.Broadcast(core.TMsg{Mark: clock.Local(stale)})
		}
		ctx.Broadcast(core.TMsg{Mark: clock.Local(mark)})
	}
	f.round++
	ctx.SetTimer(clock.Local(f.Cfg.T0+float64(f.round)*f.Cfg.P), nil)
}

// RandomTiming is the RNG-driven adversary: each round it draws, per
// recipient, an independent send offset Bias ± Spread around the round mark
// from its own sim.RNG stream. The fuzzing harness drives Spread, Bias and
// the seed to search the timing space mechanically; with parameters inside a
// round the theorem must hold for every draw.
type RandomTiming struct {
	cfg    core.Config
	spread float64
	bias   float64
	rng    sim.RNG
	round  int
}

var _ sim.Process = (*RandomTiming)(nil)

// NewRandomTiming builds a random-timing adversary. Spread and |bias| are
// clamped to P/4 so the schedule always stays inside the neighboring rounds
// and the adversary keeps acting for the whole execution; any float inputs —
// including a fuzzer's — yield a valid automaton.
func NewRandomTiming(cfg core.Config, seed int64, spread, bias float64) *RandomTiming {
	limit := cfg.P / 4
	spread = clampAbs(spread, limit)
	if spread < 0 {
		spread = -spread
	}
	bias = clampAbs(bias, limit)
	return &RandomTiming{cfg: cfg, spread: spread, bias: bias, rng: sim.NewRNG(seed)}
}

func clampAbs(v, limit float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > limit {
		return limit
	}
	if v < -limit {
		return -limit
	}
	return v
}

// Receive implements sim.Process.
func (r *RandomTiming) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	if p, ok := m.Payload.(sendAt); ok {
		ctx.Send(p.to, p.payload)
		return
	}
	mark := r.cfg.T0 + float64(r.round)*r.cfg.P
	payload := core.TMsg{Mark: clock.Local(mark)}
	for q := 0; q < ctx.N(); q++ {
		off := r.bias + (2*r.rng.Float64()-1)*r.spread
		ctx.SetTimer(clock.Local(mark+off), sendAt{to: sim.ProcID(q), payload: payload})
	}
	r.round++
	next := r.cfg.T0 + float64(r.round)*r.cfg.P
	ctx.SetTimer(clock.Local(next-r.spread+r.bias-1e-9), nextRound{})
}
