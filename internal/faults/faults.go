// Package faults provides Byzantine process behaviors for the simulator.
// Faulty processes implement the same automaton interface as nonfaulty ones
// but are unconstrained (§2.1: "they can choose when they take steps and can
// do anything they want at a step").
//
// For the clock synchronization algorithm the only influence a faulty
// process has on a nonfaulty one is *when* its messages arrive (the ARR
// array stores arrival times; payload content is irrelevant to nonfaulty
// state). The strongest attacks therefore manipulate send timing
// per-recipient (two-faced behavior), which the fault-tolerant averaging
// function must — and does — withstand for up to f faults when n ≥ 3f+1.
package faults

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

// Silent is a process that crashed before the execution began: it never
// sends anything. Its stale (never-updated) ARR entries at other processes
// are exactly the "faulty value" case of Lemma 6.
type Silent struct{}

var _ sim.Process = Silent{}

// Receive implements sim.Process.
func (Silent) Receive(*sim.Context, sim.Message) {}

// CrashAfter behaves as Inner until the process's physical clock reaches At,
// then stops forever (a crash failure, the benign end of the Byzantine
// spectrum).
type CrashAfter struct {
	Inner sim.Process
	At    clock.Local

	dead bool
}

var _ sim.Process = (*CrashAfter)(nil)

// Receive implements sim.Process.
func (c *CrashAfter) Receive(ctx *sim.Context, m sim.Message) {
	if c.dead || ctx.PhysNow() >= c.At {
		c.dead = true
		return
	}
	c.Inner.Receive(ctx, m)
}

// Corr exposes the inner correction while alive so metrics can ignore or
// inspect it; after death it reports the last value.
func (c *CrashAfter) Corr() clock.Local {
	if h, ok := c.Inner.(sim.CorrHolder); ok {
		return h.Corr()
	}
	return 0
}

// sendAt is the timer payload two-faced processes use to schedule a
// per-recipient send.
type sendAt struct {
	to      sim.ProcID
	payload any
}

// TwoFaced runs the honest round schedule on its own (uncorrected) physical
// clock but delivers its round message *early* to recipients selected by
// EarlyTo and *late* to the rest: each round it sends at mark−Lead to the
// early group and mark+Lag to the late group. This plants arrival times at
// opposite extremes of different processes' windows, the canonical attempt
// to pull the group apart.
type TwoFaced struct {
	Cfg core.Config
	// Lead and Lag are local-time offsets (seconds); both should be small
	// enough that messages still land inside the honest windows, else they
	// are simply discarded by reduce as extreme values.
	Lead, Lag float64
	// EarlyTo selects recipients that get the early copy. Nil means the
	// lower half of the id space.
	EarlyTo func(to sim.ProcID) bool
	// MakePayload builds the message payload for a round mark; nil means
	// the main algorithm's TMsg. Baseline experiments substitute the
	// baseline's dialect (e.g. an ms.ClockMsg) so the attack reaches it.
	MakePayload func(mark clock.Local) any

	round int
}

var _ sim.Process = (*TwoFaced)(nil)

// Receive implements sim.Process.
func (t *TwoFaced) Receive(ctx *sim.Context, m sim.Message) {
	switch m.Kind {
	case sim.KindStart:
		t.scheduleRound(ctx)
	case sim.KindTimer:
		switch p := m.Payload.(type) {
		case sendAt:
			ctx.Send(p.to, p.payload)
		case nextRound:
			t.scheduleRound(ctx)
		}
	}
}

type nextRound struct{}

func (t *TwoFaced) scheduleRound(ctx *sim.Context) {
	mark := t.Cfg.T0 + float64(t.round)*t.Cfg.P
	var payload any = core.TMsg{Mark: clock.Local(mark)}
	if t.MakePayload != nil {
		payload = t.MakePayload(clock.Local(mark))
	}
	early := t.EarlyTo
	if early == nil {
		n := ctx.N()
		early = func(to sim.ProcID) bool { return int(to) < n/2 }
	}
	for q := 0; q < ctx.N(); q++ {
		at := mark + t.Lag
		if early(sim.ProcID(q)) {
			at = mark - t.Lead
		}
		ctx.SetTimer(clock.Local(at), sendAt{to: sim.ProcID(q), payload: payload})
	}
	t.round++
	ctx.SetTimer(clock.Local(t.Cfg.T0+float64(t.round)*t.Cfg.P-t.Lead-1e-9), nextRound{})
}

// Noise floods the system with Burst messages at random times each round —
// a babbling fault. Nonfaulty ARR entries get overwritten by whichever copy
// arrives last, landing at an arbitrary point of the window.
type Noise struct {
	Cfg   core.Config
	Burst int // messages per round per recipient; default 3

	round int
}

var _ sim.Process = (*Noise)(nil)

// Receive implements sim.Process.
func (f *Noise) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	if p, ok := m.Payload.(sendAt); ok {
		ctx.Send(p.to, p.payload)
		return
	}
	burst := f.Burst
	if burst <= 0 {
		burst = 3
	}
	rng := ctx.Rand()
	mark := f.Cfg.T0 + float64(f.round)*f.Cfg.P
	window := f.Cfg.Window()
	for q := 0; q < ctx.N(); q++ {
		for b := 0; b < burst; b++ {
			at := mark + rng.Float64()*window
			bogus := core.TMsg{Mark: clock.Local(mark + rng.NormFloat64()*window)}
			ctx.SetTimer(clock.Local(at), sendAt{to: sim.ProcID(q), payload: bogus})
		}
	}
	f.round++
	ctx.SetTimer(clock.Local(f.Cfg.T0+float64(f.round)*f.Cfg.P), nextRound{})
}

// StaleReplay follows the honest schedule but always broadcasts Offset
// seconds late with an old round mark — a process whose clock logic is
// stuck. Its arrivals sit at the late edge of every window.
type StaleReplay struct {
	Cfg    core.Config
	Offset float64

	round int
}

var _ sim.Process = (*StaleReplay)(nil)

// Receive implements sim.Process.
func (s *StaleReplay) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	oldMark := s.Cfg.T0 // always replays round 0's mark
	ctx.Broadcast(core.TMsg{Mark: clock.Local(oldMark)})
	s.round++
	next := s.Cfg.T0 + float64(s.round)*s.Cfg.P + s.Offset
	ctx.SetTimer(clock.Local(next), nil)
}

// LyingMark behaves exactly like an honest process in *timing* but lies
// about the mark value in its payload. Because nonfaulty processes use only
// arrival times, this fault is harmless to them — a useful control strategy
// in the fault-sweep experiment.
type LyingMark struct {
	Inner *core.Proc
}

var _ sim.Process = (*LyingMark)(nil)

// Receive implements sim.Process. It delegates to the honest automaton; the
// lie is immaterial in this implementation because honest receivers ignore
// payload content, so delegation is behaviorally identical and keeps the
// timing honest.
func (l *LyingMark) Receive(ctx *sim.Context, m sim.Message) {
	l.Inner.Receive(ctx, m)
}

// Corr exposes the inner correction.
func (l *LyingMark) Corr() clock.Local { return l.Inner.Corr() }
