package faults_test

import (
	"math"
	"testing"

	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/sim"
)

func TestStrategyRegistry(t *testing.T) {
	all := faults.Strategies()
	if len(all) < 10 {
		t.Fatalf("registry has %d strategies, want ≥ 10", len(all))
	}
	for i, s := range all {
		if s.Name == "" || s.Desc == "" || (s.Build == nil) == (s.BuildAdaptive == nil) {
			t.Errorf("strategy %d incomplete: %+v", i, s)
		}
		if i > 0 && all[i-1].Name >= s.Name {
			t.Errorf("registry not sorted: %s before %s", all[i-1].Name, s.Name)
		}
	}
	for _, name := range []string{"silent", "clique", "edge-rider", "drift-max", "flaky-rejoin", "random-timing"} {
		s, err := faults.ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
		if s.Adaptive() {
			t.Errorf("strategy %s misclassified as adaptive", name)
		}
	}
	for _, name := range []string{"skewmax", "splitter"} {
		s, err := faults.ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
		if !s.Adaptive() {
			t.Errorf("strategy %s not classified as adaptive", name)
		}
	}
	if _, err := faults.ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	for _, s := range faults.ScheduleDriven() {
		if s.Adaptive() {
			t.Errorf("ScheduleDriven returned adaptive strategy %s", s.Name)
		}
	}
	if len(all) != len(faults.ScheduleDriven())+2 {
		t.Errorf("expected exactly 2 adaptive strategies: %d total, %d schedule-driven",
			len(all), len(faults.ScheduleDriven()))
	}
}

func TestTopIDs(t *testing.T) {
	got := faults.TopIDs(3, 10)
	want := []sim.ProcID{9, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopIDs(3, 10) = %v, want %v", got, want)
		}
	}
}

// TestEveryStrategyToleratedBelowBoundary is the paper's central claim in
// miniature: with f faulty processes running any registered strategy in an
// n = 3f+1 system, agreement (γ) and every other invariant must hold. The
// adaptive strategies run through MixAdaptive with the pipeline adversary
// installed — their retiming is clamped to [δ−ε, δ+ε], so A1–A3 hold by
// construction and the theorems owe them the same guarantees.
func TestEveryStrategyToleratedBelowBoundary(t *testing.T) {
	cfg := cfg7()
	for _, s := range faults.Strategies() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			w := exp.Workload{
				Cfg:             cfg,
				Rounds:          12,
				Seed:            5,
				CheckInvariants: true,
			}
			if s.Adaptive() {
				var members []sim.ProcID
				if s.WantsMembers {
					members = faults.TopIDs(2, cfg.N)
				}
				w.Faults, w.Adversary = faults.MixAdaptive(s, cfg, members, 5)
			} else {
				w.Faults = faults.Mix(s, cfg, faults.TopIDs(2, cfg.N), 5)
			}
			res, err := exp.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Invariants.Ok() {
				t.Errorf("strategy %s broke an invariant at f < n/3:\n%s", s.Name, res.Invariants.Summary())
			}
		})
	}
}

// TestCliqueSharesOnePlan verifies the collusion machinery: all members of a
// clique must target the same recipients with the same early/late split, so
// their arrival entries move together.
func TestCliqueSharesOnePlan(t *testing.T) {
	cfg := cfg7()
	members := faults.NewClique(cfg, 3, 42, faults.CliqueTuning{})
	if len(members) != 3 {
		t.Fatalf("NewClique built %d members, want 3", len(members))
	}
	// Run the clique against the algorithm and trace sends: for each round
	// and recipient, every member must have chosen the same edge.
	tr := &sendTracer{perRound: map[int]map[sim.ProcID]map[sim.ProcID]float64{}}
	mix := map[sim.ProcID]func() sim.Process{}
	for i, id := range []sim.ProcID{4, 5, 6} {
		p := members[i]
		mix[id] = func() sim.Process { return p }
	}
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 6, Faults: mix, Seed: 2, Observers: []sim.Observer{tr}})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	rounds := 0
	for round, byMember := range tr.perRound {
		if len(byMember) < 3 {
			continue // partial round at the horizon
		}
		rounds++
		// Compare each member's per-recipient send times. The plan lives in
		// local time and the members' physical clocks drift apart, so real
		// times can differ by the drift envelope (~ρ·t); collusion means the
		// same pull direction per recipient and the same intensity, which
		// separates cleanly from an uncoordinated plan (jitter draws differ
		// by up to 1.6ms, far above the drift envelope).
		const driftEnvelope = 5e-4
		var ref map[sim.ProcID]float64
		for _, sends := range byMember {
			if ref == nil {
				ref = sends
				continue
			}
			for to, at := range sends {
				want, ok := ref[to]
				if !ok {
					continue
				}
				if math.Abs(at-want) > driftEnvelope {
					t.Fatalf("round %d: clique members disagree on send time to p%d: %v vs %v", round, to, at, want)
				}
			}
		}
	}
	if rounds < 3 {
		t.Fatalf("observed only %d complete clique rounds", rounds)
	}
}

// sendTracer records, per (round-ish bucket, sender, recipient), the real
// send time of ordinary messages from faulty processes.
type sendTracer struct {
	perRound map[int]map[sim.ProcID]map[sim.ProcID]float64
}

func (tr *sendTracer) OnDeliver(e *sim.Engine, m sim.Message) {
	if m.Kind != sim.KindOrdinary || !e.Faulty(m.From) {
		return
	}
	round := int(m.SentAt + 0.5) // P = 1s: nearest round index
	if tr.perRound[round] == nil {
		tr.perRound[round] = map[sim.ProcID]map[sim.ProcID]float64{}
	}
	if tr.perRound[round][m.From] == nil {
		tr.perRound[round][m.From] = map[sim.ProcID]float64{}
	}
	tr.perRound[round][m.From][m.To] = float64(m.SentAt)
}

func TestRandomTimingClampsHostileParameters(t *testing.T) {
	cfg := cfg7()
	for _, tc := range []struct{ spread, bias float64 }{
		{math.Inf(1), 0},
		{math.NaN(), math.NaN()},
		{1e9, -1e9},
		{-0.5, 0.3},
	} {
		mix := map[sim.ProcID]func() sim.Process{
			6: func() sim.Process { return faults.NewRandomTiming(cfg, 1, tc.spread, tc.bias) },
		}
		res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 6, Faults: mix, Seed: 2, CheckInvariants: true})
		if err != nil {
			t.Fatalf("spread=%v bias=%v: %v", tc.spread, tc.bias, err)
		}
		if !res.Invariants.Ok() {
			t.Errorf("spread=%v bias=%v: invariants broken:\n%s", tc.spread, tc.bias, res.Invariants.Summary())
		}
	}
}

// TestStrategyDeterminism: the same strategy, seed and workload must replay
// to an identical skew trajectory — the conformance matrix and the golden
// tables depend on it.
func TestStrategyDeterminism(t *testing.T) {
	cfg := cfg7()
	for _, name := range []string{"clique", "random-timing", "noise"} {
		s, err := faults.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() float64 {
			res, err := exp.Run(exp.Workload{
				Cfg:    cfg,
				Rounds: 8,
				Faults: faults.Mix(s, cfg, faults.TopIDs(2, cfg.N), 9),
				Seed:   9,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Skew.Max()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("strategy %s not deterministic: %v vs %v", name, a, b)
		}
	}
}

// TestMixBuildsSharedInstances: Mix must hand each member its own automaton
// exactly once (pointer identity preserved for shared-state strategies).
func TestMixBuildsSharedInstances(t *testing.T) {
	cfg := cfg7()
	s, err := faults.ByName("clique")
	if err != nil {
		t.Fatal(err)
	}
	mix := faults.Mix(s, cfg, faults.TopIDs(2, cfg.N), 3)
	if len(mix) != 2 {
		t.Fatalf("mix has %d entries, want 2", len(mix))
	}
	for id, mk := range mix {
		if mk() != mk() {
			t.Errorf("builder for p%d returns fresh instances; shared clique state would be lost", id)
		}
	}
}
