package faults

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

// Strategy is a named, pluggable Byzantine behavior: given the algorithm
// configuration, the faulty member ids, and a seed, it builds one automaton
// per member. Members may share state (colluding cliques do), which is why
// the whole group is built in one call rather than per process.
//
// The registry below is the adversary space the conformance harness
// (experiment E17) sweeps: every registered strategy must be tolerated by
// the algorithm at f < n/3, per the paper's central claim that the bound
// holds against *any* Byzantine behavior.
type Strategy struct {
	Name string
	// Desc is a one-line description for docs and tables.
	Desc string
	// Build returns one faulty automaton per member. Defaults inside the
	// built automata are derived from cfg so strategies scale across the
	// (n, f) grid; seed parameterizes randomized strategies. Nil for
	// adaptive strategies, which use BuildAdaptive instead.
	Build func(cfg core.Config, members []sim.ProcID, seed int64) []sim.Process
	// BuildAdaptive, non-nil for adaptive strategies, builds the faulty
	// automata (one per member; members may be empty) together with the
	// network-level adversary installed on the engine's delivery pipeline —
	// one call, so automata and adversary can share observed state. Exactly
	// one of Build and BuildAdaptive is set. Adaptive strategies react to
	// the live execution through the sim.AdversaryView and hooks; their
	// retiming is clamped to [δ−ε, δ+ε] by the engine, so A1–A3 hold by
	// construction and the f < n/3 theorems still apply whenever the
	// member count respects A2.
	BuildAdaptive func(cfg core.Config, members []sim.ProcID, seed int64) ([]sim.Process, sim.Adversary)
	// WantsMembers reports whether an adaptive strategy attacks through
	// faulty automata too (callers pass TopIDs(f, n)) or purely through
	// delivery retiming (callers pass no members, leaving every process
	// nonfaulty). Meaningful only when BuildAdaptive is set.
	WantsMembers bool
}

// Adaptive reports whether the strategy reacts to the live execution
// through the delivery pipeline's adversary stage rather than committing to
// a schedule up front. The conformance matrix (E17) sweeps the
// schedule-driven strategies; the lower-bound experiment (E18) drives the
// adaptive ones.
func (s Strategy) Adaptive() bool { return s.BuildAdaptive != nil }

var (
	stratMu    sync.Mutex
	strategies = map[string]Strategy{}
)

// Register adds a strategy to the conformance registry. Duplicate names are
// a programmer error.
func Register(s Strategy) {
	stratMu.Lock()
	defer stratMu.Unlock()
	if s.Name == "" || (s.Build == nil) == (s.BuildAdaptive == nil) {
		panic("faults: Register: strategy needs a name and exactly one of Build / BuildAdaptive")
	}
	if _, dup := strategies[s.Name]; dup {
		panic("faults: duplicate strategy " + s.Name)
	}
	strategies[s.Name] = s
}

// ScheduleDriven returns the registered non-adaptive strategies sorted by
// name — the adversary space the E17 conformance matrix sweeps (adaptive
// strategies are exercised by the lower-bound experiment E18 instead, so
// registering one does not disturb E17's pinned tables).
func ScheduleDriven() []Strategy {
	all := Strategies()
	out := all[:0]
	for _, s := range all {
		if !s.Adaptive() {
			out = append(out, s)
		}
	}
	return out
}

// Strategies returns every registered strategy sorted by name.
func Strategies() []Strategy {
	stratMu.Lock()
	defer stratMu.Unlock()
	out := make([]Strategy, 0, len(strategies))
	for _, s := range strategies {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks up one strategy.
func ByName(name string) (Strategy, error) {
	stratMu.Lock()
	defer stratMu.Unlock()
	s, ok := strategies[name]
	if !ok {
		return Strategy{}, fmt.Errorf("faults: unknown strategy %q", name)
	}
	return s, nil
}

// TopIDs returns the conventional fault placement used throughout the
// experiments: the top `count` ids of an n-process system.
func TopIDs(count, n int) []sim.ProcID {
	ids := make([]sim.ProcID, count)
	for i := range ids {
		ids[i] = sim.ProcID(n - 1 - i)
	}
	return ids
}

// Mix renders a strategy into the experiment harness's fault-map shape:
// process builders keyed by id. The automata are built eagerly — members may
// share state — and each closure hands out its member's instance, so the
// returned map is one execution's fault set: build a fresh Mix per run
// rather than reusing one across engines (the instances are stateful).
func Mix(s Strategy, cfg core.Config, members []sim.ProcID, seed int64) map[sim.ProcID]func() sim.Process {
	if s.Build == nil {
		panic("faults: Mix on adaptive strategy " + s.Name + " (use MixAdaptive)")
	}
	procs := s.Build(cfg, members, seed)
	if len(procs) != len(members) {
		panic(fmt.Sprintf("faults: strategy %s built %d automata for %d members", s.Name, len(procs), len(members)))
	}
	return MixProcs(members, procs)
}

// MixAdaptive is Mix for adaptive strategies: it builds the faulty automata
// and the network adversary in one call (they may share state) and returns
// both in harness shape — the map goes to Workload.Faults, the adversary to
// Workload.Adversary. The same single-use caveat as Mix applies to both
// halves: build a fresh pair per run.
func MixAdaptive(s Strategy, cfg core.Config, members []sim.ProcID, seed int64) (map[sim.ProcID]func() sim.Process, sim.Adversary) {
	if s.BuildAdaptive == nil {
		panic("faults: MixAdaptive on non-adaptive strategy " + s.Name)
	}
	procs, adv := s.BuildAdaptive(cfg, members, seed)
	if len(procs) != len(members) {
		panic(fmt.Sprintf("faults: strategy %s built %d automata for %d members", s.Name, len(procs), len(members)))
	}
	if adv == nil {
		panic("faults: adaptive strategy " + s.Name + " built no adversary")
	}
	return MixProcs(members, procs), adv
}

// MixProcs is Mix for pre-built automata (e.g. a clique constructed directly
// with custom tuning): member ids are paired with processes positionally.
// The same single-use caveat as Mix applies.
func MixProcs(members []sim.ProcID, procs []sim.Process) map[sim.ProcID]func() sim.Process {
	if len(procs) != len(members) {
		panic(fmt.Sprintf("faults: %d automata for %d members", len(procs), len(members)))
	}
	mix := make(map[sim.ProcID]func() sim.Process, len(members))
	for i, id := range members {
		p := procs[i]
		mix[id] = func() sim.Process { return p }
	}
	return mix
}

// perMemberSeed spreads one strategy seed into well-separated member seeds
// (plain splitmix64 increments; the streams themselves re-mix every draw).
func perMemberSeed(seed int64, i int) int64 {
	return seed + int64(i+1)*-0x61c8864680b583eb // golden-ratio increment
}

func init() {
	Register(Strategy{
		Name: "silent",
		Desc: "never sends — the stale-entry case of Lemma 6",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = Silent{}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "crash-mid-run",
		Desc: "honest until its physical clock reaches round 5, then dead",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = &CrashAfter{Inner: core.NewProc(cfg, 0), At: clock.Local(cfg.T0 + 5*cfg.P)}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "two-faced",
		Desc: "delivers each round early to half the recipients, late to the rest",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			pull := cfg.Beta - cfg.Eps
			for i := range out {
				out[i] = &TwoFaced{Cfg: cfg, Lead: pull, Lag: pull}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "stale-replay",
		Desc: "replays round 0's mark late every round — a stuck clock",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = &StaleReplay{Cfg: cfg, Offset: cfg.Beta - cfg.Eps}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "noise",
		Desc: "floods random bogus marks at random times — a babbler",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = &Noise{Cfg: cfg, Burst: 3}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "clique",
		Desc: "colluders share one per-round plan pulling a persistent split apart",
		Build: func(cfg core.Config, members []sim.ProcID, seed int64) []sim.Process {
			return NewClique(cfg, len(members), seed, CliqueTuning{})
		},
	})
	Register(Strategy{
		Name: "edge-rider",
		Desc: "pins every arrival to an edge of the recipient's window (δ±ε riding)",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = &EdgeRider{Cfg: cfg}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "drift-max",
		Desc: "virtual clock drifting at 200ρ, walking out of every window",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = &DriftMax{Cfg: cfg}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "flaky-rejoin",
		Desc: "crash/recover loop replaying stale marks at each rejoin",
		Build: func(cfg core.Config, members []sim.ProcID, _ int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				// Stagger duty cycles so members crash out of phase.
				out[i] = &FlakyRejoin{Cfg: cfg, AliveRounds: 2 + i%2, DeadRounds: 2}
			}
			return out
		},
	})
	Register(Strategy{
		Name: "random-timing",
		Desc: "per-recipient send offsets drawn from a seeded sim.RNG stream",
		Build: func(cfg core.Config, members []sim.ProcID, seed int64) []sim.Process {
			out := make([]sim.Process, len(members))
			for i := range out {
				out[i] = NewRandomTiming(cfg, perMemberSeed(seed, i), cfg.Beta+cfg.Eps, 0)
			}
			return out
		},
	})
}
