package multiset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicAccessors(t *testing.T) {
	u := New(3, 1, 2, 2, 5)
	if u.Len() != 5 {
		t.Errorf("Len = %d, want 5", u.Len())
	}
	if u.Min() != 1 {
		t.Errorf("Min = %v, want 1", u.Min())
	}
	if u.Max() != 5 {
		t.Errorf("Max = %v, want 5", u.Max())
	}
	if u.Diam() != 4 {
		t.Errorf("Diam = %v, want 4", u.Diam())
	}
	if u.Mid() != 3 {
		t.Errorf("Mid = %v, want 3", u.Mid())
	}
	if math.Abs(u.Mean()-2.6) > 1e-12 {
		t.Errorf("Mean = %v, want 2.6", u.Mean())
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []float64{3, 1, 2}
	u := New(in...)
	in[0] = 100
	if u.Max() != 3 {
		t.Error("New did not copy its input")
	}
}

func TestEmptyPanics(t *testing.T) {
	var u Multiset
	for name, fn := range map[string]func(){
		"Min":     func() { u.Min() },
		"Max":     func() { u.Max() },
		"Mid":     func() { u.Mid() },
		"Mean":    func() { u.Mean() },
		"Diam":    func() { u.Diam() },
		"DropMin": func() { u.DropMin() },
		"DropMax": func() { u.DropMax() },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty multiset did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestDropMinMax(t *testing.T) {
	u := New(1, 1, 2, 9, 9)
	s := u.DropMin()
	if s.Len() != 4 || s.Min() != 1 {
		t.Errorf("DropMin removed more than one occurrence: %v", s)
	}
	l := u.DropMax()
	if l.Len() != 4 || l.Max() != 9 {
		t.Errorf("DropMax removed more than one occurrence: %v", l)
	}
}

func TestReduce(t *testing.T) {
	tests := []struct {
		name    string
		vals    []float64
		f       int
		want    []float64
		wantErr bool
	}{
		{"f=0 identity", []float64{2, 1, 3}, 0, []float64{1, 2, 3}, false},
		{"f=1", []float64{5, 1, 3, 2, 4}, 1, []float64{2, 3, 4}, false},
		{"f=2", []float64{1, 2, 3, 4, 5, 6, 7}, 2, []float64{3, 4, 5}, false},
		{"exactly 2f+1", []float64{1, 2, 3}, 1, []float64{2}, false},
		{"too small", []float64{1, 2}, 1, nil, true},
		{"negative f", []float64{1, 2, 3}, -1, nil, true},
		{"duplicates", []float64{7, 7, 7, 7, 7}, 2, []float64{7}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := New(tt.vals...).Reduce(tt.f)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			vs := got.Values()
			if len(vs) != len(tt.want) {
				t.Fatalf("got %v, want %v", vs, tt.want)
			}
			for i := range vs {
				if vs[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", vs, tt.want)
				}
			}
		})
	}
}

func TestMustReducePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustReduce on undersized multiset did not panic")
		}
	}()
	New(1).MustReduce(1)
}

func TestAdd(t *testing.T) {
	u := New(1, 2, 3)
	v := u.Add(10)
	want := []float64{11, 12, 13}
	for i, w := range want {
		if v.Values()[i] != w {
			t.Fatalf("Add: got %v, want %v", v.Values(), want)
		}
	}
	// mid(U+r) = mid(U)+r, reduce(U+r) = reduce(U)+r (Appendix remark).
	if v.Mid() != u.Mid()+10 {
		t.Error("Mid does not commute with Add")
	}
	ru := u.MustReduce(1).Add(10)
	rv := v.MustReduce(1)
	if ru.Values()[0] != rv.Values()[0] {
		t.Error("Reduce does not commute with Add")
	}
}

func TestFaultTolerantMidpoint(t *testing.T) {
	// One Byzantine value far away must not affect the result's range.
	got, err := FaultTolerantMidpoint(New(10, 11, 12, 1e9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 10 || got > 12 {
		t.Errorf("midpoint %v escaped the nonfaulty range [10,12]", got)
	}
	if _, err := FaultTolerantMidpoint(New(1, 2), 1); err == nil {
		t.Error("expected error for undersized multiset")
	}
}

func TestFaultTolerantMean(t *testing.T) {
	got, err := FaultTolerantMean(New(1, 2, 3, 4, 1e9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", got)
	}
	if _, err := FaultTolerantMean(New(1), 1); err == nil {
		t.Error("expected error for undersized multiset")
	}
}

// bruteDistX computes d_x(U, V) by trying all injections (small sizes only).
func bruteDistX(u, v []float64, x float64) int {
	n, m := len(u), len(v)
	used := make([]bool, m)
	best := n
	var rec func(i, unpaired int)
	rec = func(i, unpaired int) {
		if unpaired >= best {
			return
		}
		if i == n {
			best = unpaired
			return
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			extra := 0
			if math.Abs(u[i]-v[j]) > x {
				extra = 1
			}
			rec(i+1, unpaired+extra)
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

func TestDistXAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		nu := 1 + rng.Intn(5)
		nv := nu + rng.Intn(3)
		u := make([]float64, nu)
		v := make([]float64, nv)
		for i := range u {
			u[i] = math.Round(rng.Float64()*20) / 2
		}
		for i := range v {
			v[i] = math.Round(rng.Float64()*20) / 2
		}
		x := rng.Float64() * 3
		got, err := DistX(New(u...), New(v...), x)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteDistX(u, v, x)
		if got != want {
			t.Fatalf("DistX(%v, %v, %v) = %d, brute force %d", u, v, x, got, want)
		}
	}
}

func TestDistXErrors(t *testing.T) {
	if _, err := DistX(New(1, 2), New(1), 0); err == nil {
		t.Error("expected error when |U| > |V|")
	}
	if _, err := DistX(New(1), New(1, 2), -1); err == nil {
		t.Error("expected error for negative x")
	}
}

func TestDistXZeroWhenEqual(t *testing.T) {
	u := New(1, 2, 3)
	d, err := DistX(u, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("d_0(U,U) = %d, want 0", d)
	}
}

// TestLemma21 checks: |U| = n, |W| ≥ n−f, d_x(W,U) = 0, n ≥ 3f+1 implies
// max(reduce(U)) ≤ max(W)+x and min(reduce(U)) ≥ min(W)−x.
func TestLemma21(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		f := rng.Intn(3)
		n := 3*f + 1 + rng.Intn(4)
		x := rng.Float64()
		// Build W (nonfaulty values) of size n−f … n.
		wsz := n - f + rng.Intn(f+1)
		w := make([]float64, wsz)
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		// U contains each W element perturbed by ≤ x, plus arbitrary fill.
		u := make([]float64, 0, n)
		for _, wv := range w {
			u = append(u, wv+(rng.Float64()*2-1)*x)
		}
		for len(u) < n {
			u = append(u, rng.NormFloat64()*100)
		}
		U, W := New(u...), New(w...)
		if d, err := DistX(W, U, x); err != nil || d != 0 {
			t.Fatalf("setup broken: d_x(W,U) = %v err %v", d, err)
		}
		r := U.MustReduce(f)
		if r.Max() > W.Max()+x+1e-9 {
			t.Fatalf("Lemma 21 max violated: %v > %v", r.Max(), W.Max()+x)
		}
		if r.Min() < W.Min()-x-1e-9 {
			t.Fatalf("Lemma 21 min violated: %v < %v", r.Min(), W.Min()-x)
		}
	}
}

// TestLemma22 checks that dropping the max (or min) of both multisets does
// not increase x-distance.
func TestLemma22(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		nu := 2 + rng.Intn(4)
		nv := nu + rng.Intn(2)
		u := make([]float64, nu)
		v := make([]float64, nv)
		for i := range u {
			u[i] = rng.Float64() * 10
		}
		for i := range v {
			v[i] = rng.Float64() * 10
		}
		x := rng.Float64() * 2
		U, V := New(u...), New(v...)
		d0, err := DistX(U, V, x)
		if err != nil {
			t.Fatal(err)
		}
		dl, err := DistX(U.DropMax(), V.DropMax(), x)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := DistX(U.DropMin(), V.DropMin(), x)
		if err != nil {
			t.Fatal(err)
		}
		if dl > d0 || ds > d0 {
			t.Fatalf("Lemma 22 violated: d=%d, after l: %d, after s: %d (U=%v V=%v x=%v)", d0, dl, ds, u, v, x)
		}
	}
}

// TestLemma23And24 checks the joint setup of Lemmas 23 and 24: if
// d_x(W,U) = d_x(W,V) = 0 with |U| = |V| = n, |W| ≥ n−f, n ≥ 3f+1, then
// min(reduce(U)) − max(reduce(V)) ≤ 2x (L23) and
// |mid(reduce(U)) − mid(reduce(V))| ≤ diam(W)/2 + 2x (L24).
func TestLemma23And24(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 600; trial++ {
		f := rng.Intn(3)
		n := 3*f + 1 + rng.Intn(4)
		x := rng.Float64()
		wsz := n - f + rng.Intn(f+1)
		w := make([]float64, wsz)
		for i := range w {
			w[i] = rng.Float64() * 5
		}
		mk := func() Multiset {
			vals := make([]float64, 0, n)
			for _, wv := range w {
				vals = append(vals, wv+(rng.Float64()*2-1)*x)
			}
			for len(vals) < n {
				vals = append(vals, rng.NormFloat64()*50)
			}
			return New(vals...)
		}
		U, V, W := mk(), mk(), New(w...)
		ru, rv := U.MustReduce(f), V.MustReduce(f)
		if ru.Min()-rv.Max() > 2*x+1e-9 {
			t.Fatalf("Lemma 23 violated: %v - %v > 2x=%v", ru.Min(), rv.Max(), 2*x)
		}
		lhs := math.Abs(ru.Mid() - rv.Mid())
		rhs := W.Diam()/2 + 2*x
		if lhs > rhs+1e-9 {
			t.Fatalf("Lemma 24 violated: |mid−mid| = %v > %v", lhs, rhs)
		}
	}
}

// TestReduceWithinNonfaultyRange is the property behind Lemma 6 of the paper:
// with at most f arbitrary values among n ≥ 3f+1, every survivor of reduce_f
// lies within [min, max] of the nonfaulty values.
func TestReduceWithinNonfaultyRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fCount := rng.Intn(4)
		n := 3*fCount + 1 + rng.Intn(5)
		good := make([]float64, n-fCount)
		for i := range good {
			good[i] = rng.NormFloat64()
		}
		vals := append([]float64(nil), good...)
		for i := 0; i < fCount; i++ {
			vals = append(vals, rng.NormFloat64()*1e6)
		}
		g := New(good...)
		r := New(vals...).MustReduce(fCount)
		return r.Min() >= g.Min() && r.Max() <= g.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	if got := New(2, 1).String(); got != "[1 2]" {
		t.Errorf("String = %q", got)
	}
}

// TestAveragersWithinRange: mid and mean of any nonempty multiset lie within
// [min, max]; reduce never widens the range.
func TestAveragersWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		u := New(vals...)
		if u.Mid() < u.Min() || u.Mid() > u.Max() {
			return false
		}
		if u.Mean() < u.Min()-1e-9 || u.Mean() > u.Max()+1e-9 {
			return false
		}
		for fc := 0; 2*fc+1 <= n; fc++ {
			r := u.MustReduce(fc)
			if r.Min() < u.Min() || r.Max() > u.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDistXTriangleZero: d_x(U, U) = 0 for every x ≥ 0 and d grows as x
// shrinks.
func TestDistXMonotoneInX(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		u := make([]float64, n)
		v := make([]float64, n)
		for i := range u {
			u[i] = rng.Float64() * 10
			v[i] = rng.Float64() * 10
		}
		U, V := New(u...), New(v...)
		prev := -1
		for _, x := range []float64{0, 0.5, 1, 2, 4, 8, 16} {
			d, err := DistX(U, V, x)
			if err != nil {
				return false
			}
			if prev >= 0 && d > prev {
				return false // distance must not increase with larger x
			}
			prev = d
		}
		// At x covering the whole range, everything pairs.
		d, _ := DistX(U, V, 20)
		return d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
