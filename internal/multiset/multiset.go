// Package multiset implements the Appendix of the paper: finite multisets of
// real numbers, the reduce/mid fault-tolerant averaging function, and the
// x-distance between multisets used in Lemmas 21–24.
//
// The function mid(reduce_f(·)) is the heart of the clock synchronization
// algorithm: reduce discards the f largest and f smallest values (so the
// survivors lie within the range of the nonfaulty values whenever at most f
// values are faulty), and mid takes the midpoint of the survivors' range
// (which halves the error each round).
package multiset

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Multiset is a finite collection of real numbers in which the same number
// may appear more than once. The zero value is the empty multiset. Multisets
// are immutable after construction.
type Multiset struct {
	sorted []float64
}

// New builds a multiset from the given values. The input slice is copied.
func New(vals ...float64) Multiset {
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	return Multiset{sorted: s}
}

// Len returns |U|.
func (u Multiset) Len() int { return len(u.sorted) }

// Values returns the elements in ascending order. The caller must not modify
// the returned slice.
func (u Multiset) Values() []float64 { return u.sorted }

// Min returns the smallest element. It panics on an empty multiset, which is
// a programmer error: callers guard with Len.
func (u Multiset) Min() float64 {
	u.mustNonEmpty("Min")
	return u.sorted[0]
}

// Max returns the largest element.
func (u Multiset) Max() float64 {
	u.mustNonEmpty("Max")
	return u.sorted[len(u.sorted)-1]
}

// Diam returns diam(U) = max(U) − min(U).
func (u Multiset) Diam() float64 {
	u.mustNonEmpty("Diam")
	return u.Max() - u.Min()
}

// Mid returns the midpoint ½(max(U)+min(U)) — the paper's ordinary averaging
// function of choice.
func (u Multiset) Mid() float64 {
	u.mustNonEmpty("Mid")
	return (u.Max() + u.Min()) / 2
}

// Mean returns the arithmetic mean — the alternative averaging function
// discussed at the end of §7, which converges at rate f/(n−2f).
func (u Multiset) Mean() float64 {
	u.mustNonEmpty("Mean")
	sum := 0.0
	for _, v := range u.sorted {
		sum += v
	}
	return sum / float64(len(u.sorted))
}

// DropMin returns s(U): U with one occurrence of its minimum removed.
func (u Multiset) DropMin() Multiset {
	u.mustNonEmpty("DropMin")
	return Multiset{sorted: u.sorted[1:]}
}

// DropMax returns l(U): U with one occurrence of its maximum removed.
func (u Multiset) DropMax() Multiset {
	u.mustNonEmpty("DropMax")
	return Multiset{sorted: u.sorted[:len(u.sorted)-1]}
}

// Reduce returns reduce_f(U) = l^f(s^f(U)): U with the f largest and the f
// smallest elements removed. It returns an error unless |U| ≥ 2f+1.
func (u Multiset) Reduce(f int) (Multiset, error) {
	if f < 0 {
		return Multiset{}, fmt.Errorf("multiset: negative fault bound %d", f)
	}
	if len(u.sorted) < 2*f+1 {
		return Multiset{}, fmt.Errorf("multiset: reduce needs |U| ≥ 2f+1, got |U|=%d f=%d", len(u.sorted), f)
	}
	return Multiset{sorted: u.sorted[f : len(u.sorted)-f]}, nil
}

// MustReduce is Reduce for callers that have already validated sizes.
func (u Multiset) MustReduce(f int) Multiset {
	r, err := u.Reduce(f)
	if err != nil {
		panic(err)
	}
	return r
}

// Add returns U + r, the multiset with r added to every element.
func (u Multiset) Add(r float64) Multiset {
	s := make([]float64, len(u.sorted))
	for i, v := range u.sorted {
		s[i] = v + r
	}
	return Multiset{sorted: s}
}

// FaultTolerantMidpoint computes mid(reduce_f(U)), the paper's fault-tolerant
// averaging function.
func FaultTolerantMidpoint(u Multiset, f int) (float64, error) {
	r, err := u.Reduce(f)
	if err != nil {
		return 0, err
	}
	if r.Len() == 0 {
		return 0, errors.New("multiset: reduce left no elements")
	}
	return r.Mid(), nil
}

// MidpointSelect computes mid(reduce_f(vals)) — the same value
// FaultTolerantMidpoint returns for New(vals...) — without constructing a
// multiset or fully sorting: mid only needs the (f+1)-th smallest and
// (f+1)-th largest elements, which two quickselect passes find in O(n).
// The input slice is reordered in place (callers pass a reusable scratch
// buffer; the clock-sync automaton calls this once per round per process,
// where the full sort dominated the update step at large n). The result is
// bit-identical to the sorting path: selection returns the same element
// values, and the midpoint is computed from the same two floats.
func MidpointSelect(vals []float64, f int) (float64, error) {
	if f < 0 {
		return 0, fmt.Errorf("multiset: negative fault bound %d", f)
	}
	if len(vals) < 2*f+1 {
		return 0, fmt.Errorf("multiset: reduce needs |U| ≥ 2f+1, got |U|=%d f=%d", len(vals), f)
	}
	lo := selectKth(vals, f)
	// Quickselect leaves vals partitioned around index f (everything
	// before is ≤ vals[f], everything after is ≥), so the second, larger
	// rank needs only the upper part.
	hi := selectKth(vals[f:], len(vals)-1-2*f)
	return (lo + hi) / 2, nil
}

// selectKth returns the k-th smallest element (0-based), reordering a in
// place. Hoare-partition quickselect with median-of-three pivots: expected
// O(n), well-behaved on duplicate-heavy inputs (ARR arrays are padded with
// −Inf never-heard sentinels).
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
			if a[mid] < a[lo] {
				a[mid], a[lo] = a[lo], a[mid]
			}
		}
		if hi-lo <= 2 {
			break // the median-of-three ordering sorted all three
		}
		p := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[k]
}

// FaultTolerantMean computes mean(reduce_f(U)), the §7 variant.
func FaultTolerantMean(u Multiset, f int) (float64, error) {
	r, err := u.Reduce(f)
	if err != nil {
		return 0, err
	}
	if r.Len() == 0 {
		return 0, errors.New("multiset: reduce left no elements")
	}
	return r.Mean(), nil
}

// DistX returns d_x(U, V), the x-distance between U and V: the minimum over
// injections c: U→V of the number of elements u with |u − c(u)| > x. It
// requires |U| ≤ |V|.
//
// Equivalently |U| minus the maximum number of x-paired elements. Because the
// compatibility relation |u−v| ≤ x over two sorted sequences forms an
// interval bigraph, a greedy sweep over sorted values yields a maximum
// matching (classic two-pointer argument; verified against brute force in
// tests).
func DistX(u, v Multiset, x float64) (int, error) {
	if u.Len() > v.Len() {
		return 0, fmt.Errorf("multiset: DistX needs |U| ≤ |V|, got %d > %d", u.Len(), v.Len())
	}
	if x < 0 {
		return 0, fmt.Errorf("multiset: negative x %v", x)
	}
	matched := 0
	j := 0
	for i := 0; i < u.Len(); i++ {
		// Advance past v-elements too small to pair with u[i]; they can
		// only be worse for later (larger) u-elements.
		for j < v.Len() && v.sorted[j] < u.sorted[i]-x {
			j++
		}
		if j < v.Len() && math.Abs(u.sorted[i]-v.sorted[j]) <= x {
			matched++
			j++
		}
	}
	return u.Len() - matched, nil
}

func (u Multiset) mustNonEmpty(op string) {
	if len(u.sorted) == 0 {
		panic("multiset: " + op + " on empty multiset")
	}
}

// String renders the multiset for diagnostics.
func (u Multiset) String() string {
	return fmt.Sprintf("%v", u.sorted)
}
