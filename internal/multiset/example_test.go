package multiset_test

import (
	"fmt"
	"log"

	"repro/internal/multiset"
)

// ExampleFaultTolerantMidpoint shows the paper's averaging function: with
// f=1, the single Byzantine outlier is trimmed before the midpoint is taken.
func ExampleFaultTolerantMidpoint() {
	arrivals := multiset.New(10.1, 10.2, 10.4, 999.0) // 999 is Byzantine
	av, err := multiset.FaultTolerantMidpoint(arrivals, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(av)
	// Output:
	// 10.3
}
