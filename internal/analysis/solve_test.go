package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMinBetaForPMatchesApproximation(t *testing.T) {
	// For small ρ the closed form should be close to 4ε + 4ρP.
	rho, delta, eps, p := 1e-5, 10e-3, 1e-3, 1.0
	got := MinBetaForP(rho, delta, eps, p)
	approx := 4*eps + 4*rho*p
	if math.Abs(got-approx) > approx*0.05 {
		t.Errorf("MinBetaForP = %v, approximation 4ε+4ρP = %v", got, approx)
	}
}

func TestMinBetaForPEdgeCases(t *testing.T) {
	if got := MinBetaForP(0, 10e-3, 1e-3, 1); got != 0 {
		t.Errorf("ρ=0 should return 0, got %v", got)
	}
	if !math.IsInf(MinBetaForP(10, 10e-3, 1e-3, 1), 1) {
		t.Error("absurd ρ should return +Inf")
	}
}

func TestMinBetaForPSatisfiesPMax(t *testing.T) {
	// Property: with β = MinBetaForP(...)·(1+margin), PMax(β) ≥ P.
	f := func(seedRho, seedP uint8) bool {
		rho := 1e-6 * math.Pow(10, float64(seedRho%4)) // 1e-6..1e-3
		p := 0.1 * math.Pow(4, float64(seedP%5))       // 0.1..25.6s
		delta, eps := 10e-3, 1e-3
		beta := MinBetaForP(rho, delta, eps, p) * 1.0001
		params := Params{N: 4, F: 1, Rho: rho, Delta: delta, Eps: eps, Beta: beta, P: p}
		return params.PMax() >= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSuggest(t *testing.T) {
	params, err := Suggest(7, 2, 1e-5, 10e-3, 1e-3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := params.Validate(); err != nil {
		t.Errorf("suggested params invalid: %v", err)
	}
	if params.Beta <= 4*params.Eps {
		t.Errorf("suggested β = %v should exceed 4ε", params.Beta)
	}
}

func TestSuggestAcrossRegimes(t *testing.T) {
	tests := []struct {
		name            string
		rho, delta, eps float64
		p               float64
		wantErr         bool
	}{
		{"default", 1e-5, 10e-3, 1e-3, 1.0, false},
		{"fast lan", 1e-6, 1e-3, 0.1e-3, 0.25, false},
		{"wan", 1e-5, 100e-3, 20e-3, 5.0, false},
		// High drift with a long round is feasible but needs a large β
		// (≈4ρP = 240ms): the solver should find it, not reject it.
		{"high drift long round", 1e-3, 10e-3, 1e-3, 60.0, false},
		{"no drift", 0, 10e-3, 1e-3, 3.0, false},
		{"absurd drift", 10, 10e-3, 1e-3, 1.0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			params, err := Suggest(7, 2, tt.rho, tt.delta, tt.eps, tt.p)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Suggest err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil {
				if verr := params.Validate(); verr != nil {
					t.Errorf("suggested params invalid: %v", verr)
				}
			}
		})
	}
}

func TestFeasiblePRange(t *testing.T) {
	p := Default(7, 2)
	lo, hi := p.FeasiblePRange()
	if lo >= hi {
		t.Errorf("empty feasible range [%v, %v]", lo, hi)
	}
	if p.P < lo || p.P > hi {
		t.Errorf("default P %v outside its own feasible range [%v, %v]", p.P, lo, hi)
	}
}
