package analysis_test

import (
	"fmt"
	"log"

	"repro/internal/analysis"
)

// ExampleSuggest derives a complete, §5.2-valid parameter set for a given
// network environment and round length.
func ExampleSuggest() {
	params, err := analysis.Suggest(7, 2,
		1e-5,  // drift ρ
		10e-3, // median delay δ
		1e-3,  // uncertainty ε
		1.0,   // round length P
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("valid:", params.Validate() == nil)
	fmt.Printf("agreement γ within [β+ε, 2(β+ε)]: %v\n",
		params.Gamma() >= params.Beta+params.Eps && params.Gamma() <= 2*(params.Beta+params.Eps))
	// Output:
	// valid: true
	// agreement γ within [β+ε, 2(β+ε)]: true
}
