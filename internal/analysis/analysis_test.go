package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	for _, nf := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}, {13, 4}, {1, 0}} {
		p := Default(nf.n, nf.f)
		if err := p.Validate(); err != nil {
			t.Errorf("Default(%d,%d) invalid: %v", nf.n, nf.f, err)
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	base := Default(7, 2)
	tests := []struct {
		name   string
		mutate func(*Params)
		want   string
	}{
		{"n too small", func(p *Params) { p.N = 6 }, "A2"},
		{"negative f", func(p *Params) { p.F = -1 }, "nonnegative"},
		{"zero n", func(p *Params) { p.N = 0 }, "positive"},
		{"negative rho", func(p *Params) { p.Rho = -1e-6 }, "ρ"},
		{"negative eps", func(p *Params) { p.Eps = -1e-3 }, "ε"},
		{"delta not above eps", func(p *Params) { p.Delta = p.Eps }, "A3"},
		{"nonpositive beta", func(p *Params) { p.Beta = 0 }, "β"},
		{"P too small", func(p *Params) { p.P = 1e-3 }, "below lower bound"},
		{"P too large", func(p *Params) { p.P = 1e6 }, "above upper bound"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestWindowAndAdjBound(t *testing.T) {
	p := Params{Rho: 0.01, Delta: 10, Eps: 1, Beta: 5}
	if got, want := p.Window(), 1.01*16.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Window = %v, want %v", got, want)
	}
	if got, want := p.AdjBound(), 1.01*6+0.01*10; math.Abs(got-want) > 1e-12 {
		t.Errorf("AdjBound = %v, want %v", got, want)
	}
}

func TestPMinTakesMaxOfLemma8AndLemma12(t *testing.T) {
	// δ large: Lemma 8 dominates (window includes δ).
	pd := Params{Rho: 0, Delta: 100, Eps: 1, Beta: 2}
	lemma8 := pd.Window() + pd.AdjBound()
	if got := pd.PMin(); math.Abs(got-lemma8) > 1e-12 {
		t.Errorf("PMin = %v, want Lemma 8 value %v", got, lemma8)
	}
	// δ small relative to β+ε: Lemma 12 dominates.
	ps := Params{Rho: 0, Delta: 1.5, Eps: 1, Beta: 10}
	lemma12 := 3 * (ps.Beta + ps.Eps)
	if got := ps.PMin(); math.Abs(got-lemma12) > 1e-12 {
		t.Errorf("PMin = %v, want Lemma 12 value %v", got, lemma12)
	}
}

func TestPMaxInfiniteWithoutDrift(t *testing.T) {
	p := Params{Rho: 0, Delta: 10e-3, Eps: 1e-3, Beta: 5e-3}
	if !math.IsInf(p.PMax(), 1) {
		t.Errorf("PMax with ρ=0 = %v, want +Inf", p.PMax())
	}
}

func TestBetaFloor(t *testing.T) {
	p := Params{Rho: 1e-5, Eps: 1e-3, P: 1}
	want := 4e-3 + 4e-5
	if got := p.BetaFloor(); math.Abs(got-want) > 1e-12 {
		t.Errorf("BetaFloor = %v, want %v", got, want)
	}
}

func TestBetaFloorK(t *testing.T) {
	p := Params{Rho: 1e-5, Eps: 1e-3, P: 1}
	// k=1 must agree with the single-exchange floor 4ε+4ρP.
	if got, want := p.BetaFloorK(1), p.BetaFloor(); math.Abs(got-want) > 1e-15 {
		t.Errorf("BetaFloorK(1) = %v, want %v", got, want)
	}
	// Floor decreases with k toward 4ε+2ρP.
	limit := 4*p.Eps + 2*p.Rho*p.P
	prev := p.BetaFloorK(1)
	for k := 2; k <= 6; k++ {
		cur := p.BetaFloorK(k)
		if cur >= prev {
			t.Errorf("BetaFloorK not decreasing at k=%d: %v >= %v", k, cur, prev)
		}
		if cur < limit {
			t.Errorf("BetaFloorK(%d) = %v below the 4ε+2ρP limit %v", k, cur, limit)
		}
		prev = cur
	}
	if !math.IsInf(p.BetaFloorK(0), 1) {
		t.Error("BetaFloorK(0) should be +Inf")
	}
}

func TestGammaDominatedByBetaPlusEps(t *testing.T) {
	p := Default(7, 2)
	g := p.Gamma()
	if g < p.Beta+p.Eps {
		t.Errorf("γ = %v smaller than β+ε = %v", g, p.Beta+p.Eps)
	}
	// With tiny ρ the higher-order terms are negligible: γ ≈ β+ε within 1%.
	if g > (p.Beta+p.Eps)*1.01 {
		t.Errorf("γ = %v unexpectedly far above β+ε = %v for ρ=1e−5", g, p.Beta+p.Eps)
	}
}

func TestLambdaShorterThanP(t *testing.T) {
	p := Default(7, 2)
	l := p.Lambda()
	if l <= 0 || l >= p.P {
		t.Errorf("λ = %v, want in (0, P=%v)", l, p.P)
	}
}

func TestValidityEnvelopeBracketsOne(t *testing.T) {
	p := Default(7, 2)
	a1, a2, a3 := p.Validity()
	if a1 >= 1 || a2 <= 1 {
		t.Errorf("validity slopes (%v, %v) do not bracket 1", a1, a2)
	}
	if a3 != p.Eps {
		t.Errorf("α₃ = %v, want ε = %v", a3, p.Eps)
	}
	if math.Abs((a2-1)-(1-a1)) > 1e-12 {
		t.Errorf("envelope should be symmetric: α₂−1 = %v, 1−α₁ = %v", a2-1, 1-a1)
	}
}

func TestMeanConvergenceRate(t *testing.T) {
	tests := []struct {
		n, f int
		want float64
	}{
		{4, 1, 0.5},
		{8, 1, 1.0 / 6},
		{16, 1, 1.0 / 14},
		{7, 2, 2.0 / 3},
		{7, 0, 0},
	}
	for _, tt := range tests {
		p := Params{N: tt.n, F: tt.f}
		if got := p.MeanConvergenceRate(); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MeanConvergenceRate(%d,%d) = %v, want %v", tt.n, tt.f, got, tt.want)
		}
	}
	if !math.IsInf((Params{N: 4, F: 2}).MeanConvergenceRate(), 1) {
		t.Error("n ≤ 2f should report +Inf rate")
	}
}

func TestStartupRecurrenceConvergesToFloor(t *testing.T) {
	p := Default(7, 2)
	b := 10.0 // start 10 seconds apart
	for i := 0; i < 60; i++ {
		b = p.StartupStep(b)
	}
	floor := p.StartupFloor()
	if math.Abs(b-floor) > floor*1e-6 {
		t.Errorf("recurrence converged to %v, want floor %v", b, floor)
	}
	// Floor ≈ 4ε for small ρ.
	if math.Abs(floor-4*p.Eps) > 4*p.Eps*0.01 {
		t.Errorf("floor %v not ≈ 4ε = %v", floor, 4*p.Eps)
	}
}

func TestStartupWaits(t *testing.T) {
	p := Default(7, 2)
	w1, w2 := p.StartupWait1(), p.StartupWait2()
	if w1 <= 0 || w2 <= 0 {
		t.Errorf("waits must be positive: %v, %v", w1, w2)
	}
	// First interval must cover a full exchange: ≥ 2δ.
	if w1 < 2*p.Delta {
		t.Errorf("W1 = %v < 2δ = %v", w1, 2*p.Delta)
	}
	// Second interval is the short guard ≈ 4ε for small ρ.
	if math.Abs(w2-4*p.Eps) > 4*p.Eps*0.01 {
		t.Errorf("W2 = %v not ≈ 4ε = %v", w2, 4*p.Eps)
	}
}

func TestDefaultRegimeDocumentedNumbers(t *testing.T) {
	// DESIGN.md §6 quotes λ≈0.993s, ADJ bound ≈6.6ms, γ≈6.6ms, floor≈4.04ms.
	p := Default(7, 2)
	if l := p.Lambda(); math.Abs(l-0.9934) > 1e-3 {
		t.Errorf("λ = %v, want ≈0.993", l)
	}
	if a := p.AdjBound(); math.Abs(a-6.6e-3) > 0.1e-3 {
		t.Errorf("AdjBound = %v, want ≈6.6ms", a)
	}
	if g := p.Gamma(); math.Abs(g-6.6e-3) > 0.1e-3 {
		t.Errorf("γ = %v, want ≈6.6ms", g)
	}
	if b := p.BetaFloor(); math.Abs(b-4.04e-3) > 0.01e-3 {
		t.Errorf("BetaFloor = %v, want ≈4.04ms", b)
	}
}

// TestGammaMonotone: γ must be nondecreasing in each of β, ε, δ, ρ.
func TestGammaMonotone(t *testing.T) {
	base := Default(7, 2)
	bump := []struct {
		name   string
		mutate func(*Params)
	}{
		{"beta", func(p *Params) { p.Beta *= 1.5 }},
		{"eps", func(p *Params) { p.Eps *= 1.5 }},
		{"delta", func(p *Params) { p.Delta *= 1.5 }},
		{"rho", func(p *Params) { p.Rho *= 10 }},
	}
	for _, b := range bump {
		p := base
		b.mutate(&p)
		if p.Gamma() < base.Gamma() {
			t.Errorf("γ decreased when %s grew: %v -> %v", b.name, base.Gamma(), p.Gamma())
		}
	}
}

// TestAdjBoundMonotone: the Theorem 4(a) bound grows with β, ε, δ, ρ.
func TestAdjBoundMonotone(t *testing.T) {
	base := Default(7, 2)
	for _, mutate := range []func(*Params){
		func(p *Params) { p.Beta *= 2 },
		func(p *Params) { p.Eps *= 2 },
		func(p *Params) { p.Delta *= 2 },
		func(p *Params) { p.Rho *= 10 },
	} {
		p := base
		mutate(&p)
		if p.AdjBound() < base.AdjBound() {
			t.Errorf("AdjBound decreased: %v -> %v", base.AdjBound(), p.AdjBound())
		}
	}
}

// TestPMinLessThanPMaxInSaneRegimes: the feasible interval is nonempty for
// realistic LAN/WAN parameters.
func TestPMinLessThanPMaxInSaneRegimes(t *testing.T) {
	regimes := []Params{
		{N: 4, F: 1, Rho: 1e-6, Delta: 1e-3, Eps: 0.1e-3, Beta: 0.6e-3, P: 0.5},
		{N: 7, F: 2, Rho: 1e-5, Delta: 10e-3, Eps: 1e-3, Beta: 5.5e-3, P: 1},
		{N: 13, F: 4, Rho: 1e-5, Delta: 100e-3, Eps: 20e-3, Beta: 90e-3, P: 10},
	}
	for i, p := range regimes {
		if p.PMin() >= p.PMax() {
			t.Errorf("regime %d: empty feasible interval [%v, %v]", i, p.PMin(), p.PMax())
		}
	}
}
