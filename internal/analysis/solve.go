package analysis

import (
	"fmt"
	"math"
)

// MinBetaForP returns the smallest initial-closeness β for which the §5.2
// upper bound on the round length still admits P:
//
//	P ≤ β/(4ρ) − ε/ρ − ρ(β+δ+ε) − 2β − δ − 2ε
//
// solved for β. For ρ = 0 any positive β works and the function returns 0.
// This is the closed form behind the paper's remark that, with P regarded as
// fixed, β is roughly 4ε + 4ρP.
func MinBetaForP(rho, delta, eps, p float64) float64 {
	if rho == 0 {
		return 0
	}
	denom := 1/(4*rho) - rho - 2
	if denom <= 0 {
		return math.Inf(1) // ρ absurdly large: no β works
	}
	num := p + eps/rho + delta + 2*eps + rho*(delta+eps)
	return num / denom
}

// Suggest builds a fully validated parameter set for the given environment
// (n, f, ρ, δ, ε) and desired round length P, choosing β a safety margin
// above its minimum. It fails when no feasible β exists (P too long for the
// drift, or P below the §5.2 lower bound for every admissible β).
func Suggest(n, f int, rho, delta, eps, p float64) (Params, error) {
	beta := MinBetaForP(rho, delta, eps, p)
	if math.IsInf(beta, 1) {
		return Params{}, fmt.Errorf("analysis: drift ρ=%v too large for any round length", rho)
	}
	// Margin, and a floor for the drift-free case: β must still be
	// positive and exceed the ε-noise the algorithm can't remove.
	beta = math.Max(beta*1.1, 4*eps+eps/2)
	params := Params{
		N: n, F: f,
		Rho: rho, Delta: delta, Eps: eps,
		Beta: beta, P: p,
	}
	if err := params.Validate(); err != nil {
		return Params{}, fmt.Errorf("analysis: no feasible parameters for ρ=%v δ=%v ε=%v P=%v: %w",
			rho, delta, eps, p, err)
	}
	return params, nil
}

// FeasiblePRange returns the admissible round-length interval [PMin, PMax]
// for the parameter set, ignoring its current P.
func (p Params) FeasiblePRange() (pmin, pmax float64) {
	return p.PMin(), p.PMax()
}
