package analysis

import (
	"errors"
	"fmt"
)

// HierParams couples the two parameter sets of a two-tier composition of the
// paper's algorithm: Inner describes one cluster's instance (N is the cluster
// size, F the per-cluster fault tolerance f_in, and δ/ε the intra-cluster
// substrate), Outer the representative instance (N is the number of clusters,
// F the tolerated number of Byzantine representatives f_out, and δ/ε the
// cross-cluster substrate).
//
// The composition (internal/hier) runs the §4.2 algorithm twice: every
// cluster synchronizes its members on the inner substrate, and each cluster's
// representative runs a second instance across clusters on the outer
// substrate, relaying every outer adjustment to its followers as a discipline
// message. Neither tier depends on the other's message traffic, so per-round
// copies drop from n² to ≈ n·c + (n/c)².
type HierParams struct {
	Inner Params
	Outer Params
}

// GammaComposed returns the steady-state agreement envelope of the two-tier
// composition. For nonfaulty members p (cluster j, representative r_j) and q
// (cluster j', representative r_j'), the triangle inequality splits the skew
// into three independently bounded legs:
//
//	|L_p − L_q| ≤ |L_p − L_r_j| + |L_r_j − L_r_j'| + |L_r_j' − L_q|
//
// The first and third legs are within-cluster skews, each ≤ γ_in by Theorem
// 16 applied to the inner instance (the outer discipline is common-mode
// inside a cluster: every member applies the same adjustment stream, so it
// cancels out of the member−representative difference once delivered). The
// middle leg is the representatives' skew, ≤ γ_out by Theorem 16 applied to
// the outer instance. The remaining term is propagation: a representative
// applies its outer adjustment immediately but a follower only after the
// discipline message crosses the intra-cluster substrate, so for up to
// δ_in+ε_in of real time the two can differ by that one adjustment, which
// Theorem 4(a) bounds by AdjBound of the outer instance. Hence
//
//	γ_composed = 2·γ_in + γ_out + AdjBound_out
//
// Every term is N-free (γ and AdjBound depend only on ρ, β, δ, ε), so one
// HierParams value covers heterogeneous cluster sizes.
func (h HierParams) GammaComposed() float64 {
	return 2*h.Inner.Gamma() + h.Outer.Gamma() + h.Outer.AdjBound()
}

// Validate checks both instances against the full §5.2 constraint set. The
// inner instance is validated with its own (N, F) pair — callers with
// heterogeneous cluster sizes validate once per distinct size, cheaply,
// because only the A2 count check depends on N.
func (h HierParams) Validate() error {
	var errs []error
	if err := h.Inner.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("inner tier: %w", err))
	}
	if err := h.Outer.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("outer tier: %w", err))
	}
	return errors.Join(errs...)
}
