// Package analysis contains the closed forms of every bound the paper proves
// about the algorithm: the §5.2 constraints relating the round length P and
// the closeness β, the adjustment bound of Theorem 4(a), the agreement bound
// γ of Theorem 16, the validity parameters (α₁, α₂, α₃) of Theorem 19, and
// the start-up recurrence of Lemma 20.
//
// Experiments use these functions as the "paper" column next to measured
// values, and Params.Validate gates every simulation configuration.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// Params is the global constant set of the paper: n, f, ρ, δ, ε, β, P, T⁰
// (§3.2, §4.2). All times are in seconds.
type Params struct {
	N     int     // number of processes (A2: n ≥ 3f+1)
	F     int     // maximum number of faulty processes
	Rho   float64 // ρ: physical clock drift bound (A1)
	Delta float64 // δ: median message delay (A3)
	Eps   float64 // ε: delay uncertainty (A3: delays in [δ−ε, δ+ε])
	Beta  float64 // β: initial real-time closeness of logical clocks (A4)
	P     float64 // round length in local time (§4.1)
	T0    float64 // T⁰: local time at which round 0 begins (A4)
}

// Window returns (1+ρ)(β+δ+ε), the length of the collection interval each
// round: just large enough that a process receives Tⁱ messages from all
// nonfaulty processes (§4.1).
func (p Params) Window() float64 { return (1 + p.Rho) * (p.Beta + p.Delta + p.Eps) }

// AdjBound returns the Theorem 4(a) bound on any nonfaulty adjustment:
// |ADJ| ≤ (1+ρ)(β+ε) + ρδ. Section 10 summarizes it as "about 5ε".
func (p Params) AdjBound() float64 { return (1+p.Rho)*(p.Beta+p.Eps) + p.Rho*p.Delta }

// PMin returns the lower bound the analysis needs for the round length:
// the larger of the Lemma 8 requirement
//
//	P ≥ (1+ρ)(β+δ+ε) + (1+ρ)(β+ε) + ρδ   (timers are set in the future)
//
// and the Lemma 12 requirement
//
//	P ≥ 3(1+ρ)(β+ε) + ρδ                  (round-i messages arrive in round i)
func (p Params) PMin() float64 {
	lemma8 := p.Window() + p.AdjBound()
	lemma12 := 3*(1+p.Rho)*(p.Beta+p.Eps) + p.Rho*p.Delta
	return math.Max(lemma8, lemma12)
}

// PMax returns the §5.2 upper bound on the round length,
//
//	P ≤ β/(4ρ) − ε/ρ − ρ(β+δ+ε) − 2β − δ − 2ε,
//
// which ensures drift cannot spread the clocks by more than β between
// resynchronizations (Lemma 11). Returns +Inf when ρ = 0.
func (p Params) PMax() float64 {
	if p.Rho == 0 {
		return math.Inf(1)
	}
	return p.Beta/(4*p.Rho) - p.Eps/p.Rho - p.Rho*(p.Beta+p.Delta+p.Eps) - 2*p.Beta - p.Delta - 2*p.Eps
}

// BetaFloor returns the paper's estimate of the achievable closeness along
// the real-time axis for a fixed round length: β ≈ 4ε + 4ρP (§5.2, §7).
func (p Params) BetaFloor() float64 { return 4*p.Eps + 4*p.Rho*p.P }

// BetaFloorK returns the k-exchanges-per-round generalization of §7:
// β ≈ 4ε + 2ρP·2ᵏ/(2ᵏ−1). k must be ≥ 1.
func (p Params) BetaFloorK(k int) float64 {
	if k < 1 {
		return math.Inf(1)
	}
	pow := math.Pow(2, float64(k))
	return 4*p.Eps + 2*p.Rho*p.P*pow/(pow-1)
}

// Gamma returns the Theorem 16 agreement bound:
//
//	γ = β + ε + ρ(7β+3δ+7ε) + 8ρ²(β+δ+ε) + 4ρ³(β+δ+ε).
func (p Params) Gamma() float64 {
	s := p.Beta + p.Delta + p.Eps
	return p.Beta + p.Eps + p.Rho*(7*p.Beta+3*p.Delta+7*p.Eps) + 8*p.Rho*p.Rho*s + 4*math.Pow(p.Rho, 3)*s
}

// SkewLowerBound returns ε(1 − 1/n), the lower bound on achievable
// synchronization closeness (Lundelius & Lynch's companion bound, cited in
// §1): no algorithm — whatever its averaging function — can guarantee the
// nonfaulty clocks closer than this, shown by a shifting argument in which
// an adversary retimes every delivery inside the [δ−ε, δ+ε] uncertainty
// window of A3. Experiment E18 reproduces the bound by pitting exactly that
// adversary (the adaptive skewmax strategy on the delivery pipeline)
// against the paper's algorithm and the §10 baselines.
func (p Params) SkewLowerBound() float64 {
	if p.N <= 0 {
		return 0
	}
	return p.Eps * (1 - 1/float64(p.N))
}

// Lambda returns λ = (P − (1+ρ)(β+ε) − ρδ)/(1+ρ), the length of the shortest
// round in real time (§8).
func (p Params) Lambda() float64 {
	return (p.P - (1+p.Rho)*(p.Beta+p.Eps) - p.Rho*p.Delta) / (1 + p.Rho)
}

// Validity returns the Theorem 19 parameters (α₁, α₂, α₃) = (1−ρ−ε/λ,
// 1+ρ+ε/λ, ε): the local time of a nonfaulty process increases within this
// linear envelope of real time.
func (p Params) Validity() (alpha1, alpha2, alpha3 float64) {
	l := p.Lambda()
	return 1 - p.Rho - p.Eps/l, 1 + p.Rho + p.Eps/l, p.Eps
}

// MeanConvergenceRate returns the per-round error contraction when the
// arithmetic mean replaces the midpoint (§7 end, following [DLPSW]):
// roughly f/(n−2f). For f = 0 the mean of all values contracts to 0 error
// only up to the ±ε noise, so the rate is reported as 0.
func (p Params) MeanConvergenceRate() float64 {
	if p.N <= 2*p.F {
		return math.Inf(1)
	}
	return float64(p.F) / float64(p.N-2*p.F)
}

// MidpointConvergenceRate returns the midpoint averaging contraction, 1/2.
func (Params) MidpointConvergenceRate() float64 { return 0.5 }

// StartupStep applies the Lemma 20 recurrence to a closeness value:
// B^{i+1} ≤ B^i/2 + 2ε + 2ρ(11δ+39ε).
func (p Params) StartupStep(b float64) float64 {
	return b/2 + 2*p.Eps + 2*p.Rho*(11*p.Delta+39*p.Eps)
}

// StartupFloor returns the fixed point of the Lemma 20 recurrence,
// 4ε + 4ρ(11δ+39ε) — "the algorithm achieves a closeness of synchronization
// of about 4ε" (§9.2).
func (p Params) StartupFloor() float64 {
	return 4*p.Eps + 4*p.Rho*(11*p.Delta+39*p.Eps)
}

// StartupWait1 returns the first waiting interval of the §9.2 code,
// (1+ρ)(2δ+4ε): long enough to receive every nonfaulty clock value.
func (p Params) StartupWait1() float64 { return (1 + p.Rho) * (2*p.Delta + 4*p.Eps) }

// StartupWait2 returns the second waiting interval of the §9.2 code,
// (1+ρ)(4ε + 4ρ(δ+2ε) + 2ρ²(δ+4ε)), which keeps new-round messages from
// arriving before other nonfaulty processes finish their first interval.
func (p Params) StartupWait2() float64 {
	return (1 + p.Rho) * (4*p.Eps + 4*p.Rho*(p.Delta+2*p.Eps) + 2*p.Rho*p.Rho*(p.Delta+4*p.Eps))
}

// Validate checks every standing assumption (A1–A4) and the §5.2 parameter
// constraints, returning an error describing all violations.
func (p Params) Validate() error {
	var errs []error
	if p.N < 1 {
		errs = append(errs, fmt.Errorf("n = %d must be positive", p.N))
	}
	if p.F < 0 {
		errs = append(errs, fmt.Errorf("f = %d must be nonnegative", p.F))
	}
	if p.N < 3*p.F+1 {
		errs = append(errs, fmt.Errorf("assumption A2 violated: n = %d < 3f+1 = %d", p.N, 3*p.F+1))
	}
	if p.Rho < 0 {
		errs = append(errs, fmt.Errorf("ρ = %v must be nonnegative", p.Rho))
	}
	if p.Eps < 0 {
		errs = append(errs, fmt.Errorf("ε = %v must be nonnegative", p.Eps))
	}
	if p.Delta <= p.Eps {
		errs = append(errs, fmt.Errorf("assumption A3 violated: need δ > ε, got δ=%v ε=%v", p.Delta, p.Eps))
	}
	if p.Beta <= 0 {
		errs = append(errs, fmt.Errorf("β = %v must be positive", p.Beta))
	}
	if p.P < p.PMin() {
		errs = append(errs, fmt.Errorf("round length P = %v below lower bound %v (Lemmas 8, 12)", p.P, p.PMin()))
	}
	if pmax := p.PMax(); p.P > pmax {
		errs = append(errs, fmt.Errorf("round length P = %v above upper bound %v (§5.2, Lemma 11)", p.P, pmax))
	}
	return errors.Join(errs...)
}

// Default returns the parameter regime used throughout the experiments
// (documented in DESIGN.md §6): ρ=1e−5, δ=10ms, ε=1ms, β=5.5ms, P=1s.
func Default(n, f int) Params {
	return Params{
		N:     n,
		F:     f,
		Rho:   1e-5,
		Delta: 10e-3,
		Eps:   1e-3,
		Beta:  5.5e-3,
		P:     1.0,
		T0:    0,
	}
}
