package invariant_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// corrProc is a scriptable CorrHolder: at each timer it applies the next
// scripted correction delta (annotated as an adjustment) and re-arms.
type corrProc struct {
	corr   clock.Local
	deltas []clock.Local
	period clock.Local
	step   int
}

func (p *corrProc) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind == sim.KindOrdinary {
		return
	}
	if m.Kind == sim.KindTimer && p.step < len(p.deltas) {
		d := p.deltas[p.step]
		p.corr += d
		p.step++
		ctx.Annotate(metrics.TagAdjust, float64(d))
	}
	ctx.SetTimer(ctx.PhysNow()+p.period, nil)
}

func (p *corrProc) Corr() clock.Local { return p.corr }

// runScripted executes n scripted processes under a fresh suite and returns
// it. Each process starts at corr0[i] and applies deltas[i] one per period.
func runScripted(t *testing.T, corr0 []clock.Local, deltas [][]clock.Local, horizon clock.Real) *invariant.Suite {
	t.Helper()
	n := len(corr0)
	procs := make([]sim.Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	for i := range procs {
		procs[i] = &corrProc{corr: corr0[i], deltas: deltas[i], period: 0.1}
		clocks[i] = clock.Linear(0, 1)
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.ConstantDelay{Delta: 1e-3},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := analysis.Default(len(corr0), 1)
	suite := invariant.NewSuite(p, 0, 0, 0)
	for _, o := range suite.Observers() {
		eng.Observe(o)
	}
	if err := eng.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return suite
}

func quietScript(n int) ([]clock.Local, [][]clock.Local) {
	corr0 := make([]clock.Local, n)
	deltas := make([][]clock.Local, n)
	return corr0, deltas
}

func TestSuiteCleanOnIdenticalClocks(t *testing.T) {
	corr0, deltas := quietScript(4)
	s := runScripted(t, corr0, deltas, 2)
	if !s.Ok() {
		t.Fatalf("identical drift-free clocks must satisfy every invariant:\n%s", s.Summary())
	}
	for _, c := range s.Checkers() {
		if c.Name() == "adjustment" {
			continue // no adjustments scripted, so nothing to check there
		}
		if c.Checked() == 0 {
			t.Errorf("checker %s performed no checks; the pass is vacuous", c.Name())
		}
	}
}

func TestAgreementDetectsSkew(t *testing.T) {
	corr0, deltas := quietScript(4)
	corr0[0] = clock.Local(1.0) // one second apart: far beyond γ
	s := runScripted(t, corr0, deltas, 2)
	ag := s.Agreement
	if ag.Ok() {
		t.Fatal("agreement checker missed a 1s skew")
	}
	if ag.Worst() < 1-ag.Gamma-1e-9 {
		t.Errorf("worst overshoot %v, want ≈ %v", ag.Worst(), 1-ag.Gamma)
	}
	if len(ag.Violations()) == 0 || ag.Count() < int64(len(ag.Violations())) {
		t.Errorf("violation bookkeeping inconsistent: %d recorded, count %d", len(ag.Violations()), ag.Count())
	}
	// Divergent runs violate at every sample; the record must stay capped.
	if len(ag.Violations()) > 8 {
		t.Errorf("recorded %d violations; want the cap to hold", len(ag.Violations()))
	}
}

func TestValidityDetectsRunawayClock(t *testing.T) {
	corr0, deltas := quietScript(3)
	// One process jumps its correction forward 10ms every 0.1s: far outside
	// the α₂ ceiling, while others stay on the envelope.
	jumps := make([]clock.Local, 40)
	for i := range jumps {
		jumps[i] = 10e-3
	}
	deltas[1] = jumps
	s := runScripted(t, corr0, deltas, 2)
	v := s.Validity
	if v.Ok() {
		t.Fatal("validity checker missed a runaway clock")
	}
	if len(v.Violations()) > 0 && v.Violations()[0].Proc != 1 {
		t.Errorf("violation attributed to p%d, want p1", v.Violations()[0].Proc)
	}
}

func TestMonotonicityDetectsBigBackstep(t *testing.T) {
	corr0, deltas := quietScript(3)
	deltas[2] = []clock.Local{-0.5} // steps its clock back half a second
	s := runScripted(t, corr0, deltas, 2)
	m := s.Monotonic
	if m.Ok() {
		t.Fatal("monotonicity checker missed a 0.5s backstep")
	}
	if len(m.Violations()) > 0 && m.Violations()[0].Proc != 2 {
		t.Errorf("violation attributed to p%d, want p2", m.Violations()[0].Proc)
	}
	// A backstep within the adjustment bound is legal.
	corr0, deltas = quietScript(3)
	deltas[2] = []clock.Local{clock.Local(-0.5 * m.MaxBackstep)}
	if s := runScripted(t, corr0, deltas, 2); !s.Monotonic.Ok() {
		t.Error("monotonicity flagged a backstep within the Theorem 4(a) bound")
	}
}

func TestAdjustmentBoundDetectsOversizedAdj(t *testing.T) {
	corr0, deltas := quietScript(3)
	deltas[0] = []clock.Local{0.25}
	s := runScripted(t, corr0, deltas, 2)
	a := s.Adjustment
	if a.Ok() {
		t.Fatal("adjustment checker missed a 0.25s adjustment")
	}
	if a.Checked() == 0 {
		t.Error("adjustment checker saw no annotations")
	}
	if len(a.Violations()) > 0 && a.Violations()[0].Proc != 0 {
		t.Errorf("violation attributed to p%d, want p0", a.Violations()[0].Proc)
	}
}

func TestAdjustmentBoundIgnoresFaulty(t *testing.T) {
	// The same oversized adjustment on a process marked faulty is ignored:
	// the theorems quantify over nonfaulty processes only.
	procs := []sim.Process{
		&corrProc{period: 0.1},
		&corrProc{period: 0.1, deltas: []clock.Local{0.25}},
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  []clock.Clock{clock.Linear(0, 1), clock.Linear(0, 1)},
		StartAt: []clock.Real{0, 0},
		Delay:   sim.ConstantDelay{Delta: 1e-3},
		Faulty:  []bool{false, true},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := invariant.NewAdjustmentBound(analysis.Default(4, 1).AdjBound())
	eng.Observe(a)
	if err := eng.Run(1); err != nil {
		t.Fatal(err)
	}
	if !a.Ok() {
		t.Error("adjustment checker counted a faulty process's adjustment")
	}
}

func TestSummaryAndViolationString(t *testing.T) {
	corr0, deltas := quietScript(4)
	corr0[0] = clock.Local(1.0)
	s := runScripted(t, corr0, deltas, 2)
	sum := s.Summary()
	if !strings.Contains(sum, "agreement VIOLATED") {
		t.Errorf("summary missing agreement violation: %q", sum)
	}
	if !strings.Contains(sum, "adjustment ok") {
		t.Errorf("summary missing clean checker: %q", sum)
	}
	vs := s.Violations()
	if len(vs) == 0 {
		t.Fatal("no violations reported")
	}
	if str := vs[0].String(); !strings.Contains(str, "agreement") || !strings.Contains(str, "over by") {
		t.Errorf("violation string unhelpful: %q", str)
	}
}
