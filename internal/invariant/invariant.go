// Package invariant turns the paper's theorems into executable predicates
// over live engine state. Each checker is a sim observer that watches one
// guarantee at every sample point (the engine samples immediately before and
// after every action, so piecewise-linear quantities are seen at their exact
// extremes) and records violations instead of aggregating statistics:
//
//   - Agreement — Theorem 16: after convergence, the nonfaulty logical
//     clocks stay within γ of each other.
//   - Validity — Theorem 19: every nonfaulty logical clock advances inside
//     the (α₁, α₂, α₃) envelope of real time.
//   - Monotonicity — physical clocks are strictly increasing and the only
//     backward step the algorithm ever applies is an adjustment, so between
//     consecutive observations a nonfaulty local time may decrease by at
//     most the Theorem 4(a) bound.
//   - AdjustmentBound — Theorem 4(a): every nonfaulty |ADJ| is at most
//     (1+ρ)(β+ε) + ρδ.
//
// The conformance harness (experiment E17) installs a Suite of all four
// against every adversary strategy in internal/faults; they must all hold
// for any Byzantine behavior whenever f < n/3, and agreement must be
// breakable when f ≥ n/3 — that sharpness pair is the paper's whole claim.
package invariant

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Violation is one observed failure of a predicate.
type Violation struct {
	Invariant string
	At        clock.Real
	Proc      sim.ProcID // -1 when not attributable to one process
	Amount    float64    // how far past the bound, in seconds
	Detail    string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	who := "all"
	if v.Proc >= 0 {
		who = fmt.Sprintf("p%d", v.Proc)
	}
	return fmt.Sprintf("%s at t=%.6f (%s): over by %.3gs — %s", v.Invariant, float64(v.At), who, v.Amount, v.Detail)
}

// Checker is the common read side of every invariant observer.
type Checker interface {
	Name() string
	// Ok reports whether no violation was recorded.
	Ok() bool
	// Checked returns how many predicate evaluations were performed; a
	// passing checker that never evaluated anything proves nothing.
	Checked() int64
	// Worst returns the largest overshoot observed (0 when clean).
	Worst() float64
	// Violations returns the recorded violations (capped; Count has the
	// true total).
	Violations() []Violation
	// Count returns the total number of violations, including unrecorded.
	Count() int64
}

// maxRecorded caps stored violations per checker so an execution that
// diverges (e.g. the sharpness check at f ≥ n/3, where every sample violates
// agreement) does not accumulate unbounded evidence.
const maxRecorded = 8

// recorder is the shared violation bookkeeping embedded in every checker.
type recorder struct {
	name    string
	checked int64
	count   int64
	worst   float64
	first   []Violation
}

// Name implements Checker.
func (r *recorder) Name() string { return r.name }

// Ok implements Checker.
func (r *recorder) Ok() bool { return r.count == 0 }

// Checked implements Checker.
func (r *recorder) Checked() int64 { return r.checked }

// Worst implements Checker.
func (r *recorder) Worst() float64 { return r.worst }

// Violations implements Checker.
func (r *recorder) Violations() []Violation { return r.first }

// Count implements Checker.
func (r *recorder) Count() int64 { return r.count }

func (r *recorder) violate(v Violation) {
	r.count++
	if v.Amount > r.worst {
		r.worst = v.Amount
	}
	if len(r.first) < maxRecorded {
		r.first = append(r.first, v)
	}
}

// Agreement checks Theorem 16: from Warmup on, the nonfaulty local-time
// spread never exceeds Gamma. Warmup covers initial convergence — the
// theorem's γ is a steady-state bound, and executions may start anywhere
// inside the β-envelope of A4.
type Agreement struct {
	recorder
	Gamma  float64
	Warmup clock.Real
}

var _ sim.Sampler = (*Agreement)(nil)

// NewAgreement builds the Theorem 16 checker.
func NewAgreement(gamma float64, warmup clock.Real) *Agreement {
	return &Agreement{recorder: recorder{name: "agreement"}, Gamma: gamma, Warmup: warmup}
}

// Sample implements sim.Sampler.
func (a *Agreement) Sample(e *sim.Engine, _ bool) {
	t := e.Now()
	if t < a.Warmup {
		return
	}
	lo, hi, count := e.LocalTimeSpread(t)
	if count < 2 {
		return
	}
	a.checked++
	if skew := float64(hi - lo); skew > a.Gamma {
		a.violate(Violation{
			Invariant: a.name, At: t, Proc: -1,
			Amount: skew - a.Gamma,
			Detail: fmt.Sprintf("skew %.3gs > γ %.3gs", skew, a.Gamma),
		})
	}
}

// Validity checks the Theorem 19 envelope
//
//	α₁(t − tmax⁰) − α₃ ≤ L_p(t) − T⁰ ≤ α₂(t − tmin⁰) + α₃
//
// for every nonfaulty p at every sample from From on. The envelope is
// monotone in L_p, so the hot path checks only the spread extremes; the
// violating process is identified by a rescan on the (cold) failure path.
type Validity struct {
	recorder
	Alpha1, Alpha2, Alpha3 float64
	T0                     float64
	TMin0, TMax0           clock.Real
	From                   clock.Real
}

var _ sim.Sampler = (*Validity)(nil)

// NewValidity builds the Theorem 19 checker from the paper parameters.
func NewValidity(p analysis.Params, tmin0, tmax0 clock.Real) *Validity {
	a1, a2, a3 := p.Validity()
	return &Validity{
		recorder: recorder{name: "validity"},
		Alpha1:   a1, Alpha2: a2, Alpha3: a3,
		T0:    p.T0,
		TMin0: tmin0, TMax0: tmax0,
		From: tmax0,
	}
}

// Sample implements sim.Sampler.
func (v *Validity) Sample(e *sim.Engine, _ bool) {
	t := e.Now()
	if t < v.From {
		return
	}
	lo, hi, count := e.LocalTimeSpread(t)
	if count == 0 {
		return
	}
	v.checked++
	lower := v.Alpha1*float64(t-v.TMax0) - v.Alpha3
	upper := v.Alpha2*float64(t-v.TMin0) + v.Alpha3
	if d := lower - (float64(lo) - v.T0); d > 0 {
		v.violate(Violation{
			Invariant: v.name, At: t, Proc: v.attribute(e, t, float64(lo)),
			Amount: d,
			Detail: fmt.Sprintf("L−T⁰ = %.6gs below envelope floor %.6gs", float64(lo)-v.T0, lower),
		})
	}
	if d := (float64(hi) - v.T0) - upper; d > 0 {
		v.violate(Violation{
			Invariant: v.name, At: t, Proc: v.attribute(e, t, float64(hi)),
			Amount: d,
			Detail: fmt.Sprintf("L−T⁰ = %.6gs above envelope ceiling %.6gs", float64(hi)-v.T0, upper),
		})
	}
}

// attribute finds a nonfaulty process whose local time equals the extreme
// value (cold path, only on violation).
func (v *Validity) attribute(e *sim.Engine, t clock.Real, extreme float64) sim.ProcID {
	for _, p := range e.NonfaultyIDs() {
		if lt, ok := e.LocalTime(p, t); ok && float64(lt) == extreme {
			return p
		}
	}
	return -1
}

// Monotonicity checks that nonfaulty local time never moves backward by more
// than MaxBackstep between consecutive observations of the same process.
// Physical clocks are strictly increasing (§3.1), so the only legitimate
// backward step is a negative adjustment, bounded by Theorem 4(a).
type Monotonicity struct {
	recorder
	MaxBackstep float64

	prev []clock.Local
	seen []bool
}

var _ sim.Sampler = (*Monotonicity)(nil)

// NewMonotonicity builds the backstep checker with the Theorem 4(a) bound.
func NewMonotonicity(maxBackstep float64) *Monotonicity {
	return &Monotonicity{recorder: recorder{name: "monotonicity"}, MaxBackstep: maxBackstep}
}

// Sample implements sim.Sampler.
func (m *Monotonicity) Sample(e *sim.Engine, _ bool) {
	if m.prev == nil {
		m.prev = make([]clock.Local, e.N())
		m.seen = make([]bool, e.N())
	}
	t := e.Now()
	for _, p := range e.NonfaultyIDs() {
		lt, ok := e.LocalTime(p, t)
		if !ok {
			continue
		}
		if m.seen[p] {
			m.checked++
			if drop := float64(m.prev[p] - lt); drop > m.MaxBackstep {
				m.violate(Violation{
					Invariant: m.name, At: t, Proc: p,
					Amount: drop - m.MaxBackstep,
					Detail: fmt.Sprintf("local time stepped back %.3gs > bound %.3gs", drop, m.MaxBackstep),
				})
			}
		}
		m.prev[p] = lt
		m.seen[p] = true
	}
}

// LowerBoundWitness is the bound predicate of the lower-bound experiments —
// Agreement's mirror image. Where the Theorem 16 checker fails when the
// nonfaulty spread *exceeds* γ, the witness succeeds when the spread
// *reaches* a stated fraction of the ε(1−1/n) lower bound
// (analysis.Params.SkewLowerBound): it records the maximum spread observed
// after Warmup, and Achieved reports whether the adversary actually drove
// the execution to Target — the experimental evidence that the bound is
// sharp rather than slack. It is a plain sampler, attachable through
// Workload.Observers next to the theorem checkers.
type LowerBoundWitness struct {
	// Target is the spread the adversary must reach (the experiment's
	// fraction of ε(1−1/n)).
	Target float64
	// Warmup is the real time after which spreads count (matching the
	// steady-state window of the agreement bound).
	Warmup clock.Real

	maxSpread float64
	samples   int64
}

var _ sim.Sampler = (*LowerBoundWitness)(nil)

// NewLowerBoundWitness builds the witness for one execution.
func NewLowerBoundWitness(target float64, warmup clock.Real) *LowerBoundWitness {
	return &LowerBoundWitness{Target: target, Warmup: warmup}
}

// Sample implements sim.Sampler.
func (w *LowerBoundWitness) Sample(e *sim.Engine, _ bool) {
	t := e.Now()
	if t < w.Warmup {
		return
	}
	lo, hi, count := e.LocalTimeSpread(t)
	if count < 2 {
		return
	}
	w.samples++
	if s := float64(hi - lo); s > w.maxSpread {
		w.maxSpread = s
	}
}

// MaxSpread returns the largest nonfaulty spread observed after Warmup.
func (w *LowerBoundWitness) MaxSpread() float64 { return w.maxSpread }

// Samples returns how many sample points contributed; a witness that saw
// nothing proves nothing.
func (w *LowerBoundWitness) Samples() int64 { return w.samples }

// Achieved reports whether the observed spread reached Target.
func (w *LowerBoundWitness) Achieved() bool { return w.samples > 0 && w.maxSpread >= w.Target }

// AdjustmentBound checks Theorem 4(a) on the adjustment annotation stream:
// every nonfaulty ADJ satisfies |ADJ| ≤ Bound.
type AdjustmentBound struct {
	recorder
	Bound float64
	// Tag selects the annotation carrying adjustments; metrics.TagAdjust
	// when built by NewAdjustmentBound.
	Tag string
}

var _ sim.AnnotationSink = (*AdjustmentBound)(nil)

// NewAdjustmentBound builds the Theorem 4(a) checker.
func NewAdjustmentBound(bound float64) *AdjustmentBound {
	return &AdjustmentBound{recorder: recorder{name: "adjustment"}, Bound: bound, Tag: metrics.TagAdjust}
}

// OnAnnotation implements sim.AnnotationSink.
func (a *AdjustmentBound) OnAnnotation(e *sim.Engine, an sim.Annotation) {
	if an.Tag != a.Tag || e.Faulty(an.Proc) {
		return
	}
	a.checked++
	if v := math.Abs(an.Value); v > a.Bound {
		a.violate(Violation{
			Invariant: a.name, At: an.At, Proc: an.Proc,
			Amount: v - a.Bound,
			Detail: fmt.Sprintf("|ADJ| = %.3gs > bound %.3gs", v, a.Bound),
		})
	}
}

// Suite bundles the four theorem checkers for one execution.
type Suite struct {
	Agreement  *Agreement
	Validity   *Validity
	Monotonic  *Monotonicity
	Adjustment *AdjustmentBound
}

// NewSuite builds the standard checkers from the paper parameters. tmin0 and
// tmax0 are the earliest and latest nonfaulty start times (the validity
// anchors of Theorem 19), warmup the real time after which the steady-state
// agreement bound must hold.
func NewSuite(p analysis.Params, tmin0, tmax0, warmup clock.Real) *Suite {
	return &Suite{
		Agreement:  NewAgreement(p.Gamma(), warmup),
		Validity:   NewValidity(p, tmin0, tmax0),
		Monotonic:  NewMonotonicity(p.AdjBound()),
		Adjustment: NewAdjustmentBound(p.AdjBound()),
	}
}

// Checkers returns the suite members in a fixed reporting order.
func (s *Suite) Checkers() []Checker {
	return []Checker{s.Agreement, s.Validity, s.Monotonic, s.Adjustment}
}

// Observers returns the members as engine observers for registration.
func (s *Suite) Observers() []sim.Observer {
	return []sim.Observer{s.Agreement, s.Validity, s.Monotonic, s.Adjustment}
}

// Ok reports whether every checker held.
func (s *Suite) Ok() bool {
	for _, c := range s.Checkers() {
		if !c.Ok() {
			return false
		}
	}
	return true
}

// Violations returns all recorded violations across the suite.
func (s *Suite) Violations() []Violation {
	var out []Violation
	for _, c := range s.Checkers() {
		out = append(out, c.Violations()...)
	}
	return out
}

// Summary renders one line per checker — "agreement ok (1234 checks)" or
// "validity VIOLATED ×3 (worst +1.2e-3s)" — for tables, tests, and logs.
func (s *Suite) Summary() string {
	out := ""
	for i, c := range s.Checkers() {
		if i > 0 {
			out += "; "
		}
		if c.Ok() {
			out += fmt.Sprintf("%s ok (%d checks)", c.Name(), c.Checked())
		} else {
			out += fmt.Sprintf("%s VIOLATED ×%d (worst +%.3gs)", c.Name(), c.Count(), c.Worst())
		}
	}
	return out
}
