package invariant

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/sim"
)

// HierAgreement is the composed agreement predicate of the two-tier topology
// (internal/hier): from Warmup on, the nonfaulty local-time spread across
// the whole system stays within Gamma = γ_composed
// (analysis.HierParams.GammaComposed), and — when GammaIn > 0 — the spread
// inside every cluster stays within the inner tier's own γ. The two checks
// together pin both halves of the composition argument: the inner instances
// keep clusters tight, and the outer instance plus discipline keeps the
// clusters' frames together.
//
// Exclude marks whole clusters (by cluster index) whose members should be
// left out of the *global* spread — the partition experiment cuts one
// cluster off and asserts the connected majority still agrees, while the
// per-cluster check continues to cover the partitioned cluster's internal
// tightness. A nil Exclude checks everyone.
type HierAgreement struct {
	recorder
	Gamma       float64
	GammaIn     float64
	ClusterSize int
	Warmup      clock.Real
	Exclude     []bool

	lo, hi []clock.Local
	seen   []bool
}

var _ sim.Sampler = (*HierAgreement)(nil)

// NewHierAgreement builds the composed checker. gammaIn ≤ 0 disables the
// per-cluster check.
func NewHierAgreement(gamma, gammaIn float64, clusterSize int, warmup clock.Real) *HierAgreement {
	return &HierAgreement{
		recorder: recorder{name: "hier-agreement"},
		Gamma:    gamma, GammaIn: gammaIn,
		ClusterSize: clusterSize, Warmup: warmup,
	}
}

// Sample implements sim.Sampler.
func (h *HierAgreement) Sample(e *sim.Engine, _ bool) {
	t := e.Now()
	if t < h.Warmup {
		return
	}
	nc := (e.N() + h.ClusterSize - 1) / h.ClusterSize
	if h.seen == nil {
		h.lo = make([]clock.Local, nc)
		h.hi = make([]clock.Local, nc)
		h.seen = make([]bool, nc)
	}
	for j := range h.seen {
		h.seen[j] = false
	}
	for _, p := range e.NonfaultyIDs() {
		lt, ok := e.LocalTime(p, t)
		if !ok {
			continue
		}
		j := int(p) / h.ClusterSize
		if !h.seen[j] {
			h.lo[j], h.hi[j], h.seen[j] = lt, lt, true
			continue
		}
		if lt < h.lo[j] {
			h.lo[j] = lt
		}
		if lt > h.hi[j] {
			h.hi[j] = lt
		}
	}

	var glo, ghi clock.Local
	members := 0
	for j := 0; j < nc; j++ {
		if !h.seen[j] || (h.Exclude != nil && j < len(h.Exclude) && h.Exclude[j]) {
			continue
		}
		if members == 0 {
			glo, ghi = h.lo[j], h.hi[j]
		} else {
			if h.lo[j] < glo {
				glo = h.lo[j]
			}
			if h.hi[j] > ghi {
				ghi = h.hi[j]
			}
		}
		members++
	}
	if members == 0 {
		return
	}
	h.checked++
	if skew := float64(ghi - glo); skew > h.Gamma {
		h.violate(Violation{
			Invariant: h.name, At: t, Proc: -1,
			Amount: skew - h.Gamma,
			Detail: fmt.Sprintf("global skew %.3gs > γ_composed %.3gs", skew, h.Gamma),
		})
	}
	if h.GammaIn <= 0 {
		return
	}
	for j := 0; j < nc; j++ {
		if !h.seen[j] {
			continue
		}
		if skew := float64(h.hi[j] - h.lo[j]); skew > h.GammaIn {
			h.violate(Violation{
				Invariant: h.name, At: t, Proc: -1,
				Amount: skew - h.GammaIn,
				Detail: fmt.Sprintf("cluster %d skew %.3gs > γ_in %.3gs", j, skew, h.GammaIn),
			})
		}
	}
}
