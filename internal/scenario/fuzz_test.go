package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

// FuzzScenario mutates parsed scenario documents, clamps them back into the
// paper's standing assumptions (A1–A3, fault load under the n ≥ 3f+1
// tolerance), and demands every theorem invariant hold on the resulting run
// — the DSL analogue of the E17 conformance claim: no expressible chaos
// script inside the assumptions may break the guarantees.
//
// Parse/Validate rejections are fine (that is their job); what must never
// happen is a panic, a harness error, or an invariant violation on a
// sanitized scenario.
func FuzzScenario(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range corpus {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // malformed JSON is rejected, not interesting
		}
		sanitize(s)
		if err := s.Validate(); err != nil {
			// The sanitizer aims for validity but does not replicate every
			// rule; a residual rejection is a correct outcome.
			return
		}
		rep, err := Run(s)
		if err != nil {
			t.Fatalf("sanitized scenario failed to run: %v\nscenario: %+v", err, s)
		}
		if suite := rep.Result.Invariants; suite == nil || !suite.Ok() {
			t.Fatalf("invariant violated on an A1–A3-valid scenario at f < n/3:\n%s\nscenario: %+v",
				suite.Summary(), s)
		}
	})
}

// sanitize clamps a fuzzer-mutated scenario into the assumptions' validity
// region: small fault-tolerant topology, default paper parameters unless
// the overrides validate, substrate and delay-shifts inside the A3 envelope,
// fault load (strategy members plus crash gates) at most f, and no
// partitions or cuts (losing more than f senders is legitimately fatal —
// the partition-heal corpus entry demonstrates exactly that).
func sanitize(s *Scenario) {
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	s.Name = "fuzz"
	n := 4 + abs(s.Topology.N)%6 // 4..9
	f := (n - 1) / 3             // largest tolerance A2 admits
	s.Topology.N, s.Topology.F = n, f

	// Parameter overrides survive only if they validate as a whole.
	if (core.Config{Params: s.params()}).Validate() != nil {
		s.Params = Params{}
	}
	p := s.params()

	// Keep runs integration-sized.
	s.Rounds = abs(s.Rounds) % 13
	if s.WarmupRounds < 0 || s.WarmupRounds > s.rounds() {
		s.WarmupRounds = 0
	}
	if s.Seed < 0 {
		s.Seed = -s.Seed
	}

	// Substrate: drop any band that violates A3 or escapes the envelope.
	if s.validateDelay(p) != nil {
		s.Delay = Delay{}
	}

	// Fault strategy: must resolve, and its member count must fit under f.
	budget := f
	if fs := s.Topology.Faults; fs != nil {
		strat, err := faults.ByName(fs.Strategy)
		switch {
		case err != nil:
			s.Topology.Faults = nil
		case strat.Adaptive() && !strat.WantsMembers:
			fs.Members = nil // pure delivery adversary, clamped by the controller
		default:
			members := []int{}
			seen := map[int]bool{}
			for _, m := range fs.Members {
				m = abs(m) % n
				if !seen[m] && len(members) < budget {
					seen[m] = true
					members = append(members, m)
				}
			}
			if len(members) == 0 {
				members = []int{n - 1}
			}
			fs.Members = members
			budget -= len(members)
		}
	}

	// Events: keep only kinds that stay inside the assumptions, with times
	// clamped into the horizon and the crash/rejoin state machine enforced.
	horizon := s.horizon(p)
	faultMember := map[int]bool{}
	if fs := s.Topology.Faults; fs != nil {
		for _, m := range fs.Members {
			faultMember[m] = true
		}
	}
	down := map[int]bool{}
	gated := map[int]bool{}
	kept := s.Events[:0]
	for _, ev := range s.Events {
		if ev.At < 0 {
			ev.At = -ev.At
		}
		for ev.At >= horizon {
			ev.At /= 2
		}
		switch ev.Kind {
		case KindCrash:
			if ev.Proc == nil {
				continue
			}
			q := abs(*ev.Proc) % n
			if faultMember[q] || down[q] {
				continue
			}
			if !gated[q] && len(gated) >= budget {
				continue // the gate would push the fault load past f
			}
			gated[q], down[q] = true, true
			ev.Proc = &q
		case KindRejoin:
			if ev.Proc == nil {
				continue
			}
			q := abs(*ev.Proc) % n
			if !down[q] {
				continue
			}
			down[q] = false
			ev.Proc = &q
		case KindHeal:
			// Always safe (the sanitizer admits no partitions or cuts, so
			// heal is a no-op swap back to the full mesh).
		case KindDelayShift:
			e := ev.Eps
			if ev.Model == "constant" {
				e = 0
			}
			if s.checkBand("fuzz", ev.Delta, e, p) != nil {
				continue
			}
			switch ev.Model {
			case "", "uniform", "constant", "extremal", "center":
			default:
				continue
			}
		case KindAdversarySwap:
			if ev.Strategy != "none" {
				strat, err := faults.ByName(ev.Strategy)
				if err != nil || !strat.Adaptive() {
					continue // schedule-driven halves cannot be swapped in
				}
			}
		default:
			// Partitions, cuts and unknown kinds are out of scope: losing
			// more than f senders legitimately breaks the theorems.
			continue
		}
		kept = append(kept, ev)
	}
	s.Events = kept

	// The fuzzer asserts the full suite directly; declared assertions would
	// only second-guess it.
	s.Assertions = Assertions{Invariants: true}
}
