package scenario

import (
	"strings"
	"testing"
)

func intp(v int) *int { return &v }

// valid returns a minimal well-formed scenario for the error tables to
// mutate.
func valid() *Scenario {
	return &Scenario{
		Name:     "t",
		Topology: Topology{N: 7, F: 2},
	}
}

// TestParseErrors pins the decoder's error paths: a malformed scenario file
// must produce a descriptive error, never a panic and never a silently
// ignored field.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error; empty means parse must succeed
	}{
		{"empty input", ``, "parse"},
		{"not json", `{"name": `, "parse"},
		{"wrong root type", `[1, 2]`, "parse"},
		{"unknown top-level field", `{"name": "x", "topolgy": {"n": 7}}`, "unknown field"},
		{"unknown event field", `{"name": "x", "events": [{"at": 1, "kind": "heal", "procs": 3}]}`, "unknown field"},
		{"unknown assertion field", `{"name": "x", "assertions": {"invariant": true}}`, "unknown field"},
		{"wrong field type", `{"name": "x", "topology": {"n": "seven"}}`, "parse"},
		{"trailing data", `{"name": "x"} {"name": "y"}`, "trailing data"},
		{"minimal ok", `{"name": "x", "topology": {"n": 4, "f": 1}}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Parse: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Parse accepted %q, want error containing %q", tc.in, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateErrors is the semantic error table: every malformed scenario
// shape the DSL rejects, each with a descriptive error naming the offender.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s *Scenario)
		want string
	}{
		{"missing name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"n zero", func(s *Scenario) { s.Topology.N = 0 }, "must be positive"},
		{"f negative", func(s *Scenario) { s.Topology.F = -1 }, "must be nonnegative"},
		{"A2 violated", func(s *Scenario) { s.Topology = Topology{N: 6, F: 2} }, "parameters"},
		{"rounds negative", func(s *Scenario) { s.Rounds = -1 }, "outside [0, 1000]"},
		{"rounds huge", func(s *Scenario) { s.Rounds = 5000 }, "outside [0, 1000]"},
		{"warmup negative", func(s *Scenario) { s.WarmupRounds = -1 }, "warmup_rounds"},
		{"warmup past rounds", func(s *Scenario) { s.Rounds, s.WarmupRounds = 10, 11 }, "warmup_rounds"},
		{"A3-invalid params ε > δ", func(s *Scenario) { s.Params = Params{Delta: 0.001, Eps: 0.002} }, "parameters"},
		{"A1-invalid drift", func(s *Scenario) { s.Params.Rho = -0.5 }, "parameters"},
		{"unknown delay model", func(s *Scenario) { s.Delay.Model = "gaussian" }, `unknown delay model "gaussian"`},
		{"delay band escapes A3 envelope", func(s *Scenario) { s.Delay = Delay{Delta: 0.02} }, "escapes the parameters' A3 envelope"},
		{"delay band inverted", func(s *Scenario) { s.Delay = Delay{Delta: 0.0001, Eps: 0.001} }, "violates assumption A3"},
		{"unknown fault strategy", func(s *Scenario) { s.Topology.Faults = &FaultSpec{Strategy: "gremlin"} }, `"gremlin"`},
		{"fault member out of range", func(s *Scenario) {
			s.Topology.Faults = &FaultSpec{Strategy: "silent", Members: []int{7}}
		}, "out of range"},
		{"fault member negative", func(s *Scenario) {
			s.Topology.Faults = &FaultSpec{Strategy: "silent", Members: []int{-1}}
		}, "out of range"},
		{"fault member duplicated", func(s *Scenario) {
			s.Topology.Faults = &FaultSpec{Strategy: "silent", Members: []int{3, 3}}
		}, "listed twice"},
		{"all processes faulty", func(s *Scenario) {
			s.Topology.Faults = &FaultSpec{Strategy: "silent", Members: []int{0, 1, 2, 3, 4, 5, 6}}
		}, "claims all 7 processes"},
		{"event at negative", func(s *Scenario) {
			s.Events = []Event{{At: -1, Kind: KindHeal}}
		}, "is negative"},
		{"event past horizon", func(s *Scenario) {
			s.Events = []Event{{At: 1e6, Kind: KindHeal}}
		}, "it would never fire"},
		{"unknown event kind", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: "reboot"}}
		}, `unknown event kind "reboot"`},
		{"crash missing proc", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindCrash}}
		}, "missing proc"},
		{"crash proc out of range", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindCrash, Proc: intp(9)}}
		}, "out of range"},
		{"crash of a fault member", func(s *Scenario) {
			s.Topology.Faults = &FaultSpec{Strategy: "silent", Members: []int{6}}
			s.Events = []Event{{At: 1, Kind: KindCrash, Proc: intp(6)}}
		}, "already a member of fault strategy"},
		{"crash while already down", func(s *Scenario) {
			s.Events = []Event{
				{At: 1, Kind: KindCrash, Proc: intp(3)},
				{At: 2, Kind: KindCrash, Proc: intp(3)},
			}
		}, "already down"},
		{"rejoin without crash", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindRejoin, Proc: intp(3)}}
		}, "without a prior crash"},
		{"rejoin before crash in time", func(s *Scenario) {
			// File order says crash first, firing order says rejoin first.
			s.Events = []Event{
				{At: 5, Kind: KindCrash, Proc: intp(3)},
				{At: 2, Kind: KindRejoin, Proc: intp(3)},
			}
		}, "without a prior crash"},
		{"partition single group", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindPartition, Groups: [][]int{{0, 1, 2}}}}
		}, "at least 2 groups"},
		{"partition empty group", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindPartition, Groups: [][]int{{0, 1}, {}}}}
		}, "empty group"},
		{"partition overlapping groups", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindPartition, Groups: [][]int{{0, 1}, {1, 2}}}}
		}, "appears in two groups"},
		{"partition proc out of range", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindPartition, Groups: [][]int{{0}, {9}}}}
		}, "out of range"},
		{"cut no links", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindCut}}
		}, "no links"},
		{"cut malformed pair", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindCut, Links: [][]int{{1, 2, 3}}}}
		}, "must be a [from, to] pair"},
		{"cut out of range", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindCut, Links: [][]int{{0, 9}}}}
		}, "out of range"},
		{"cut loopback", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindCut, Links: [][]int{{3, 3}}}}
		}, "loopback"},
		{"delay-shift unknown model", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindDelayShift, Model: "pareto", Delta: 0.01, Eps: 0.001}}
		}, `unknown delay model "pareto"`},
		{"delay-shift escapes envelope", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindDelayShift, Delta: 0.05, Eps: 0.001}}
		}, "escapes the parameters' A3 envelope"},
		{"delay-shift zero band", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindDelayShift}}
		}, "violates assumption A3"},
		{"adversary-swap missing strategy", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindAdversarySwap}}
		}, "missing strategy"},
		{"adversary-swap unknown strategy", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindAdversarySwap, Strategy: "chaosmonkey"}}
		}, `"chaosmonkey"`},
		{"adversary-swap schedule-driven strategy", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindAdversarySwap, Strategy: "silent"}}
		}, "schedule-driven"},
		{"skew gammas negative", func(s *Scenario) {
			s.Assertions.SkewMaxGammas = -1
		}, "is negative"},
		{"expect_violations without invariants", func(s *Scenario) {
			s.Assertions.ExpectViolations = []string{"agreement"}
		}, "requires assertions.invariants"},
		{"expect_violations unknown invariant", func(s *Scenario) {
			s.Assertions.Invariants = true
			s.Assertions.ExpectViolations = []string{"liveness"}
		}, `unknown invariant "liveness"`},
		{"expect_violations duplicate", func(s *Scenario) {
			s.Assertions.Invariants = true
			s.Assertions.ExpectViolations = []string{"agreement", "agreement"}
		}, `names "agreement" twice`},
		{"expect_rejoined out of range", func(s *Scenario) {
			s.Assertions.ExpectRejoined = []int{9}
		}, "out of range"},
		{"expect_rejoined never rejoined", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindCrash, Proc: intp(3)}}
			s.Assertions.ExpectRejoined = []int{3}
		}, "never rejoins it"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted the scenario, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateAccepts pins shapes that must be legal.
func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s *Scenario)
	}{
		{"minimal", func(s *Scenario) {}},
		{"zero rounds means default", func(s *Scenario) { s.Rounds = 0 }},
		{"sub-band delay", func(s *Scenario) { s.Delay = Delay{Delta: 0.0102, Eps: 0.0004} }},
		{"constant model ignores eps", func(s *Scenario) { s.Delay = Delay{Model: "constant", Delta: 0.0102, Eps: 0.5} }},
		{"adaptive fault strategy without members", func(s *Scenario) {
			s.Topology.Faults = &FaultSpec{Strategy: "skewmax"}
		}},
		{"crash then rejoin then crash again", func(s *Scenario) {
			s.Events = []Event{
				{At: 1, Kind: KindCrash, Proc: intp(3)},
				{At: 3, Kind: KindRejoin, Proc: intp(3)},
				{At: 5, Kind: KindCrash, Proc: intp(3)},
			}
		}},
		{"adversary-swap none", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindAdversarySwap, Strategy: "none"}}
		}},
		{"heal without a prior cut", func(s *Scenario) {
			s.Events = []Event{{At: 1, Kind: KindHeal}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(s)
			if err := s.Validate(); err != nil {
				t.Errorf("Validate rejected a legal scenario: %v", err)
			}
		})
	}
}
