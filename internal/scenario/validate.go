package scenario

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faults"
)

// defaultRounds is the scenario-harness default run length; scenarios are
// integration-sized, not sweeps.
const defaultRounds = 12

// maxRounds bounds a single scenario run; a longer script is a sweep and
// belongs in an experiment.
const maxRounds = 1000

// invariantNames is the set of checker names ExpectViolations may target,
// matching internal/invariant's Checker.Name values.
var invariantNames = map[string]bool{
	"agreement":    true,
	"validity":     true,
	"monotonicity": true,
	"adjustment":   true,
}

// params returns the resolved paper parameters: analysis.Default(n, f) with
// the scenario's non-zero overrides applied.
func (s *Scenario) params() analysis.Params {
	p := analysis.Default(s.Topology.N, s.Topology.F)
	if s.Params.Rho != 0 {
		p.Rho = s.Params.Rho
	}
	if s.Params.Delta != 0 {
		p.Delta = s.Params.Delta
	}
	if s.Params.Eps != 0 {
		p.Eps = s.Params.Eps
	}
	if s.Params.Beta != 0 {
		p.Beta = s.Params.Beta
	}
	if s.Params.P != 0 {
		p.P = s.Params.P
	}
	if s.Params.T0 != 0 {
		p.T0 = s.Params.T0
	}
	return p
}

// rounds returns the resolved run length.
func (s *Scenario) rounds() int {
	if s.Rounds == 0 {
		return defaultRounds
	}
	return s.Rounds
}

// seed returns the resolved base seed.
func (s *Scenario) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// delayBand resolves the substrate band, inheriting the parameters' (δ, ε)
// where the spec leaves zeros.
func (s *Scenario) delayBand(p analysis.Params) (model string, d, e float64) {
	model = s.Delay.Model
	if model == "" {
		model = "uniform"
	}
	d = s.Delay.Delta
	if d == 0 {
		d = p.Delta
	}
	e = s.Delay.Eps
	if e == 0 && model != "constant" {
		e = p.Eps
	}
	if model == "constant" {
		e = 0
	}
	return model, d, e
}

// horizon approximates the real-time end of the run the same way the
// experiment harness computes it (tmax⁰ is at most β): events must fire
// inside it or they would silently never happen.
func (s *Scenario) horizon(p analysis.Params) float64 {
	return p.Beta + float64(s.rounds())*p.P*(1+2*p.Rho) + 2*p.Window() + p.Delta + 1
}

// Validate checks the scenario end to end: identity, topology, parameter
// assumptions (A1–A3 via analysis.Params.Validate), the substrate band, the
// event script (kinds, targets, ordering, the crash/rejoin state machine,
// the run horizon), and the assertions. Every path returns a descriptive
// error — a malformed scenario file must never panic the harness.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	n, f := s.Topology.N, s.Topology.F
	if n < 1 {
		return fmt.Errorf("scenario %s: topology.n = %d must be positive", s.Name, n)
	}
	if f < 0 {
		return fmt.Errorf("scenario %s: topology.f = %d must be nonnegative", s.Name, f)
	}
	if s.Rounds < 0 || s.Rounds > maxRounds {
		return fmt.Errorf("scenario %s: rounds = %d outside [0, %d]", s.Name, s.Rounds, maxRounds)
	}
	if s.WarmupRounds < 0 || s.WarmupRounds > s.rounds() {
		return fmt.Errorf("scenario %s: warmup_rounds = %d outside [0, rounds=%d]", s.Name, s.WarmupRounds, s.rounds())
	}
	p := s.params()
	cfg := core.Config{Params: p}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("scenario %s: parameters: %w", s.Name, err)
	}
	if err := s.validateDelay(p); err != nil {
		return err
	}
	if err := s.validateFaults(); err != nil {
		return err
	}
	if err := s.validateEvents(p); err != nil {
		return err
	}
	return s.validateAssertions()
}

func (s *Scenario) validateDelay(p analysis.Params) error {
	model, d, e := s.delayBand(p)
	switch model {
	case "uniform", "constant", "extremal", "center":
	default:
		return fmt.Errorf("scenario %s: unknown delay model %q (uniform, constant, extremal, center)", s.Name, model)
	}
	return s.checkBand("delay", d, e, p)
}

// checkBand validates a substrate band (d, e): internally consistent
// (0 ≤ e ≤ d) and within the parameters' A3 envelope [δ−ε, δ+ε] — a
// substrate escaping the envelope would deliver messages the analysis says
// cannot exist.
func (s *Scenario) checkBand(what string, d, e float64, p analysis.Params) error {
	if e < 0 || d < e || d <= 0 {
		return fmt.Errorf("scenario %s: %s band δ=%v ε=%v violates assumption A3 (need 0 ≤ ε ≤ δ, δ > 0)", s.Name, what, d, e)
	}
	if d-e < p.Delta-p.Eps || d+e > p.Delta+p.Eps {
		return fmt.Errorf("scenario %s: %s band [%v, %v] escapes the parameters' A3 envelope [δ−ε, δ+ε] = [%v, %v]",
			s.Name, what, d-e, d+e, p.Delta-p.Eps, p.Delta+p.Eps)
	}
	return nil
}

func (s *Scenario) validateFaults() error {
	fs := s.Topology.Faults
	if fs == nil {
		return nil
	}
	if _, err := faults.ByName(fs.Strategy); err != nil {
		return fmt.Errorf("scenario %s: topology.faults: %w", s.Name, err)
	}
	seen := map[int]bool{}
	for _, m := range fs.Members {
		if m < 0 || m >= s.Topology.N {
			return fmt.Errorf("scenario %s: topology.faults member %d out of range [0, %d)", s.Name, m, s.Topology.N)
		}
		if seen[m] {
			return fmt.Errorf("scenario %s: topology.faults member %d listed twice", s.Name, m)
		}
		seen[m] = true
	}
	if len(fs.Members) >= s.Topology.N {
		return fmt.Errorf("scenario %s: topology.faults claims all %d processes", s.Name, s.Topology.N)
	}
	return nil
}

func (s *Scenario) validateEvents(p analysis.Params) error {
	n := s.Topology.N
	horizon := s.horizon(p)
	faultMember := map[int]bool{}
	if fs := s.Topology.Faults; fs != nil {
		for _, m := range fs.Members {
			faultMember[m] = true
		}
	}
	for i, ev := range s.Events {
		where := fmt.Sprintf("scenario %s: events[%d] (%s)", s.Name, i, ev.Kind)
		if ev.At < 0 {
			return fmt.Errorf("%s: at = %v is negative", where, ev.At)
		}
		if ev.At >= horizon {
			return fmt.Errorf("%s: at = %v is past the run horizon ≈ %.3gs (%d rounds of P = %v) — it would never fire",
				where, ev.At, horizon, s.rounds(), p.P)
		}
		switch ev.Kind {
		case KindCrash, KindRejoin:
			if ev.Proc == nil {
				return fmt.Errorf("%s: missing proc", where)
			}
			if q := *ev.Proc; q < 0 || q >= n {
				return fmt.Errorf("%s: proc %d out of range [0, %d)", where, q, n)
			}
			if faultMember[*ev.Proc] {
				return fmt.Errorf("%s: proc %d is already a member of fault strategy %q", where, *ev.Proc, s.Topology.Faults.Strategy)
			}
		case KindPartition:
			if len(ev.Groups) < 2 {
				return fmt.Errorf("%s: needs at least 2 groups, got %d", where, len(ev.Groups))
			}
			seen := map[int]bool{}
			for _, g := range ev.Groups {
				if len(g) == 0 {
					return fmt.Errorf("%s: empty group", where)
				}
				for _, q := range g {
					if q < 0 || q >= n {
						return fmt.Errorf("%s: process %d out of range [0, %d)", where, q, n)
					}
					if seen[q] {
						return fmt.Errorf("%s: process %d appears in two groups", where, q)
					}
					seen[q] = true
				}
			}
		case KindCut:
			if len(ev.Links) == 0 {
				return fmt.Errorf("%s: no links", where)
			}
			for _, l := range ev.Links {
				if len(l) != 2 {
					return fmt.Errorf("%s: link %v must be a [from, to] pair", where, l)
				}
				a, b := l[0], l[1]
				if a < 0 || a >= n || b < 0 || b >= n {
					return fmt.Errorf("%s: link [%d, %d] out of range [0, %d)", where, a, b, n)
				}
				if a == b {
					return fmt.Errorf("%s: link [%d, %d] is a loopback (loopback never fails)", where, a, b)
				}
			}
		case KindHeal:
			// No payload.
		case KindDelayShift:
			model := ev.Model
			if model == "" {
				model, _, _ = s.delayBand(p)
			}
			switch model {
			case "uniform", "constant", "extremal", "center":
			default:
				return fmt.Errorf("%s: unknown delay model %q", where, model)
			}
			e := ev.Eps
			if model == "constant" {
				e = 0
			}
			if err := s.checkBand(fmt.Sprintf("events[%d] delay-shift", i), ev.Delta, e, p); err != nil {
				return err
			}
		case KindAdversarySwap:
			if ev.Strategy == "" {
				return fmt.Errorf("%s: missing strategy (name an adaptive strategy, or \"none\" to remove)", where)
			}
			if ev.Strategy != "none" {
				strat, err := faults.ByName(ev.Strategy)
				if err != nil {
					return fmt.Errorf("%s: %w", where, err)
				}
				if !strat.Adaptive() {
					return fmt.Errorf("%s: strategy %q is schedule-driven; only adaptive strategies (a network adversary) can be swapped in mid-run", where, ev.Strategy)
				}
			}
		default:
			return fmt.Errorf("%s: unknown event kind %q (crash, rejoin, partition, cut, heal, delay-shift, adversary-swap)", where, ev.Kind)
		}
	}
	return s.validateCrashRejoinOrder()
}

// validateCrashRejoinOrder walks the script in firing order (time, then
// file order among ties) and checks every rejoin resumes a process that is
// actually down, and every crash hits a process that is up.
func (s *Scenario) validateCrashRejoinOrder() error {
	order := make([]int, 0, len(s.Events))
	for i := range s.Events {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool { return s.Events[order[a]].At < s.Events[order[b]].At })
	down := map[int]bool{}
	for _, i := range order {
		ev := s.Events[i]
		switch ev.Kind {
		case KindCrash:
			if down[*ev.Proc] {
				return fmt.Errorf("scenario %s: events[%d]: crash of proc %d at t=%v, but it is already down", s.Name, i, *ev.Proc, ev.At)
			}
			down[*ev.Proc] = true
		case KindRejoin:
			if !down[*ev.Proc] {
				return fmt.Errorf("scenario %s: events[%d]: rejoin of proc %d at t=%v without a prior crash", s.Name, i, *ev.Proc, ev.At)
			}
			down[*ev.Proc] = false
		}
	}
	return nil
}

func (s *Scenario) validateAssertions() error {
	a := s.Assertions
	if a.SkewMaxGammas < 0 {
		return fmt.Errorf("scenario %s: assertions.skew_max_gammas = %v is negative", s.Name, a.SkewMaxGammas)
	}
	if len(a.ExpectViolations) > 0 && !a.Invariants {
		return fmt.Errorf("scenario %s: assertions.expect_violations requires assertions.invariants", s.Name)
	}
	seen := map[string]bool{}
	for _, name := range a.ExpectViolations {
		if !invariantNames[name] {
			return fmt.Errorf("scenario %s: assertions.expect_violations names unknown invariant %q (agreement, validity, monotonicity, adjustment)", s.Name, name)
		}
		if seen[name] {
			return fmt.Errorf("scenario %s: assertions.expect_violations names %q twice", s.Name, name)
		}
		seen[name] = true
	}
	crashed := map[int]bool{}
	for _, ev := range s.Events {
		if ev.Kind == KindRejoin && ev.Proc != nil {
			crashed[*ev.Proc] = true
		}
	}
	for _, q := range a.ExpectRejoined {
		if q < 0 || q >= s.Topology.N {
			return fmt.Errorf("scenario %s: assertions.expect_rejoined process %d out of range [0, %d)", s.Name, q, s.Topology.N)
		}
		if !crashed[q] {
			return fmt.Errorf("scenario %s: assertions.expect_rejoined names proc %d, but the script never rejoins it", s.Name, q)
		}
	}
	return nil
}
