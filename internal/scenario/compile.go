package scenario

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/sim"
)

// compiled is a scenario lowered onto the experiment harness: the resolved
// parameters, the assembled workload (whose Timeline carries the event
// script as sim.TimedActions), and the crash/rejoin gates the assertions
// interrogate after the run.
type compiled struct {
	s   *Scenario
	p   analysis.Params
	cfg core.Config
	w   exp.Workload

	gates map[sim.ProcID]*gate
	// runtimeErrs collects failures surfaced inside timeline actions
	// (which have no error return); Run folds them into the report's
	// assertion failures. Validated scenarios should never populate it.
	runtimeErrs []string
}

// buildDelay constructs the substrate for a resolved (model, δ, ε) band.
func buildDelay(model string, d, e float64) sim.DelayModel {
	switch model {
	case "constant":
		return sim.ConstantDelay{Delta: d}
	case "extremal":
		return sim.ExtremalDelay{Delta: d, Eps: e}
	case "center":
		return sim.CenterDelay{Delta: d, Eps: e}
	default: // "uniform" — the validated default
		return sim.UniformDelay{Delta: d, Eps: e}
	}
}

// compile lowers a validated scenario. It must be called after Validate:
// it resolves registry names and process ids without re-checking them.
func compile(s *Scenario) (*compiled, error) {
	p := s.params()
	c := &compiled{
		s:     s,
		p:     p,
		cfg:   core.Config{Params: p},
		gates: map[sim.ProcID]*gate{},
	}
	model, d, e := s.delayBand(p)
	c.w = exp.Workload{
		Cfg:             c.cfg,
		Delay:           buildDelay(model, d, e),
		Rounds:          s.rounds(),
		WarmupRounds:    s.WarmupRounds,
		Seed:            s.seed(),
		CheckInvariants: s.Assertions.Invariants,
	}
	if err := c.compileFaults(); err != nil {
		return nil, err
	}
	if err := c.compileEvents(); err != nil {
		return nil, err
	}
	return c, nil
}

// compileFaults renders the topology's fault assignment through the
// internal/faults registry into the workload's fault map (and, for adaptive
// strategies, the delivery-pipeline adversary).
func (c *compiled) compileFaults() error {
	fs := c.s.Topology.Faults
	if fs == nil {
		return nil
	}
	strat, err := faults.ByName(fs.Strategy)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", c.s.Name, err)
	}
	members := make([]sim.ProcID, 0, len(fs.Members))
	for _, m := range fs.Members {
		members = append(members, sim.ProcID(m))
	}
	if len(members) == 0 && (!strat.Adaptive() || strat.WantsMembers) {
		members = faults.TopIDs(c.s.Topology.F, c.s.Topology.N)
	}
	seed := fs.Seed
	if seed == 0 {
		seed = c.s.seed()
	}
	if strat.Adaptive() {
		c.w.Faults, c.w.Adversary = faults.MixAdaptive(strat, c.cfg, members, seed)
	} else {
		c.w.Faults = faults.Mix(strat, c.cfg, members, seed)
	}
	return nil
}

// compileEvents lowers the script onto the engine timeline. Ties keep file
// order (the timeline sort is stable), so a script may e.g. heal and
// re-partition at the same instant with well-defined effect.
func (c *compiled) compileEvents() error {
	for i, ev := range c.s.Events {
		at := clock.Real(ev.At)
		name := fmt.Sprintf("%s@%v", ev.Kind, ev.At)
		switch ev.Kind {
		case KindCrash:
			g := c.gateFor(sim.ProcID(*ev.Proc))
			c.addAction(at, name, func(*sim.Engine) { g.crash() })
		case KindRejoin:
			g := c.gateFor(sim.ProcID(*ev.Proc))
			c.addAction(at, name, func(*sim.Engine) { g.rejoin() })
		case KindPartition:
			ch := partitionChannel(ev.Groups)
			c.addAction(at, name, func(e *sim.Engine) { e.SetChannel(ch) })
		case KindCut:
			ch := cutChannel(ev.Links)
			c.addAction(at, name, func(e *sim.Engine) { e.SetChannel(ch) })
		case KindHeal:
			c.addAction(at, name, func(e *sim.Engine) { e.SetChannel(nil) })
		case KindDelayShift:
			model := ev.Model
			if model == "" {
				model, _, _ = c.s.delayBand(c.p)
			}
			eps := ev.Eps
			if model == "constant" {
				eps = 0
			}
			m := buildDelay(model, ev.Delta, eps)
			c.addAction(at, name, func(e *sim.Engine) {
				if err := e.SetDelayModel(m); err != nil {
					c.runtimeErrs = append(c.runtimeErrs, fmt.Sprintf("%s: %v", name, err))
				}
			})
		case KindAdversarySwap:
			if ev.Strategy == "none" {
				c.addAction(at, name, func(e *sim.Engine) { e.SetAdversary(nil) })
				break
			}
			strat, err := faults.ByName(ev.Strategy)
			if err != nil {
				return fmt.Errorf("scenario %s: events[%d]: %w", c.s.Name, i, err)
			}
			// Only the network half is swappable mid-run; the strategy's
			// automata (if it wants members) cannot be installed into a
			// running system, so it is built member-less.
			_, adv := strat.BuildAdaptive(c.cfg, nil, c.s.seed())
			c.addAction(at, name, func(e *sim.Engine) { e.SetAdversary(adv) })
		default:
			return fmt.Errorf("scenario %s: events[%d]: unknown kind %q", c.s.Name, i, ev.Kind)
		}
	}
	return nil
}

func (c *compiled) addAction(at clock.Real, name string, do func(*sim.Engine)) {
	c.w.Timeline = append(c.w.Timeline, sim.TimedAction{At: at, Name: name, Do: do})
}

// gateFor returns the crash/rejoin gate for p, installing it into the fault
// map on first use (a gated process is faulty for the whole run — §9.1
// counts a crashed process among the f faulty ones).
func (c *compiled) gateFor(p sim.ProcID) *gate {
	if g, ok := c.gates[p]; ok {
		return g
	}
	g := newGate(c.cfg)
	c.gates[p] = g
	if c.w.Faults == nil {
		c.w.Faults = map[sim.ProcID]func() sim.Process{}
	}
	c.w.Faults[p] = func() sim.Process { return g }
	return g
}

// partitionChannel cuts every link between different groups, both ways.
// Ids absent from every group keep all their links.
func partitionChannel(groups [][]int) sim.LossyLinks {
	ch := sim.NewLossyLinks()
	for i, gi := range groups {
		for j, gj := range groups {
			if i >= j {
				continue
			}
			for _, a := range gi {
				for _, b := range gj {
					ch.Dead[sim.Link{From: sim.ProcID(a), To: sim.ProcID(b)}] = true
					ch.Dead[sim.Link{From: sim.ProcID(b), To: sim.ProcID(a)}] = true
				}
			}
		}
	}
	return ch
}

// cutChannel cuts the listed [from, to] pairs, both ways.
func cutChannel(links [][]int) sim.LossyLinks {
	ch := sim.NewLossyLinks()
	for _, l := range links {
		ch = ch.BreakBothWays(sim.ProcID(l[0]), sim.ProcID(l[1]))
	}
	return ch
}
