// Package scenario implements the declarative scenario DSL: a JSON format
// describing one complete chaos experiment — topology (n, f, fault
// strategy), delay substrate, a timed event script (crashes, rejoins,
// partitions, link cuts, delay-band shifts, adversary swaps), and the
// assertions the execution must satisfy (the theorem invariants, a skew
// envelope, expected-violation markers for runs that are supposed to break).
//
// A scenario file is parsed (Parse/Load), validated against the paper's
// standing assumptions A1–A3 (Scenario.Validate), compiled onto the
// experiment harness — the event script lowers to sim.TimedActions on the
// engine's timeline stage (internal/sim/timeline.go), faults to the
// internal/faults registry, the substrate to a sim.DelayModel — and run
// (Run), producing a Report whose rendered table is pinned byte-for-byte by
// the golden corpus test. `cmd/wlsim -scenario <file>` runs one from the
// command line.
//
// The repository's corpus lives in scenarios/*.json at the module root.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Scenario is the root of the DSL: one fully described execution.
type Scenario struct {
	// Name identifies the scenario in tables, goldens and errors.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Topology Topology `json:"topology"`

	// Params overrides individual paper parameters; zero fields inherit
	// analysis.Default(n, f) (ρ=1e−5, δ=10ms, ε=1ms, β=5.5ms, P=1s, T⁰=0).
	Params Params `json:"params,omitempty"`

	// Delay selects the delay substrate; the zero value is the uniform
	// model over the full [δ−ε, δ+ε] band of the parameters.
	Delay Delay `json:"delay,omitempty"`

	// Rounds to simulate; 0 means 12.
	Rounds int `json:"rounds,omitempty"`
	// WarmupRounds sets the steady-state boundary for the agreement
	// invariant and the steady-skew measurement; 0 means Rounds/2.
	WarmupRounds int `json:"warmup_rounds,omitempty"`
	// Seed drives delay sampling and seeded fault strategies; 0 means 1.
	Seed int64 `json:"seed,omitempty"`

	// Events is the timed chaos script, compiled onto the engine's
	// timeline stage. Times are real-time seconds.
	Events []Event `json:"events,omitempty"`

	Assertions Assertions `json:"assertions,omitempty"`
}

// Topology fixes the process set and the fault assignment.
type Topology struct {
	// N is the number of processes, F the algorithm's tolerance parameter
	// (assumption A2 requires n ≥ 3f+1; the *actual* fault assignment may
	// exceed F to demonstrate sharpness).
	N int `json:"n"`
	F int `json:"f"`
	// Faults, when present, assigns a registered fault strategy
	// (internal/faults) to a member set.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FaultSpec names a strategy from the internal/faults registry.
type FaultSpec struct {
	// Strategy is the registered name (wlsim -adversary-list enumerates).
	Strategy string `json:"strategy"`
	// Members are the faulty process ids; empty means the conventional
	// placement: the top F ids (faults.TopIDs) for schedule-driven and
	// member-wanting adaptive strategies, no members for pure delivery
	// adversaries (skewmax).
	Members []int `json:"members,omitempty"`
	// Seed parameterizes randomized strategies; 0 inherits Scenario.Seed.
	Seed int64 `json:"seed,omitempty"`
}

// Params mirrors analysis.Params with inherit-on-zero semantics.
type Params struct {
	Rho   float64 `json:"rho,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	P     float64 `json:"p,omitempty"`
	T0    float64 `json:"t0,omitempty"`
}

// Delay selects the substrate the message delays are drawn from. The band
// (Delta, Eps) defaults to the paper parameters; a narrower band (a
// sub-band of [δ−ε, δ+ε]) is valid, a band escaping the parameters'
// envelope violates A3 and is rejected.
type Delay struct {
	// Model is one of "uniform" (default), "constant", "extremal",
	// "center".
	Model string `json:"model,omitempty"`
	// Delta is the substrate's median delay; 0 inherits the parameters' δ.
	Delta float64 `json:"delta,omitempty"`
	// Eps is the substrate's uncertainty; 0 inherits the parameters' ε for
	// the uniform/extremal/center models ("constant" always has ε = 0).
	Eps float64 `json:"eps,omitempty"`
}

// Event is one entry of the chaos script. Kind selects the action; the
// remaining fields are kind-specific.
type Event struct {
	// At is the real time (seconds) the action fires, interleaved
	// deterministically with deliveries (an action at t precedes every
	// delivery at or after t).
	At   float64 `json:"at"`
	Kind string  `json:"kind"`

	// Proc targets one process ("crash", "rejoin").
	Proc *int `json:"proc,omitempty"`
	// Groups partitions the id space ("partition"): all links between
	// different groups are cut, both directions. Ids left out of every
	// group keep their links to every group.
	Groups [][]int `json:"groups,omitempty"`
	// Links are [from, to] pairs cut in both directions ("cut").
	Links [][]int `json:"links,omitempty"`
	// Delta/Eps/Model describe the new substrate ("delay-shift"); Model
	// empty keeps the scenario's configured model kind.
	Delta float64 `json:"delta,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
	Model string  `json:"model,omitempty"`
	// Strategy names an adaptive strategy whose network adversary is
	// installed ("adversary-swap"); "none" removes the current one. Only
	// the delivery-retiming half of the strategy is swapped in — faulty
	// automata cannot be installed mid-run.
	Strategy string `json:"strategy,omitempty"`
}

// Event kinds.
const (
	KindCrash         = "crash"
	KindRejoin        = "rejoin"
	KindPartition     = "partition"
	KindCut           = "cut"
	KindHeal          = "heal"
	KindDelayShift    = "delay-shift"
	KindAdversarySwap = "adversary-swap"
)

// Assertions declares what the execution must satisfy. A scenario whose
// assertions do not hold fails its Report (and `wlsim -scenario` exits
// nonzero).
type Assertions struct {
	// Invariants attaches the theorem suite (agreement, validity,
	// monotonicity, adjustment — internal/invariant); every checker must
	// hold except those named in ExpectViolations.
	Invariants bool `json:"invariants,omitempty"`
	// ExpectViolations names checkers that MUST record violations — the
	// scenario demonstrates a guarantee breaking (e.g. agreement at
	// f ≥ n/3). Checkers not named must stay clean. Requires Invariants.
	ExpectViolations []string `json:"expect_violations,omitempty"`
	// SkewMaxGammas, when positive, bounds the steady-state max skew by
	// this multiple of the Theorem 16 agreement bound γ.
	SkewMaxGammas float64 `json:"skew_max_gammas,omitempty"`
	// ExpectRejoined names crashed-and-rejoined processes that must have
	// completed §9.1 reintegration by the end of the run.
	ExpectRejoined []int `json:"expect_rejoined,omitempty"`
}

// Parse decodes one scenario from JSON. Unknown fields are errors — a
// typoed key silently ignored would make a chaos script lie about what it
// tests. Parse does not validate semantics; call Validate (or use Run,
// which validates).
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// A second document in the same file is a mistake, not extra input.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after the scenario object")
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
