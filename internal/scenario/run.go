package scenario

import (
	"fmt"
	"sort"

	"repro/internal/exp"
	"repro/internal/invariant"
	"repro/internal/sim"
)

// Report is the outcome of one scenario run: the harness result plus the
// assertion verdicts. Failures empty means every assertion held (including
// the expected-violation markers — a scenario that promises a break and
// fails to break FAILS).
type Report struct {
	Scenario *Scenario
	Result   *exp.Result
	// Failures lists every assertion that did not hold, in evaluation
	// order (invariants, skew envelope, rejoin expectations, runtime
	// errors from timeline actions).
	Failures []string

	gates map[sim.ProcID]*gate
}

// Ok reports whether every assertion held.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// Run validates, compiles and executes the scenario, then evaluates its
// assertions. The error return covers malformed scenarios and harness
// failures; assertion outcomes land in Report.Failures.
func Run(s *Scenario) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c, err := compile(s)
	if err != nil {
		return nil, err
	}
	res, err := exp.Run(c.w)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	rep := &Report{Scenario: s, Result: res, gates: c.gates}
	rep.Failures = append(rep.Failures, c.runtimeErrs...)
	rep.evaluate()
	return rep, nil
}

// evaluate applies the scenario's assertions to the finished run.
func (r *Report) evaluate() {
	s, res := r.Scenario, r.Result
	expect := map[string]bool{}
	for _, name := range s.Assertions.ExpectViolations {
		expect[name] = true
	}
	if suite := res.Invariants; suite != nil {
		for _, ck := range suite.Checkers() {
			switch {
			case expect[ck.Name()] && ck.Ok():
				r.fail("expected a %s violation, but the invariant held (%d checks)", ck.Name(), ck.Checked())
			case !expect[ck.Name()] && !ck.Ok():
				r.fail("invariant %s violated ×%d (worst +%.3gs)", ck.Name(), ck.Count(), ck.Worst())
			}
		}
	}
	if c := s.Assertions.SkewMaxGammas; c > 0 {
		bound := c * r.gamma()
		if skew := res.Skew.MaxAfterWarmup(); skew > bound {
			r.fail("steady-state max skew %s exceeds %.3g·γ = %s", exp.FmtDur(skew), c, exp.FmtDur(bound))
		}
	}
	for _, q := range s.Assertions.ExpectRejoined {
		g := r.gates[sim.ProcID(q)]
		if g == nil || !g.rejoined() {
			r.fail("proc %d never completed §9.1 reintegration", q)
		}
	}
}

func (r *Report) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *Report) gamma() float64 { return r.Scenario.params().Gamma() }

// Table renders the report as the repository's standard table shape, one
// quantity per row — deterministic, so the scenario corpus is pinnable
// byte-for-byte by the golden harness.
func (r *Report) Table() *exp.Table {
	s, res := r.Scenario, r.Result
	t := &exp.Table{
		ID:       "SCN",
		Title:    s.Name,
		PaperRef: "scenario DSL",
		Columns:  []string{"quantity", "value"},
	}
	t.AddRow("processes (n, f)", fmt.Sprintf("%d, %d", s.Topology.N, s.Topology.F))
	if fs := s.Topology.Faults; fs != nil {
		t.AddRow("fault strategy", fs.Strategy)
	}
	t.AddRow("rounds completed", fmt.Sprintf("%d", res.Rounds.Rounds()))
	t.AddRow("scripted events", fmt.Sprintf("%d", len(s.Events)))
	t.AddRow("messages sent / lost", fmt.Sprintf("%d / %d", res.Engine.MessagesSent(), res.Engine.MessagesLost()))
	t.AddRow("steady skew", exp.FmtDur(res.Skew.MaxAfterWarmup()))
	t.AddRow("max skew", exp.FmtDur(res.Skew.Max()))
	t.AddRow("agreement bound γ", exp.FmtDur(r.gamma()))
	if suite := res.Invariants; suite != nil {
		expect := map[string]bool{}
		for _, name := range s.Assertions.ExpectViolations {
			expect[name] = true
		}
		for _, ck := range suite.Checkers() {
			t.AddRow("invariant: "+ck.Name(), checkerCell(ck, expect[ck.Name()]))
		}
	}
	if c := s.Assertions.SkewMaxGammas; c > 0 {
		bound := c * r.gamma()
		skew := res.Skew.MaxAfterWarmup()
		t.AddRow(fmt.Sprintf("skew ≤ %.3g·γ", c),
			fmt.Sprintf("%s ≤ %s %s", exp.FmtDur(skew), exp.FmtDur(bound), exp.Verdict(skew <= bound)))
	}
	for _, q := range sortedInts(s.Assertions.ExpectRejoined) {
		g := r.gates[sim.ProcID(q)]
		t.AddRow(fmt.Sprintf("proc %d rejoined", q), exp.Verdict(g != nil && g.rejoined()))
	}
	t.AddRow("assertions", assertionsCell(r))
	if s.Description != "" {
		t.AddNote("%s", s.Description)
	}
	for _, f := range r.Failures {
		t.AddNote("FAILED: %s", f)
	}
	return t
}

// checkerCell renders one invariant's verdict, expected-violation aware:
// a checker that must break renders ok only when it actually broke.
func checkerCell(ck invariant.Checker, expected bool) string {
	switch {
	case expected && !ck.Ok():
		return fmt.Sprintf("VIOLATED ×%d (expected)", ck.Count())
	case expected && ck.Ok():
		return fmt.Sprintf("held (%d checks) — expected a violation", ck.Checked())
	case ck.Ok():
		return fmt.Sprintf("ok (%d checks)", ck.Checked())
	default:
		return fmt.Sprintf("VIOLATED ×%d", ck.Count())
	}
}

func assertionsCell(r *Report) string {
	if r.Ok() {
		return "ok"
	}
	return fmt.Sprintf("FAILED (%d)", len(r.Failures))
}

func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	return out
}
