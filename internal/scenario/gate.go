package scenario

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

// gate stages a crash/rejoin lifecycle around the paper's algorithm. It
// runs the maintenance automaton normally until a timeline "crash" action
// takes it down (every delivery, timers included, is dropped — the process
// is dead, not merely silent: a silent process still resynchronizes its own
// clock). A later "rejoin" action marks it restartable; at the next
// delivery the gate builds a §9.1 Rejoiner seeded with the correction the
// clock had when it died — stale by however long the outage lasted — wakes
// it with a synthetic START, and forwards traffic to it from then on. The
// Rejoiner gathers a full round of marks and reintegrates per §9.1.
//
// Waking on the next delivery rather than at the rejoin instant mirrors the
// model: a repaired process cannot act before an interrupt reaches it
// (§2.1); the first broadcast of the running system is that interrupt. The
// wake is at most one round after the rejoin action and fully
// deterministic.
//
// A gated process is marked faulty for the whole run (Workload.Faults), so
// the invariant checkers never see its dead or stale clock — the paper
// counts a crashed process among the f faulty ones (§9.1: "counted as one
// of the f faulty processes, which the others already tolerate").
type gate struct {
	cfg   core.Config
	inner sim.Process

	down    bool
	restart bool
	// staleCorr is the correction captured at crash time; the Rejoiner
	// starts from it, so the longer the outage the further its clock is
	// from the group when it wakes.
	staleCorr clock.Local
}

var (
	_ sim.Process    = (*gate)(nil)
	_ sim.CorrHolder = (*gate)(nil)
)

// newGate wraps a fresh maintenance automaton. Initial correction 0 is the
// registry convention for honest-until-event automata (faults
// "crash-mid-run" does the same); the gated process is faulty-marked, so
// its exact initial offset is outside every invariant's scope.
func newGate(cfg core.Config) *gate {
	return &gate{cfg: cfg, inner: core.NewProc(cfg, 0)}
}

// crash takes the process down, capturing the correction that will go
// stale during the outage.
func (g *gate) crash() {
	g.down = true
	if h, ok := g.inner.(sim.CorrHolder); ok {
		g.staleCorr = h.Corr()
	}
}

// rejoin marks the process restartable; the Rejoiner is built at the next
// delivery (see the type comment).
func (g *gate) rejoin() {
	g.down = false
	g.restart = true
}

// rejoined reports whether the process completed §9.1 reintegration.
func (g *gate) rejoined() bool {
	rj, ok := g.inner.(*core.Rejoiner)
	return ok && rj.Joined()
}

// Receive implements sim.Process.
func (g *gate) Receive(ctx *sim.Context, m sim.Message) {
	if g.down {
		return
	}
	if g.restart {
		g.restart = false
		rj := core.NewRejoiner(g.cfg, g.staleCorr)
		g.inner = rj
		rj.Receive(ctx, sim.Message{From: m.To, To: m.To, Kind: sim.KindStart, SentAt: m.DeliverAt, DeliverAt: m.DeliverAt})
		// Fall through: the delivery that woke us is real traffic the
		// Rejoiner should gather (pre-outage timer payloads it does not
		// recognize are ignored by its Receive).
	}
	g.inner.Receive(ctx, m)
}

// Corr implements sim.CorrHolder. During an outage the correction is the
// frozen stale value — the physical clock keeps running underneath, as a
// dead machine's oscillator would.
func (g *gate) Corr() clock.Local {
	if g.down {
		return g.staleCorr
	}
	if h, ok := g.inner.(sim.CorrHolder); ok {
		return h.Corr()
	}
	return 0
}
