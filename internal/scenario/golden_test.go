package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden mirrors the experiment harness's flag (separate test binary,
// no registration conflict): regenerate with
//
//	go test ./internal/scenario -run TestScenarioGoldens -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current scenario output")

// corpusDir is the repository's scenario corpus, relative to this package.
const corpusDir = "../../scenarios"

// corpusFiles returns the corpus paths, sorted (filepath.Glob sorts).
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("scenario corpus has %d files, want at least 5 (did %s move?)", len(files), corpusDir)
	}
	return files
}

// TestScenarioGoldens pins every corpus scenario's rendered report
// byte-for-byte, the same way the experiment goldens pin the paper tables:
// the corpus is the DSL's ground truth, and engine or harness changes that
// claim behavior preservation prove it by leaving these files untouched.
// Every corpus scenario must also pass its own assertions — a corpus entry
// whose assertions fail is a broken promise even if its bytes are stable.
func TestScenarioGoldens(t *testing.T) {
	for _, file := range corpusFiles(t) {
		name := filepath.Base(file)
		t.Run(name, func(t *testing.T) {
			s, err := Load(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range rep.Failures {
				t.Errorf("assertion failed: %s", f)
			}
			var buf bytes.Buffer
			rep.Table().Render(&buf)
			rep.Table().Markdown(&buf)
			path := filepath.Join("testdata", "golden", s.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (generate with -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s report differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					name, path, buf.Bytes(), want)
			}
		})
	}
}

// TestScenarioDeterminism reruns each corpus scenario and demands identical
// rendered bytes — the timeline stage must not perturb the engine's
// determinism guarantee.
func TestScenarioDeterminism(t *testing.T) {
	for _, file := range corpusFiles(t) {
		name := filepath.Base(file)
		t.Run(name, func(t *testing.T) {
			render := func() []byte {
				s, err := Load(file)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				rep.Table().Render(&buf)
				return buf.Bytes()
			}
			a, b := render(), render()
			if !bytes.Equal(a, b) {
				t.Errorf("two runs of %s rendered differently:\n--- first ---\n%s\n--- second ---\n%s", name, a, b)
			}
		})
	}
}
