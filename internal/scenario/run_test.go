package scenario

import (
	"strings"
	"testing"
)

// TestRunRejectsInvalid pins that Run front-loads validation.
func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(&Scenario{}); err == nil || !strings.Contains(err.Error(), "missing name") {
		t.Fatalf("Run on an invalid scenario: err = %v, want missing-name validation error", err)
	}
}

// TestRunBenign pins the happy path end to end: a fault-free scenario runs,
// every invariant holds, and the report carries no failures.
func TestRunBenign(t *testing.T) {
	s := valid()
	s.Assertions.Invariants = true
	s.Assertions.SkewMaxGammas = 1
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("benign scenario failed assertions: %v", rep.Failures)
	}
	if rep.Result.Engine.MessagesSent() == 0 {
		t.Fatal("no messages sent — the scenario did not actually run")
	}
}

// TestRunExpectedViolationMissing pins the inverted assertion: a scenario
// that promises a break and fails to break FAILS its report.
func TestRunExpectedViolationMissing(t *testing.T) {
	s := valid()
	s.Assertions.Invariants = true
	// Benign run, but the scenario claims agreement must break.
	s.Assertions.ExpectViolations = []string{"agreement"}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("report Ok despite an unmet expected violation")
	}
	found := false
	for _, f := range rep.Failures {
		if strings.Contains(f, "expected a agreement violation") {
			found = true
		}
	}
	if !found {
		t.Errorf("failures %v lack the unmet-expectation message", rep.Failures)
	}
}

// TestRunUnexpectedViolation pins the ordinary assertion direction: an
// actual violation not marked expected fails the report.
func TestRunUnexpectedViolation(t *testing.T) {
	s := valid()
	s.Assertions.Invariants = true
	// Partition worse than f with no expected-violation markers.
	s.Events = []Event{{At: 3.3, Kind: KindPartition, Groups: [][]int{{0, 1, 2, 3, 4}, {5, 6}}}}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("report Ok despite an unexpected invariant violation")
	}
	found := false
	for _, f := range rep.Failures {
		if strings.Contains(f, "invariant agreement violated") {
			found = true
		}
	}
	if !found {
		t.Errorf("failures %v lack the agreement-violation message", rep.Failures)
	}
}

// TestRunPartitionWithinF pins graceful degradation: a partition-style cut
// that leaves every receiver short at most f senders must not break
// anything.
func TestRunPartitionWithinF(t *testing.T) {
	s := valid()
	s.Assertions.Invariants = true
	s.Events = []Event{
		{At: 3.3, Kind: KindCut, Links: [][]int{{5, 0}, {5, 1}, {6, 0}, {6, 1}}},
		{At: 7.4, Kind: KindHeal},
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("≤ f link cut broke assertions: %v", rep.Failures)
	}
	if rep.Result.Engine.MessagesLost() == 0 {
		t.Fatal("no messages lost — the cut never took effect")
	}
}

// TestRunCrashRejoin pins the gate lifecycle: the crashed process stops
// participating, rejoins through §9.1, and reports Joined; the invariant
// suite never sees its dead clock.
func TestRunCrashRejoin(t *testing.T) {
	s := valid()
	s.Rounds = 14
	s.Events = []Event{
		{At: 4.3, Kind: KindCrash, Proc: intp(6)},
		{At: 8.25, Kind: KindRejoin, Proc: intp(6)},
	}
	s.Assertions.Invariants = true
	s.Assertions.ExpectRejoined = []int{6}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("crash/rejoin scenario failed assertions: %v", rep.Failures)
	}
	g := rep.gates[6]
	if g == nil || !g.rejoined() {
		t.Fatal("gate for proc 6 missing or never rejoined")
	}
}

// TestRunCrashWithoutRejoinFailsExpectation pins the other direction: a
// process that crashes and never comes back cannot satisfy expect_rejoined
// (constructed via the unexported report path — Validate would reject the
// scenario shape up front).
func TestRunCrashWithoutRejoin(t *testing.T) {
	s := valid()
	s.Events = []Event{{At: 4.3, Kind: KindCrash, Proc: intp(6)}}
	s.Assertions.Invariants = true
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("crash-only scenario failed assertions: %v", rep.Failures)
	}
	if g := rep.gates[6]; g == nil || g.rejoined() {
		t.Fatal("gate for proc 6 missing or claims to have rejoined while down")
	}
}

// TestRunTableShape pins the report table's deterministic shape: the golden
// harness depends on every row rendering from run state only.
func TestRunTableShape(t *testing.T) {
	s := valid()
	s.Assertions.Invariants = true
	s.Assertions.SkewMaxGammas = 1
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	if tbl.ID != "SCN" || tbl.Title != "t" {
		t.Errorf("table identity = (%s, %s), want (SCN, t)", tbl.ID, tbl.Title)
	}
	want := []string{"processes (n, f)", "invariant: agreement", "invariant: validity",
		"invariant: monotonicity", "invariant: adjustment", "assertions"}
	have := map[string]bool{}
	for _, row := range tbl.Rows {
		have[row[0]] = true
	}
	for _, q := range want {
		if !have[q] {
			t.Errorf("table lacks row %q", q)
		}
	}
}
