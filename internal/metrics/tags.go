package metrics

// Canonical annotation tags emitted by the algorithm implementations (core
// and baselines). Keeping the vocabulary here lets recorders default to it
// without the measurement layer depending on any particular algorithm.
const (
	// TagRoundBegin fires when a process's logical clock reaches its round
	// mark Tⁱ (value: round index i). The real-time spread of these events
	// across nonfaulty processes is the measured βᵢ of Theorem 4(c).
	TagRoundBegin = "round_begin"
	// TagAdjust fires at each clock update (value: the adjustment applied).
	TagAdjust = "adj"
	// TagRoundComplete fires after the update that ends round i (value: i).
	TagRoundComplete = "round_complete"
	// TagRejoined fires when a reintegrating process has set its clock
	// (value: the round index it will first broadcast in).
	TagRejoined = "rejoined"
	// TagStartupRound fires when a start-up (§9.2) process begins a round
	// (value: round index).
	TagStartupRound = "startup_round"
	// TagOuterAdjust fires when a two-tier representative (internal/hier)
	// applies an outer-tier update (value: the adjustment applied).
	TagOuterAdjust = "outer_adj"
	// TagDiscipline fires when a two-tier follower applies a relayed outer
	// adjustment from its representative (value: the adjustment).
	TagDiscipline = "discipline"
	// TagElect fires when a two-tier follower deposes a silent
	// representative (value: the newly elected representative's id).
	TagElect = "elect"
)

// NewDefaultRoundRecorder builds a RoundRecorder for the canonical tags.
func NewDefaultRoundRecorder() *RoundRecorder {
	return NewRoundRecorder(TagRoundBegin, TagAdjust)
}
