// Package metrics turns engine observations into the quantities the paper
// reasons about: the maximum skew between nonfaulty local times (γ of
// Theorem 16), the per-round real-time spread of round beginnings (β of
// Theorem 4(c)), adjustment magnitudes (Theorem 4(a)), and the validity
// envelope of Theorem 19.
package metrics

import (
	"math"
	"sort"

	"repro/internal/clock"
	"repro/internal/sim"
)

// TimedValue is an annotation value with its real timestamp.
type TimedValue struct {
	At    clock.Real
	Proc  sim.ProcID
	Value float64
}

// SkewRecorder tracks max |L_p(t) − L_q(t)| over nonfaulty p, q. Because the
// engine samples immediately before and after every action, the recorder
// sees the exact extremes of the piecewise-linear skew function.
type SkewRecorder struct {
	// Warmup discards samples before this real time from MaxAfterWarmup
	// (steady-state skew, after initial convergence).
	Warmup clock.Real
	// Bucket groups the skew series into real-time buckets of this width;
	// zero disables series collection.
	Bucket clock.Real

	max       float64
	maxAfter  float64
	series    []float64 // per-bucket max skew
	curBucket int
}

var _ sim.Sampler = (*SkewRecorder)(nil)

// Sample implements sim.Sampler.
func (r *SkewRecorder) Sample(e *sim.Engine, _ bool) {
	skew, ok := NonfaultySkew(e, e.Now())
	if !ok {
		return
	}
	if skew > r.max {
		r.max = skew
	}
	if e.Now() >= r.Warmup && skew > r.maxAfter {
		r.maxAfter = skew
	}
	if r.Bucket > 0 {
		b := int(e.Now() / r.Bucket)
		for len(r.series) <= b {
			r.series = append(r.series, 0)
		}
		if skew > r.series[b] {
			r.series[b] = skew
		}
	}
}

// Max returns the largest skew observed over the whole run.
func (r *SkewRecorder) Max() float64 { return r.max }

// MaxAfterWarmup returns the largest skew observed at or after Warmup.
func (r *SkewRecorder) MaxAfterWarmup() float64 { return r.maxAfter }

// Series returns the per-bucket max skew (empty if Bucket was zero).
func (r *SkewRecorder) Series() []float64 { return r.series }

// NonfaultySkew computes max−min of the nonfaulty local times at real time t.
// ok is false when fewer than two nonfaulty processes expose local times.
// The scan is delegated to the engine's batched LocalTimeSpread, so multiple
// observers asking at the same sample point share one O(n) clock walk.
func NonfaultySkew(e *sim.Engine, t clock.Real) (float64, bool) {
	lo, hi, count := e.LocalTimeSpread(t)
	if count < 2 {
		return 0, false
	}
	return float64(hi - lo), true
}

// RoundRecorder collects the per-round annotations emitted by the core (and
// baseline) processes.
type RoundRecorder struct {
	// BeginTag and AdjTag name the annotations to collect; the core
	// package's TagRoundBegin/TagAdjust by default (set by NewRoundRecorder).
	BeginTag string
	AdjTag   string

	begins map[int][]TimedValue // round index → round-begin events
	adjs   []TimedValue         // all adjustments in arrival order
	// skewAtBegin tracks the instantaneous nonfaulty skew at the *latest*
	// round-begin annotation seen so far per round — the paper's Bⁱ is
	// defined "at the latest real time when a nonfaulty process begins
	// round i" (§9.2). Annotations arrive in time order, so overwriting
	// keeps the latest.
	skewAtBegin map[int]float64
}

var _ sim.AnnotationSink = (*RoundRecorder)(nil)

// NewRoundRecorder builds a recorder for the given annotation tags.
func NewRoundRecorder(beginTag, adjTag string) *RoundRecorder {
	return &RoundRecorder{
		BeginTag:    beginTag,
		AdjTag:      adjTag,
		begins:      make(map[int][]TimedValue),
		skewAtBegin: make(map[int]float64),
	}
}

// OnAnnotation implements sim.AnnotationSink. (The recorder deliberately has
// no Sample method: annotations arrive on their own callback, so the engine
// skips it during the twice-per-action sampling fan-out.)
//
// The collection buffers are right-sized from the system size the first
// time each is touched — a round's begin list gets one allocation of
// exactly n slots instead of growth-doubling through the round, and the
// adjustment log starts several rounds deep — so recording across many
// rounds reuses capacity instead of reallocating per round (the dominant
// allocation source of the full-workload benchmark before this).
func (r *RoundRecorder) OnAnnotation(e *sim.Engine, a sim.Annotation) {
	if e.Faulty(a.Proc) {
		return
	}
	switch a.Tag {
	case r.BeginTag:
		i := int(a.Value)
		evs, ok := r.begins[i]
		if !ok {
			evs = make([]TimedValue, 0, e.N())
		}
		r.begins[i] = append(evs, TimedValue{At: a.At, Proc: a.Proc, Value: a.Value})
		if skew, ok := NonfaultySkew(e, a.At); ok {
			r.skewAtBegin[i] = skew
		}
	case r.AdjTag:
		if r.adjs == nil {
			r.adjs = make([]TimedValue, 0, 8*e.N())
		}
		r.adjs = append(r.adjs, TimedValue{At: a.At, Proc: a.Proc, Value: a.Value})
	}
}

// Rounds returns the number of rounds for which every nonfaulty process has
// a recorded beginning (consecutive from 0).
func (r *RoundRecorder) Rounds() int {
	i := 0
	for {
		if _, ok := r.begins[i]; !ok {
			return i
		}
		i++
	}
}

// BetaMeasured returns the real-time spread of round i's beginnings — the
// measured βᵢ of Theorem 4(c) — and false if round i was not observed.
func (r *RoundRecorder) BetaMeasured(i int) (float64, bool) {
	evs := r.begins[i]
	if len(evs) == 0 {
		return 0, false
	}
	lo, hi := evs[0].At, evs[0].At
	for _, ev := range evs[1:] {
		if ev.At < lo {
			lo = ev.At
		}
		if ev.At > hi {
			hi = ev.At
		}
	}
	return float64(hi - lo), true
}

// BetaSeries returns the measured βᵢ for all complete rounds.
func (r *RoundRecorder) BetaSeries() []float64 {
	n := r.Rounds()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		b, _ := r.BetaMeasured(i)
		out = append(out, b)
	}
	return out
}

// SkewAtBegin returns the instantaneous nonfaulty skew at the latest
// round-begin annotation of round i (the paper's Bⁱ for the start-up
// algorithm).
func (r *RoundRecorder) SkewAtBegin(i int) float64 { return r.skewAtBegin[i] }

// MaxAbsAdj returns the largest |ADJ| over nonfaulty processes, optionally
// restricted to adjustments at or after real time from.
func (r *RoundRecorder) MaxAbsAdj(from clock.Real) float64 {
	m := 0.0
	for _, a := range r.adjs {
		if a.At < from {
			continue
		}
		if v := math.Abs(a.Value); v > m {
			m = v
		}
	}
	return m
}

// Adjustments returns all recorded adjustments in arrival order.
func (r *RoundRecorder) Adjustments() []TimedValue { return r.adjs }

// AnnotationTimes returns, per round, the sorted real times of the begin
// annotations (useful for validity's tmin/tmax bookkeeping).
func (r *RoundRecorder) AnnotationTimes(i int) []clock.Real {
	evs := r.begins[i]
	ts := make([]clock.Real, len(evs))
	for j, ev := range evs {
		ts[j] = ev.At
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	return ts
}

// ValidityRecorder checks the Theorem 19 envelope
//
//	α₁(t − tmax⁰) − α₃ ≤ L_p(t) − T⁰ ≤ α₂(t − tmin⁰) + α₃
//
// at every sample and tracks the worst violation (a nonpositive worst
// violation means the envelope held throughout).
type ValidityRecorder struct {
	Alpha1, Alpha2, Alpha3 float64
	T0                     float64
	TMin0, TMax0           clock.Real
	// From discards samples before this real time (validity is stated for
	// t ≥ t_p⁰).
	From clock.Real

	worst   float64 // max over samples of (violation amount); ≤ 0 when clean
	samples int
}

var _ sim.Sampler = (*ValidityRecorder)(nil)

// Sample implements sim.Sampler. The envelope is monotone in L_p, so the
// per-process check reduces to the extremes: the lower bound is tightest for
// the minimum local time and the upper bound for the maximum, which the
// engine's shared one-pass spread scan provides directly.
func (v *ValidityRecorder) Sample(e *sim.Engine, _ bool) {
	t := e.Now()
	if t < v.From {
		return
	}
	lo, hi, count := e.LocalTimeSpread(t)
	if count == 0 {
		return
	}
	v.samples += count
	lower := v.Alpha1*float64(t-v.TMax0) - v.Alpha3
	upper := v.Alpha2*float64(t-v.TMin0) + v.Alpha3
	if d := lower - (float64(lo) - v.T0); d > v.worst {
		v.worst = d
	}
	if d := (float64(hi) - v.T0) - upper; d > v.worst {
		v.worst = d
	}
}

// WorstViolation returns the largest envelope violation observed; values ≤ 0
// mean Theorem 19 held at every sample.
func (v *ValidityRecorder) WorstViolation() float64 { return v.worst }

// Samples returns how many (process, time) points were checked.
func (v *ValidityRecorder) Samples() int { return v.samples }
