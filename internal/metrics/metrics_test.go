package metrics_test

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// stubProc exposes a fixed correction and performs scripted actions.
type stubProc struct {
	corr    clock.Local
	onStart func(ctx *sim.Context)
}

func (s *stubProc) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind == sim.KindStart && s.onStart != nil {
		s.onStart(ctx)
	}
}

func (s *stubProc) Corr() clock.Local { return s.corr }

// buildEngine makes an engine of stub processes with the given corrections
// and all-zero start times.
func buildEngine(t *testing.T, corrs []clock.Local, faulty []bool, hook func(id int) func(*sim.Context)) *sim.Engine {
	t.Helper()
	n := len(corrs)
	procs := make([]sim.Process, n)
	clocks := make([]clock.Clock, n)
	starts := make([]clock.Real, n)
	for i := range procs {
		p := &stubProc{corr: corrs[i]}
		if hook != nil {
			p.onStart = hook(i)
		}
		procs[i] = p
		clocks[i] = clock.Linear(0, 1)
	}
	e, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.ConstantDelay{Delta: 0.01},
		Faulty:  faulty,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNonfaultySkew(t *testing.T) {
	e := buildEngine(t, []clock.Local{0, 3, 10}, []bool{false, false, true}, nil)
	skew, ok := metrics.NonfaultySkew(e, 5)
	if !ok {
		t.Fatal("expected skew")
	}
	// Faulty process's offset 10 must be ignored: skew = 3 − 0.
	if math.Abs(skew-3) > 1e-12 {
		t.Errorf("skew = %v, want 3", skew)
	}
}

func TestNonfaultySkewNeedsTwo(t *testing.T) {
	e := buildEngine(t, []clock.Local{0, 1}, []bool{false, true}, nil)
	if _, ok := metrics.NonfaultySkew(e, 0); ok {
		t.Error("skew with a single nonfaulty process should report not-ok")
	}
}

func TestSkewRecorder(t *testing.T) {
	e := buildEngine(t, []clock.Local{0, 2, 7}, nil, nil)
	rec := &metrics.SkewRecorder{Warmup: 100, Bucket: 1}
	e.Observe(rec)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec.Max()-7) > 1e-12 {
		t.Errorf("Max = %v, want 7", rec.Max())
	}
	// No sample at or after warmup 100 within horizon 10... except the
	// final horizon sample happens at t=10 < 100, so MaxAfterWarmup = 0.
	if rec.MaxAfterWarmup() != 0 {
		t.Errorf("MaxAfterWarmup = %v, want 0", rec.MaxAfterWarmup())
	}
	if len(rec.Series()) == 0 {
		t.Error("bucketed series missing")
	}
	for _, v := range rec.Series() {
		if v != 0 && math.Abs(v-7) > 1e-12 {
			t.Errorf("series bucket = %v, want 0 or 7", v)
		}
	}
}

func TestRoundRecorder(t *testing.T) {
	hook := func(id int) func(*sim.Context) {
		return func(ctx *sim.Context) {
			ctx.Annotate(metrics.TagRoundBegin, 0)
			ctx.Annotate(metrics.TagAdjust, float64(id+1)*1e-3)
		}
	}
	// Process 2 is faulty: its annotations must be ignored.
	e := buildEngine(t, []clock.Local{0, 1e-3, 5}, []bool{false, false, true}, hook)
	rec := metrics.NewDefaultRoundRecorder()
	e.Observe(rec)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if rec.Rounds() != 1 {
		t.Fatalf("Rounds = %d, want 1", rec.Rounds())
	}
	// Both nonfaulty STARTs are at t=0, so β₀ = 0.
	b, ok := rec.BetaMeasured(0)
	if !ok || b != 0 {
		t.Errorf("BetaMeasured(0) = %v,%v", b, ok)
	}
	if _, ok := rec.BetaMeasured(5); ok {
		t.Error("BetaMeasured for unseen round should report not-ok")
	}
	// Adjustments: 1ms and 2ms from the two nonfaulty processes.
	if got := rec.MaxAbsAdj(0); math.Abs(got-2e-3) > 1e-12 {
		t.Errorf("MaxAbsAdj = %v, want 2ms", got)
	}
	if got := rec.MaxAbsAdj(50); got != 0 {
		t.Errorf("MaxAbsAdj(after 50) = %v, want 0", got)
	}
	if len(rec.Adjustments()) != 2 {
		t.Errorf("Adjustments = %v, want 2 entries", rec.Adjustments())
	}
	// Skew at the (latest) begin of round 0 is the nonfaulty skew 1ms.
	if got := rec.SkewAtBegin(0); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("SkewAtBegin = %v, want 1ms", got)
	}
	if ts := rec.AnnotationTimes(0); len(ts) != 2 || ts[0] != 0 || ts[1] != 0 {
		t.Errorf("AnnotationTimes = %v", ts)
	}
	series := rec.BetaSeries()
	if len(series) != 1 || series[0] != 0 {
		t.Errorf("BetaSeries = %v", series)
	}
}

func TestValidityRecorder(t *testing.T) {
	// Perfect clocks with zero corrections: L_p(t) − T0 = t exactly; the
	// envelope with α=1±0.01 and α₃=0.001 holds trivially.
	e := buildEngine(t, []clock.Local{0, 0}, nil, nil)
	rec := &metrics.ValidityRecorder{
		Alpha1: 0.99, Alpha2: 1.01, Alpha3: 1e-3,
		T0: 0, TMin0: 0, TMax0: 0,
	}
	e.Observe(rec)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if rec.Samples() == 0 {
		t.Fatal("no samples")
	}
	if rec.WorstViolation() > 0 {
		t.Errorf("violation %v on a perfect run", rec.WorstViolation())
	}
}

func TestValidityRecorderDetectsViolation(t *testing.T) {
	// A huge constant correction puts L far above the upper envelope.
	e := buildEngine(t, []clock.Local{100, 100}, nil, nil)
	rec := &metrics.ValidityRecorder{
		Alpha1: 0.99, Alpha2: 1.01, Alpha3: 1e-3,
		T0: 0, TMin0: 0, TMax0: 0,
	}
	e.Observe(rec)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if rec.WorstViolation() < 99 {
		t.Errorf("violation = %v, want ≈ 100", rec.WorstViolation())
	}
}

func TestValidityRecorderFromFilter(t *testing.T) {
	e := buildEngine(t, []clock.Local{100, 100}, nil, nil)
	rec := &metrics.ValidityRecorder{
		Alpha1: 0.99, Alpha2: 1.01, Alpha3: 1e-3,
		From: 1e9, // beyond the horizon: nothing sampled
	}
	e.Observe(rec)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if rec.Samples() != 0 || rec.WorstViolation() != 0 {
		t.Errorf("samples=%d violation=%v, want 0/0", rec.Samples(), rec.WorstViolation())
	}
}
