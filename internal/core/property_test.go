package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/sim"
)

// TestAgreementPropertyAcrossSeeds: for random seeds, delay models and fault
// mixes within spec, Theorem 16 and Theorem 4(a) must hold. This is the
// repository's broadest invariant check.
func TestAgreementPropertyAcrossSeeds(t *testing.T) {
	cfg := defaultCfg(7, 2)
	f := func(seed int64, delayPick, faultPick uint8) bool {
		var delay sim.DelayModel
		switch delayPick % 4 {
		case 0:
			delay = sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps}
		case 1:
			delay = sim.ConstantDelay{Delta: cfg.Delta}
		case 2:
			delay = sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps}
		default:
			delay = sim.PerLinkDelay{Delta: cfg.Delta, Eps: cfg.Eps, Seed: seed}
		}
		mix := map[sim.ProcID]func() sim.Process{}
		switch faultPick % 4 {
		case 0: // none
		case 1:
			mix[5] = func() sim.Process { return faults.Silent{} }
			mix[6] = func() sim.Process { return faults.Silent{} }
		case 2:
			mix[5] = func() sim.Process { return &faults.TwoFaced{Cfg: cfg, Lead: 3e-3, Lag: 3e-3} }
			mix[6] = func() sim.Process { return &faults.StaleReplay{Cfg: cfg, Offset: 4e-3} }
		default:
			mix[0] = func() sim.Process { return &faults.Noise{Cfg: cfg, Burst: 2} }
		}
		res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 8, Seed: seed, Faults: mix, Delay: delay})
		if err != nil {
			return false
		}
		return res.Skew.Max() <= cfg.Gamma() &&
			res.Rounds.MaxAbsAdj(0) <= cfg.AdjBound() &&
			res.Validity.WorstViolation() <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRejoinerUnderByzantineNoise: reintegration must work while a noise
// fault babbles through the gathering phase (the rejoiner plus the noise
// process together use up the f=2 budget).
func TestRejoinerUnderByzantineNoise(t *testing.T) {
	cfg := defaultCfg(7, 2)
	var rj *core.Rejoiner
	res, err := exp.Run(exp.Workload{
		Cfg:    cfg,
		Rounds: 20,
		Faults: map[sim.ProcID]func() sim.Process{
			5: func() sim.Process { return &faults.Noise{Cfg: cfg, Burst: 3} },
			6: func() sim.Process {
				rj = core.NewRejoiner(cfg, 55.5)
				return rj
			},
		},
		StartOverride: map[sim.ProcID]clock.Real{6: 4.7},
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rj.Joined() {
		t.Fatal("rejoiner never joined under noise")
	}
	lt, ok := res.Engine.LocalTime(6, res.Horizon)
	if !ok {
		t.Fatal("no rejoiner local time")
	}
	for _, p := range res.Engine.NonfaultyIDs() {
		o, ok := res.Engine.LocalTime(p, res.Horizon)
		if !ok {
			continue
		}
		if d := math.Abs(float64(lt - o)); d > cfg.Gamma() {
			t.Errorf("rejoiner offset %v from p%d exceeds γ", d, p)
		}
	}
}

// TestFaultFreeSingleton: the degenerate n=1, f=0 system must tick rounds
// against itself without error (its own broadcast is its only input).
func TestFaultFreeSingleton(t *testing.T) {
	cfg := defaultCfg(1, 0)
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Engine.Process(0).(*core.Proc)
	if p.Round() < 5 {
		t.Errorf("singleton stalled at round %d", p.Round())
	}
	if v := res.Validity.WorstViolation(); v > 0 {
		t.Errorf("singleton validity violated by %v", v)
	}
}

// TestT0Offset: shifting T⁰ must not change behavior beyond the offset.
func TestT0Offset(t *testing.T) {
	base := defaultCfg(4, 1)
	shifted := base
	shifted.T0 = 1000
	rBase, err := exp.Run(exp.Workload{Cfg: base, Rounds: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rShift, err := exp.Run(exp.Workload{Cfg: shifted, Rounds: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := rBase.Rounds.BetaSeries()
	b := rShift.Rounds.BetaSeries()
	if len(a) != len(b) {
		t.Fatalf("round counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Errorf("round %d: β %v vs %v under T⁰ shift", i, a[i], b[i])
		}
	}
}

// TestLargeSystem: n=31, f=10 — the algorithm scales in n with the same
// guarantees.
func TestLargeSystem(t *testing.T) {
	cfg := defaultCfg(31, 10)
	mix := map[sim.ProcID]func() sim.Process{}
	for i := 0; i < 10; i++ {
		id := sim.ProcID(30 - i)
		mix[id] = func() sim.Process { return &faults.TwoFaced{Cfg: cfg, Lead: 3e-3, Lag: 3e-3} }
	}
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 8, Faults: mix, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("skew %v exceeds γ %v at n=31 with 10 two-faced faults", got, cfg.Gamma())
	}
}
