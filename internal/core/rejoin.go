package core

import (
	"math"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Rejoiner implements §9.1: a repaired process that synchronizes its clock
// with the running system and then joins the main algorithm.
//
// The process awakens at an arbitrary time (its START delivery), possibly in
// the middle of a round, with an arbitrary CORR. As soon as it awakens it
// begins collecting Tⁱ messages *for all plausible values of Tⁱ* (§9.1),
// grouping arrivals by the round mark they carry. It must identify a round
// it observed from the beginning; since it may have awakened mid-round, a
// group whose first arrival is too close to the wake-up instant is discarded
// as possibly partial (the paper's "allowing part of a round to pass" to
// orient). For a fully observed group, it waits (1+ρ)(β+2ε) on its own clock
// after the group's first arrival — long enough to have heard every
// nonfaulty process — then performs the same fault-tolerant averaging as the
// main algorithm:
//
//	ADJ = Tⁱ + δ − mid(reduce_f(ARR)),  CORR += ADJ.
//
// The arbitrary initial clock cancels in the subtraction (§9.1's first
// observation), so the new clock reaches Tⁱ⁺¹ within β of every nonfaulty
// process, at which point the process rejoins the main algorithm and begins
// broadcasting again. Groups gathered for Byzantine-invented marks never
// reach n−f arrivals and are discarded at their deadlines.
//
// Until it rejoins, the process sends nothing; it is counted as one of the f
// faulty processes, which the others already tolerate.
type Rejoiner struct {
	cfg  Config
	corr clock.Local

	awake     bool
	wakeLocal clock.Local
	groups    map[clock.Local]*gatherGroup
	inner     *Proc // the main algorithm, once synchronized
}

// gatherGroup accumulates arrivals of one round mark's messages.
type gatherGroup struct {
	arr        []float64
	firstLocal clock.Local
	count      int
}

// rejoinDeadline is the timer payload closing a group's gather window.
type rejoinDeadline struct {
	mark clock.Local
}

var (
	_ sim.Process    = (*Rejoiner)(nil)
	_ sim.CorrHolder = (*Rejoiner)(nil)
)

// NewRejoiner builds a reintegrating process. initialCorr is arbitrary (the
// repaired process's clock is unsynchronized).
func NewRejoiner(cfg Config, initialCorr clock.Local) *Rejoiner {
	return &Rejoiner{
		cfg:    cfg.withDefaults(),
		corr:   initialCorr,
		groups: make(map[clock.Local]*gatherGroup),
	}
}

// Corr implements sim.CorrHolder.
func (r *Rejoiner) Corr() clock.Local {
	if r.inner != nil {
		return r.inner.Corr()
	}
	return r.corr
}

// Joined reports whether the process has completed reintegration.
func (r *Rejoiner) Joined() bool { return r.inner != nil }

// Receive implements sim.Process.
func (r *Rejoiner) Receive(ctx *sim.Context, m sim.Message) {
	if r.inner != nil {
		r.inner.Receive(ctx, m)
		return
	}
	switch m.Kind {
	case sim.KindStart:
		r.awake = true
		r.wakeLocal = r.local(ctx)
	case sim.KindOrdinary:
		if r.awake {
			r.gather(ctx, m)
		}
	case sim.KindTimer:
		if d, ok := m.Payload.(rejoinDeadline); ok {
			r.closeGroup(ctx, d.mark)
		}
	}
}

func (r *Rejoiner) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + r.corr }

// gatherWait is the local-time length of a group's collection window: all
// nonfaulty Tⁱ messages arrive within β+2ε real time of the first one
// (senders within β, delays within ±ε), stretched by drift and by the
// staggered-broadcast tail when σ > 0.
func (r *Rejoiner) gatherWait() clock.Local {
	return clock.Local((1 + r.cfg.Rho) * (r.cfg.Beta + 2*r.cfg.Eps + float64(r.cfg.N)*r.cfg.Stagger))
}

func (r *Rejoiner) gather(ctx *sim.Context, m sim.Message) {
	tm, ok := m.Payload.(TMsg)
	if !ok {
		return
	}
	g := r.groups[tm.Mark]
	if g == nil {
		g = &gatherGroup{arr: make([]float64, r.cfg.N), firstLocal: r.local(ctx)}
		for i := range g.arr {
			g.arr[i] = math.Inf(-1)
		}
		r.groups[tm.Mark] = g
		ctx.SetTimer(g.firstLocal+r.gatherWait()-r.corr, rejoinDeadline{mark: tm.Mark})
	}
	if math.IsInf(g.arr[m.From], -1) {
		g.count++
	}
	g.arr[m.From] = float64(r.local(ctx)) - r.cfg.Stagger*float64(m.From)
}

func (r *Rejoiner) closeGroup(ctx *sim.Context, mark clock.Local) {
	g := r.groups[mark]
	if g == nil || r.inner != nil {
		return
	}
	delete(r.groups, mark)
	// A group that began too soon after wake-up may be partially observed:
	// we could have slept through its earlier arrivals.
	if g.firstLocal-r.wakeLocal <= r.gatherWait() {
		return
	}
	// Fewer than n−f arrivals means the mark was not a real round (or too
	// many processes are down); discard.
	if g.count < r.cfg.N-r.cfg.F {
		return
	}
	av, err := r.cfg.Averager.apply(multiset.New(g.arr...), r.cfg.F)
	if err != nil {
		panic("core: rejoin averaging: " + err.Error())
	}
	adj := float64(mark) + r.cfg.Delta - av
	r.corr += clock.Local(adj)

	// Join the main algorithm at the next round mark.
	next := mark + clock.Local(r.cfg.P)
	inner := NewProc(r.cfg, r.corr)
	inner.t = next
	inner.base = next
	inner.rnd = int(math.Round(float64(next-clock.Local(r.cfg.T0)) / r.cfg.P))
	r.inner = inner
	ctx.Annotate(metrics.TagRejoined, float64(inner.rnd))
	inner.setTimer(ctx, inner.broadcastMark(ctx))
}
