package core_test

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// readySpammer is a Byzantine start-up participant: it floods READY messages
// (trying to trip early round transitions) and broadcasts wild clock values.
type readySpammer struct {
	burst int
}

func (s *readySpammer) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	rng := ctx.Rand()
	ctx.Broadcast(core.ClockMsg{T: clock.Local(rng.NormFloat64() * 100)})
	for i := 0; i < s.burst; i++ {
		ctx.Broadcast(core.ReadyMsg{})
	}
	ctx.SetTimer(ctx.PhysNow()+0.05, nil)
}

// runStartupMix runs the §9.2 algorithm with the given fault builders on the
// top process ids and returns the engine plus the nonfaulty procs.
func runStartupMix(t *testing.T, n, f int, mkFault func() sim.Process, nFaulty int, seed int64) (*sim.Engine, []*core.StartupProc) {
	t.Helper()
	cfg := defaultCfg(n, f)
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	good := make([]*core.StartupProc, 0, n)
	faulty := make([]bool, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, 3.0, seed)
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 0.01
		if i >= n-nFaulty {
			procs[i] = mkFault()
			faulty[i] = true
			continue
		}
		sp := core.NewStartupProc(cfg, corrs[i])
		procs[i] = sp
		good = append(good, sp)
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Faulty:  faulty,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(20); err != nil {
		t.Fatal(err)
	}
	return eng, good
}

func startupFinalSkew(t *testing.T, eng *sim.Engine) float64 {
	t.Helper()
	skew, ok := metrics.NonfaultySkew(eng, eng.Now())
	if !ok {
		t.Fatal("no skew measurable")
	}
	return skew
}

func TestStartupWithSilentFaults(t *testing.T) {
	cfg := defaultCfg(7, 2)
	eng, good := runStartupMix(t, 7, 2, func() sim.Process { return silentStartup{} }, 2, 5)
	for i, sp := range good {
		if sp.Round() < 8 {
			t.Errorf("process %d stalled at startup round %d", i, sp.Round())
		}
	}
	if got := startupFinalSkew(t, eng); got > 2*cfg.StartupFloor() {
		t.Errorf("final skew %v exceeds 2×Lemma-20 floor %v with silent faults", got, 2*cfg.StartupFloor())
	}
}

type silentStartup struct{}

func (silentStartup) Receive(*sim.Context, sim.Message) {}

func TestStartupWithReadySpammers(t *testing.T) {
	cfg := defaultCfg(7, 2)
	eng, good := runStartupMix(t, 7, 2, func() sim.Process { return &readySpammer{burst: 3} }, 2, 6)
	for i, sp := range good {
		if sp.Round() < 8 {
			t.Errorf("process %d stalled at startup round %d", i, sp.Round())
		}
	}
	// Spammed READYs accelerate round transitions but must not break the
	// convergence: allow a loose 4× floor here.
	if got := startupFinalSkew(t, eng); got > 4*cfg.StartupFloor() {
		t.Errorf("final skew %v exceeds 4×floor %v under READY spam", got, 4*cfg.StartupFloor())
	}
}

// TestStartupRecurrenceUnderFaults checks Lemma 20 round over round with two
// silent faults: Bⁱ⁺¹ ≤ Bⁱ/2 + 2ε + 2ρ(11δ+39ε), allowing measurement slack.
func TestStartupRecurrenceUnderFaults(t *testing.T) {
	cfg := defaultCfg(7, 2)
	n := cfg.N
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	faulty := make([]bool, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, 2.0, 17)
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		starts[i] = clock.Real(i) * 0.004
		if i >= n-2 {
			procs[i] = silentStartup{}
			faulty[i] = true
			continue
		}
		procs[i] = core.NewStartupProc(cfg, corrs[i])
	}
	eng, err := sim.New(sim.Config{
		Procs: procs, Clocks: clocks, StartAt: starts,
		Delay: sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps}, Faulty: faulty, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRoundRecorder(metrics.TagStartupRound, metrics.TagAdjust)
	eng.Observe(rec)
	if err := eng.Run(15); err != nil {
		t.Fatal(err)
	}
	rounds := rec.Rounds()
	if rounds < 8 {
		t.Fatalf("only %d startup rounds", rounds)
	}
	prev := math.Inf(1)
	for i := 0; i < rounds; i++ {
		b := rec.SkewAtBegin(i)
		if i > 0 {
			bound := cfg.StartupStep(prev)*1.15 + 1e-5
			if b > bound {
				t.Errorf("round %d: B = %v exceeds recurrence bound %v", i, b, bound)
			}
		}
		prev = b
	}
}
