package core_test

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// runSwitch assembles a cluster of SwitchProcs from arbitrary clocks and
// runs it past the switch into steady maintenance.
func runSwitch(t *testing.T, n, f, switchRound int, spread clock.Local, seed int64) (*sim.Engine, []*core.SwitchProc) {
	t.Helper()
	cfg := defaultCfg(n, f)
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	sprocs := make([]*core.SwitchProc, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, spread, seed)
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		sp := core.NewSwitchProc(cfg, corrs[i], switchRound)
		sprocs[i] = sp
		procs[i] = sp
		starts[i] = clock.Real(i) * 0.003
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Start-up rounds take well under 100ms each; then ≥ 2P to reach the
	// epoch plus maintenance rounds of P each.
	horizon := clock.Real(float64(switchRound)*0.1 + 10*cfg.P)
	if err := eng.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return eng, sprocs
}

func TestSwitchProcEstablishesThenMaintains(t *testing.T) {
	eng, sprocs := runSwitch(t, 7, 2, 6, 2.0, 7)
	for i, sp := range sprocs {
		if !sp.Switched() {
			t.Fatalf("process %d never switched (startup round %d)", i, sp.StartupRound())
		}
		if sp.MaintenanceRound() < 4 {
			t.Errorf("process %d only reached maintenance round %d", i, sp.MaintenanceRound())
		}
	}
	// All processes must be in the same maintenance round (no epoch race
	// for this seed) and tightly synchronized.
	r0 := sprocs[0].MaintenanceRound()
	for i, sp := range sprocs {
		if d := sp.MaintenanceRound() - r0; d < -1 || d > 1 {
			t.Errorf("process %d in maintenance round %d vs %d", i, sp.MaintenanceRound(), r0)
		}
	}
	skew, ok := metrics.NonfaultySkew(eng, eng.Now())
	if !ok {
		t.Fatal("no skew")
	}
	cfg := defaultCfg(7, 2)
	if skew > cfg.Gamma() {
		t.Errorf("post-switch skew %v exceeds γ = %v", skew, cfg.Gamma())
	}
}

func TestSwitchProcDeterministicEpoch(t *testing.T) {
	// Every process must anchor at the same epoch: check via the annotated
	// epoch values (TagRejoined is reused for "joined maintenance").
	cfg := defaultCfg(4, 1)
	n := cfg.N
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, 1.0, 3)
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		procs[i] = core.NewSwitchProc(cfg, corrs[i], 4)
		starts[i] = 0
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &epochCollector{}
	eng.Observe(rec)
	if err := eng.Run(8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sp := procs[i].(*core.SwitchProc)
		if !sp.Switched() {
			t.Fatalf("process %d did not switch", i)
		}
	}
	if len(rec.epochs) != n {
		t.Fatalf("saw %d switch annotations, want %d", len(rec.epochs), n)
	}
	for i, e := range rec.epochs {
		if math.Abs(e-rec.epochs[0]) > 1e-9 {
			t.Errorf("process %d anchored at epoch %v, others at %v", i, e, rec.epochs[0])
		}
	}
}

// epochCollector gathers the switch-epoch annotations.
type epochCollector struct {
	epochs []float64
}

func (c *epochCollector) OnAnnotation(_ *sim.Engine, a sim.Annotation) {
	if a.Tag == metrics.TagRejoined {
		c.epochs = append(c.epochs, a.Value)
	}
}
