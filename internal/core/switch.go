package core

import (
	"math"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SwitchProc composes the two modes of operation described at the end of
// §9.2: it first runs the start-up algorithm until the clocks are close, and
// then switches to the maintenance algorithm. The paper defers the switch
// protocol to [Lu1]; this implementation uses the following rule, which
// needs no extra messages:
//
// Every process switches after the same fixed number R of start-up rounds
// (the round count is part of the protocol, so nonfaulty processes agree on
// it). At the moment its R-th round begins, a process's local time L agrees
// with every other nonfaulty local time within the Lemma 20 closeness B_R
// plus the round-start spread (≈ δ+3ε) — a few milliseconds, vastly smaller
// than the round length P. Each process therefore independently computes the
// same maintenance epoch
//
//	T_start = (⌊L/P⌋ + 2) · P
//
// and starts the maintenance algorithm with its round marks anchored there.
// The +2 margin guarantees T_start is comfortably in the future.
//
// Caveat (documented, inherent to any message-free rule): if the local times
// at the switch instant straddle a multiple of P — a window of a few
// milliseconds out of every P seconds — processes could compute epochs one
// round apart. Choose R so that the Lemma 20 closeness ≪ P (any R ≥ 2 in a
// sane regime) and the race window is ≈ B_R/P per run; the [Lu1] protocol
// closes it entirely with an extra agreement exchange.
type SwitchProc struct {
	cfg Config
	// switchRound is R: the number of completed start-up rounds before
	// switching to maintenance.
	switchRound int

	startup *StartupProc
	maint   *Proc
}

var (
	_ sim.Process    = (*SwitchProc)(nil)
	_ sim.CorrHolder = (*SwitchProc)(nil)
)

// NewSwitchProc builds a process that establishes synchronization with the
// §9.2 algorithm for switchRound rounds and then maintains it with the §4.2
// algorithm. initialCorr is arbitrary (clocks start unsynchronized).
func NewSwitchProc(cfg Config, initialCorr clock.Local, switchRound int) *SwitchProc {
	if switchRound < 2 {
		switchRound = 2
	}
	return &SwitchProc{
		cfg:         cfg.withDefaults(),
		switchRound: switchRound,
		startup:     NewStartupProc(cfg, initialCorr),
	}
}

// Corr implements sim.CorrHolder.
func (s *SwitchProc) Corr() clock.Local {
	if s.maint != nil {
		return s.maint.Corr()
	}
	return s.startup.Corr()
}

// Switched reports whether the process is running the maintenance phase.
func (s *SwitchProc) Switched() bool { return s.maint != nil }

// MaintenanceRound returns the maintenance round counter (0 before switch).
func (s *SwitchProc) MaintenanceRound() int {
	if s.maint == nil {
		return 0
	}
	return s.maint.Round()
}

// StartupRound returns the start-up round counter.
func (s *SwitchProc) StartupRound() int { return s.startup.Round() }

// Receive implements sim.Process.
func (s *SwitchProc) Receive(ctx *sim.Context, m sim.Message) {
	if s.maint != nil {
		s.maint.Receive(ctx, m)
		return
	}
	s.startup.Receive(ctx, m)
	if s.startup.Round() >= s.switchRound {
		s.switchToMaintenance(ctx)
	}
}

func (s *SwitchProc) switchToMaintenance(ctx *sim.Context) {
	// Up to f nonfaulty processes may still be one start-up round behind;
	// once we stop participating they would wait forever for their n−f
	// READY messages. A final READY at switch time completes their count
	// (the start-up RCVD-READY set is keyed by process id, so an extra
	// READY from an already-counted process is harmless).
	ctx.Broadcast(ReadyMsg{})

	corr := s.startup.Corr()
	local := float64(ctx.PhysNow() + corr)
	epoch := (math.Floor(local/s.cfg.P) + 2) * s.cfg.P

	// Anchor the maintenance config at the common epoch: T⁰ := epoch, so
	// round marks are epoch, epoch+P, … and the validity statement is
	// relative to the switch.
	cfg := s.cfg
	cfg.T0 = epoch
	maint := NewProc(cfg, corr)
	s.maint = maint
	ctx.Annotate(metrics.TagRejoined, epoch) // reuse tag: "joined maintenance at epoch"
	maint.setTimer(ctx, maint.broadcastMark(ctx))
}
