// Package core implements the paper's contribution: the fault-tolerant clock
// synchronization maintenance algorithm of §4, together with the extensions
// of §7 (k exchanges per round, mean instead of midpoint), §9.1
// (reintegration of a repaired process), §9.2 (establishing synchronization),
// and §9.3 (staggered broadcasts for collision-prone datagram networks).
//
// The algorithm runs in rounds of local-time length P. When process p's i-th
// logical clock reaches Tⁱ = T⁰ + iP, p broadcasts a Tⁱ message and records
// in ARR the local arrival times of everyone's Tⁱ messages. After waiting
// (1+ρ)(β+δ+ε) on its logical clock — just long enough to hear every
// nonfaulty process — it computes
//
//	AV  = mid(reduce_f(ARR))      (the fault-tolerant average)
//	ADJ = Tⁱ + δ − AV
//	CORR += ADJ
//
// switching to its (i+1)-st logical clock, and sets a timer for Tⁱ⁺¹.
package core

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Annotation tags (shared vocabulary in package metrics): TagRoundBegin
// fires when the logical clock reaches Tⁱ, TagAdjust at each clock update,
// TagRoundComplete after the update ending a round, TagRejoined when a
// reintegrating process has set its clock, TagStartupRound when a start-up
// process begins a round.

// TMsg is the round message of §4.2: the broadcast of the value Tⁱ at the
// moment the sender's logical clock reaches it.
type TMsg struct {
	Mark clock.Local // the round mark Tⁱ the sender is broadcasting
}

// Averager selects the ordinary averaging function applied after reduce_f.
type Averager uint8

// Averaging choices. The paper's algorithm uses the midpoint; §7 notes that
// with f fixed and n growing, the mean converges at rate f/(n−2f) and
// approaches an error of about 2ε.
const (
	Midpoint Averager = iota + 1
	Mean
)

// String implements fmt.Stringer.
func (a Averager) String() string {
	switch a {
	case Midpoint:
		return "midpoint"
	case Mean:
		return "mean"
	default:
		return fmt.Sprintf("Averager(%d)", uint8(a))
	}
}

func (a Averager) apply(m multiset.Multiset, f int) (float64, error) {
	switch a {
	case Mean:
		return multiset.FaultTolerantMean(m, f)
	default:
		return multiset.FaultTolerantMidpoint(m, f)
	}
}

// Config parameterizes the maintenance algorithm. The zero value is not
// usable; fill Params (validated via analysis.Params.Validate) and leave the
// variant knobs zero for the plain §4.2 algorithm.
type Config struct {
	analysis.Params

	// Averager defaults to Midpoint.
	Averager Averager
	// K is the number of clock-value exchanges per round (§7); 0 or 1 is
	// the plain algorithm.
	K int
	// SubPeriod spaces the K exchanges within a round in local time. Zero
	// derives a feasible spacing from the parameters. Ignored for K ≤ 1.
	SubPeriod float64
	// Stagger is the §9.3 spacing σ: process p broadcasts at Tⁱ + p·σ so
	// that datagrams do not collide. Zero disables staggering.
	Stagger float64
}

func (c Config) withDefaults() Config {
	if c.Averager == 0 {
		c.Averager = Midpoint
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.K > 1 && c.SubPeriod == 0 {
		c.SubPeriod = c.PMin() * 1.05
	}
	return c
}

// Validate checks the parameters and the variant knobs.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if err := cc.Params.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if cc.K > 1 && float64(cc.K)*cc.SubPeriod > cc.P {
		return fmt.Errorf("core: K=%d exchanges of sub-period %v do not fit in round length %v", cc.K, cc.SubPeriod, cc.P)
	}
	if cc.Stagger < 0 {
		return fmt.Errorf("core: negative stagger %v", cc.Stagger)
	}
	if cc.Stagger > 0 && float64(cc.N)*cc.Stagger > cc.P/4 {
		return fmt.Errorf("core: stagger %v too large for n=%d and P=%v", cc.Stagger, cc.N, cc.P)
	}
	return nil
}

// phase is the FLAG variable of §4.2, alternating between broadcasting the
// clock value and updating the clock.
type phase uint8

const (
	phaseBroadcast phase = iota + 1 // FLAG = BCAST
	phaseUpdate                     // FLAG = UPDATE
)

// Proc is the nonfaulty process automaton of §4.2. One Proc per process;
// construct with NewProc.
type Proc struct {
	cfg     Config
	corr    clock.Local
	arr     []float64 // ARR[1..n]: local arrival times of most recent messages
	scratch []float64 // reusable quickselect buffer for the midpoint update
	flag    phase
	t       clock.Local // T: the current (sub-)exchange mark
	base    clock.Local // Tⁱ: beginning of the current round
	exch    int         // sub-exchange index within the round, 0-based
	rnd     int         // round index i

	// adjustments accumulates |ADJ| values for tests; the authoritative
	// record for experiments is the TagAdjust annotation stream.
	lastAdj float64
}

var (
	_ sim.Process    = (*Proc)(nil)
	_ sim.CorrHolder = (*Proc)(nil)
)

// NewProc builds a process with the given initial correction (the paper's
// "initially whatever value is needed to attain required degree of
// synchronization": the experiment setup chooses initial corrections so that
// assumption A4 holds, or violates it on purpose).
func NewProc(cfg Config, initialCorr clock.Local) *Proc {
	cfg = cfg.withDefaults()
	arr := make([]float64, cfg.N)
	for i := range arr {
		arr[i] = math.Inf(-1) // never-heard sentinel; reduce_f discards them
	}
	return &Proc{
		cfg:     cfg,
		corr:    initialCorr,
		arr:     arr,
		scratch: make([]float64, cfg.N),
		flag:    phaseBroadcast,
		t:       clock.Local(cfg.T0),
		base:    clock.Local(cfg.T0),
	}
}

// Corr implements sim.CorrHolder: the local time is Ph_p + CORR.
func (p *Proc) Corr() clock.Local { return p.corr }

// Round returns the current round index.
func (p *Proc) Round() int { return p.rnd }

// LastAdj returns the adjustment applied at the most recent update.
func (p *Proc) LastAdj() float64 { return p.lastAdj }

// local returns local-time() = physical clock + CORR.
func (p *Proc) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + p.corr }

// setTimer arranges a TIMER when the current logical clock reaches T (§4.2's
// set-timer: physical clock reaches T − CORR).
func (p *Proc) setTimer(ctx *sim.Context, T clock.Local) {
	ctx.SetTimer(T-p.corr, nil)
}

// Receive implements the three code clusters of §4.2.
func (p *Proc) Receive(ctx *sim.Context, m sim.Message) {
	switch {
	case m.Kind == sim.KindOrdinary:
		// receive(m) from q: ARR[q] := local-time().
		// With §9.3 staggering, q broadcast at Tⁱ + q·σ, so subtract q·σ
		// to normalize the arrival to the unstaggered schedule.
		p.arr[m.From] = float64(p.local(ctx)) - p.cfg.Stagger*float64(m.From)

	case (m.Kind == sim.KindStart || isOwnTimer(m)) && p.flag == phaseBroadcast:
		if p.exch == 0 {
			ctx.Annotate(metrics.TagRoundBegin, float64(p.rnd))
		}
		ctx.Broadcast(TMsg{Mark: p.t})
		p.setTimer(ctx, p.updateMark())
		p.flag = phaseUpdate

	case isOwnTimer(m) && p.flag == phaseUpdate:
		p.update(ctx)
	}
}

// isOwnTimer reports whether m is a TIMER this automaton set: Proc's timers
// carry a nil payload, so timers left pending by a predecessor automaton
// (e.g. the §9.2 start-up phase before a switch) are ignored.
func isOwnTimer(m sim.Message) bool {
	return m.Kind == sim.KindTimer && m.Payload == nil
}

// updateMark returns Uⁱ = T + (1+ρ)(β+δ+ε), extended to cover the staggered
// broadcast tail n·σ when σ > 0.
func (p *Proc) updateMark() clock.Local {
	w := p.cfg.Window() + float64(p.cfg.N)*p.cfg.Stagger
	return p.t + clock.Local(w)
}

// broadcastMark returns the logical time at which this process broadcasts
// the current exchange: T + p·σ (§9.3), which is plain T when σ = 0.
func (p *Proc) broadcastMark(ctx *sim.Context) clock.Local {
	return p.t + clock.Local(p.cfg.Stagger*float64(ctx.ID()))
}

func (p *Proc) update(ctx *sim.Context) {
	var av float64
	var err error
	if p.cfg.Averager == Midpoint {
		// Hot path: mid(reduce_f) needs only the (f+1)-th smallest and
		// largest arrivals, so quickselect on a reused scratch copy of ARR
		// replaces the per-round sort + allocation of multiset.New. The
		// result is bit-identical to the sorting path.
		copy(p.scratch, p.arr)
		av, err = multiset.MidpointSelect(p.scratch, p.cfg.F)
	} else {
		av, err = p.cfg.Averager.apply(multiset.New(p.arr...), p.cfg.F)
	}
	if err != nil {
		// Unreachable for validated configs: |ARR| = n ≥ 3f+1 > 2f.
		panic(fmt.Sprintf("core: averaging: %v", err))
	}
	adj := float64(p.t) + p.cfg.Delta - av
	if math.IsInf(adj, 0) || math.IsNaN(adj) {
		// Out-of-spec safeguard: with more than f senders missing, the
		// never-heard sentinels survive reduce_f and the average is
		// meaningless. The paper assumes ≤ f faults (A2), so this cannot
		// happen in spec; outside spec we skip the adjustment rather than
		// poison the clock, letting experiments measure the degradation.
		adj = 0
	}
	p.corr += clock.Local(adj)
	p.lastAdj = adj
	ctx.Annotate(metrics.TagAdjust, adj)

	if p.exch < p.cfg.K-1 {
		p.exch++
		p.t = p.base + clock.Local(float64(p.exch)*p.cfg.SubPeriod)
	} else {
		ctx.Annotate(metrics.TagRoundComplete, float64(p.rnd))
		p.exch = 0
		p.rnd++
		p.base += clock.Local(p.cfg.P)
		p.t = p.base
	}
	p.setTimer(ctx, p.broadcastMark(ctx))
	p.flag = phaseBroadcast
}

// StartTimes returns the real times at which each process's START message
// should be delivered so that assumption A4 holds: process p wakes when its
// initial logical clock reaches T⁰. initialCorrs are the initial CORR values
// and clocks the physical clocks.
func StartTimes(cfg Config, clocks []clock.Clock, initialCorrs []clock.Local) []clock.Real {
	starts := make([]clock.Real, len(clocks))
	for i, c := range clocks {
		starts[i] = c.Inv(clock.Local(cfg.T0) - initialCorrs[i])
	}
	return starts
}

// InitialCorrsWithinBeta returns initial corrections that realize assumption
// A4 with the inverse initial logical clocks spread evenly across [0, width]
// real time. Width must be ≤ β for A4 to hold; experiments pass larger
// widths to study recovery from out-of-spec initial states.
func InitialCorrsWithinBeta(cfg Config, clocks []clock.Clock, width float64) []clock.Local {
	corrs := make([]clock.Local, len(clocks))
	n := len(clocks)
	for i, c := range clocks {
		// Want c_p⁰(T⁰) = spread_i, i.e. Ph_p(spread_i) + CORR = T⁰.
		var spread clock.Real
		if n > 1 {
			spread = clock.Real(width) * clock.Real(i) / clock.Real(n-1)
		}
		corrs[i] = clock.Local(cfg.T0) - c.At(spread)
	}
	return corrs
}
