package core

import (
	"math"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// StartupProc implements §9.2: establishing synchronization among clocks
// that begin with arbitrary values, in the face of drift, delivery
// uncertainty and Byzantine faults.
//
// Rounds cannot be triggered by local times (they are arbitrarily far
// apart); instead each round has an extra READY phase. At begin-round, p
// broadcasts its local time and waits (1+ρ)(2δ+4ε), long enough to hear
// every nonfaulty clock value, estimating DIFF[q] = T_q + δ − local on each
// arrival. At the end of that interval it computes — but does not apply —
// the adjustment A = mid(reduce_f(DIFF)). It then waits a second, short
// interval before broadcasting READY, so that new-round messages cannot
// arrive before other nonfaulty processes finish their first interval; if it
// receives f+1 READY messages during the second interval it broadcasts READY
// early (the two-criteria idea from [DLS]). On receiving n−f READY messages
// it applies A and begins the next round.
//
// Lemma 20: the closeness Bⁱ at round i obeys Bⁱ⁺¹ ≤ Bⁱ/2 + 2ε + 2ρ(11δ+39ε),
// converging to about 4ε.
//
// Timer staleness: the paper filters stale TIMER interrupts with the
// condition local-time() = U (an adjustment shifts local time, breaking the
// equality). We implement the same filter structurally, by stamping each
// timer with its round number.
type StartupProc struct {
	cfg Config

	corr     clock.Local
	diff     []float64 // DIFF[q]: estimated difference to q's clock
	a        float64   // A: adjustment computed this round
	asleep   bool      // ASLEEP
	earlyEnd bool      // EARLY-END
	ready    []bool    // RCVD-READY (keyed by process id)
	nReady   int
	t        clock.Local // T: local time at beginning of current round
	v        clock.Local // V: local time to broadcast READY
	vPending bool        // V timer set and not yet reached/cancelled
	round    int
}

// ClockMsg is the §9.2 round message: the sender's local time at the
// beginning of its round.
type ClockMsg struct {
	T clock.Local
}

// ReadyMsg signals readiness to begin the next round.
type ReadyMsg struct{}

// startupTimer stamps TIMER messages with the round and phase they belong
// to, so stale timers from earlier rounds are ignored.
type startupTimer struct {
	round int
	phase startupPhase
}

type startupPhase uint8

const (
	startupPhaseU startupPhase = iota + 1 // end of first waiting interval
	startupPhaseV                         // READY broadcast time
)

var (
	_ sim.Process    = (*StartupProc)(nil)
	_ sim.CorrHolder = (*StartupProc)(nil)
)

// NewStartupProc builds a start-up process. initialCorr is arbitrary —
// clocks are not synchronized; experiments draw it at random over seconds.
func NewStartupProc(cfg Config, initialCorr clock.Local) *StartupProc {
	cfg = cfg.withDefaults()
	diff := make([]float64, cfg.N)
	for i := range diff {
		diff[i] = math.Inf(-1)
	}
	return &StartupProc{
		cfg:    cfg,
		corr:   initialCorr,
		diff:   diff,
		asleep: true,
		ready:  make([]bool, cfg.N),
	}
}

// Corr implements sim.CorrHolder.
func (p *StartupProc) Corr() clock.Local { return p.corr }

// Round returns the number of begin-rounds executed so far.
func (p *StartupProc) Round() int { return p.round }

func (p *StartupProc) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + p.corr }

// beginRound is the begin-round macro of §9.2.
func (p *StartupProc) beginRound(ctx *sim.Context) {
	ctx.Annotate(metrics.TagStartupRound, float64(p.round))
	p.t = p.local(ctx)
	ctx.Broadcast(ClockMsg{T: p.t})
	u := p.t + clock.Local(p.cfg.StartupWait1())
	ctx.SetTimer(u-p.corr, startupTimer{round: p.round, phase: startupPhaseU})
	p.earlyEnd = false
	p.vPending = false
	for i := range p.ready {
		p.ready[i] = false
	}
	p.nReady = 0
}

// Receive implements the five code clusters of §9.2.
func (p *StartupProc) Receive(ctx *sim.Context, m sim.Message) {
	switch {
	case m.Kind == sim.KindStart:
		if p.asleep {
			p.asleep = false
			p.beginRound(ctx)
		}

	case m.Kind == sim.KindOrdinary:
		switch pl := m.Payload.(type) {
		case ClockMsg:
			p.diff[m.From] = float64(pl.T) + p.cfg.Delta - float64(p.local(ctx))
			if p.asleep {
				p.asleep = false
				p.beginRound(ctx)
			}
		case ReadyMsg:
			p.onReady(ctx, m.From)
		}

	case m.Kind == sim.KindTimer:
		st, ok := m.Payload.(startupTimer)
		if !ok || st.round != p.round {
			return // stale timer from an earlier round
		}
		switch st.phase {
		case startupPhaseU:
			p.onFirstIntervalEnd(ctx)
		case startupPhaseV:
			if !p.earlyEnd {
				ctx.Broadcast(ReadyMsg{})
			}
			p.vPending = false
		}
	}
}

func (p *StartupProc) onFirstIntervalEnd(ctx *sim.Context) {
	av, err := p.cfg.Averager.apply(multiset.New(p.diff...), p.cfg.F)
	if err != nil {
		panic("core: startup averaging: " + err.Error())
	}
	if math.IsInf(av, 0) || math.IsNaN(av) {
		av = 0 // out-of-spec safeguard, as in Proc.update
	}
	p.a = av
	p.v = p.local(ctx) + clock.Local(p.cfg.StartupWait2())
	p.vPending = true
	ctx.SetTimer(p.v-p.corr, startupTimer{round: p.round, phase: startupPhaseV})
}

func (p *StartupProc) onReady(ctx *sim.Context, q sim.ProcID) {
	if !p.ready[q] {
		p.ready[q] = true
		p.nReady++
	}
	if p.nReady == p.cfg.F+1 && p.vPending && p.local(ctx) < p.v {
		ctx.Broadcast(ReadyMsg{})
		p.earlyEnd = true
	}
	if p.nReady == p.cfg.N-p.cfg.F {
		// DIFF := DIFF − A; CORR := CORR + A; begin-round.
		for i := range p.diff {
			p.diff[i] -= p.a
		}
		p.corr += clock.Local(p.a)
		ctx.Annotate(metrics.TagAdjust, p.a)
		p.round++
		p.beginRound(ctx)
	}
}
