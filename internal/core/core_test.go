package core_test

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/sim"
)

func defaultCfg(n, f int) core.Config {
	return core.Config{Params: analysis.Default(n, f)}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*core.Config)
		wantErr bool
	}{
		{"default ok", func(*core.Config) {}, false},
		{"bad params", func(c *core.Config) { c.N = 3 }, true},
		{"k too dense", func(c *core.Config) { c.K = 100; c.SubPeriod = 0.02 }, true},
		{"k fits", func(c *core.Config) { c.K = 2; c.SubPeriod = 0.2 }, false},
		{"negative stagger", func(c *core.Config) { c.Stagger = -1 }, true},
		{"huge stagger", func(c *core.Config) { c.Stagger = 1 }, true},
		{"small stagger ok", func(c *core.Config) { c.Stagger = 1e-3 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := defaultCfg(7, 2)
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAveragerString(t *testing.T) {
	if core.Midpoint.String() != "midpoint" || core.Mean.String() != "mean" {
		t.Error("Averager.String mismatch")
	}
	if core.Averager(9).String() != "Averager(9)" {
		t.Error("unknown Averager rendering")
	}
}

// TestFaultFreeAgreement runs the plain algorithm with no faults and checks
// the γ-agreement bound of Theorem 16 end to end.
func TestFaultFreeAgreement(t *testing.T) {
	cfg := defaultCfg(7, 2)
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	gamma := cfg.Gamma()
	if got := res.Skew.Max(); got > gamma {
		t.Errorf("max skew %v exceeds γ = %v", got, gamma)
	}
	if res.Rounds.Rounds() < 15 {
		t.Errorf("only %d complete rounds recorded", res.Rounds.Rounds())
	}
}

// TestHalvingConvergence checks the heart of the algorithm: with a large
// initial spread, the per-round closeness βᵢ roughly halves each round until
// it reaches the 4ε+4ρP floor.
func TestHalvingConvergence(t *testing.T) {
	cfg := defaultCfg(7, 2)
	// Start 40ms apart — way beyond β — and watch the algorithm pull the
	// clocks together. (A4 is violated on purpose; the window still covers
	// all arrivals because 40ms < δ, so the analysis degrades gracefully.)
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 12, InitialSpread: 8e-3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	betas := res.Rounds.BetaSeries()
	if len(betas) < 10 {
		t.Fatalf("too few rounds: %d", len(betas))
	}
	if betas[0] < 6e-3 {
		t.Fatalf("setup broken: initial spread %v too small", betas[0])
	}
	floor := cfg.BetaFloor()
	// Each round must contract toward the floor: βᵢ₊₁ ≤ βᵢ/2 + 2ε + 2ρP
	// with slack for drift within the round.
	for i := 1; i < len(betas); i++ {
		bound := betas[i-1]/2 + 2*cfg.Eps + 2*cfg.Rho*cfg.P + 1e-4
		if betas[i] > bound {
			t.Errorf("round %d: β = %v exceeds halving bound %v", i, betas[i], bound)
		}
	}
	// Steady state must be at or below the paper's floor.
	last := betas[len(betas)-1]
	if last > floor {
		t.Errorf("steady-state β = %v above floor 4ε+4ρP = %v", last, floor)
	}
}

// TestAdjustmentBound checks Theorem 4(a): |ADJ| ≤ (1+ρ)(β+ε)+ρδ once the
// clocks satisfy A4.
func TestAdjustmentBound(t *testing.T) {
	cfg := defaultCfg(7, 2)
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Rounds.MaxAbsAdj(0), cfg.AdjBound(); got > want {
		t.Errorf("max |ADJ| = %v exceeds Theorem 4(a) bound %v", got, want)
	}
}

// TestValidityEnvelope checks Theorem 19 over a long run.
func TestValidityEnvelope(t *testing.T) {
	cfg := defaultCfg(7, 2)
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Validity.WorstViolation(); v > 0 {
		t.Errorf("validity envelope violated by %v", v)
	}
	if res.Validity.Samples() == 0 {
		t.Error("validity recorder saw no samples")
	}
}

// TestByzantineTolerance runs n = 3f+1 with f two-faced processes and checks
// agreement still holds.
func TestByzantineTolerance(t *testing.T) {
	cfg := defaultCfg(7, 2)
	w := exp.Workload{
		Cfg:    cfg,
		Rounds: 15,
		Faults: map[sim.ProcID]func() sim.Process{
			5: func() sim.Process { return &faults.TwoFaced{Cfg: cfg, Lead: 2e-3, Lag: 2e-3} },
			6: func() sim.Process { return &faults.TwoFaced{Cfg: cfg, Lead: 3e-3, Lag: 1e-3} },
		},
	}
	res, err := exp.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("max skew %v under 2 two-faced faults exceeds γ = %v", got, cfg.Gamma())
	}
}

// TestCrashFaults runs with f silent processes (the classic benign worst
// case for averaging: n−f fresh values, f stale sentinels).
func TestCrashFaults(t *testing.T) {
	cfg := defaultCfg(7, 2)
	w := exp.Workload{
		Cfg:    cfg,
		Rounds: 15,
		Faults: map[sim.ProcID]func() sim.Process{
			0: func() sim.Process { return faults.Silent{} },
			3: func() sim.Process { return faults.Silent{} },
		},
	}
	res, err := exp.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("max skew %v with 2 silent faults exceeds γ = %v", got, cfg.Gamma())
	}
}

// TestTooManyFaultsBreaks demonstrates the n ≥ 3f+1 boundary (assumption A2,
// [DHS] impossibility): with f+1 adversarial processes in a system sized for
// f, synchronization quality degrades beyond γ.
func TestTooManyFaultsBreaks(t *testing.T) {
	cfg := defaultCfg(7, 2)
	mkFault := func(lead, lag float64, early func(sim.ProcID) bool) func() sim.Process {
		return func() sim.Process {
			return &faults.TwoFaced{Cfg: cfg, Lead: lead, Lag: lag, EarlyTo: early}
		}
	}
	lowHalf := func(to sim.ProcID) bool { return int(to) < 2 }
	w := exp.Workload{
		Cfg:    cfg,
		Rounds: 25,
		Delay:  sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Faults: map[sim.ProcID]func() sim.Process{
			4: mkFault(9e-3, 9e-3, lowHalf),
			5: mkFault(9e-3, 9e-3, lowHalf),
			6: mkFault(9e-3, 9e-3, lowHalf),
		},
	}
	res, err := exp.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skew.Max(); got <= cfg.Gamma() {
		t.Logf("note: 3 faults in an f=2 system stayed within γ (%v ≤ %v) — adversary too weak", got, cfg.Gamma())
	}
	// The meaningful assertion: with f=2 the same adversary mix is tolerated.
	w.Faults = map[sim.ProcID]func() sim.Process{
		5: mkFault(9e-3, 9e-3, lowHalf),
		6: mkFault(9e-3, 9e-3, lowHalf),
	}
	res2, err := exp.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Skew.Max(); got > cfg.Gamma() {
		t.Errorf("f=2 faults exceeded γ: %v > %v", got, cfg.Gamma())
	}
	if res.Skew.Max() <= res2.Skew.Max() {
		t.Errorf("f+1 faults (%v) should hurt more than f faults (%v)", res.Skew.Max(), res2.Skew.Max())
	}
}

// TestMeanAveragerConverges checks the §7 mean variant also synchronizes.
func TestMeanAveragerConverges(t *testing.T) {
	cfg := defaultCfg(10, 1)
	cfg.Averager = core.Mean
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 12, Faults: map[sim.ProcID]func() sim.Process{
		9: func() sim.Process { return faults.Silent{} },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skew.MaxAfterWarmup(); got > cfg.Gamma() {
		t.Errorf("mean-averager steady skew %v exceeds γ = %v", got, cfg.Gamma())
	}
}

// TestKExchangeTightensSkew checks the §7 k-exchange variant: with the k
// exchanges spread across the round, clocks are corrected k times as often,
// so the drift-driven skew between corrections shrinks accordingly. (The
// paper's βₖ floor 4ε+2ρP·2ᵏ/(2ᵏ−1) is a worst-case recursion bound; in a
// benign symmetric network the visible benefit is the tighter intra-round
// skew, which is what we assert.)
func TestKExchangeTightensSkew(t *testing.T) {
	// High-drift regime so the drift term dominates ε noise.
	cfg := defaultCfg(7, 2)
	cfg.Rho = 2e-4
	cfg.Eps = 0.2e-3
	cfg.Delta = 10e-3
	cfg.Beta = 6e-3
	cfg.P = 5.0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	steadySkew := func(k int) float64 {
		c := cfg
		c.K = k
		c.SubPeriod = c.P / float64(k) // spread exchanges across the round
		res, err := exp.Run(exp.Workload{Cfg: c, Rounds: 12, Drift: clock.ConstantDrift{RhoBound: c.Rho}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds.Rounds() < 8 {
			t.Fatalf("k=%d: only %d rounds", k, res.Rounds.Rounds())
		}
		return res.Skew.MaxAfterWarmup()
	}
	s1, s3 := steadySkew(1), steadySkew(3)
	if s3 >= 0.7*s1 {
		t.Errorf("k=3 steady skew (%v) not clearly smaller than k=1 (%v)", s3, s1)
	}
	// And k=1's per-round β must respect its paper floor.
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 12, Drift: clock.ConstantDrift{RhoBound: cfg.Rho}})
	if err != nil {
		t.Fatal(err)
	}
	betas := res.Rounds.BetaSeries()
	if last := betas[len(betas)-1]; last > cfg.BetaFloorK(1) {
		t.Errorf("k=1 steady β = %v above floor %v", last, cfg.BetaFloorK(1))
	}
}

// TestStaggeredBroadcastStillSynchronizes checks the §9.3 variant on a
// reliable network: staggering must not hurt correctness.
func TestStaggeredBroadcastStillSynchronizes(t *testing.T) {
	cfg := defaultCfg(7, 2)
	cfg.Stagger = 2e-3
	res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Stagger adds up to n·σ to the effective window; agreement loosens by
	// a term of order ρ·nσ only. Use γ plus that slack.
	slack := cfg.Gamma() + float64(cfg.N)*cfg.Stagger*2*cfg.Rho + 1e-4
	if got := res.Skew.MaxAfterWarmup(); got > slack {
		t.Errorf("staggered steady skew %v exceeds %v", got, slack)
	}
}

// TestRejoinerReintegrates crashes one process and wakes a Rejoiner in its
// place mid-execution; after rejoining, its clock must be within β of the
// others at round marks and it must participate again.
func TestRejoinerReintegrates(t *testing.T) {
	cfg := defaultCfg(7, 2)
	var rj *core.Rejoiner
	w := exp.Workload{
		Cfg:    cfg,
		Rounds: 20,
		Faults: map[sim.ProcID]func() sim.Process{
			6: func() sim.Process {
				rj = core.NewRejoiner(cfg, 123.456) // wildly wrong initial clock
				return rj
			},
		},
		// Wake the rejoiner mid-execution, in the middle of round ~5.
		StartOverride: map[sim.ProcID]clock.Real{6: 5.4},
	}
	res, err := exp.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if !rj.Joined() {
		t.Fatal("rejoiner never joined")
	}
	// After joining, its local time must agree with the nonfaulty group.
	end := res.Horizon
	lt, ok := res.Engine.LocalTime(6, end)
	if !ok {
		t.Fatal("no local time for rejoiner")
	}
	for _, p := range res.Engine.NonfaultyIDs() {
		o, ok := res.Engine.LocalTime(p, end)
		if !ok {
			continue
		}
		if d := math.Abs(float64(lt - o)); d > cfg.Gamma() {
			t.Errorf("rejoiner %v from process %d at end (> γ = %v)", d, p, cfg.Gamma())
		}
	}
}

// TestStartupEstablishesSynchronization checks §9.2: from arbitrary initial
// clocks (spread over seconds), the start-up algorithm brings nonfaulty
// clocks to within ≈4ε.
func TestStartupEstablishesSynchronization(t *testing.T) {
	cfg := defaultCfg(7, 2)
	n := cfg.N
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, 5.0, 42) // clocks up to 5 seconds apart
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		procs[i] = core.NewStartupProc(cfg, corrs[i])
		starts[i] = clock.Real(i) * 0.01 // wake within 60ms of each other
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(20); err != nil {
		t.Fatal(err)
	}
	// All processes must have progressed through many rounds.
	for i := 0; i < n; i++ {
		sp := eng.Process(sim.ProcID(i)).(*core.StartupProc)
		if sp.Round() < 10 {
			t.Errorf("process %d only reached startup round %d", i, sp.Round())
		}
	}
	// Final closeness ≈ 4ε (allow 2x: the Lemma 20 floor plus jitter).
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		lt, ok := eng.LocalTime(sim.ProcID(i), eng.Now())
		if !ok {
			t.Fatal("no local time")
		}
		lo = math.Min(lo, float64(lt))
		hi = math.Max(hi, float64(lt))
	}
	floor := cfg.StartupFloor()
	if hi-lo > 2*floor {
		t.Errorf("startup closeness %v, want ≤ 2×floor = %v", hi-lo, 2*floor)
	}
}

// TestStartTimesRealizeA4 checks the A4 helper: with the returned initial
// corrections and start times, every process's initial logical clock reads
// T⁰ at its START delivery, and the starts span the requested width.
func TestStartTimesRealizeA4(t *testing.T) {
	cfg := defaultCfg(4, 1)
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, 4)
	for i := range clocks {
		clocks[i] = drift.Build(i, 4)
	}
	corrs := core.InitialCorrsWithinBeta(cfg, clocks, 4e-3)
	starts := core.StartTimes(cfg, clocks, corrs)
	for i := range clocks {
		at := clocks[i].At(starts[i]) + corrs[i]
		if math.Abs(float64(at)-cfg.T0) > 1e-9 {
			t.Errorf("process %d initial logical clock reads %v at START, want T0=%v", i, at, cfg.T0)
		}
	}
	span := float64(starts[3] - starts[0])
	if math.Abs(span-4e-3) > 1e-6 {
		t.Errorf("start span = %v, want 4ms", span)
	}
}
