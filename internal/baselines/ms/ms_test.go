package ms

import (
	"testing"

	"repro/internal/analysis"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Params: analysis.Default(7, 2)}
	got := cfg.withDefaults()
	want := 2*(cfg.Beta+cfg.Eps) + cfg.Rho*cfg.P
	if got.Tolerance != want {
		t.Errorf("defaulted τ = %v, want %v", got.Tolerance, want)
	}
	cfg.Tolerance = 1
	if cfg.withDefaults().Tolerance != 1 {
		t.Error("explicit τ overridden")
	}
}

func TestNewInitialState(t *testing.T) {
	p := New(Config{Params: analysis.Default(4, 1)}, -3)
	if p.Corr() != -3 || p.Round() != 0 {
		t.Errorf("initial state wrong: corr=%v round=%d", p.Corr(), p.Round())
	}
}
