// Package ms implements the fault-tolerant averaging of Mahaney and
// Schneider's inexact agreement [MS] as a clock synchronization round
// discipline (§10 of the paper).
//
// At each round clock values are exchanged exactly as in [LM]; then every
// value that is not within tolerance τ of at least n−f of the received
// values is discarded as "clearly faulty", and the remaining values are
// averaged with the arithmetic mean. §10 highlights its pleasing, novel
// property: it degrades gracefully if more than one-third of the processes
// fail — which experiment E12 reproduces against the paper's algorithm.
package ms

import (
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes the MS discipline.
type Config struct {
	analysis.Params
	// Tolerance is τ: a value survives only if within τ of ≥ n−f received
	// values (itself included). Zero defaults to 2(β+ε)+ρP.
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.Tolerance == 0 {
		c.Tolerance = 2*(c.Beta+c.Eps) + c.Rho*c.P
	}
	return c
}

// ClockMsg carries the sender's round mark.
type ClockMsg struct {
	Mark clock.Local
}

// Proc is one MS process.
type Proc struct {
	cfg  Config
	corr clock.Local
	diff []float64
	have []bool
	t    clock.Local
	rnd  int
	flag phase
}

type phase uint8

const (
	phaseBroadcast phase = iota + 1
	phaseUpdate
)

var (
	_ sim.Process    = (*Proc)(nil)
	_ sim.CorrHolder = (*Proc)(nil)
)

// New builds an MS process.
func New(cfg Config, initialCorr clock.Local) *Proc {
	cfg = cfg.withDefaults()
	return &Proc{
		cfg:  cfg,
		corr: initialCorr,
		diff: make([]float64, cfg.N),
		have: make([]bool, cfg.N),
		t:    clock.Local(cfg.T0),
		flag: phaseBroadcast,
	}
}

// Corr implements sim.CorrHolder.
func (p *Proc) Corr() clock.Local { return p.corr }

// Round returns the current round index.
func (p *Proc) Round() int { return p.rnd }

func (p *Proc) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + p.corr }

// Receive implements sim.Process.
func (p *Proc) Receive(ctx *sim.Context, m sim.Message) {
	switch {
	case m.Kind == sim.KindOrdinary:
		if cm, ok := m.Payload.(ClockMsg); ok {
			p.diff[m.From] = float64(cm.Mark) + p.cfg.Delta - float64(p.local(ctx))
			p.have[m.From] = true
		}

	case (m.Kind == sim.KindStart || m.Kind == sim.KindTimer) && p.flag == phaseBroadcast:
		ctx.Annotate(metrics.TagRoundBegin, float64(p.rnd))
		ctx.Broadcast(ClockMsg{Mark: p.t})
		ctx.SetTimer(p.t+clock.Local(p.cfg.Window())-p.corr, nil)
		p.flag = phaseUpdate

	case m.Kind == sim.KindTimer && p.flag == phaseUpdate:
		p.update(ctx)
	}
}

// update discards values lacking n−f τ-support and averages the rest.
func (p *Proc) update(ctx *sim.Context) {
	received := make([]float64, 0, p.cfg.N)
	for q := 0; q < p.cfg.N; q++ {
		if p.have[q] {
			received = append(received, p.diff[q])
		}
	}
	need := p.cfg.N - p.cfg.F
	sum, kept := 0.0, 0
	for _, v := range received {
		support := 0
		for _, w := range received {
			if v-w <= p.cfg.Tolerance && w-v <= p.cfg.Tolerance {
				support++
			}
		}
		if support >= need {
			sum += v
			kept++
		}
	}
	adj := 0.0
	if kept > 0 {
		adj = sum / float64(kept)
	}
	p.corr += clock.Local(adj)
	ctx.Annotate(metrics.TagAdjust, adj)
	ctx.Annotate(metrics.TagRoundComplete, float64(p.rnd))

	p.rnd++
	p.t += clock.Local(p.cfg.P)
	for i := range p.have {
		p.have[i] = false
	}
	ctx.SetTimer(p.t-p.corr, nil)
	p.flag = phaseBroadcast
}
