package baselines_test

import (
	"testing"

	"repro/internal/baselines/hssd"
	"repro/internal/baselines/st"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/sim"
)

// stRoundSpammer is a Byzantine ST participant that floods announcements for
// far-future rounds, trying to drag nonfaulty clocks forward. The f+1 relay
// threshold and n−f acceptance threshold must neutralize it when there are
// at most f spammers.
type stRoundSpammer struct {
	ahead int
}

func (s *stRoundSpammer) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	for k := 1; k <= s.ahead; k++ {
		ctx.Broadcast(st.RoundMsg{K: k * 3})
	}
	ctx.SetTimer(ctx.PhysNow()+0.2, nil)
}

func TestSTResistsFutureRoundSpam(t *testing.T) {
	p := params()
	cfg := st.Config{Params: p}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return st.New(cfg, corr) }
	mix := map[sim.ProcID]func() sim.Process{
		5: func() sim.Process { return &stRoundSpammer{ahead: 5} },
		6: func() sim.Process { return &stRoundSpammer{ahead: 5} },
	}
	res, err := exp.Run(exp.Workload{
		Cfg:      core.Config{Params: p},
		MakeProc: mk,
		Faults:   mix,
		Rounds:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two spammers < f+1 = 3: no nonfaulty process may relay or accept the
	// bogus rounds; the clocks must stay on schedule and synchronized.
	bound := 2 * (cfg.Delta + cfg.Eps)
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("ST skew %v exceeds %v under future-round spam", got, bound)
	}
	for _, id := range res.Engine.NonfaultyIDs() {
		proc := res.Engine.Process(id).(*st.Proc)
		if proc.Round() > 20 {
			t.Errorf("process %d jumped to round %d — accepted spammed rounds", id, proc.Round())
		}
	}
}

// hssdForger broadcasts signed messages with forged (duplicate-signer)
// chains and absurdly early timing; validChain plus the earliness window
// must reject them.
type hssdForger struct{}

func (hssdForger) Receive(ctx *sim.Context, m sim.Message) {
	if m.Kind != sim.KindStart && m.Kind != sim.KindTimer {
		return
	}
	// Duplicate-signer chain (invalid signature), plausible round.
	ctx.Broadcast(hssd.SignedMsg{K: 1, Chain: []sim.ProcID{ctx.ID(), ctx.ID()}})
	// Valid-looking single-signer chain but for a round far in the future:
	// arrives hours early on every clock, outside the acceptance window.
	ctx.Broadcast(hssd.SignedMsg{K: 3000, Chain: []sim.ProcID{ctx.ID()}})
	ctx.SetTimer(ctx.PhysNow()+0.3, nil)
}

func TestHSSDRejectsForgedAndEarlyChains(t *testing.T) {
	p := params()
	cfg := hssd.Config{Params: p}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return hssd.New(cfg, corr) }
	mix := map[sim.ProcID]func() sim.Process{
		5: func() sim.Process { return hssdForger{} },
		6: func() sim.Process { return hssdForger{} },
	}
	res, err := exp.Run(exp.Workload{
		Cfg:      core.Config{Params: p},
		MakeProc: mk,
		Faults:   mix,
		Rounds:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * (cfg.Delta + cfg.Eps)
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("HSSD skew %v exceeds %v under forged chains", got, bound)
	}
	for _, id := range res.Engine.NonfaultyIDs() {
		proc := res.Engine.Process(id).(*hssd.Proc)
		if proc.Round() > 20 {
			t.Errorf("process %d jumped to round %d — accepted a forged/early chain", id, proc.Round())
		}
	}
}
