package lm

import (
	"testing"

	"repro/internal/analysis"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Params: analysis.Default(7, 2)}
	got := cfg.withDefaults()
	want := 3*(cfg.Beta+cfg.Eps) + cfg.Rho*cfg.P
	if got.Threshold != want {
		t.Errorf("defaulted Δ = %v, want %v", got.Threshold, want)
	}
	cfg.Threshold = 42
	if cfg.withDefaults().Threshold != 42 {
		t.Error("explicit Δ overridden")
	}
}

func TestNewInitialState(t *testing.T) {
	cfg := Config{Params: analysis.Default(4, 1)}
	p := New(cfg, 7)
	if p.Corr() != 7 {
		t.Errorf("Corr = %v, want 7", p.Corr())
	}
	if p.Round() != 0 {
		t.Errorf("Round = %d, want 0", p.Round())
	}
	if len(p.diff) != 4 || len(p.have) != 4 {
		t.Error("per-process state sized wrong")
	}
}
