// Package lm implements the interactive convergence algorithm (CNV) of
// Lamport and Melliar-Smith [LM], the algorithm the paper builds on (§1) and
// compares against (§10).
//
// Like the paper's algorithm it runs in rounds on a fully connected network:
// at each round every process obtains a value for each other process's clock
// and sets its clock to the *egocentric average* — the arithmetic mean over
// all n processes of the estimated clock differences, where any difference
// larger than a threshold Δ is replaced by 0 (i.e. by the process's own
// clock value). §10: the closeness of synchronization achieved is about
// 2nε', and the adjustment size about (2n+1)ε'.
package lm

import (
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes CNV.
type Config struct {
	analysis.Params
	// Threshold is Δ: estimated differences exceeding it are replaced by 0
	// (the process's own value). It must exceed the achievable skew or
	// nonfaulty values get discarded; [LM] relates it to the guaranteed
	// synchronization. Zero defaults to 3·(β+ε)+ρP.
	Threshold float64
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 3*(c.Beta+c.Eps) + c.Rho*c.P
	}
	return c
}

// ClockMsg carries the sender's round mark (its clock reading at the moment
// of broadcast, which is Tⁱ by construction).
type ClockMsg struct {
	Mark clock.Local
}

// Proc is one CNV process.
type Proc struct {
	cfg  Config
	corr clock.Local
	diff []float64 // estimated difference q's clock − own clock
	have []bool
	t    clock.Local
	rnd  int
	flag phase
}

type phase uint8

const (
	phaseBroadcast phase = iota + 1
	phaseUpdate
)

var (
	_ sim.Process    = (*Proc)(nil)
	_ sim.CorrHolder = (*Proc)(nil)
)

// New builds a CNV process with the given initial correction.
func New(cfg Config, initialCorr clock.Local) *Proc {
	cfg = cfg.withDefaults()
	return &Proc{
		cfg:  cfg,
		corr: initialCorr,
		diff: make([]float64, cfg.N),
		have: make([]bool, cfg.N),
		t:    clock.Local(cfg.T0),
		flag: phaseBroadcast,
	}
}

// Corr implements sim.CorrHolder.
func (p *Proc) Corr() clock.Local { return p.corr }

// Round returns the current round index.
func (p *Proc) Round() int { return p.rnd }

func (p *Proc) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + p.corr }

// Receive implements sim.Process.
func (p *Proc) Receive(ctx *sim.Context, m sim.Message) {
	switch {
	case m.Kind == sim.KindOrdinary:
		if cm, ok := m.Payload.(ClockMsg); ok {
			// Estimate of q's clock minus ours, assuming the message took
			// exactly δ: (mark + δ) − local.
			p.diff[m.From] = float64(cm.Mark) + p.cfg.Delta - float64(p.local(ctx))
			p.have[m.From] = true
		}

	case (m.Kind == sim.KindStart || m.Kind == sim.KindTimer) && p.flag == phaseBroadcast:
		ctx.Annotate(metrics.TagRoundBegin, float64(p.rnd))
		ctx.Broadcast(ClockMsg{Mark: p.t})
		ctx.SetTimer(p.t+clock.Local(p.cfg.Window())-p.corr, nil)
		p.flag = phaseUpdate

	case m.Kind == sim.KindTimer && p.flag == phaseUpdate:
		p.update(ctx)
	}
}

// update applies the egocentric average.
func (p *Proc) update(ctx *sim.Context) {
	sum := 0.0
	for q := 0; q < p.cfg.N; q++ {
		if !p.have[q] {
			continue // never heard: counts as own value (difference 0)
		}
		d := p.diff[q]
		if d > p.cfg.Threshold || d < -p.cfg.Threshold {
			continue // too different: replaced by own value (0)
		}
		sum += d
	}
	adj := sum / float64(p.cfg.N)
	p.corr += clock.Local(adj)
	ctx.Annotate(metrics.TagAdjust, adj)
	ctx.Annotate(metrics.TagRoundComplete, float64(p.rnd))

	p.rnd++
	p.t += clock.Local(p.cfg.P)
	for i := range p.have {
		p.have[i] = false
	}
	ctx.SetTimer(p.t-p.corr, nil)
	p.flag = phaseBroadcast
}
