// Package baselines_test exercises all five §10 comparison algorithms on the
// common substrate, checking that each synchronizes in the fault-free case
// and tolerates its advertised fault mix.
package baselines_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/baselines/hssd"
	"repro/internal/baselines/lm"
	"repro/internal/baselines/marzullo"
	"repro/internal/baselines/ms"
	"repro/internal/baselines/st"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faults"
	"repro/internal/sim"
)

func params() analysis.Params { return analysis.Default(7, 2) }

// run executes a workload with the given process factory and fault mix.
func run(t *testing.T, mk func(id sim.ProcID, corr clock.Local) sim.Process, mix map[sim.ProcID]func() sim.Process) *exp.Result {
	t.Helper()
	res, err := exp.Run(exp.Workload{
		Cfg:      core.Config{Params: params()},
		MakeProc: mk,
		Faults:   mix,
		Rounds:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func silent2() map[sim.ProcID]func() sim.Process {
	return map[sim.ProcID]func() sim.Process{
		5: func() sim.Process { return faults.Silent{} },
		6: func() sim.Process { return faults.Silent{} },
	}
}

func TestLMSynchronizes(t *testing.T) {
	cfg := lm.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return lm.New(cfg, corr) }
	res := run(t, mk, nil)
	// §10: closeness ≈ 2nε. Allow the full bound.
	bound := 2 * float64(cfg.N) * cfg.Eps
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("LM steady skew %v exceeds ≈2nε = %v", got, bound)
	}
	if p := res.Engine.Process(0).(*lm.Proc); p.Round() < 14 {
		t.Errorf("LM made only %d rounds", p.Round())
	}
}

func TestLMWithSilentFaults(t *testing.T) {
	cfg := lm.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return lm.New(cfg, corr) }
	res := run(t, mk, silent2())
	bound := 2 * float64(cfg.N) * cfg.Eps
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("LM steady skew %v exceeds %v with silent faults", got, bound)
	}
}

func TestMSSynchronizes(t *testing.T) {
	cfg := ms.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return ms.New(cfg, corr) }
	res := run(t, mk, silent2())
	bound := 2 * float64(cfg.N) * cfg.Eps
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("MS steady skew %v exceeds %v", got, bound)
	}
	if p := res.Engine.Process(0).(*ms.Proc); p.Round() < 14 {
		t.Errorf("MS made only %d rounds", p.Round())
	}
}

// TestMSGracefulDegradationBeyondThird is §10's "pleasing and novel" MS
// property: with n/3 < faulty ≤ n/2 silent processes, MS keeps the survivors
// loosely synchronized rather than collapsing.
func TestMSGracefulDegradationBeyondThird(t *testing.T) {
	cfg := ms.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return ms.New(cfg, corr) }
	mix := map[sim.ProcID]func() sim.Process{
		4: func() sim.Process { return faults.Silent{} },
		5: func() sim.Process { return faults.Silent{} },
		6: func() sim.Process { return faults.Silent{} }, // 3 > n/3 = 2.33
	}
	res := run(t, mk, mix)
	// Loose but bounded: an order of magnitude above the clean bound still
	// demonstrates the survivors didn't diverge.
	if got := res.Skew.MaxAfterWarmup(); got > 50e-3 {
		t.Errorf("MS survivors diverged: steady skew %v", got)
	}
}

func TestSTSynchronizes(t *testing.T) {
	cfg := st.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return st.New(cfg, corr) }
	res := run(t, mk, nil)
	// §10: agreement ≈ δ+ε; allow 2×.
	bound := 2 * (cfg.Delta + cfg.Eps)
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("ST steady skew %v exceeds 2(δ+ε) = %v", got, bound)
	}
	if p := res.Engine.Process(0).(*st.Proc); p.Round() < 13 {
		t.Errorf("ST made only %d rounds", p.Round())
	}
}

func TestSTWithSilentFaults(t *testing.T) {
	cfg := st.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return st.New(cfg, corr) }
	res := run(t, mk, silent2())
	bound := 2 * (cfg.Delta + cfg.Eps)
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("ST steady skew %v exceeds %v with silent faults", got, bound)
	}
}

func TestHSSDSynchronizes(t *testing.T) {
	cfg := hssd.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return hssd.New(cfg, corr) }
	res := run(t, mk, nil)
	bound := 2 * (cfg.Delta + cfg.Eps)
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("HSSD steady skew %v exceeds 2(δ+ε) = %v", got, bound)
	}
	if p := res.Engine.Process(0).(*hssd.Proc); p.Round() < 13 {
		t.Errorf("HSSD made only %d rounds", p.Round())
	}
}

// TestHSSDToleratesManyCrashes: with signatures, more than a third may fail
// (here: silent), as long as the rest keep exchanging messages.
func TestHSSDToleratesManyCrashes(t *testing.T) {
	cfg := hssd.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return hssd.New(cfg, corr) }
	mix := map[sim.ProcID]func() sim.Process{
		4: func() sim.Process { return faults.Silent{} },
		5: func() sim.Process { return faults.Silent{} },
		6: func() sim.Process { return faults.Silent{} },
	}
	res := run(t, mk, mix)
	bound := 2 * (cfg.Delta + cfg.Eps)
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("HSSD steady skew %v exceeds %v with 3/7 crashed", got, bound)
	}
}

func TestMarzulloSynchronizes(t *testing.T) {
	cfg := marzullo.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return marzullo.New(cfg, corr) }
	res := run(t, mk, silent2())
	bound := 2 * float64(cfg.N) * cfg.Eps
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("Marzullo steady skew %v exceeds %v", got, bound)
	}
	p := res.Engine.Process(0).(*marzullo.Proc)
	if p.Round() < 14 {
		t.Errorf("Marzullo made only %d rounds", p.Round())
	}
	// Peer-only operation: E grows by ≈ ε+2ρP per round (see package doc);
	// assert it stays within that documented linear envelope.
	rounds := float64(p.Round())
	envelope := cfg.Beta + rounds*(cfg.Eps+2*cfg.Rho*cfg.P)*1.5
	if p.ErrorBound() <= 0 || p.ErrorBound() > envelope {
		t.Errorf("error bound %v outside (0, %v] after %v rounds", p.ErrorBound(), envelope, rounds)
	}
}

// TestHSSDToleratesLinkFailures checks §10's extra HSSD property on the
// LossyLinks channel: with several dead links (but the nonfaulty processes
// still connected through relays), the signed-relay flooding keeps everyone
// synchronized. The relay is the mechanism: a process that cannot hear the
// originator accepts the value from any relayer's extended chain.
func TestHSSDToleratesLinkFailures(t *testing.T) {
	cfg := hssd.Config{Params: params()}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return hssd.New(cfg, corr) }
	// Cut both directions of several links touching process 0: it can only
	// talk to processes 4, 5, 6 directly.
	ch := sim.NewLossyLinks().
		BreakBothWays(0, 1).
		BreakBothWays(0, 2).
		BreakBothWays(0, 3)
	res, err := exp.Run(exp.Workload{
		Cfg:      core.Config{Params: params()},
		MakeProc: mk,
		Channel:  ch,
		Rounds:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * (cfg.Delta + cfg.Eps)
	if got := res.Skew.MaxAfterWarmup(); got > bound {
		t.Errorf("HSSD steady skew %v exceeds %v with 3 dead links", got, bound)
	}
	if res.Engine.MessagesLost() == 0 {
		t.Error("no messages were dropped: link failures not exercised")
	}
}

// TestSTMessageComplexity checks the §10 claim that the echo protocol costs
// up to 2n² messages per round when clocks are spread: every process both
// announces and (potentially) relays.
func TestSTMessageComplexity(t *testing.T) {
	p := params()
	cfg := st.Config{Params: p}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return st.New(cfg, corr) }
	rounds := 10
	res, err := exp.Run(exp.Workload{
		Cfg:      core.Config{Params: p},
		MakeProc: mk,
		Rounds:   rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	perRound := float64(res.Engine.MessagesSent()) / float64(rounds)
	n2 := float64(p.N * p.N)
	if perRound < 0.5*n2 || perRound > 2.2*n2 {
		t.Errorf("ST messages/round = %v, want within [n², 2n²] ≈ [%v, %v]", perRound, n2, 2*n2)
	}
}

// TestLMThresholdMatters: an absurdly small Δ threshold makes CNV discard
// every honest estimate, so the clocks free-run and drift apart; the default
// threshold keeps them synchronized. This is [LM]'s documented sensitivity.
func TestLMThresholdMatters(t *testing.T) {
	p := params()
	run := func(threshold float64) float64 {
		cfg := lm.Config{Params: p, Threshold: threshold}
		mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return lm.New(cfg, corr) }
		res, err := exp.Run(exp.Workload{
			Cfg:      core.Config{Params: p},
			MakeProc: mk,
			Rounds:   20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Skew.MaxAfterWarmup()
	}
	healthy := run(0)       // defaulted threshold
	strangled := run(1e-12) // discards everything
	if healthy >= strangled {
		t.Errorf("threshold had no effect: healthy %v vs strangled %v", healthy, strangled)
	}
}

// TestMSToleranceFilter: with an absurdly small τ nothing reaches n−f
// support under jitter, so MS never adjusts; clocks free-run.
func TestMSToleranceFilter(t *testing.T) {
	p := params()
	cfg := ms.Config{Params: p, Tolerance: 1e-12}
	mk := func(_ sim.ProcID, corr clock.Local) sim.Process { return ms.New(cfg, corr) }
	res, err := exp.Run(exp.Workload{
		Cfg:      core.Config{Params: p},
		MakeProc: mk,
		Rounds:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rounds.MaxAbsAdj(0); got != 0 {
		t.Errorf("MS adjusted by %v despite the impossible tolerance", got)
	}
}
