// Package hssd implements a Halpern–Simons–Strong–Dolev style signed-message
// resynchronization algorithm [HSSD] (§10 of the paper).
//
// When a process's clock reaches the next agreed value T_k = T⁰ + kP it
// signs and broadcasts T_k. A process receiving a validly signed chain for
// T_k "not too long before its clock reaches the value" updates its clock
// *to* T_k, appends its signature, and relays. Because a chain of s
// signatures proves s distinct processes vouched for the value, the scheme
// tolerates any number of faults as long as nonfaulty processes stay
// connected — but needs unforgeable signatures.
//
// Signature substitution (DESIGN.md): chains carry the signer ids; the fault
// strategies in this repository never fabricate chain entries for other
// processes, which is exactly the guarantee real signatures would enforce.
//
// Per §10: agreement ≈ δ+ε; faulty processes can make nonfaulty clocks run
// fast by sending T_k early (the validity slope exceeds 1 by an amount
// growing with f); the adjustment is about (f+1)(δ+ε).
package hssd

import (
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes the HSSD discipline.
type Config struct {
	analysis.Params
	// AcceptSlack bounds how early (in local time) a T_k message may arrive
	// and still be accepted: a chain with s signatures is valid when
	// T_k − local ≤ β + s·(δ+ε) + AcceptSlack. Zero is the strict rule.
	AcceptSlack float64
}

// SignedMsg is a T_k announcement with its signature chain. Chain[0] is the
// originator; relays append their ids. A nonfaulty receiver verifies the
// chain is non-empty with distinct signers.
type SignedMsg struct {
	K     int
	Chain []sim.ProcID
}

// roundTimer fires when the local clock reaches the round's mark.
type roundTimer struct {
	k int
}

// Proc is one HSSD process.
type Proc struct {
	cfg  Config
	corr clock.Local

	next    int // next round to act on
	relayed map[int]bool
}

var (
	_ sim.Process    = (*Proc)(nil)
	_ sim.CorrHolder = (*Proc)(nil)
)

// New builds an HSSD process.
func New(cfg Config, initialCorr clock.Local) *Proc {
	return &Proc{
		cfg:     cfg,
		corr:    initialCorr,
		next:    1,
		relayed: make(map[int]bool),
	}
}

// Corr implements sim.CorrHolder.
func (p *Proc) Corr() clock.Local { return p.corr }

// Round returns the next round the process will act on.
func (p *Proc) Round() int { return p.next }

func (p *Proc) mark(k int) clock.Local { return clock.Local(p.cfg.T0 + float64(k)*p.cfg.P) }

func (p *Proc) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + p.corr }

// Receive implements sim.Process.
func (p *Proc) Receive(ctx *sim.Context, m sim.Message) {
	switch m.Kind {
	case sim.KindStart:
		ctx.Annotate(metrics.TagRoundBegin, 0)
		ctx.SetTimer(p.mark(p.next)-p.corr, roundTimer{k: p.next})

	case sim.KindTimer:
		rt, ok := m.Payload.(roundTimer)
		if !ok || rt.k != p.next {
			return
		}
		// Own clock reached T_k first: originate the signed chain. The
		// clock is already exactly T_k, so no adjustment is needed.
		p.advance(ctx, rt.k, 0)
		ctx.Broadcast(SignedMsg{K: rt.k, Chain: []sim.ProcID{ctx.ID()}})
		p.relayed[rt.k] = true

	case sim.KindOrdinary:
		sm, ok := m.Payload.(SignedMsg)
		if !ok || sm.K != p.next || p.relayed[sm.K] {
			return
		}
		if !validChain(sm.Chain) {
			return
		}
		// Accept only if the message is not too early: a chain of s
		// signatures can legitimately precede our clock's reaching T_k by
		// at most β + s·(δ+ε).
		early := float64(p.mark(sm.K) - p.local(ctx))
		if early > p.cfg.Beta+float64(len(sm.Chain))*(p.cfg.Delta+p.cfg.Eps)+p.cfg.AcceptSlack {
			return
		}
		// Update the clock to T_k and relay with our signature.
		adj := float64(p.mark(sm.K) - p.local(ctx))
		p.corr += clock.Local(adj)
		p.advance(ctx, sm.K, adj)
		chain := make([]sim.ProcID, 0, len(sm.Chain)+1)
		chain = append(chain, sm.Chain...)
		chain = append(chain, ctx.ID())
		ctx.Broadcast(SignedMsg{K: sm.K, Chain: chain})
		p.relayed[sm.K] = true
	}
}

// advance records round completion and schedules the next mark.
func (p *Proc) advance(ctx *sim.Context, k int, adj float64) {
	ctx.Annotate(metrics.TagAdjust, adj)
	ctx.Annotate(metrics.TagRoundComplete, float64(k-1))
	ctx.Annotate(metrics.TagRoundBegin, float64(k))
	p.next = k + 1
	ctx.SetTimer(p.mark(p.next)-p.corr, roundTimer{k: p.next})
	for r := range p.relayed {
		if r < k {
			delete(p.relayed, r)
		}
	}
}

// validChain checks the signature chain: non-empty and all signers distinct.
func validChain(chain []sim.ProcID) bool {
	if len(chain) == 0 {
		return false
	}
	seen := make(map[sim.ProcID]bool, len(chain))
	for _, id := range chain {
		if seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}
