package hssd

import (
	"testing"

	"repro/internal/sim"
)

func TestValidChain(t *testing.T) {
	tests := []struct {
		name  string
		chain []sim.ProcID
		want  bool
	}{
		{"empty", nil, false},
		{"single", []sim.ProcID{3}, true},
		{"distinct", []sim.ProcID{3, 1, 4}, true},
		{"duplicate", []sim.ProcID{3, 1, 3}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := validChain(tt.chain); got != tt.want {
				t.Errorf("validChain(%v) = %v, want %v", tt.chain, got, tt.want)
			}
		})
	}
}

func TestMarkArithmetic(t *testing.T) {
	p := New(Config{}, 0)
	p.cfg.T0 = 100
	p.cfg.P = 10
	if got := p.mark(3); got != 130 {
		t.Errorf("mark(3) = %v, want 130", got)
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(Config{}, 5)
	if p.Corr() != 5 {
		t.Errorf("Corr = %v, want 5", p.Corr())
	}
	if p.Round() != 1 {
		t.Errorf("Round = %d, want 1 (first resync round)", p.Round())
	}
}
