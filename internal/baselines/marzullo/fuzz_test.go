package marzullo_test

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/baselines/marzullo"
	"repro/internal/multiset"
)

// encodeVals packs float64 values into the fuzz byte encoding (8 bytes
// little-endian per value).
func encodeVals(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// decodeVals is the inverse, sanitizing arbitrary fuzzer bytes into finite,
// moderately sized values so float64 round-off stays far below the assert
// tolerance: NaN → 0, ±Inf → ±1e6, everything else folded into (−1e6, 1e6).
func decodeVals(data []byte) []float64 {
	n := len(data) / 8
	if n > 64 {
		n = 64
	}
	vals := make([]float64, n)
	for i := range vals {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		switch {
		case math.IsNaN(v):
			v = 0
		case math.IsInf(v, 0):
			v = math.Copysign(1e6, v)
		default:
			v = math.Mod(v, 1e6)
		}
		vals[i] = v
	}
	return vals
}

// FuzzFaultTolerantMidpoint differentially tests the paper's averaging
// function mid(reduce_f(U)) (internal/multiset: sort + trim f from each
// side) against Marzullo's interval-intersection sweep (an entirely
// different algorithm: edge events + overlap counting).
//
// The bridge: turn each value v into the interval [v−w, v+w] with
// w > diam(U). Then every Lo edge precedes every Hi edge, so the points
// covered by ≥ n−f intervals form exactly [v₍n−f₎−w, v₍f+1₎+w] — whose
// midpoint is (v₍f+1₎+v₍n−f₎)/2, precisely mid(reduce_f(U)) — and whose
// half-width is w − diam(reduce_f(U))/2. Any disagreement means one of the
// two reductions mishandles ordering, ties, or trimming.
func FuzzFaultTolerantMidpoint(f *testing.F) {
	// Seed corpus: the table-driven cases of multiset_test.TestReduce and
	// TestFaultTolerantMidpoint, plus undersized inputs for the error path.
	f.Add(uint8(0), encodeVals(2, 1, 3))
	f.Add(uint8(1), encodeVals(5, 1, 3, 2, 4))
	f.Add(uint8(2), encodeVals(1, 2, 3, 4, 5, 6, 7))
	f.Add(uint8(1), encodeVals(1, 2, 3))
	f.Add(uint8(2), encodeVals(7, 7, 7, 7, 7))
	f.Add(uint8(1), encodeVals(10, 11, 12, 1e9))
	f.Add(uint8(1), encodeVals(1, 2))
	f.Add(uint8(3), encodeVals())

	f.Fuzz(func(t *testing.T, fRaw uint8, data []byte) {
		fc := int(fRaw % 8)
		vals := decodeVals(data)
		n := len(vals)

		u := multiset.New(vals...)
		got, err := multiset.FaultTolerantMidpoint(u, fc)
		if n < 2*fc+1 {
			if err == nil {
				t.Fatalf("FaultTolerantMidpoint accepted |U|=%d with f=%d", n, fc)
			}
			return
		}
		if err != nil {
			t.Fatalf("FaultTolerantMidpoint(%v, %d): %v", vals, fc, err)
		}

		w := u.Diam() + 1
		ivs := make([]marzullo.Interval, n)
		for i, v := range vals {
			ivs[i] = marzullo.Interval{Lo: v - w, Hi: v + w}
		}
		res, err := marzullo.Intersect(ivs, n-fc)
		if err != nil {
			t.Fatalf("Intersect(%v, %d): %v — a quorum must exist when w > diam", ivs, n-fc, err)
		}

		const tol = 1e-6
		if d := math.Abs(res.Mid() - got); d > tol {
			t.Errorf("mid mismatch: multiset %v vs marzullo %v (Δ=%v) on vals=%v f=%d", got, res.Mid(), d, vals, fc)
		}
		red := u.MustReduce(fc)
		if d := math.Abs(res.HalfWidth() - (w - red.Diam()/2)); d > tol {
			t.Errorf("half-width mismatch: %v vs %v on vals=%v f=%d", res.HalfWidth(), w-red.Diam()/2, vals, fc)
		}
		// Lemma 6 invariant shared by both: the result stays within the
		// surviving (trimmed) range.
		if got < red.Min()-tol || got > red.Max()+tol {
			t.Errorf("midpoint %v escaped the reduced range [%v, %v]", got, red.Min(), red.Max())
		}
	})
}
