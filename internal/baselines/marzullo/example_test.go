package marzullo_test

import (
	"fmt"
	"log"

	"repro/internal/baselines/marzullo"
)

// ExampleIntersect runs Marzullo's algorithm on four time sources, one of
// which (the last) is wrong: the smallest interval containing every point
// covered by at least three of the four sources still brackets the truth.
func ExampleIntersect() {
	sources := []marzullo.Interval{
		{Lo: 8, Hi: 12},
		{Lo: 11, Hi: 13},
		{Lo: 10, Hi: 12},
		{Lo: 11.5, Hi: 11.6}, // liar claiming impossible precision
	}
	result, err := marzullo.Intersect(sources, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%v, %v], best estimate %v\n", result.Lo, result.Hi, result.Mid())
	// Output:
	// [11, 12], best estimate 11.5
}
