// Package marzullo implements Marzullo's interval-intersection time service
// [M] (§10 of the paper): each process maintains an interval guaranteed to
// contain the correct reference, periodically collects its neighbors'
// intervals, and intersects them tolerating f bad intervals.
//
// The heart is the classic intersection algorithm (Intersect): given n
// intervals of which at least n−f contain the true value, the smallest
// interval containing every point that lies in at least n−f of them also
// contains the true value.
//
// As a clock discipline: every round each process broadcasts its local time
// and error bound E. The receiver turns each message into an interval on the
// *offset* between the sender's clock and its own (center: the usual
// estimate mark+δ−local, half-width: E_sender+ε), adds its own [−E, +E],
// intersects with quorum n−f, and slews by the midpoint. Error bounds grow
// with drift (2ρ per second of round) and shrink at each intersection.
//
// §10 notes Marzullo's analysis is probabilistic and hard to compare
// head-to-head; experiment E08 simply measures the achieved agreement on the
// common substrate.
//
// Peer-only caveat: Marzullo's service assumes some nodes have externally
// disciplined clocks (radio receivers) whose error bound does not grow.
// With peers only — the setting shared by every algorithm in this repository
// — the error bound E honestly grows by about ε + 2ρP per round (every
// peer's interval is equally wide, so intersection cannot tighten them),
// while the *mutual* skew of the clocks stays small. E08 therefore compares
// skew, and the tests assert the documented E growth rate.
package marzullo

import (
	"errors"
	"sort"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Valid reports Lo ≤ Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Mid returns the midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// HalfWidth returns (Hi−Lo)/2.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// ErrTooFewIntervals is returned when no point is covered by the quorum.
var ErrTooFewIntervals = errors.New("marzullo: no point lies in enough intervals")

// Intersect returns the smallest interval containing every point that lies
// in at least k of the given intervals (Marzullo's algorithm). It returns
// ErrTooFewIntervals when the maximum overlap is below k.
func Intersect(ivs []Interval, k int) (Interval, error) {
	if k <= 0 || len(ivs) == 0 || k > len(ivs) {
		return Interval{}, ErrTooFewIntervals
	}
	type edge struct {
		x     float64
		delta int // +1 at Lo, −1 just after Hi
	}
	edges := make([]edge, 0, 2*len(ivs))
	for _, iv := range ivs {
		if !iv.Valid() {
			continue
		}
		edges = append(edges, edge{iv.Lo, +1}, edge{iv.Hi, -1})
	}
	// At equal coordinates process starts before ends so closed intervals
	// touching at a point count as overlapping there.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].x != edges[j].x {
			return edges[i].x < edges[j].x
		}
		return edges[i].delta > edges[j].delta
	})
	count := 0
	lo, hi := 0.0, 0.0
	found := false
	for _, e := range edges {
		count += e.delta
		if e.delta > 0 && count == k && !found {
			lo = e.x
			found = true
		}
		if e.delta < 0 && count == k-1 && found {
			hi = e.x // last time coverage drops below k
		}
	}
	if !found {
		return Interval{}, ErrTooFewIntervals
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// Config parameterizes the interval clock discipline.
type Config struct {
	analysis.Params
	// InitialError is E₀, the starting half-width of each process's own
	// interval. Zero defaults to β.
	InitialError float64
}

func (c Config) withDefaults() Config {
	if c.InitialError == 0 {
		c.InitialError = c.Beta
	}
	return c
}

// TimeMsg carries the sender's round mark and current error bound.
type TimeMsg struct {
	Mark clock.Local
	Err  float64
}

// Proc is one interval-discipline process.
type Proc struct {
	cfg  Config
	corr clock.Local
	errB float64 // E: current half-width of own interval

	centers []float64
	widths  []float64
	have    []bool
	t       clock.Local
	rnd     int
	flag    phase
}

type phase uint8

const (
	phaseBroadcast phase = iota + 1
	phaseUpdate
)

var (
	_ sim.Process    = (*Proc)(nil)
	_ sim.CorrHolder = (*Proc)(nil)
)

// New builds a Marzullo process.
func New(cfg Config, initialCorr clock.Local) *Proc {
	cfg = cfg.withDefaults()
	return &Proc{
		cfg:     cfg,
		corr:    initialCorr,
		errB:    cfg.InitialError,
		centers: make([]float64, cfg.N),
		widths:  make([]float64, cfg.N),
		have:    make([]bool, cfg.N),
		t:       clock.Local(cfg.T0),
		flag:    phaseBroadcast,
	}
}

// Corr implements sim.CorrHolder.
func (p *Proc) Corr() clock.Local { return p.corr }

// Round returns the current round index.
func (p *Proc) Round() int { return p.rnd }

// ErrorBound returns the current half-width E of the process's own interval.
func (p *Proc) ErrorBound() float64 { return p.errB }

func (p *Proc) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + p.corr }

// Receive implements sim.Process.
func (p *Proc) Receive(ctx *sim.Context, m sim.Message) {
	switch {
	case m.Kind == sim.KindOrdinary:
		if tm, ok := m.Payload.(TimeMsg); ok {
			p.centers[m.From] = float64(tm.Mark) + p.cfg.Delta - float64(p.local(ctx))
			p.widths[m.From] = tm.Err + p.cfg.Eps
			p.have[m.From] = true
		}

	case (m.Kind == sim.KindStart || m.Kind == sim.KindTimer) && p.flag == phaseBroadcast:
		ctx.Annotate(metrics.TagRoundBegin, float64(p.rnd))
		ctx.Broadcast(TimeMsg{Mark: p.t, Err: p.errB})
		ctx.SetTimer(p.t+clock.Local(p.cfg.Window())-p.corr, nil)
		p.flag = phaseUpdate

	case m.Kind == sim.KindTimer && p.flag == phaseUpdate:
		p.update(ctx)
	}
}

func (p *Proc) update(ctx *sim.Context) {
	ivs := make([]Interval, 0, p.cfg.N)
	for q := 0; q < p.cfg.N; q++ {
		if !p.have[q] {
			continue
		}
		ivs = append(ivs, Interval{Lo: p.centers[q] - p.widths[q], Hi: p.centers[q] + p.widths[q]})
	}
	adj := 0.0
	res, err := Intersect(ivs, len(ivs)-p.cfg.F)
	if err == nil {
		adj = res.Mid()
		p.errB = res.HalfWidth()
	}
	// Drift widens the interval until the next exchange.
	p.errB += 2 * p.cfg.Rho * p.cfg.P
	p.corr += clock.Local(adj)
	ctx.Annotate(metrics.TagAdjust, adj)
	ctx.Annotate(metrics.TagRoundComplete, float64(p.rnd))

	p.rnd++
	p.t += clock.Local(p.cfg.P)
	for i := range p.have {
		p.have[i] = false
	}
	ctx.SetTimer(p.t-p.corr, nil)
	p.flag = phaseBroadcast
}
