package marzullo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 6}
	if !iv.Valid() || iv.Mid() != 4 || iv.HalfWidth() != 2 {
		t.Errorf("helpers wrong for %+v", iv)
	}
	if (Interval{Lo: 3, Hi: 1}).Valid() {
		t.Error("inverted interval should be invalid")
	}
}

func TestIntersectBasic(t *testing.T) {
	tests := []struct {
		name    string
		ivs     []Interval
		k       int
		want    Interval
		wantErr bool
	}{
		{
			name: "classic three of four",
			ivs:  []Interval{{8, 12}, {11, 13}, {10, 12}, {11.5, 11.6}},
			k:    3,
			want: Interval{11, 12},
		},
		{
			name: "all overlap",
			ivs:  []Interval{{0, 10}, {2, 8}, {4, 6}},
			k:    3,
			want: Interval{4, 6},
		},
		{
			name:    "disjoint with full quorum",
			ivs:     []Interval{{0, 1}, {2, 3}, {4, 5}},
			k:       3,
			wantErr: true,
		},
		{
			name: "disjoint with quorum one",
			ivs:  []Interval{{0, 1}, {2, 3}},
			k:    1,
			want: Interval{0, 3}, // hull of all ≥1-covered points
		},
		{
			name: "touching endpoints count",
			ivs:  []Interval{{0, 5}, {5, 10}},
			k:    2,
			want: Interval{5, 5},
		},
		{
			name:    "k too large",
			ivs:     []Interval{{0, 1}},
			k:       2,
			wantErr: true,
		},
		{
			name:    "empty input",
			ivs:     nil,
			k:       1,
			wantErr: true,
		},
		{
			name:    "nonpositive k",
			ivs:     []Interval{{0, 1}},
			k:       0,
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Intersect(tt.ivs, tt.k)
			if tt.wantErr {
				if !errors.Is(err, ErrTooFewIntervals) {
					t.Fatalf("want ErrTooFewIntervals, got %v (%+v)", err, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Intersect = %+v, want %+v", got, tt.want)
			}
		})
	}
}

// coverage counts intervals containing x.
func coverage(ivs []Interval, x float64) int {
	c := 0
	for _, iv := range ivs {
		if iv.Lo <= x && x <= iv.Hi {
			c++
		}
	}
	return c
}

// TestIntersectProperty: the returned interval's endpoints are covered by ≥k
// intervals, and no point outside it is.
func TestIntersectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rng.Float64() * 10
			ivs[i] = Interval{Lo: lo, Hi: lo + rng.Float64()*5}
		}
		k := 1 + rng.Intn(n)
		res, err := Intersect(ivs, k)
		// Collect candidate points: all endpoints.
		var maxCov int
		for _, iv := range ivs {
			for _, x := range []float64{iv.Lo, iv.Hi} {
				if c := coverage(ivs, x); c > maxCov {
					maxCov = c
				}
			}
		}
		if maxCov < k {
			return errors.Is(err, ErrTooFewIntervals)
		}
		if err != nil {
			return false
		}
		if coverage(ivs, res.Lo) < k || coverage(ivs, res.Hi) < k {
			return false
		}
		// Just outside must have coverage < k (res is the hull).
		if coverage(ivs, res.Lo-1e-9) >= k || coverage(ivs, res.Hi+1e-9) >= k {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestIntersectTruthContainment: if ≥ k intervals contain a truth point, the
// result contains it too — the correctness property Marzullo's service
// relies on.
func TestIntersectTruthContainment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := rng.Float64() * 10
		n := 4 + rng.Intn(6)
		fBad := rng.Intn(n / 4)
		ivs := make([]Interval, 0, n)
		for i := 0; i < n-fBad; i++ {
			w := rng.Float64() * 3
			off := (rng.Float64()*2 - 1) * w
			ivs = append(ivs, Interval{Lo: truth + off - w, Hi: truth + off + w})
		}
		for i := 0; i < fBad; i++ {
			lo := rng.Float64() * 100
			ivs = append(ivs, Interval{Lo: lo, Hi: lo + rng.Float64()})
		}
		res, err := Intersect(ivs, n-fBad)
		if err != nil {
			return false
		}
		return res.Lo <= truth && truth <= res.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestIntersectIgnoresInvalid(t *testing.T) {
	res, err := Intersect([]Interval{{0, 4}, {2, 6}, {5, 3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res != (Interval{2, 4}) {
		t.Errorf("got %+v, want [2,4]", res)
	}
}
