package st

import (
	"testing"

	"repro/internal/analysis"
)

func TestNewInitialState(t *testing.T) {
	p := New(Config{Params: analysis.Default(4, 1)}, 2)
	if p.Corr() != 2 {
		t.Errorf("Corr = %v, want 2", p.Corr())
	}
	if p.Round() != 1 {
		t.Errorf("Round = %d, want 1 (first resync round)", p.Round())
	}
}

func TestMarkArithmetic(t *testing.T) {
	cfg := Config{Params: analysis.Default(4, 1)}
	cfg.T0 = 50
	cfg.P = 2
	p := New(cfg, 0)
	if got := p.mark(4); got != 58 {
		t.Errorf("mark(4) = %v, want 58", got)
	}
}
