// Package st implements a Srikanth–Toueg style broadcast-based
// resynchronization algorithm [ST] (§10 of the paper), without digital
// signatures (valid since n ≥ 3f+1).
//
// When a process's logical clock reaches the next resynchronization mark
// T_k = T⁰ + kP it broadcasts (round k). A process that has received f+1
// (round k) messages joins the broadcast even if its own clock has not
// reached T_k (at least one nonfaulty process supports the round, and the
// echo collapses the spread of broadcast times). Upon receiving n−f (round
// k) messages a process *accepts* round k and resets its logical clock to
// T_k + δ (the message that triggered acceptance was in flight for about δ).
//
// Per §10: agreement is about δ+ε (better or worse than the paper's ≈4ε
// depending on the relative sizes of δ and ε — this is the crossover that
// experiment E08 reproduces), validity is optimal, and the adjustment is
// about 3(δ+ε); there are up to 2n² messages per round because of the echo.
package st

import (
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes the ST discipline.
type Config struct {
	analysis.Params
}

// RoundMsg announces that the sender's clock reached round k's mark (or that
// it echoes f+1 such announcements).
type RoundMsg struct {
	K int
}

// roundTimer is the timer payload for reaching a mark on the local clock.
type roundTimer struct {
	k int
}

// Proc is one ST process.
type Proc struct {
	cfg  Config
	corr clock.Local

	next      int // next round to accept
	senders   map[int]map[sim.ProcID]bool
	broadcast map[int]bool
}

var (
	_ sim.Process    = (*Proc)(nil)
	_ sim.CorrHolder = (*Proc)(nil)
)

// New builds an ST process.
func New(cfg Config, initialCorr clock.Local) *Proc {
	return &Proc{
		cfg:       cfg,
		corr:      initialCorr,
		next:      1,
		senders:   make(map[int]map[sim.ProcID]bool),
		broadcast: make(map[int]bool),
	}
}

// Corr implements sim.CorrHolder.
func (p *Proc) Corr() clock.Local { return p.corr }

// Round returns the next round to be accepted.
func (p *Proc) Round() int { return p.next }

func (p *Proc) mark(k int) clock.Local { return clock.Local(p.cfg.T0 + float64(k)*p.cfg.P) }

// Receive implements sim.Process.
func (p *Proc) Receive(ctx *sim.Context, m sim.Message) {
	switch m.Kind {
	case sim.KindStart:
		ctx.Annotate(metrics.TagRoundBegin, 0)
		ctx.SetTimer(p.mark(p.next)-p.corr, roundTimer{k: p.next})

	case sim.KindTimer:
		rt, ok := m.Payload.(roundTimer)
		if !ok || rt.k != p.next {
			return // stale timer from before a resynchronization
		}
		p.announce(ctx, rt.k)

	case sim.KindOrdinary:
		rm, ok := m.Payload.(RoundMsg)
		if !ok || rm.K < p.next {
			return
		}
		set := p.senders[rm.K]
		if set == nil {
			set = make(map[sim.ProcID]bool)
			p.senders[rm.K] = set
		}
		set[m.From] = true
		// Relay rule: f+1 distinct announcers mean at least one nonfaulty
		// process reached the mark; join the broadcast.
		if len(set) >= p.cfg.F+1 {
			p.announce(ctx, rm.K)
		}
		// Acceptance rule: n−f announcers.
		if len(set) >= p.cfg.N-p.cfg.F && rm.K >= p.next {
			p.accept(ctx, rm.K)
		}
	}
}

func (p *Proc) announce(ctx *sim.Context, k int) {
	if p.broadcast[k] {
		return
	}
	p.broadcast[k] = true
	ctx.Broadcast(RoundMsg{K: k})
}

// accept resynchronizes: local time becomes T_k + δ.
func (p *Proc) accept(ctx *sim.Context, k int) {
	target := p.mark(k) + clock.Local(p.cfg.Delta)
	before := ctx.PhysNow() + p.corr
	adj := float64(target - before)
	p.corr += clock.Local(adj)
	ctx.Annotate(metrics.TagAdjust, adj)
	ctx.Annotate(metrics.TagRoundComplete, float64(k-1))

	p.next = k + 1
	ctx.Annotate(metrics.TagRoundBegin, float64(k))
	ctx.SetTimer(p.mark(p.next)-p.corr, roundTimer{k: p.next})
	// Garbage-collect state from accepted rounds.
	for r := range p.senders {
		if r <= k {
			delete(p.senders, r)
		}
	}
	for r := range p.broadcast {
		if r <= k {
			delete(p.broadcast, r)
		}
	}
}
