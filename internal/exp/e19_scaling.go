package exp

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp/runner"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E19",
		Title:    "Large-n scaling on the sharded time-window engine",
		PaperRef: "§4 (n² messages per round); A3 (δ−ε lookahead)",
		Run:      runE19,
	})
}

// e19Rounds keeps E19 runs short: the experiment measures scaling shape and
// shard-count determinism, not long-horizon convergence (E09 owns that).
const e19Rounds = 4

// e19ShardCounts is the partition sweep every system size runs under. The
// k = 1/2/8 agreement of every measured column — pinned by the golden table
// and re-checked in-experiment — is the determinism oracle for the sharded
// engine: a window-synchronization or sequencing bug shows up as a det=FAIL
// row, not as a silent perturbation.
var e19ShardCounts = []int{1, 2, 8}

// runE19 grows the conformance story to "n in the thousands": the paper's
// algorithm on the real engine at n = 101 … 4001, partitioned across
// shards with conservative time-window synchronization at lookahead δ−ε
// (sim.NewSharded). Every row reports deterministic quantities — windows
// run, events delivered, copies sent, worst post-warmup skew at window cuts
// — so the table doubles as a byte-exact oracle that executions are
// independent of the shard count. The flat all-to-all message growth
// (msgs ∝ n² per round) recorded here is the measured baseline any future
// hierarchical variant has to beat.
func runE19() ([]*Table, error) {
	t := &Table{
		ID:       "E19",
		Title:    "Sharded time-window engine: flat all-to-all scaling baseline",
		PaperRef: "§4; A3",
		Columns:  []string{"n", "shards", "windows", "events", "msgs", "worst skew", "γ bound", "skew ≤ γ", "det"},
	}
	ns := []int{101, 251}
	if BigSweeps() {
		ns = append(ns, 1009)
	}
	if StressTier() {
		ns = append(ns, 4001, 16385)
	}
	for _, n := range ns {
		counts := e19ShardCounts
		if n > 8192 {
			// The nightly billion-event row, possible since the packed
			// sequence key's bit split became dynamic (cap 131072): k = 1 at
			// this size adds ~¼ hour of runtime without a parallelism story,
			// so the determinism oracle compares k = 16 against k = 8.
			counts = []int{8, 16}
		}
		var base *e19Run
		for _, k := range counts {
			r, err := e19Trial(n, k)
			if err != nil {
				return nil, fmt.Errorf("E19 n=%d shards=%d: %w", n, k, err)
			}
			det := true
			if base == nil {
				base = r
			} else {
				det = *r == *base
				if !det {
					return nil, fmt.Errorf("E19 n=%d: shards=%d diverged from shards=1: %+v vs %+v", n, k, *r, *base)
				}
			}
			gamma := r.gamma
			t.AddRow(fmtInt(n), fmtInt(k), fmtInt(r.windows), fmtInt(r.events),
				fmtInt(int(r.msgs)), FmtDur(r.maxSkew), FmtDur(gamma),
				Verdict(r.maxSkew <= gamma), Verdict(det))
		}
	}
	t.AddNote("lookahead L = δ−ε; every shard drains one [t, t+L) window in parallel, cross-shard copies exchange at the barrier")
	t.AddNote("worst skew is sampled at window cuts after %d warmup rounds (scaling oracle, not the piecewise-exact conformance measurement of E09)", e19Rounds/2)
	t.AddNote("msgs grows ∝ n² per round — the flat baseline a hierarchical topology would need to beat")
	obs, err := e19ObserverTable()
	if err != nil {
		return nil, err
	}
	return []*Table{t, obs}, nil
}

// e19ObserverTable runs the same workload through the experiment harness
// (Workload.Shards) with the standard recorders and the full invariant
// suite registered via ShardedEngine.Observe — the observer path that made
// sharded runs measurable: samplers and annotation sinks fire at every
// window cut in a merged deterministic order, so the recorded skew, the
// Theorem 16/19/4(a) verdicts, and the tables built from them are
// shard-count independent. Rows start at k = 2 because Workload.Shards ≤ 1
// is the sequential engine, whose per-delivery sampling measures a finer
// (different) skew series.
func e19ObserverTable() (*Table, error) {
	t := &Table{
		ID:       "E19",
		Title:    "Sharded observers: recorders and invariant suite at window cuts",
		PaperRef: "§4; A3; Theorems 16/19/4(a)",
		Columns:  []string{"n", "shards", "windows", "events", "max skew", "γ bound", "skew ≤ γ", "invariants", "det"},
	}
	ns := []int{101, 251}
	if BigSweeps() {
		ns = append(ns, 1009)
	}
	for _, n := range ns {
		var base *e19ObsRun
		for _, k := range []int{2, 4, 8} {
			r, err := e19ObsTrial(n, k)
			if err != nil {
				return nil, fmt.Errorf("E19 observers n=%d shards=%d: %w", n, k, err)
			}
			det := true
			if base == nil {
				base = r
			} else {
				det = *r == *base
				if !det {
					return nil, fmt.Errorf("E19 observers n=%d: shards=%d diverged from shards=2: %+v vs %+v", n, k, *r, *base)
				}
			}
			t.AddRow(fmtInt(n), fmtInt(k), fmtInt(r.windows), fmtInt(r.events),
				FmtDur(r.maxSkew), FmtDur(r.gamma),
				Verdict(r.maxSkew <= r.gamma), Verdict(r.invariants), Verdict(det))
		}
	}
	t.AddNote("recorders (skew, rounds, validity) and the invariant suite attach through ShardedEngine.Observe and sample at window cuts; per-delivery observers are rejected")
	t.AddNote("identical rows across shard counts pin the merged observer dispatch order, not just the execution")
	return t, nil
}

// e19ObsRun is one observer trial's deterministic digest.
type e19ObsRun struct {
	windows    int
	events     int
	msgs       int64
	maxSkew    float64
	gamma      float64
	invariants bool
}

// e19ObsTrial runs the paper's algorithm at size n across k shards through
// the experiment harness with all standard observers on.
func e19ObsTrial(n, k int) (*e19ObsRun, error) {
	cfg := core.Config{Params: analysis.Default(n, 0)}
	res, err := Run(Workload{
		Cfg:             cfg,
		Rounds:          e19Rounds,
		Seed:            runner.DeriveSeed(19, n),
		Shards:          k,
		CheckInvariants: true,
	})
	if err != nil {
		return nil, err
	}
	r := &e19ObsRun{
		windows:    res.Sharded.Windows(),
		events:     res.Steps(),
		msgs:       res.MessagesSent(),
		maxSkew:    res.Skew.Max(),
		gamma:      cfg.Gamma(),
		invariants: res.Invariants.Ok(),
	}
	if math.IsNaN(r.maxSkew) {
		return nil, fmt.Errorf("skew is NaN")
	}
	return r, nil
}

// e19Run is one trial's deterministic digest; runs at different shard
// counts must produce identical values (compared as a whole struct).
type e19Run struct {
	windows int
	events  int
	msgs    int64
	maxSkew float64
	gamma   float64
}

// e19Trial runs the paper's algorithm at system size n across k shards.
func e19Trial(n, k int) (*e19Run, error) {
	cfg := core.Config{Params: analysis.Default(n, 0)}
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	for i := range clocks {
		clocks[i] = drift.Build(i, n)
	}
	corrs := core.InitialCorrsWithinBeta(cfg, clocks, 0.9*cfg.Beta)
	starts := core.StartTimes(cfg, clocks, corrs)
	procs := make([]sim.Process, n)
	for i := range procs {
		procs[i] = core.NewProc(cfg, corrs[i])
	}
	maxStart := starts[0]
	for _, s := range starts {
		if s > maxStart {
			maxStart = s
		}
	}

	se, err := sim.NewSharded(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:    runner.DeriveSeed(19, n),
		// ~(rounds+2) all-to-all exchanges plus per-process timers, with slack.
		MaxSteps: (e19Rounds + 4) * (n*n + 4*n),
	}, k)
	if err != nil {
		return nil, err
	}

	r := &e19Run{gamma: cfg.Gamma()}
	warm := maxStart + clock.Real(float64(e19Rounds/2)*cfg.P)
	se.OnWindow = func(se *sim.ShardedEngine, cut clock.Real) {
		if cut < warm {
			return
		}
		lo, hi, count := se.LocalTimeSpread(cut)
		if count > 0 && float64(hi-lo) > r.maxSkew {
			r.maxSkew = float64(hi - lo)
		}
	}
	horizon := maxStart + clock.Real(float64(e19Rounds)*cfg.P*(1+2*cfg.Rho)+2*cfg.Window()+cfg.Delta+1)
	if err := se.Run(horizon); err != nil {
		return nil, err
	}
	lo, hi, count := se.LocalTimeSpread(horizon)
	if count > 0 && float64(hi-lo) > r.maxSkew {
		r.maxSkew = float64(hi - lo)
	}
	if math.IsNaN(r.maxSkew) {
		return nil, fmt.Errorf("skew is NaN")
	}
	r.windows = se.Windows()
	r.events = se.Steps()
	r.msgs = se.MessagesSent()
	return r, nil
}
