package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E05",
		Title:    "Fault tolerance at the n = 3f+1 boundary",
		PaperRef: "Assumption A2; [DHS] impossibility",
		Run:      runE05,
	})
}

// runE05 sweeps f for n = 3f+1 across fault strategies (agreement must
// hold), then runs f+1 adversaries in an f-sized system (agreement may
// fail — the [DHS] boundary). The strategies come from the adversary
// registry in internal/faults (the full registry is crossed with the
// invariant checkers in E17; this sweep tracks the skew numbers for the
// original five behaviors as f grows).
func runE05() ([]*Table, error) {
	strategies := []string{"silent", "two-faced", "noise", "stale-replay", "crash-mid-run"}

	t1 := &Table{
		ID:       "E05",
		Title:    "n = 3f+1: steady-state skew under f Byzantine processes stays within γ",
		PaperRef: "A2",
		Columns:  []string{"f", "n", "strategy", "paper γ", "measured", "holds"},
	}
	type point struct {
		f, n     int
		strategy string
	}
	fs := []int{1, 2, 3, 4}
	if BigSweeps() {
		// Cheap since the parallel runner + zero-alloc engine: n up to 25.
		fs = append(fs, 6, 8)
	}
	var points []point
	for _, f := range fs {
		for _, s := range strategies {
			points = append(points, point{f: f, n: 3*f + 1, strategy: s})
		}
	}
	sweep1 := Sweep[point]{
		Name:   "E05",
		Params: points,
		Build: func(p point) (Workload, error) {
			cfg := core.Config{Params: analysis.Default(p.n, p.f)}
			s, err := faults.ByName(p.strategy)
			if err != nil {
				return Workload{}, err
			}
			mix := faults.Mix(s, cfg, faults.TopIDs(p.f, p.n), 3)
			return Workload{Cfg: cfg, Rounds: 12, Faults: mix, Seed: 3}, nil
		},
		Each: func(p point, w Workload, res *Result) error {
			meas := res.Skew.MaxAfterWarmup()
			gamma := w.Cfg.Gamma()
			t1.AddRow(fmtInt(p.f), fmtInt(p.n), p.strategy, FmtDur(gamma), FmtDur(meas), Verdict(meas <= gamma))
			return nil
		},
	}
	if err := sweep1.Run(); err != nil {
		return nil, fmt.Errorf("E05: %w", err)
	}

	t2 := &Table{
		ID:       "E05b",
		Title:    "Exceeding the boundary: f+1 two-faced adversaries in an f-sized system",
		PaperRef: "[DHS]: impossible without authentication when n ≤ 3f",
		Columns:  []string{"system f", "actual faults", "measured skew", "vs γ"},
	}
	cfg := core.Config{Params: analysis.Default(7, 2)}
	sweep2 := Sweep[int]{
		Name:   "E05b",
		Params: []int{2, 3},
		Build: func(actual int) (Workload, error) {
			mix := make(map[sim.ProcID]func() sim.Process, actual)
			for i := 0; i < actual; i++ {
				id := sim.ProcID(6 - i)
				mix[id] = func() sim.Process {
					return &faults.TwoFaced{Cfg: cfg, Lead: 9e-3, Lag: 9e-3,
						EarlyTo: func(to sim.ProcID) bool { return int(to) < 2 }}
				}
			}
			return Workload{
				Cfg: cfg, Rounds: 25, Faults: mix, Seed: 3,
				Delay: sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps},
			}, nil
		},
		Each: func(actual int, _ Workload, res *Result) error {
			meas := res.Skew.Max()
			rel := "within γ"
			cell := FmtDur(meas)
			switch {
			case meas > 100*cfg.Gamma():
				rel = "diverged — guarantee lost"
			case meas > cfg.Gamma():
				rel = fmt.Sprintf("%.1f× γ — guarantee lost", meas/cfg.Gamma())
			}
			t2.AddRow("2", fmtInt(actual), cell, rel)
			return nil
		},
	}
	if err := sweep2.Run(); err != nil {
		return nil, err
	}
	t2.AddNote("with f+1 coordinated two-faced faults the skew exceeds the f-fault guarantee, as A2 requires")
	return []*Table{t1, t2}, nil
}
