package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E05",
		Title:    "Fault tolerance at the n = 3f+1 boundary",
		PaperRef: "Assumption A2; [DHS] impossibility",
		Run:      runE05,
	})
}

// faultMix builds `count` faulty processes of the named strategy occupying
// the top ids of an n-process system.
func faultMix(cfg core.Config, strategy string, count, n int) map[sim.ProcID]func() sim.Process {
	mix := make(map[sim.ProcID]func() sim.Process, count)
	for i := 0; i < count; i++ {
		id := sim.ProcID(n - 1 - i)
		switch strategy {
		case "silent":
			mix[id] = func() sim.Process { return faults.Silent{} }
		case "two-faced":
			mix[id] = func() sim.Process {
				return &faults.TwoFaced{Cfg: cfg, Lead: 4e-3, Lag: 4e-3}
			}
		case "noise":
			mix[id] = func() sim.Process { return &faults.Noise{Cfg: cfg, Burst: 3} }
		case "stale-replay":
			mix[id] = func() sim.Process { return &faults.StaleReplay{Cfg: cfg, Offset: 4e-3} }
		case "crash-mid-run":
			mix[id] = func() sim.Process {
				return &faults.CrashAfter{Inner: core.NewProc(cfg, 0), At: 5}
			}
		}
	}
	return mix
}

// runE05 sweeps f for n = 3f+1 across fault strategies (agreement must
// hold), then runs f+1 adversaries in an f-sized system (agreement may
// fail — the [DHS] boundary).
func runE05() ([]*Table, error) {
	strategies := []string{"silent", "two-faced", "noise", "stale-replay", "crash-mid-run"}

	t1 := &Table{
		ID:       "E05",
		Title:    "n = 3f+1: steady-state skew under f Byzantine processes stays within γ",
		PaperRef: "A2",
		Columns:  []string{"f", "n", "strategy", "paper γ", "measured", "holds"},
	}
	type point struct {
		f, n     int
		strategy string
	}
	var points []point
	for _, f := range []int{1, 2, 3, 4} {
		for _, s := range strategies {
			points = append(points, point{f: f, n: 3*f + 1, strategy: s})
		}
	}
	sweep1 := Sweep[point]{
		Name:   "E05",
		Params: points,
		Build: func(p point) (Workload, error) {
			cfg := core.Config{Params: analysis.Default(p.n, p.f)}
			return Workload{Cfg: cfg, Rounds: 12, Faults: faultMix(cfg, p.strategy, p.f, p.n), Seed: 3}, nil
		},
		Each: func(p point, w Workload, res *Result) error {
			meas := res.Skew.MaxAfterWarmup()
			gamma := w.Cfg.Gamma()
			t1.AddRow(fmtInt(p.f), fmtInt(p.n), p.strategy, FmtDur(gamma), FmtDur(meas), Verdict(meas <= gamma))
			return nil
		},
	}
	if err := sweep1.Run(); err != nil {
		return nil, fmt.Errorf("E05: %w", err)
	}

	t2 := &Table{
		ID:       "E05b",
		Title:    "Exceeding the boundary: f+1 two-faced adversaries in an f-sized system",
		PaperRef: "[DHS]: impossible without authentication when n ≤ 3f",
		Columns:  []string{"system f", "actual faults", "measured skew", "vs γ"},
	}
	cfg := core.Config{Params: analysis.Default(7, 2)}
	sweep2 := Sweep[int]{
		Name:   "E05b",
		Params: []int{2, 3},
		Build: func(actual int) (Workload, error) {
			mix := make(map[sim.ProcID]func() sim.Process, actual)
			for i := 0; i < actual; i++ {
				id := sim.ProcID(6 - i)
				mix[id] = func() sim.Process {
					return &faults.TwoFaced{Cfg: cfg, Lead: 9e-3, Lag: 9e-3,
						EarlyTo: func(to sim.ProcID) bool { return int(to) < 2 }}
				}
			}
			return Workload{
				Cfg: cfg, Rounds: 25, Faults: mix, Seed: 3,
				Delay: sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps},
			}, nil
		},
		Each: func(actual int, _ Workload, res *Result) error {
			meas := res.Skew.Max()
			rel := "within γ"
			cell := FmtDur(meas)
			switch {
			case meas > 100*cfg.Gamma():
				rel = "diverged — guarantee lost"
			case meas > cfg.Gamma():
				rel = fmt.Sprintf("%.1f× γ — guarantee lost", meas/cfg.Gamma())
			}
			t2.AddRow("2", fmtInt(actual), cell, rel)
			return nil
		},
	}
	if err := sweep2.Run(); err != nil {
		return nil, err
	}
	t2.AddNote("with f+1 coordinated two-faced faults the skew exceeds the f-fault guarantee, as A2 requires")
	return []*Table{t1, t2}, nil
}
