package exp

import (
	"fmt"
	"sort"
	"sync"
)

// Experiment reproduces one measurable claim of the paper (DESIGN.md §3
// lists the full index). Run executes the workloads and returns the tables.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func() ([]*Table, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Experiment{}
)

// register adds an experiment; each experiment file calls it from init.
// Duplicate ids are a programmer error.
func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by id.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
	}
	return e, nil
}
