package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/baselines/hssd"
	"repro/internal/baselines/lm"
	"repro/internal/baselines/marzullo"
	"repro/internal/baselines/ms"
	"repro/internal/baselines/st"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E08",
		Title:    "Comparison with other algorithms (the §10 table)",
		PaperRef: "§10",
		Run:      runE08,
	})
}

// algorithms returns the §10 contenders as workload process factories plus
// their paper-quoted agreement estimate.
func algorithms(params analysis.Params) []struct {
	name       string
	mk         func(id sim.ProcID, corr clock.Local) sim.Process
	paperAgree float64
	paperNote  string
} {
	wl := core.Config{Params: params}
	lmc := lm.Config{Params: params}
	msc := ms.Config{Params: params}
	stc := st.Config{Params: params}
	hc := hssd.Config{Params: params}
	mzc := marzullo.Config{Params: params}
	return []struct {
		name       string
		mk         func(id sim.ProcID, corr clock.Local) sim.Process
		paperAgree float64
		paperNote  string
	}{
		{"Welch-Lynch (this paper)", func(_ sim.ProcID, c clock.Local) sim.Process { return core.NewProc(wl, c) },
			4 * params.Eps, "≈4ε"},
		{"Lamport/Melliar-Smith CNV", func(_ sim.ProcID, c clock.Local) sim.Process { return lm.New(lmc, c) },
			2 * float64(params.N) * params.Eps, "≈2nε"},
		{"Mahaney/Schneider", func(_ sim.ProcID, c clock.Local) sim.Process { return ms.New(msc, c) },
			2 * float64(params.N) * params.Eps, "(analyzed per-round)"},
		{"Srikanth/Toueg", func(_ sim.ProcID, c clock.Local) sim.Process { return st.New(stc, c) },
			params.Delta + params.Eps, "≈δ+ε"},
		{"HSSD (signatures)", func(_ sim.ProcID, c clock.Local) sim.Process { return hssd.New(hc, c) },
			params.Delta + params.Eps, "≈δ+ε"},
		{"Marzullo intervals", func(_ sim.ProcID, c clock.Local) sim.Process { return marzullo.New(mzc, c) },
			2 * float64(params.N) * params.Eps, "(probabilistic analysis)"},
	}
}

// runE08 measures steady-state agreement, adjustment size and messages per
// round for all six algorithms on the identical substrate, fault-free and
// with f silent faults, reproducing the qualitative comparison of §10:
// WL ≈ 4ε beats ST/HSSD ≈ δ+ε whenever δ > 3ε, and beats CNV ≈ 2nε always.
func runE08() ([]*Table, error) {
	params := analysis.Default(7, 2)
	rounds := 20
	algs := algorithms(params)

	t := &Table{
		ID:       "E08",
		Title:    "Six algorithms, one substrate (n=7, f=2, δ=10ms, ε=1ms, ρ=1e−5, P=1s)",
		PaperRef: "§10",
		Columns:  []string{"algorithm", "paper agreement", "measured (no faults)", "measured (f silent)", "max |ADJ|", "msgs/round"},
	}
	// Two trials per algorithm: fault-free first, then f silent faults. The
	// ordered Each completes one table row per clean/faulty pair.
	type trial struct {
		alg    int
		faulty bool
	}
	var points []trial
	for i := range algs {
		points = append(points, trial{alg: i, faulty: false}, trial{alg: i, faulty: true})
	}
	var cleanSkew, cleanAdj, cleanMsgs float64
	sweep := Sweep[trial]{
		Name:   "E08",
		Params: points,
		Build: func(p trial) (Workload, error) {
			var mix map[sim.ProcID]func() sim.Process
			if p.faulty {
				mix = map[sim.ProcID]func() sim.Process{
					5: func() sim.Process { return faults.Silent{} },
					6: func() sim.Process { return faults.Silent{} },
				}
			}
			return Workload{
				Cfg:      core.Config{Params: params},
				MakeProc: algs[p.alg].mk,
				Faults:   mix,
				Rounds:   rounds,
				Seed:     17,
			}, nil
		},
		Each: func(p trial, _ Workload, res *Result) error {
			if !p.faulty {
				warm := res.Skew.Warmup
				cleanSkew = res.Skew.MaxAfterWarmup()
				cleanAdj = res.Rounds.MaxAbsAdj(warm)
				cleanMsgs = float64(res.Engine.MessagesSent()) / float64(rounds)
				return nil
			}
			alg := algs[p.alg]
			t.AddRow(alg.name,
				fmt.Sprintf("%s %s", FmtDur(alg.paperAgree), alg.paperNote),
				FmtDur(cleanSkew), FmtDur(res.Skew.MaxAfterWarmup()),
				FmtDur(cleanAdj), fmt.Sprintf("%.0f", cleanMsgs))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("shape check: WL ≤ ST/HSSD requires δ > 3ε (here δ=10ε); WL ≪ CNV's 2nε worst case; ST/HSSD relay costs up to 2n² msgs/round under faults")
	return []*Table{t}, nil
}
