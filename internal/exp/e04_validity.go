package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
)

func init() {
	register(Experiment{
		ID:       "E04",
		Title:    "Validity envelope: local time advances linearly with real time",
		PaperRef: "Theorem 19",
		Run:      runE04,
	})
}

// runE04 runs long executions under different drift schedules and verifies
// the (α₁, α₂, α₃)-validity envelope of Theorem 19 at every sample point.
func runE04() ([]*Table, error) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	a1, a2, a3 := cfg.Validity()

	t := &Table{
		ID:       "E04",
		Title:    "Envelope α₁(t−tmax⁰)−α₃ ≤ L_p(t)−T⁰ ≤ α₂(t−tmin⁰)+α₃",
		PaperRef: "Thm 19",
		Columns:  []string{"drift schedule", "samples", "worst violation", "holds"},
	}
	type schedule struct {
		name  string
		drift clock.DriftSchedule
	}
	sweep := Sweep[schedule]{
		Name: "E04",
		Params: []schedule{
			{"constant extremes", clock.ConstantDrift{RhoBound: cfg.Rho}},
			{"random walk", clock.RandomWalkDrift{RhoBound: cfg.Rho, SegmentDur: 3, Horizon: 120, Seed: 21}},
			{"alternating antiphase", clock.AlternatingDrift{RhoBound: cfg.Rho, Period: 2, Horizon: 120}},
		},
		Build: func(s schedule) (Workload, error) {
			return Workload{Cfg: cfg, Rounds: 40, Drift: s.drift, Seed: 13}, nil
		},
		Each: func(s schedule, _ Workload, res *Result) error {
			v := res.Validity.WorstViolation()
			t.AddRow(s.name, fmtInt(res.Validity.Samples()), FmtDur(v), Verdict(v <= 0))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("α₁ = %v, α₂ = %v, α₃ = %s (λ = %s)", fmt.Sprintf("%.6f", a1), fmt.Sprintf("%.6f", a2), FmtDur(a3), FmtDur(cfg.Lambda()))
	return []*Table{t}, nil
}
