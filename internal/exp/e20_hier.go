package exp

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp/runner"
	"repro/internal/faults"
	"repro/internal/hier"
	"repro/internal/invariant"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E20",
		Title:    "Two-tier hierarchical synchronization: traffic, bound, and sharpness",
		PaperRef: "§4 composed twice; Theorem 16 per tier; A2 per tier",
		Run:      runE20,
	})
}

// e20ScaleRounds matches e19Rounds so the flat and hierarchical per-round
// message counts divide the same number of maintenance rounds.
const e20ScaleRounds = e19Rounds

// e20FaultRounds gives elections (2.5·P of silence) and the sharpness
// divergence time to play out.
const e20FaultRounds = 10

func runE20() ([]*Table, error) {
	scale, err := e20ScaleTable()
	if err != nil {
		return nil, err
	}
	fl, err := e20FaultTable()
	if err != nil {
		return nil, err
	}
	return []*Table{scale, fl}, nil
}

// e20ClusterSize picks c ≈ √n, the traffic-optimal cluster size for
// n·c + (n/c)² message terms.
func e20ClusterSize(n int) int {
	c := int(math.Round(math.Sqrt(float64(n))))
	if c < 1 {
		c = 1
	}
	return c
}

// e20ScaleTable is the head-to-head against E19's flat baseline: same n,
// same number of rounds, flat mesh vs. two-tier hierarchy, with the
// hierarchy additionally swept across shard counts as a determinism oracle
// (whole-digest comparison, exactly like E19).
func e20ScaleTable() (*Table, error) {
	t := &Table{
		ID:       "E20",
		Title:    "Flat vs. two-tier hierarchy: per-round traffic and skew envelope",
		PaperRef: "§4 (n² messages per round) vs. n·c + (n/c)²",
		Columns:  []string{"n", "c", "topology", "shards", "msgs/round", "vs flat", "worst skew", "bound", "skew ≤ bound", "traffic ≤ 20%", "det"},
	}
	ns := []int{101, 251}
	if BigSweeps() {
		ns = append(ns, 1009)
	}
	if StressTier() {
		ns = append(ns, 16385)
	}
	type nRows struct{ rows [][]string }
	all, err := runner.Map(0, len(ns), func(i int) (nRows, error) {
		n := ns[i]
		c := e20ClusterSize(n)
		var out nRows

		// Flat baseline. Above the sequential-tier sizes the flat mesh is
		// not worth executing (E19's stress rows already pay that bill), so
		// the comparison denominator falls back to the analytic n² copies.
		flatPerRound := float64(n) * float64(n)
		if n <= 8192 {
			fr, err := e19Trial(n, 1)
			if err != nil {
				return out, fmt.Errorf("flat n=%d: %w", n, err)
			}
			flatPerRound = float64(fr.msgs) / float64(e20ScaleRounds)
			out.rows = append(out.rows, []string{
				fmtInt(n), "—", "flat", "1",
				fmtInt(int(flatPerRound)), "100%",
				FmtDur(fr.maxSkew), FmtDur(fr.gamma), Verdict(fr.maxSkew <= fr.gamma),
				"—", Verdict(true),
			})
		}

		counts := []int{1, 2, 8}
		if n > 8192 {
			counts = []int{8, 16}
		}
		var base *e20Run
		for _, k := range counts {
			r, err := e20Trial(n, c, k)
			if err != nil {
				return out, fmt.Errorf("hier n=%d c=%d shards=%d: %w", n, c, k, err)
			}
			det := true
			if base == nil {
				base = r
			} else {
				det = *r == *base
				if !det {
					return out, fmt.Errorf("E20 n=%d: shards=%d diverged from shards=%d: %+v vs %+v", n, k, counts[0], *r, *base)
				}
			}
			perRound := float64(r.msgs) / float64(e20ScaleRounds)
			ratio := perRound / flatPerRound
			if ratio > 0.20 {
				return out, fmt.Errorf("E20 n=%d: hierarchy sends %.1f%% of flat traffic, want ≤ 20%%", n, 100*ratio)
			}
			out.rows = append(out.rows, []string{
				fmtInt(n), fmtInt(c), "hier", fmtInt(k),
				fmtInt(int(perRound)), fmt.Sprintf("%.1f%%", 100*ratio),
				FmtDur(r.maxSkew), FmtDur(r.gamma), Verdict(r.maxSkew <= r.gamma),
				Verdict(ratio <= 0.20), Verdict(det),
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, nr := range all {
		for _, row := range nr.rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("hier: clusters of c ≈ √n run the §4.2 algorithm on a fast (δ_in=2ms) substrate; representatives run it again across clusters (δ_out=30ms) and relay corrections")
	t.AddNote("bound is γ for flat rows and γ_composed = 2γ_in + γ_out + AdjBound_out for hier rows; skew sampled at window cuts after %d warmup rounds", e20ScaleRounds/2)
	t.AddNote("identical hier digests across shard counts pin clusters straddling shard boundaries (c ≈ √n never divides the shard width)")
	if StressTier() {
		t.AddNote("n=16385 flat baseline is analytic (n² copies/round); E19's stress rows measure that mesh directly")
	}
	return t, nil
}

// e20Run is one hierarchy trial's deterministic digest; trials at different
// shard counts must produce identical values (compared as a whole struct).
type e20Run struct {
	windows int
	events  int
	msgs    int64
	maxSkew float64
	gamma   float64
}

// e20Trial runs the two-tier system at size n, cluster size c, across k
// shards.
func e20Trial(n, c, k int) (*e20Run, error) {
	s, err := hier.Build(hier.Default(n, c))
	if err != nil {
		return nil, err
	}
	se, err := sim.NewSharded(s.SimConfig(e20ScaleRounds, runner.DeriveSeed(20, n)), k)
	if err != nil {
		return nil, err
	}
	r := &e20Run{gamma: s.Cfg.GammaComposed()}
	warm := s.Warmup(e20ScaleRounds)
	se.OnWindow = func(se *sim.ShardedEngine, cut clock.Real) {
		if cut < warm {
			return
		}
		lo, hi, count := se.LocalTimeSpread(cut)
		if count > 0 && float64(hi-lo) > r.maxSkew {
			r.maxSkew = float64(hi - lo)
		}
	}
	horizon := s.Horizon(e20ScaleRounds)
	if err := se.Run(horizon); err != nil {
		return nil, err
	}
	lo, hi, count := se.LocalTimeSpread(horizon)
	if count > 0 && float64(hi-lo) > r.maxSkew {
		r.maxSkew = float64(hi - lo)
	}
	if math.IsNaN(r.maxSkew) {
		return nil, fmt.Errorf("skew is NaN")
	}
	r.windows = se.Windows()
	r.events = se.Steps()
	r.msgs = se.MessagesSent()
	return r, nil
}

// ---- fault tolerance, partition containment, and sharpness ----

// e20FaultTable exercises the composition's fault budget at n=80, c=8
// (m=10 clusters, f_in=2, f_out=3): Byzantine followers inside a cluster,
// Byzantine/crashed representatives forcing re-election, a cluster cut off
// by link failures, and a sharpness leg where Byzantine representatives
// exceed the outer tier's threshold and agreement must break.
func e20FaultTable() (*Table, error) {
	t := &Table{
		ID:       "E20b",
		Title:    "Two-tier fault budget: f_in per cluster, f_out across clusters, sharpness",
		PaperRef: "A2 per tier; Theorem 16 per tier; §5 sharpness",
		Columns:  []string{"leg", "byz", "checked skew", "global skew", "γ_composed", "checked ≤ γ", "global ≤ γ", "invariant", "expect"},
	}
	legs := e20Legs()
	runs, err := runner.Map(0, len(legs), func(i int) (*e20FaultRun, error) {
		r, err := e20FaultTrial(legs[i])
		if err != nil {
			return nil, fmt.Errorf("E20 leg %s: %w", legs[i].name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, leg := range legs {
		r := runs[i]
		connOK := r.connSkew <= r.gamma
		globOK := r.globSkew <= r.gamma
		expect := "hold"
		match := connOK && globOK && r.inv
		switch {
		case leg.wantConn && !leg.wantGlob:
			expect = "contain"
			match = connOK && !globOK && r.inv
		case !leg.wantConn:
			expect = "break"
			match = !globOK && !r.inv
		}
		if !match {
			return nil, fmt.Errorf("E20 leg %s: expectation %s not met (checked %.3gs global %.3gs γ %.3gs invariant=%v)",
				leg.name, expect, r.connSkew, r.globSkew, r.gamma, r.inv)
		}
		t.AddRow(leg.name, leg.byz,
			FmtDur(r.connSkew), FmtDur(r.globSkew), FmtDur(r.gamma),
			Verdict(connOK), Verdict(globOK), Verdict(r.inv), expect)
	}
	t.AddNote("n=80, c=8: m=10 clusters, f_in=2 per cluster, f_out=3 representatives; %d rounds, skew after warmup", e20FaultRounds)
	t.AddNote("checked skew excludes the partitioned cluster in the partition leg (everywhere else it equals the global skew); the invariant column is the runtime hier-agreement checker's verdict over the same population")
	t.AddNote("contain: the cut-off cluster keeps its internal γ_in envelope (its representative's outer average skips on a cold ARR) while the connected majority holds γ_composed — the damage does not spread")
	t.AddNote("break: 4 two-faced representatives exceed f_out=3, steering two balanced groups of honest representatives apart — the composed bound is sharp at the outer tier's A2 threshold")
	return t, nil
}

// e20Leg describes one fault-table configuration.
type e20Leg struct {
	name string
	byz  string
	// faulty automata substituted into the built system, by id.
	faulty map[sim.ProcID]func(cfg hier.Config) sim.Process
	// excludeCluster marks a cluster left out of the checked population
	// (-1: none).
	excludeCluster int
	// offsetCluster shifts one cluster's initial frame by offset seconds
	// (violating the outer tier's A4 on purpose); -1: none.
	offsetCluster int
	offset        float64
	// partition cuts every link between excludeCluster and the rest.
	partition bool
	// wantConn/wantGlob state the expected verdicts for the checked and
	// global populations.
	wantConn, wantGlob bool
}

func e20Legs() []e20Leg {
	mkInnerTwoFaced := func(cluster int) func(cfg hier.Config) sim.Process {
		return func(cfg hier.Config) sim.Process {
			return &faults.TwoFaced{
				Cfg:  core.Config{Params: cfg.InnerParams(cluster)},
				Lead: 1.5e-3, Lag: 1.5e-3,
				EarlyTo:     func(to sim.ProcID) bool { return to%2 == 0 },
				MakePayload: func(mark clock.Local) any { return hier.TMsg{Tier: hier.TierInner, Mark: mark} },
			}
		}
	}
	silent := func(cfg hier.Config) sim.Process { return faults.Silent{} }
	outerTwoFaced := func(cfg hier.Config) sim.Process {
		return &faults.TwoFaced{
			Cfg:  core.Config{Params: cfg.OuterParams()},
			Lead: 8e-3, Lag: 8e-3,
			EarlyTo:     func(to sim.ProcID) bool { return cfg.ClusterOf(to)%2 == 0 },
			MakePayload: func(mark clock.Local) any { return hier.TMsg{Tier: hier.TierOuter, Mark: mark} },
		}
	}
	splitRep := func(cfg hier.Config) sim.Process {
		return &e20SplitRep{H: cfg, Lead: 12e-3, Lag: 12e-3, Ramp: 9e-3}
	}
	return []e20Leg{
		{
			name: "benign", byz: "0",
			excludeCluster: -1, offsetCluster: -1,
			wantConn: true, wantGlob: true,
		},
		{
			name: "byz members", byz: "2 two-faced followers (cluster 1)",
			faulty: map[sim.ProcID]func(hier.Config) sim.Process{
				9: mkInnerTwoFaced(1), 10: mkInnerTwoFaced(1),
			},
			excludeCluster: -1, offsetCluster: -1,
			wantConn: true, wantGlob: true,
		},
		{
			name: "byz reps f=f_out", byz: "2 crashed + 1 two-faced representative",
			faulty: map[sim.ProcID]func(hier.Config) sim.Process{
				8: silent, 16: silent, 24: outerTwoFaced,
			},
			excludeCluster: -1, offsetCluster: -1,
			wantConn: true, wantGlob: true,
		},
		{
			name: "partition", byz: "0 (cluster 0 cut off, frame +60ms)",
			excludeCluster: 0, offsetCluster: 0, offset: 60e-3, partition: true,
			wantConn: true, wantGlob: false,
		},
		{
			name: "sharpness f>f_out", byz: "4 split representatives",
			faulty: map[sim.ProcID]func(hier.Config) sim.Process{
				0: splitRep, 16: splitRep, 32: splitRep, 48: splitRep,
			},
			excludeCluster: -1, offsetCluster: -1,
			wantConn: false, wantGlob: false,
		},
	}
}

// e20FaultRun is one leg's deterministic digest.
type e20FaultRun struct {
	connSkew float64
	globSkew float64
	gamma    float64
	inv      bool
}

func e20FaultTrial(leg e20Leg) (*e20FaultRun, error) {
	const n, c = 80, 8
	hcfg := hier.Default(n, c)
	s, err := hier.Build(hcfg)
	if err != nil {
		return nil, err
	}
	if j := leg.offsetCluster; j >= 0 {
		lo, hi := hcfg.ClusterBounds(j)
		for id := lo; id < hi; id++ {
			s.Corrs[id] += clock.Local(leg.offset)
			s.Starts[id] = s.Clocks[id].Inv(clock.Local(hcfg.T0) - s.Corrs[id])
			s.Procs[id] = hier.NewMember(hcfg, id, s.Corrs[id])
			if s.Starts[id] > s.MaxStart {
				s.MaxStart = s.Starts[id]
			}
		}
	}
	cfg := s.SimConfig(e20FaultRounds, runner.DeriveSeed(20, 80))
	if len(leg.faulty) > 0 {
		cfg.Faulty = make([]bool, n)
		for id, mk := range leg.faulty {
			s.Procs[id] = mk(hcfg)
			cfg.Faulty[id] = true
		}
	}
	var exclude []bool
	if leg.partition {
		dead := make(map[sim.Link]bool)
		lo, hi := hcfg.ClusterBounds(leg.excludeCluster)
		for a := lo; a < hi; a++ {
			for b := sim.ProcID(0); b < sim.ProcID(n); b++ {
				if b >= lo && b < hi {
					continue
				}
				dead[sim.Link{From: a, To: b}] = true
				dead[sim.Link{From: b, To: a}] = true
			}
		}
		cfg.Channel = sim.LossyLinks{Dead: dead}
	}
	if leg.excludeCluster >= 0 {
		exclude = make([]bool, hcfg.Clusters())
		exclude[leg.excludeCluster] = true
	}

	e, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	warm := s.Warmup(e20FaultRounds)
	chk := invariant.NewHierAgreement(hcfg.GammaComposed(), hcfg.GammaInner(), c, warm)
	chk.Exclude = exclude
	spread := &e20Spread{clusterSize: c, warmup: warm, exclude: exclude}
	e.Observe(chk)
	e.Observe(spread)
	if err := e.Run(s.Horizon(e20FaultRounds)); err != nil {
		return nil, err
	}
	if spread.samples == 0 {
		return nil, fmt.Errorf("spread sampler never fired")
	}
	return &e20FaultRun{
		connSkew: spread.maxConn,
		globSkew: spread.maxGlobal,
		gamma:    hcfg.GammaComposed(),
		inv:      chk.Ok(),
	}, nil
}

// e20Spread measures the post-warmup nonfaulty spread twice: over everyone
// (global) and over the non-excluded clusters (checked population).
type e20Spread struct {
	clusterSize int
	warmup      clock.Real
	exclude     []bool

	maxGlobal, maxConn float64
	samples            int64
}

var _ sim.Sampler = (*e20Spread)(nil)

// Sample implements sim.Sampler.
func (s *e20Spread) Sample(e *sim.Engine, _ bool) {
	t := e.Now()
	if t < s.warmup {
		return
	}
	var glo, ghi, clo, chi clock.Local
	gn, cn := 0, 0
	for _, p := range e.NonfaultyIDs() {
		lt, ok := e.LocalTime(p, t)
		if !ok {
			continue
		}
		if gn == 0 || lt < glo {
			glo = lt
		}
		if gn == 0 || lt > ghi {
			ghi = lt
		}
		gn++
		if j := int(p) / s.clusterSize; s.exclude != nil && j < len(s.exclude) && s.exclude[j] {
			continue
		}
		if cn == 0 || lt < clo {
			clo = lt
		}
		if cn == 0 || lt > chi {
			chi = lt
		}
		cn++
	}
	if gn < 2 || cn < 2 {
		return
	}
	s.samples++
	if d := float64(ghi - glo); d > s.maxGlobal {
		s.maxGlobal = d
	}
	if d := float64(chi - clo); d > s.maxConn {
		s.maxConn = d
	}
}

// e20SendAt schedules one adversarial copy.
type e20SendAt struct {
	to      sim.ProcID
	payload any
}

type e20NextRound struct{}

// e20SplitRep is the sharpness adversary: a Byzantine representative that
// (a) keeps its own honest followers captive with zero-adjustment
// discipline heartbeats (suppressing the election that would restore an
// honest representative), and (b) plays the outer tier two-faced, sending
// its round mark early to the low-indexed clusters and late to the
// high-indexed ones, splitting the honest representatives into two equal
// groups (byz at 0/2/4/6 leaves {1,3,5} early and {7,8,9} late — a
// balanced split matters: against a lopsided split the honest majority's
// arrivals dominate the midpoint and drag the minority back). With more
// such representatives than f_out, reduce_f cannot cut them all and a
// surviving extreme arrival biases every midpoint.
//
// A static early offset saturates: once the fast group has gained ≈Lead,
// the adversary's arrivals coincide with the honest band and stop pulling.
// So the early side *ramps* by Ramp per round — the adversary keeps
// planting its arrival at the leading edge of the fast group's receding
// window, exactly the §5 sharpness adversary's move — while the static
// late side pins the slow group in place. The gap then grows without bound
// and crosses γ_composed within a few outer rounds.
type e20SplitRep struct {
	H         hier.Config
	Lead, Lag float64
	Ramp      float64
	round     int
}

var _ sim.Process = (*e20SplitRep)(nil)

// Receive implements sim.Process.
func (r *e20SplitRep) Receive(ctx *sim.Context, m sim.Message) {
	switch m.Kind {
	case sim.KindStart:
		r.schedule(ctx)
	case sim.KindTimer:
		switch p := m.Payload.(type) {
		case e20SendAt:
			ctx.Send(p.to, p.payload)
		case e20NextRound:
			r.schedule(ctx)
		}
	}
}

func (r *e20SplitRep) schedule(ctx *sim.Context) {
	h := r.H
	my := h.ClusterOf(ctx.ID())
	outer := h.OuterParams()
	mark := outer.T0 + float64(r.round)*outer.P
	for j := 0; j < h.Clusters(); j++ {
		if j == my {
			continue
		}
		at := mark + r.Lag
		if j <= 5 {
			at = mark - r.Lead - r.Ramp*float64(r.round)
		}
		lo, hi := h.ClusterBounds(j)
		cands := h.Candidates
		if size := int(hi - lo); cands > size {
			cands = size
		}
		for q := 0; q < cands; q++ {
			ctx.SetTimer(clock.Local(at), e20SendAt{
				to:      lo + sim.ProcID(q),
				payload: hier.TMsg{Tier: hier.TierOuter, Mark: clock.Local(mark)},
			})
		}
	}
	lo, hi := h.ClusterBounds(my)
	heartbeat := mark + outer.Window()
	for q := lo; q < hi; q++ {
		if q != ctx.ID() {
			ctx.SetTimer(clock.Local(heartbeat), e20SendAt{
				to:      q,
				payload: hier.Discipline{Adj: 0, Round: int32(r.round)},
			})
		}
	}
	r.round++
	ctx.SetTimer(clock.Local(outer.T0+float64(r.round)*outer.P-r.Lead-r.Ramp*float64(r.round)-1e-9), e20NextRound{})
}
