package exp

import (
	"repro/internal/analysis"
	"repro/internal/core"
)

func init() {
	register(Experiment{
		ID:       "E01",
		Title:    "Per-round halving of clock separation and the 4ε+4ρP floor",
		PaperRef: "Theorem 4(c), §7 closing discussion",
		Run:      runE01,
	})
}

// runE01 starts the clocks far apart (but within the window) and tracks the
// measured per-round spread βᵢ of round beginnings. The paper predicts
// βᵢ₊₁ ≈ βᵢ/2 + 2ε + 2ρP, converging to a floor of about 4ε + 4ρP.
// A single execution: the per-round halving is one trajectory, so there is
// nothing to fan out.
func runE01() ([]*Table, error) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	res, err := Run(Workload{Cfg: cfg, Rounds: 14, InitialSpread: 8e-3, Seed: 11})
	if err != nil {
		return nil, err
	}
	betas := res.Rounds.BetaSeries()
	floor := cfg.BetaFloor()

	t := &Table{
		ID:       "E01",
		Title:    "Measured βᵢ per round vs the paper's halving recurrence",
		PaperRef: "Thm 4(c); §7: β ≈ 4ε+4ρP",
		Columns:  []string{"round", "measured βᵢ", "paper bound βᵢ₋₁/2+2ε+2ρP", "within"},
	}
	prev := 0.0
	for i, b := range betas {
		bound := "-"
		within := "-"
		if i > 0 {
			bb := prev/2 + 2*cfg.Eps + 2*cfg.Rho*cfg.P
			bound = FmtDur(bb)
			within = Verdict(b <= bb*1.05)
		}
		t.AddRow(fmtInt(i), FmtDur(b), bound, within)
		prev = b
	}
	t.AddNote("floor 4ε+4ρP = %s; steady-state measured β = %s", FmtDur(floor), FmtDur(betas[len(betas)-1]))
	t.AddNote("initial spread %s deliberately exceeds β to make the halving visible", FmtDur(8e-3))
	return []*Table{t}, nil
}
