package exp

import (
	"fmt"

	"repro/internal/exp/runner"
)

// Sweep is the shared shape of an experiment's trial loop: a list of
// parameter points, a builder that assembles the workload for one point,
// and a reducer that consumes the results in order. Sweep.Run fans the
// workloads out across the runner's worker pool, so every experiment that
// routes its loops through a Sweep regenerates its tables in parallel —
// with output byte-identical to a serial run, because Each always observes
// the trials in Params order.
//
// Build and the workload it returns execute on worker goroutines; they
// must not write shared state. A Build that needs to hand extra per-trial
// artifacts to Each (e.g. a process instance created inside a fault
// closure) should use pointer Params and store the artifact on its own
// parameter — each trial owns its element, and the pool's join provides
// the happens-before edge for Each's reads.
type Sweep[P any] struct {
	// Name labels errors, conventionally the experiment id ("E05").
	Name string
	// Params holds one entry per trial, in table order.
	Params []P
	// Build assembles one trial's workload. Validation failures abort the
	// sweep. Runs concurrently with other trials' Build and Run.
	Build func(p P) (Workload, error)
	// Each consumes one trial's result together with the workload it ran.
	// Called sequentially in Params order after the trial completes.
	Each func(p P, w Workload, r *Result) error
}

// trial pairs the workload a Build produced with its Result so Each can
// read configuration (w.Cfg) without recomputing it.
type trial struct {
	w Workload
	r *Result
}

// Run executes the sweep: Build+Run on the worker pool, Each in order.
// Errors carry the failing trial's index ("E05[7]: …") so a failure deep
// in a large sweep names its parameter point.
func (s Sweep[P]) Run() error {
	trials, err := runner.Map(0, len(s.Params), func(i int) (trial, error) {
		w, err := s.Build(s.Params[i])
		if err != nil {
			return trial{}, fmt.Errorf("%s[%d]: %w", s.Name, i, err)
		}
		r, err := Run(w)
		if err != nil {
			return trial{}, fmt.Errorf("%s[%d]: %w", s.Name, i, err)
		}
		return trial{w: w, r: r}, nil
	})
	if err != nil {
		return err
	}
	for i, tr := range trials {
		if err := s.Each(s.Params[i], tr.w, tr.r); err != nil {
			return fmt.Errorf("%s[%d]: %w", s.Name, i, err)
		}
	}
	return nil
}
