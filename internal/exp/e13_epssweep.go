package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E13",
		Title:    "Scaling of achievable synchronization with ε and with ρP",
		PaperRef: "Theorem 16; §5.2: β ≈ 4ε + 4ρP",
		Run:      runE13,
	})
}

// runE13 sweeps ε (with ρP negligible) and then ρ (with ε small) under the
// adversarial extremal delay model, and checks that the measured steady
// skew scales like the paper's closed forms: ≈ linear in ε with slope ≈ 4–5
// (β ≈ 4ε, γ ≈ β+ε), and linear in ρP.
func runE13() ([]*Table, error) {
	t1 := &Table{
		ID:       "E13",
		Title:    "Steady skew vs ε (adversarial delays, ρ=1e−6)",
		PaperRef: "γ ≈ β+ε ≈ 5ε",
		Columns:  []string{"ε", "paper γ", "measured steady skew", "skew/ε"},
	}
	sweep1 := Sweep[float64]{
		Name:   "E13",
		Params: []float64{0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3},
		Build: func(eps float64) (Workload, error) {
			params := analysis.Params{
				N: 7, F: 2,
				Rho: 1e-6, Delta: 20e-3, Eps: eps,
				Beta: 4*eps + 0.6*eps, P: 1.0,
			}
			if err := params.Validate(); err != nil {
				return Workload{}, fmt.Errorf("ε=%v: %w", eps, err)
			}
			return Workload{
				Cfg:    core.Config{Params: params},
				Rounds: 16,
				Delay:  sim.ExtremalDelay{Delta: params.Delta, Eps: eps},
				Seed:   29,
			}, nil
		},
		Each: func(eps float64, w Workload, res *Result) error {
			params := w.Cfg.Params
			skew := res.Skew.MaxAfterWarmup()
			t1.AddRow(FmtDur(eps), FmtDur(params.Gamma()), FmtDur(skew), FmtRatio(skew/eps))
			return nil
		},
	}
	if err := sweep1.Run(); err != nil {
		return nil, err
	}
	t1.AddNote("skew/ε stable across a 16× ε range demonstrates the linear scaling; the constant sits below the worst-case 5")

	t2 := &Table{
		ID:       "E13b",
		Title:    "Steady skew vs ρ (ε=0.1ms, P=2s)",
		PaperRef: "β ≈ 4ε+4ρP",
		Columns:  []string{"ρ", "paper β floor", "measured steady skew", "skew/(ρP)"},
	}
	sweep2 := Sweep[float64]{
		Name:   "E13b",
		Params: []float64{1e-5, 5e-5, 2e-4, 8e-4},
		Build: func(rho float64) (Workload, error) {
			params := analysis.Params{
				N: 7, F: 2,
				Rho: rho, Delta: 10e-3, Eps: 0.1e-3,
				Beta: 4*0.1e-3 + 4*rho*2 + 2e-3, P: 2.0,
			}
			if err := params.Validate(); err != nil {
				return Workload{}, fmt.Errorf("ρ=%v: %w", rho, err)
			}
			return Workload{Cfg: core.Config{Params: params}, Rounds: 16, Seed: 29}, nil
		},
		Each: func(rho float64, w Workload, res *Result) error {
			params := w.Cfg.Params
			skew := res.Skew.MaxAfterWarmup()
			t2.AddRow(fmt.Sprintf("%.0e", rho), FmtDur(params.BetaFloor()), FmtDur(skew), FmtRatio(skew/(rho*params.P)))
			return nil
		},
	}
	if err := sweep2.Run(); err != nil {
		return nil, err
	}
	t2.AddNote("with drift dominating, skew grows linearly in ρP: skew/(ρP) approaches the constant-drift spread factor 2")
	return []*Table{t1, t2}, nil
}
