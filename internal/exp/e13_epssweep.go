package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E13",
		Title:    "Scaling of achievable synchronization with ε and with ρP",
		PaperRef: "Theorem 16; §5.2: β ≈ 4ε + 4ρP",
		Run:      runE13,
	})
}

// runE13 sweeps ε (with ρP negligible) and then ρ (with ε small) under the
// adversarial extremal delay model, and checks that the measured steady
// skew scales like the paper's closed forms: ≈ linear in ε with slope ≈ 4–5
// (β ≈ 4ε, γ ≈ β+ε), and linear in ρP.
func runE13() ([]*Table, error) {
	t1 := &Table{
		ID:       "E13",
		Title:    "Steady skew vs ε (adversarial delays, ρ=1e−6)",
		PaperRef: "γ ≈ β+ε ≈ 5ε",
		Columns:  []string{"ε", "paper γ", "measured steady skew", "skew/ε"},
	}
	for _, eps := range []float64{0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3} {
		params := analysis.Params{
			N: 7, F: 2,
			Rho: 1e-6, Delta: 20e-3, Eps: eps,
			Beta: 4*eps + 0.6*eps, P: 1.0,
		}
		if err := params.Validate(); err != nil {
			return nil, fmt.Errorf("E13 ε=%v: %w", eps, err)
		}
		cfg := core.Config{Params: params}
		res, err := Run(Workload{
			Cfg:    cfg,
			Rounds: 16,
			Delay:  sim.ExtremalDelay{Delta: params.Delta, Eps: eps},
			Seed:   29,
		})
		if err != nil {
			return nil, err
		}
		skew := res.Skew.MaxAfterWarmup()
		t1.AddRow(FmtDur(eps), FmtDur(params.Gamma()), FmtDur(skew), FmtRatio(skew/eps))
	}
	t1.AddNote("skew/ε stable across a 16× ε range demonstrates the linear scaling; the constant sits below the worst-case 5")

	t2 := &Table{
		ID:       "E13b",
		Title:    "Steady skew vs ρ (ε=0.1ms, P=2s)",
		PaperRef: "β ≈ 4ε+4ρP",
		Columns:  []string{"ρ", "paper β floor", "measured steady skew", "skew/(ρP)"},
	}
	for _, rho := range []float64{1e-5, 5e-5, 2e-4, 8e-4} {
		params := analysis.Params{
			N: 7, F: 2,
			Rho: rho, Delta: 10e-3, Eps: 0.1e-3,
			Beta: 4*0.1e-3 + 4*rho*2 + 2e-3, P: 2.0,
		}
		if err := params.Validate(); err != nil {
			return nil, fmt.Errorf("E13 ρ=%v: %w", rho, err)
		}
		cfg := core.Config{Params: params}
		res, err := Run(Workload{Cfg: cfg, Rounds: 16, Seed: 29})
		if err != nil {
			return nil, err
		}
		skew := res.Skew.MaxAfterWarmup()
		t2.AddRow(fmt.Sprintf("%.0e", rho), FmtDur(params.BetaFloor()), FmtDur(skew), FmtRatio(skew/(rho*params.P)))
	}
	t2.AddNote("with drift dominating, skew grows linearly in ρP: skew/(ρP) approaches the constant-drift spread factor 2")
	return []*Table{t1, t2}, nil
}
