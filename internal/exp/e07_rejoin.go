package exp

import (
	"errors"
	"math"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E07",
		Title:    "Reintegration of a repaired process",
		PaperRef: "§9.1",
		Run:      runE07,
	})
}

// runE07 wakes a repaired process with a wildly wrong clock at several
// points within a round and checks that it reaches the next round mark
// within β of every nonfaulty process (the §9.1 claim), then keeps agreeing.
func runE07() ([]*Table, error) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	t := &Table{
		ID:       "E07",
		Title:    "Rejoined process's offset from the group",
		PaperRef: "§9.1: reaches Tⁱ⁺¹ within β of every nonfaulty process",
		Columns:  []string{"wake time (in round)", "rejoin round", "offset at first broadcast", "≤ β", "offset at end", "≤ γ"},
	}
	// Pointer params: the fault closure built on a worker goroutine stores
	// the trial's rejoiner on its own parameter for Each to inspect.
	type rejoinTrial struct {
		frac float64
		rj   *core.Rejoiner
	}
	sweep := Sweep[*rejoinTrial]{
		Name:   "E07",
		Params: []*rejoinTrial{{frac: 0.1}, {frac: 0.45}, {frac: 0.8}},
		Build: func(p *rejoinTrial) (Workload, error) {
			wake := clock.Real(5.0 + p.frac) // within round ~5
			return Workload{
				Cfg:    cfg,
				Rounds: 20,
				Faults: map[sim.ProcID]func() sim.Process{
					6: func() sim.Process {
						p.rj = core.NewRejoiner(cfg, -77.7)
						return p.rj
					},
				},
				StartOverride: map[sim.ProcID]clock.Real{6: wake},
				Seed:          9,
			}, nil
		},
		Each: func(p *rejoinTrial, _ Workload, res *Result) error {
			if p.rj == nil || !p.rj.Joined() {
				return errors.New("rejoiner never joined")
			}
			offStart, offEnd := rejoinOffsets(res)
			t.AddRow(FmtDur(p.frac), "joined", FmtDur(offStart), Verdict(offStart <= cfg.Beta),
				FmtDur(offEnd), Verdict(offEnd <= cfg.Gamma()))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("repaired process wakes with its clock 77.7s wrong; β = %s, γ = %s", FmtDur(cfg.Beta), FmtDur(cfg.Gamma()))
	return []*Table{t}, nil
}

// rejoinOffsets returns the rejoiner's max offset from any nonfaulty process
// shortly after it joined and at the end of the run.
func rejoinOffsets(res *Result) (atJoin, atEnd float64) {
	eng := res.Engine
	measure := func(t clock.Real) float64 {
		lt, ok := eng.LocalTime(6, t)
		if !ok {
			return math.Inf(1)
		}
		worst := 0.0
		for _, p := range eng.NonfaultyIDs() {
			o, ok := eng.LocalTime(p, t)
			if !ok {
				continue
			}
			if d := math.Abs(float64(lt - o)); d > worst {
				worst = d
			}
		}
		return worst
	}
	// Shortly after joining: two rounds after the wake is safely past the
	// gather + first broadcast.
	return measure(8.5), measure(res.Horizon)
}
