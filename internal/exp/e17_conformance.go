package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exp/runner"
	"repro/internal/faults"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E17",
		Title:    "Adversary conformance matrix: every invariant vs every strategy",
		PaperRef: "Theorems 4(a), 16, 19; A2 sharpness ([DHS])",
		Run:      runE17,
	})
}

// runE17 is the theorem-conformance harness. Part one crosses every
// registered schedule-driven adversary strategy (internal/faults) with an
// (n, f) grid and two delay models, running each cell with the
// internal/invariant checkers attached: agreement, validity, monotonicity
// and the adjustment bound must all hold whenever f < n/3, no matter what
// the adversary does. (Adaptive strategies — the ones that react through
// the delivery pipeline's adversary stage — have their own harness, the
// lower-bound experiment E18, so registering one leaves this matrix's
// pinned tables untouched.) Part two is the sharpness check: the same
// machinery with f+1 colluders in an f-sized system must break agreement
// for at least one strategy — if it cannot, the matrix is testing a hollow
// claim.
func runE17() ([]*Table, error) {
	t1 := &Table{
		ID:       "E17",
		Title:    "f < n/3: all theorem invariants hold against every adversary strategy",
		PaperRef: "Thms 4(a), 16, 19",
		Columns:  []string{"strategy", "n", "f", "delay", "skew/γ", "agreement", "validity", "monotone", "adj bound"},
	}
	type gridNF struct{ n, f int }
	grid := []gridNF{{4, 1}, {7, 2}, {10, 3}}
	if BigSweeps() {
		grid = append(grid, gridNF{13, 4})
	}
	// Nightly-only stress tier: 31- and 63-process systems per strategy ×
	// delay model — ~n² messages a round through the calendar scheduler,
	// the regime the per-push grid never reaches — each cell run at three
	// derived seeds and aggregated into one row (worst skew, AND-ed
	// verdicts). Additive-only so the golden tables (pinned without the
	// stress tier) stay byte-identical.
	const stressSeeds = 3
	var stress []gridNF
	if StressTier() {
		stress = []gridNF{{31, 10}, {63, 20}}
	}
	type point struct {
		strat   faults.Strategy
		n, f    int
		delay   string
		seedIdx int // 0 for per-push rows; 0..stressSeeds-1 for stress cells
		seeds   int // trials aggregated into this cell's row
		idx     int
	}
	var points []point
	for _, s := range faults.ScheduleDriven() {
		for _, nf := range grid {
			for _, d := range []string{"uniform", "extremal"} {
				points = append(points, point{strat: s, n: nf.n, f: nf.f, delay: d, seeds: 1, idx: len(points)})
			}
		}
		for _, nf := range stress {
			for _, d := range []string{"uniform", "extremal"} {
				for k := 0; k < stressSeeds; k++ {
					points = append(points, point{strat: s, n: nf.n, f: nf.f, delay: d, seedIdx: k, seeds: stressSeeds, idx: len(points)})
				}
			}
		}
	}
	// Aggregation state for multi-seed stress cells; Each runs sequentially
	// in Params order, so one accumulator suffices.
	var aggRatio float64
	var aggAgree, aggValid, aggMono, aggAdj bool
	sweep := Sweep[point]{
		Name:   "E17",
		Params: points,
		Build: func(p point) (Workload, error) {
			cfg := core.Config{Params: analysis.Default(p.n, p.f)}
			wseed := int64(7)
			if p.seeds > 1 {
				wseed = runner.DeriveSeed(7, p.seedIdx)
			}
			w := Workload{
				Cfg:             cfg,
				Rounds:          12,
				Faults:          faults.Mix(p.strat, cfg, faults.TopIDs(p.f, p.n), runner.DeriveSeed(17, p.idx)),
				Seed:            wseed,
				CheckInvariants: true,
			}
			if p.delay == "extremal" {
				w.Delay = sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps}
			}
			return w, nil
		},
		Each: func(p point, w Workload, res *Result) error {
			inv := res.Invariants
			for _, c := range inv.Checkers() {
				if c.Checked() == 0 {
					return fmt.Errorf("%s × (n=%d, f=%d, %s): checker %s evaluated nothing — a vacuous pass",
						p.strat.Name, p.n, p.f, p.delay, c.Name())
				}
			}
			ratio := res.Skew.MaxAfterWarmup() / w.Cfg.Gamma()
			if p.seedIdx == 0 {
				aggRatio, aggAgree, aggValid, aggMono, aggAdj = 0, true, true, true, true
			}
			if ratio > aggRatio {
				aggRatio = ratio
			}
			aggAgree = aggAgree && inv.Agreement.Ok()
			aggValid = aggValid && inv.Validity.Ok()
			aggMono = aggMono && inv.Monotonic.Ok()
			aggAdj = aggAdj && inv.Adjustment.Ok()
			if p.seedIdx < p.seeds-1 {
				return nil // stress cell: keep accumulating
			}
			t1.AddRow(p.strat.Name, fmtInt(p.n), fmtInt(p.f), p.delay,
				FmtRatio(aggRatio),
				Verdict(aggAgree),
				Verdict(aggValid),
				Verdict(aggMono),
				Verdict(aggAdj))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, fmt.Errorf("E17: %w", err)
	}
	t1.AddNote("%d strategies × %d (n, f) points × 2 delay models; every cell must read ok — the paper's bound is adversary-independent", len(faults.ScheduleDriven()), len(grid))
	if len(stress) > 0 {
		t1.AddNote("stress tier: n ∈ {31, 63} cells aggregate %d derived-seed trials each (worst skew, AND-ed verdicts)", stressSeeds)
	}

	t2, err := runE17Sharpness()
	if err != nil {
		return nil, err
	}
	return []*Table{t1, t2}, nil
}

// runE17Sharpness drives f+1 = 3 colluders against a system engineered for
// f = 2 (n = 7), with delays pinned to the adversarial extremes — the [DHS]
// regime where synchronization is impossible without authentication. At
// least one strategy must break the agreement invariant, demonstrating the
// n ≥ 3f+1 requirement is sharp rather than conservative.
func runE17Sharpness() (*Table, error) {
	t := &Table{
		ID:       "E17b",
		Title:    "Sharpness at f ≥ n/3: 3 colluders in an f=2 system must defeat some strategy",
		PaperRef: "[DHS]; A2",
		Columns:  []string{"strategy", "actual faults", "steady skew", "vs γ", "agreement"},
	}
	cfg := core.Config{Params: analysis.Default(7, 2)}
	const actual = 3 // > n/3, violating A2 on purpose
	type attack struct {
		name string
		mix  func() map[sim.ProcID]func() sim.Process
	}
	registryMix := func(name string) func() map[sim.ProcID]func() sim.Process {
		return func() map[sim.ProcID]func() sim.Process {
			s, err := faults.ByName(name)
			if err != nil {
				panic(err)
			}
			return faults.Mix(s, cfg, faults.TopIDs(actual, cfg.N), 3)
		}
	}
	attacks := []attack{
		// The engineered worst case: one coordinated plan, pull just inside
		// the collection window, split chosen to isolate two nonfaulty
		// processes — the E05b attack expressed through the clique library.
		{"clique (9ms coordinated split)", func() map[sim.ProcID]func() sim.Process {
			members := faults.NewClique(cfg, actual, 3, faults.CliqueTuning{
				Lead: 9e-3, Lag: 9e-3,
				EarlyTo: func(to sim.ProcID) bool { return int(to) < 2 },
			})
			return faults.MixProcs(faults.TopIDs(actual, cfg.N), members)
		}},
		{"clique (registry defaults)", registryMix("clique")},
		{"edge-rider", registryMix("edge-rider")},
		{"drift-max", registryMix("drift-max")},
	}
	broken := 0
	sweep := Sweep[attack]{
		Name:   "E17b",
		Params: attacks,
		Build: func(a attack) (Workload, error) {
			return Workload{
				Cfg:             cfg,
				Rounds:          25,
				Faults:          a.mix(),
				Seed:            3,
				Delay:           sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps},
				CheckInvariants: true,
			}, nil
		},
		Each: func(a attack, _ Workload, res *Result) error {
			skew := res.Skew.MaxAfterWarmup()
			gamma := cfg.Gamma()
			rel := "within γ"
			switch {
			case skew > 100*gamma:
				rel = "diverged"
			case skew > gamma:
				rel = fmt.Sprintf("%.1f× γ", skew/gamma)
			}
			ok := res.Invariants.Agreement.Ok()
			if !ok {
				broken++
			}
			cell := "held"
			if !ok {
				cell = "broken"
			}
			t.AddRow(a.name, fmtInt(actual), FmtDur(skew), rel, cell)
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, fmt.Errorf("E17b: %w", err)
	}
	if broken == 0 {
		return nil, fmt.Errorf("E17b: no strategy broke agreement at f ≥ n/3 — the sharpness check failed")
	}
	t.AddNote("%d of %d attacks broke agreement; with ≤ f faults every one of these strategies is tolerated (table E17)", broken, len(attacks))
	return t, nil
}
