package exp

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exp/runner"
	"repro/internal/faults"
	"repro/internal/sim"
)

// TestConformanceMatrix is the executable form of the acceptance claim: the
// E17 grid must show every invariant holding for every registered adversary
// at f < n/3, and the E17b sharpness check must show agreement breaking for
// at least one strategy at f ≥ n/3. (Run in CI under -race as well; the
// sweep fans the matrix across the worker pool.)
func TestConformanceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("the conformance matrix is integration-sized")
	}
	e, err := ByID("E17")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E17 produced %d tables, want 2", len(tables))
	}
	matrix, sharp := tables[0], tables[1]

	gridPoints := 3
	if BigSweeps() {
		gridPoints = 4
	}
	if StressTier() {
		gridPoints += 2 // the nightly n ∈ {31, 63} rows (one aggregated row per cell)
	}
	wantRows := len(faults.ScheduleDriven()) * gridPoints * 2
	if len(matrix.Rows) != wantRows {
		t.Errorf("matrix has %d rows, want %d (schedule-driven strategies × grid × delays)", len(matrix.Rows), wantRows)
	}
	for _, row := range matrix.Rows {
		for _, cell := range row {
			if cell == "VIOLATED" {
				t.Errorf("conformance violated at f < n/3: %v", row)
			}
		}
	}

	broken := 0
	for _, row := range sharp.Rows {
		if row[len(row)-1] == "broken" {
			broken++
		}
	}
	if broken == 0 {
		t.Error("sharpness check found no agreement break at f ≥ n/3")
	}
}

// FuzzAdversaryTiming searches the random-timing adversary's schedule space
// for a parameterization that breaks a theorem invariant at f < n/3. The
// paper says none exists: any counterexample the mutation engine finds is
// either an implementation bug or a refutation. The seed corpus starts from
// the schedules that stress reduce_f hardest — edge-pinned offsets at ±(β+ε)
// and the clamp extremes.
func FuzzAdversaryTiming(f *testing.F) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	edge := cfg.Beta + cfg.Eps
	f.Add(int64(1), 4e-3, 0.0)     // mid-window jitter
	f.Add(int64(2), edge, edge)    // jittered late edge-riding
	f.Add(int64(3), edge, -edge)   // jittered early edge-riding
	f.Add(int64(4), 0.0, edge)     // deterministic late pin
	f.Add(int64(5), 0.0, -edge)    // deterministic early pin
	f.Add(int64(6), 0.25, -0.25)   // clamp extremes (P/4)
	f.Add(int64(7), 1e-9, 12.5e-3) // beyond the window, nearly no jitter
	f.Fuzz(func(t *testing.T, seed int64, spread, bias float64) {
		mix := make(map[sim.ProcID]func() sim.Process, cfg.F)
		for i, id := range faults.TopIDs(cfg.F, cfg.N) {
			adv := faults.NewRandomTiming(cfg, runner.DeriveSeed(seed, i), spread, bias)
			mix[id] = func() sim.Process { return adv }
		}
		res, err := Run(Workload{
			Cfg:             cfg,
			Rounds:          8,
			Faults:          mix,
			Seed:            seed,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("seed=%d spread=%v bias=%v: %v", seed, spread, bias, err)
		}
		if !res.Invariants.Ok() {
			t.Fatalf("seed=%d spread=%v bias=%v: invariant broken at f < n/3:\n%s",
				seed, spread, bias, res.Invariants.Summary())
		}
	})
}
