package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/baselines/lm"
	"repro/internal/baselines/st"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp/runner"
	"repro/internal/faults"
	"repro/internal/invariant"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E18",
		Title:    "Lower-bound sharpness: adaptive retiming vs the ε(1−1/n) bound",
		PaperRef: "§1 (Lundelius–Lynch lower bound); Thm 16",
		Run:      runE18,
	})
}

// witnessFraction is the fraction of ε(1−1/n) the adaptive adversary must
// demonstrably reach for the reproduction to count as sharp.
const witnessFraction = 0.5

// e18Substrate is the shared setup of both E18 tables: delays declared with
// the full [δ−ε, δ+ε] band but sampled at the center δ (sim.CenterDelay), so
// the ε-freedom belongs entirely to whoever manipulates the delivery
// pipeline, and clocks that start essentially perfectly synchronized (1 µs
// spread — far inside A4), so any steady skew is manufactured by the
// adversary rather than inherited from the initial state.
func e18Substrate(w *Workload) {
	cfg := w.Cfg
	w.Delay = sim.CenterDelay{Delta: cfg.Delta, Eps: cfg.Eps}
	w.InitialSpread = 1e-6
	w.Rounds = 20
}

// runE18 reproduces the paper's second half experimentally. The companion
// lower bound says no algorithm can synchronize closer than ε(1−1/n): an
// adversary that retimes deliveries inside the [δ−ε, δ+ε] uncertainty
// window can always manufacture that much skew, because the shifted
// executions are indistinguishable from honest ones. Table E18a pits the
// adaptive skewmax adversary (delivery-pipeline retiming, zero faulty
// processes) against the paper's algorithm and the [LM]/[ST] baselines and
// requires it to reach at least witnessFraction of the bound on the
// paper's algorithm. Table E18b fixes (n, f) and compares the adaptive
// strategies with every schedule-driven strategy from the E17 matrix on
// the identical substrate: with the ε-noise removed from the network, the
// schedule-driven Byzantine automata must all fall measurably short of
// what the retiming adversary achieves — locating the irreducible skew in
// the delay uncertainty itself, exactly where the shifting argument puts
// it.
func runE18() ([]*Table, error) {
	ta, err := runE18Bound()
	if err != nil {
		return nil, err
	}
	tb, err := runE18Strategies()
	if err != nil {
		return nil, err
	}
	return []*Table{ta, tb}, nil
}

// runE18Bound is table E18a: skewmax vs the bound across (n, algorithm).
func runE18Bound() (*Table, error) {
	t := &Table{
		ID:       "E18",
		Title:    "Adaptive skewmax adversary vs the ε(1−1/n) lower bound (f = 0, center-δ delays)",
		PaperRef: "§1 lower bound",
		Columns:  []string{"algorithm", "n", "worst skew", "ε(1−1/n)", "skew/bound", "witness ≥ ½·bound"},
	}
	type alg struct {
		name string
		mk   func(cfg core.Config) func(id sim.ProcID, corr clock.Local) sim.Process
		wl   bool // the paper's algorithm: invariants checked, witness enforced
	}
	algs := []alg{
		{"Welch-Lynch (this paper)", func(cfg core.Config) func(sim.ProcID, clock.Local) sim.Process {
			return func(_ sim.ProcID, c clock.Local) sim.Process { return core.NewProc(cfg, c) }
		}, true},
		{"Lamport/Melliar-Smith CNV", func(cfg core.Config) func(sim.ProcID, clock.Local) sim.Process {
			lmc := lm.Config{Params: cfg.Params}
			return func(_ sim.ProcID, c clock.Local) sim.Process { return lm.New(lmc, c) }
		}, false},
		{"Srikanth/Toueg", func(cfg core.Config) func(sim.ProcID, clock.Local) sim.Process {
			stc := st.Config{Params: cfg.Params}
			return func(_ sim.ProcID, c clock.Local) sim.Process { return st.New(stc, c) }
		}, false},
	}
	ns := []int{4, 7, 10}
	if BigSweeps() {
		ns = append(ns, 13)
	}
	type point struct {
		alg     alg
		n       int
		witness *invariant.LowerBoundWitness
	}
	var points []point
	for _, a := range algs {
		for _, n := range ns {
			points = append(points, point{alg: a, n: n})
		}
	}
	skewmax, err := faults.ByName("skewmax")
	if err != nil {
		return nil, fmt.Errorf("E18: %w", err)
	}
	sweep := Sweep[*point]{
		Name:   "E18",
		Params: pointers(points),
		Build: func(p *point) (Workload, error) {
			cfg := core.Config{Params: analysis.Default(p.n, 0)}
			_, adv := faults.MixAdaptive(skewmax, cfg, nil, runner.DeriveSeed(18, p.n))
			p.witness = invariant.NewLowerBoundWitness(witnessFraction*cfg.SkewLowerBound(), 0)
			w := Workload{
				Cfg:             cfg,
				MakeProc:        p.alg.mk(cfg),
				Adversary:       adv,
				Seed:            18,
				CheckInvariants: p.alg.wl,
				Observers:       []sim.Observer{p.witness},
			}
			e18Substrate(&w)
			return w, nil
		},
		Each: func(p *point, w Workload, res *Result) error {
			bound := w.Cfg.SkewLowerBound()
			skew := res.Skew.MaxAfterWarmup()
			if p.witness.Samples() == 0 {
				return fmt.Errorf("%s n=%d: lower-bound witness sampled nothing", p.alg.name, p.n)
			}
			if p.alg.wl {
				// The clamp keeps the adversary inside A1–A3, so the upper
				// bounds must keep holding while the lower bound is driven.
				if !res.Invariants.Ok() {
					return fmt.Errorf("%s n=%d: clamped adversary broke an invariant:\n%s",
						p.alg.name, p.n, res.Invariants.Summary())
				}
				if !p.witness.Achieved() {
					return fmt.Errorf("%s n=%d: skewmax reached only %v of the ε(1−1/n) bound %v (want ≥ %.0f%%)",
						p.alg.name, p.n, skew, bound, 100*witnessFraction)
				}
			}
			t.AddRow(p.alg.name, fmtInt(p.n), FmtDur(skew), FmtDur(bound),
				FmtRatio(skew/bound), Verdict(p.witness.Achieved()))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, fmt.Errorf("E18: %w", err)
	}
	t.AddNote("delays sampled at δ exactly; every retime clamped to [δ−ε, δ+ε], so A1–A3 hold by construction (invariants re-checked on the Welch-Lynch rows)")
	t.AddNote("the adversary starts from ~0 spread and must manufacture ≥ %.0f%% of ε(1−1/n); Welch-Lynch rows enforce the witness", 100*witnessFraction)
	return t, nil
}

// runE18Strategies is table E18b: on the same substrate, the adaptive
// strategies against every schedule-driven strategy of the E17 matrix.
func runE18Strategies() (*Table, error) {
	const (
		n = 7
		f = 2
	)
	cfg := core.Config{Params: analysis.Default(n, f)}
	bound := cfg.SkewLowerBound()
	t := &Table{
		ID:       "E18b",
		Title:    fmt.Sprintf("Adaptive vs schedule-driven adversaries (n=%d, center-δ delays)", n),
		PaperRef: "§1 lower bound; Thms 4(a), 16, 19",
		Columns:  []string{"strategy", "kind", "f", "worst skew", "skew/bound"},
	}
	type cell struct {
		strat faults.Strategy
		idx   int
	}
	var cells []cell
	// Adaptive rows first, then the E17 strategy space in registry order.
	for _, name := range []string{"skewmax", "splitter"} {
		s, err := faults.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("E18b: %w", err)
		}
		cells = append(cells, cell{strat: s, idx: len(cells)})
	}
	for _, s := range faults.ScheduleDriven() {
		cells = append(cells, cell{strat: s, idx: len(cells)})
	}
	var skewmaxSkew float64
	worstSched, worstSchedName := 0.0, ""
	sweep := Sweep[cell]{
		Name:   "E18b",
		Params: cells,
		Build: func(c cell) (Workload, error) {
			w := Workload{Cfg: cfg, Seed: 18}
			if c.strat.Adaptive() {
				var members []sim.ProcID
				if c.strat.WantsMembers {
					members = faults.TopIDs(f, n)
				}
				w.Faults, w.Adversary = faults.MixAdaptive(c.strat, cfg, members, runner.DeriveSeed(18, c.idx))
			} else {
				w.Faults = faults.Mix(c.strat, cfg, faults.TopIDs(f, n), runner.DeriveSeed(18, c.idx))
			}
			e18Substrate(&w)
			return w, nil
		},
		Each: func(c cell, w Workload, res *Result) error {
			skew := res.Skew.MaxAfterWarmup()
			kind := "schedule"
			if c.strat.Adaptive() {
				kind = "adaptive"
			} else if skew > worstSched {
				worstSched, worstSchedName = skew, c.strat.Name
			}
			if c.strat.Name == "skewmax" {
				skewmaxSkew = skew
			}
			t.AddRow(c.strat.Name, kind, fmtInt(len(w.Faults)), FmtDur(skew), FmtRatio(skew/bound))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, fmt.Errorf("E18b: %w", err)
	}
	if skewmaxSkew < witnessFraction*bound {
		return nil, fmt.Errorf("E18b: skewmax reached %v, below %.0f%% of the bound %v", skewmaxSkew, 100*witnessFraction, bound)
	}
	if worstSched >= skewmaxSkew {
		return nil, fmt.Errorf("E18b: schedule-driven strategy %s reached %v, not measurably short of skewmax's %v — the separation claim failed",
			worstSchedName, worstSched, skewmaxSkew)
	}
	t.AddNote("best schedule-driven strategy (%s) reaches %s; the adaptive skewmax reaches %s of an ε(1−1/n) bound of %s — with network noise at zero, only retiming inside the uncertainty window manufactures bound-scale skew",
		worstSchedName, FmtDur(worstSched), FmtDur(skewmaxSkew), FmtDur(bound))
	return t, nil
}

// pointers adapts a slice to pointer params so Build can attach per-trial
// artifacts (the witness) for Each to read (see Sweep docs).
func pointers[T any](s []T) []*T {
	out := make([]*T, len(s))
	for i := range s {
		out[i] = &s[i]
	}
	return out
}
