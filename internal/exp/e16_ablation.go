package exp

import (
	"math"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E16",
		Title:    "Ablations: why each design choice of the algorithm is there",
		PaperRef: "§4.1 (window size, reduce_f, the δ term of ADJ)",
		Run:      runE16,
	})
}

// ablatedProc is the §4.2 automaton with individual design choices removable
// — deliberately kept out of package core so the faithful implementation
// stays pristine. Knobs:
//
//   - noReduce: apply mid over *all* arrival times (skip reduce_f) — Lemma 6
//     gone, Byzantine extremes reach the midpoint;
//   - windowScale: multiply the (1+ρ)(β+δ+ε) collection window — too small
//     and slow nonfaulty senders miss the round, exhausting the fault budget;
//   - noDeltaCorr: compute ADJ = T − AV instead of T + δ − AV — every clock
//     is dragged δ backwards per round, destroying validity.
type ablatedProc struct {
	cfg         core.Config
	noReduce    bool
	windowScale float64
	noDeltaCorr bool

	corr  clock.Local
	arr   []float64
	bcast bool // FLAG: true = broadcast next, false = update next
	t     clock.Local
	rnd   int
}

var (
	_ sim.Process    = (*ablatedProc)(nil)
	_ sim.CorrHolder = (*ablatedProc)(nil)
)

func newAblated(cfg core.Config, corr clock.Local) *ablatedProc {
	arr := make([]float64, cfg.N)
	for i := range arr {
		arr[i] = math.Inf(-1)
	}
	return &ablatedProc{cfg: cfg, windowScale: 1, corr: corr, arr: arr, bcast: true, t: clock.Local(cfg.T0)}
}

func (p *ablatedProc) Corr() clock.Local { return p.corr }

func (p *ablatedProc) Receive(ctx *sim.Context, m sim.Message) {
	local := ctx.PhysNow() + p.corr
	switch {
	case m.Kind == sim.KindOrdinary:
		p.arr[m.From] = float64(local)
	case (m.Kind == sim.KindStart || m.Kind == sim.KindTimer) && p.bcast:
		ctx.Annotate(metrics.TagRoundBegin, float64(p.rnd))
		ctx.Broadcast(core.TMsg{Mark: p.t})
		window := p.cfg.Window() * p.windowScale
		ctx.SetTimer(p.t+clock.Local(window)-p.corr, nil)
		p.bcast = false
	case m.Kind == sim.KindTimer && !p.bcast:
		f := p.cfg.F
		if p.noReduce {
			f = 0
		}
		av, err := multiset.FaultTolerantMidpoint(multiset.New(p.arr...), f)
		if err != nil || math.IsInf(av, 0) || math.IsNaN(av) {
			av = float64(p.t) + p.cfg.Delta // skip adjusting
		}
		adj := float64(p.t) + p.cfg.Delta - av
		if p.noDeltaCorr {
			adj = float64(p.t) - av
		}
		p.corr += clock.Local(adj)
		ctx.Annotate(metrics.TagAdjust, adj)
		p.rnd++
		p.t += clock.Local(p.cfg.P)
		ctx.SetTimer(p.t-p.corr, nil)
		p.bcast = true
	}
}

// runE16 measures each ablation against the faithful algorithm on the same
// two-faced workload and reports which paper property breaks.
func runE16() ([]*Table, error) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	// Both adversaries send early to even recipients and late to odd ones:
	// per recipient the two planted arrivals sit on the same side, which
	// reduce_f trims exactly and a plain midpoint pays for in full. The lag
	// is chosen so the late copy arrives at Lag+δ±ε — always after the
	// (1+ρ)(β+δ+ε) window closes — leaving a one-round-stale extreme in the
	// recipient's ARR for the *next* update: reduce_f discards it, a plain
	// midpoint is dragged by ≈P/2, so the Lemma 6 failure is structural
	// rather than dependent on the delay stream.
	parity := func(to sim.ProcID) bool { return int(to)%2 == 0 }
	mkTwoFaced := func() sim.Process {
		return &faults.TwoFaced{Cfg: cfg, Lead: 8e-3, Lag: 8e-3, EarlyTo: parity}
	}
	mix := map[sim.ProcID]func() sim.Process{
		5: mkTwoFaced,
		6: mkTwoFaced,
	}
	type variant struct {
		name   string
		breaks string
		mk     func(id sim.ProcID, corr clock.Local) sim.Process
	}
	variants := []variant{
		{"faithful §4.2", "nothing", func(_ sim.ProcID, c clock.Local) sim.Process {
			return core.NewProc(cfg, c)
		}},
		{"no reduce_f (plain midpoint)", "agreement (Lemma 6)", func(_ sim.ProcID, c clock.Local) sim.Process {
			p := newAblated(cfg, c)
			p.noReduce = true
			return p
		}},
		{"window ×0.3", "validity (arrivals cross round boundaries)", func(_ sim.ProcID, c clock.Local) sim.Process {
			p := newAblated(cfg, c)
			p.windowScale = 0.3
			return p
		}},
		{"no δ in ADJ", "validity (Thm 19)", func(_ sim.ProcID, c clock.Local) sim.Process {
			p := newAblated(cfg, c)
			p.noDeltaCorr = true
			return p
		}},
	}

	t := &Table{
		ID:       "E16",
		Title:    "Removing one design choice at a time (n=7, f=2 two-faced)",
		PaperRef: "§4.1",
		Columns:  []string{"variant", "steady skew", "agreement ≤ γ", "validity holds", "expected to break"},
	}
	sweep := Sweep[variant]{
		Name:   "E16",
		Params: variants,
		Build: func(v variant) (Workload, error) {
			return Workload{Cfg: cfg, Rounds: 15, Faults: mix, Seed: 21, MakeProc: v.mk}, nil
		},
		Each: func(v variant, _ Workload, res *Result) error {
			skew := res.Skew.MaxAfterWarmup()
			t.AddRow(v.name, FmtDur(skew),
				Verdict(skew <= cfg.Gamma()),
				Verdict(res.Validity.WorstViolation() <= 0),
				v.breaks)
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("γ = %s; the faithful row holds everything, each ablation loses the property its mechanism protects", FmtDur(cfg.Gamma()))
	t.AddNote("window ×0.3 closes before any arrival (δ−ε > 0.3·window), so each update consumes the *previous* round's arrivals: the clocks leap ≈P per round together — agreement survives, validity does not")
	return []*Table{t}, nil
}
