package exp

import (
	"fmt"
	"math"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp/runner"
	"repro/internal/faults"
	"repro/internal/sim"
)

// TestLowerBoundSharpness is the executable form of the E18 acceptance
// claim: the adaptive skewmax adversary must reach at least half the
// ε(1−1/n) bound on the paper's algorithm (E18a enforces it per row and
// errors otherwise), and every schedule-driven strategy must fall
// measurably short of skewmax on the identical substrate (E18b errors
// otherwise). Run in CI next to the conformance matrix.
func TestLowerBoundSharpness(t *testing.T) {
	if testing.Short() {
		t.Skip("the lower-bound search is integration-sized")
	}
	e, err := ByID("E18")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E18 produced %d tables, want 2", len(tables))
	}
	bound, strat := tables[0], tables[1]
	// The experiment enforces the witness on the paper's algorithm only
	// (the baselines' rows are informational); assert the same contract.
	wlRows := 0
	for _, row := range bound.Rows {
		if row[0] != "Welch-Lynch (this paper)" {
			continue
		}
		wlRows++
		if row[len(row)-1] != "ok" {
			t.Errorf("lower-bound witness not achieved: %v", row)
		}
	}
	if wlRows == 0 {
		t.Error("no Welch-Lynch rows in E18a")
	}
	// The separation claim, re-derived from the rendered rows: every
	// schedule-driven ratio below every adaptive skewmax ratio.
	var skewmaxRatio float64
	maxSched := 0.0
	for _, row := range strat.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("unparseable ratio in %v: %v", row, err)
		}
		switch {
		case row[0] == "skewmax":
			skewmaxRatio = ratio
		case row[1] == "schedule" && ratio > maxSched:
			maxSched = ratio
		}
	}
	if skewmaxRatio == 0 {
		t.Fatal("no skewmax row in E18b")
	}
	if maxSched >= skewmaxRatio {
		t.Errorf("schedule-driven strategies reach %.3f of the bound, not short of skewmax's %.3f", maxSched, skewmaxRatio)
	}
}

// fuzzRetimer replays three fuzzer-chosen desired delays in rotation —
// whatever bit patterns the mutation engine invents, including NaN, ±Inf
// and values far outside the envelope.
type fuzzRetimer struct {
	vals [3]float64
	i    int
}

func (f *fuzzRetimer) Retime(_ *sim.AdversaryView, _, _ sim.ProcID, _ clock.Real, _ float64) float64 {
	v := f.vals[f.i%3]
	f.i++
	return v
}

// envelopeObserver asserts assumption A3 on the wire: every ordinary
// delivery within [δ−ε, δ+ε] of its send instant.
type envelopeObserver struct {
	lo, hi float64
	bad    []string
	seen   int
}

func (o *envelopeObserver) OnDeliver(_ *sim.Engine, m sim.Message) {
	if m.Kind != sim.KindOrdinary {
		return
	}
	o.seen++
	d := float64(m.DeliverAt - m.SentAt)
	if d < o.lo-1e-12 || d > o.hi+1e-12 || math.IsNaN(d) {
		if len(o.bad) < 8 {
			o.bad = append(o.bad, fmt.Sprintf("p%d→p%d delay %v outside [%v, %v]", m.From, m.To, d, o.lo, o.hi))
		}
	}
}

// FuzzAdaptiveRetiming searches the adversary stage's clamp for a hole:
// whatever desired delays an adversary returns — NaN, ±Inf, negative,
// astronomically large — every delivery must stay inside the declared
// [δ−ε, δ+ε] envelope and the A1–A3-derived theorem validators (agreement,
// validity, monotonicity, adjustment bound) must keep holding at f < n/3.
// A find is a clamp bug: the pipeline would be letting an adversary forge
// executions the paper's assumptions exclude.
func FuzzAdaptiveRetiming(f *testing.F) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), int64(1))
	f.Add(0.0, -1.0, 1e12, int64(2))
	f.Add(cfg.Delta-cfg.Eps, cfg.Delta+cfg.Eps, cfg.Delta, int64(3)) // exactly on the edges
	f.Add(math.SmallestNonzeroFloat64, -math.MaxFloat64, math.MaxFloat64, int64(4))
	f.Add(cfg.Delta+cfg.Eps+1e-15, cfg.Delta-cfg.Eps-1e-15, math.NaN(), int64(5)) // just past the edges
	f.Fuzz(func(t *testing.T, r0, r1, r2 float64, seed int64) {
		adv := &fuzzRetimer{vals: [3]float64{r0, r1, r2}}
		env := &envelopeObserver{lo: cfg.Delta - cfg.Eps, hi: cfg.Delta + cfg.Eps}
		res, err := Run(Workload{
			Cfg:             cfg,
			Rounds:          6,
			Seed:            seed,
			Adversary:       adv,
			CheckInvariants: true,
			Observers:       []sim.Observer{env},
		})
		if err != nil {
			t.Fatalf("retimes=(%v,%v,%v) seed=%d: %v", r0, r1, r2, seed, err)
		}
		if env.seen == 0 {
			t.Fatal("no ordinary deliveries observed — vacuous execution")
		}
		if len(env.bad) > 0 {
			t.Fatalf("retimes=(%v,%v,%v): clamp leaked deliveries outside [δ−ε, δ+ε]:\n%v", r0, r1, r2, env.bad)
		}
		if !res.Invariants.Ok() {
			t.Fatalf("retimes=(%v,%v,%v) seed=%d: invariant broken under clamped retiming:\n%s",
				r0, r1, r2, seed, res.Invariants.Summary())
		}
	})
}

// TestReceiveHookDispatchRace stress-tests hook dispatch under the race
// detector: many engines run concurrently on the sweep runner's worker
// pool, each with its own adaptive adversary (skewmax reads the live
// spread per retime; splitter's ReceiveHook mutates its observation state
// on every delivery). Adversary state is per-run, so -race passing proves
// the pipeline introduces no sharing between concurrent engines.
func TestReceiveHookDispatchRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test is integration-sized")
	}
	defer runner.SetDefaultWorkers(0)
	runner.SetDefaultWorkers(8)
	cfg := core.Config{Params: analysis.Default(7, 2)}
	const trials = 24
	_, err := runner.Map(0, trials, func(i int) (struct{}, error) {
		name := "skewmax"
		var members []sim.ProcID
		if i%2 == 1 {
			name = "splitter"
			members = faults.TopIDs(cfg.F, cfg.N)
		}
		s, err := faults.ByName(name)
		if err != nil {
			return struct{}{}, err
		}
		w := Workload{Cfg: cfg, Rounds: 6, Seed: runner.DeriveSeed(42, i)}
		w.Faults, w.Adversary = faults.MixAdaptive(s, cfg, members, runner.DeriveSeed(43, i))
		w.Delay = sim.CenterDelay{Delta: cfg.Delta, Eps: cfg.Eps}
		if _, err := Run(w); err != nil {
			return struct{}{}, fmt.Errorf("trial %d (%s): %w", i, name, err)
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
