package exp

import (
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E06",
		Title:    "Establishing synchronization from arbitrary clocks (start-up)",
		PaperRef: "§9.2, Lemma 20",
		Run:      runE06,
	})
}

// RunStartup executes the §9.2 algorithm from arbitrary clocks spread over
// `spread` seconds and returns the per-round closeness Bᵢ (the nonfaulty
// skew at each round's begin annotations) plus the final skew.
func RunStartup(cfg core.Config, spread float64, horizon clock.Real, seed int64) (bSeries []float64, final float64, err error) {
	n := cfg.N
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, clock.Local(spread), seed)
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		procs[i] = core.NewStartupProc(cfg, corrs[i])
		starts[i] = clock.Real(i) * 0.005
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:    seed,
	})
	if err != nil {
		return nil, 0, err
	}
	rec := metrics.NewRoundRecorder(metrics.TagStartupRound, metrics.TagAdjust)
	eng.Observe(rec)
	if err := eng.Run(horizon); err != nil {
		return nil, 0, err
	}
	rounds := rec.Rounds()
	bSeries = make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		bSeries = append(bSeries, rec.SkewAtBegin(i))
	}
	final, _ = metrics.NonfaultySkew(eng, eng.Now())
	return bSeries, final, nil
}

// runE06 reproduces Lemma 20: Bⁱ⁺¹ ≤ Bⁱ/2 + 2ε + 2ρ(11δ+39ε), with the
// limit ≈ 4ε. A single custom-engine execution (RunStartup, not a Workload
// sweep), so it stays off the worker pool.
func runE06() ([]*Table, error) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	bs, final, err := RunStartup(cfg, 2.0, 20, 42)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:       "E06",
		Title:    "Start-up closeness Bᵢ per round vs the Lemma 20 recurrence",
		PaperRef: "Lemma 20; floor ≈ 4ε",
		Columns:  []string{"round", "measured Bᵢ", "recurrence bound", "within"},
	}
	show := len(bs)
	if show > 14 {
		show = 14
	}
	prev := 0.0
	for i := 0; i < show; i++ {
		bound := "-"
		within := "-"
		if i > 0 {
			bb := cfg.StartupStep(prev)
			bound = FmtDur(bb)
			within = Verdict(bs[i] <= bb*1.10+1e-5)
		}
		t.AddRow(fmtInt(i), FmtDur(bs[i]), bound, within)
		prev = bs[i]
	}
	t.AddNote("initial clocks spread over 2s; Lemma 20 floor 4ε+4ρ(11δ+39ε) = %s; final skew = %s",
		FmtDur(cfg.StartupFloor()), FmtDur(final))
	t.AddNote("paper: \"the algorithm achieves a closeness of synchronization of about 4ε\" (4ε = %s)", FmtDur(4*cfg.Eps))
	return []*Table{t}, nil
}
