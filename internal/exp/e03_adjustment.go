package exp

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E03",
		Title:    "Adjustment size bound |ADJ| ≤ (1+ρ)(β+ε)+ρδ (≈5ε)",
		PaperRef: "Theorem 4(a) / Lemma 7; §10 summary",
		Run:      runE03,
	})
}

// runE03 measures the largest adjustment any nonfaulty process ever applies,
// under the benign and the adversarial delay model, and compares with the
// Theorem 4(a) bound. Section 10 summarizes the bound as "about 5ε".
func runE03() ([]*Table, error) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	bound := cfg.AdjBound()

	t := &Table{
		ID:       "E03",
		Title:    "Max |ADJ| vs Theorem 4(a)",
		PaperRef: "Thm 4(a)",
		Columns:  []string{"delay model", "paper bound", "measured max |ADJ|", "ratio", "holds"},
	}
	type model struct {
		name  string
		delay sim.DelayModel
	}
	sweep := Sweep[model]{
		Name: "E03",
		Params: []model{
			{"uniform [δ−ε, δ+ε]", sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps}},
			{"constant δ", sim.ConstantDelay{Delta: cfg.Delta}},
			{"adversarial extremes", sim.ExtremalDelay{Delta: cfg.Delta, Eps: cfg.Eps}},
			{"fixed per-link bias", sim.PerLinkDelay{Delta: cfg.Delta, Eps: cfg.Eps, Seed: 9}},
		},
		Build: func(m model) (Workload, error) {
			return Workload{Cfg: cfg, Rounds: 15, Delay: m.delay, Seed: 7}, nil
		},
		Each: func(m model, _ Workload, res *Result) error {
			meas := res.Rounds.MaxAbsAdj(0)
			t.AddRow(m.name, FmtDur(bound), FmtDur(meas), FmtRatio(meas/bound), Verdict(meas <= bound))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("bound (1+ρ)(β+ε)+ρδ = %s ≈ 5ε+β-ish; §10 quotes ≈5ε for β≈4ε", FmtDur(bound))
	return []*Table{t}, nil
}
