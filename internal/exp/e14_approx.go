package exp

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/multiset"
)

func init() {
	register(Experiment{
		ID:       "E14",
		Title:    "Approximate agreement substrate: halving and validity",
		PaperRef: "[DLPSW]; Appendix Lemmas 21–24",
		Run:      runE14,
	})
}

// runE14 validates the substrate the averaging function comes from: in the
// synchronous model with the spread adversary, the nonfaulty diameter at
// least halves every round and never escapes the initial nonfaulty range.
// Each round's input is the previous round's output, so this experiment is
// inherently sequential and stays off the worker pool.
func runE14() ([]*Table, error) {
	t := &Table{
		ID:       "E14",
		Title:    "Diameter per round under the spread adversary (n=7, f=2, midpoint)",
		PaperRef: "[DLPSW]",
		Columns:  []string{"round", "diameter", "vs previous/2", "within initial range"},
	}
	adv := &agreement.SpreadAdversary{}
	cfg := agreement.Config{N: 7, F: 2, Averager: agreement.Midpoint, Adversary: adv}
	init := []float64{0, 1.5, 4, 7.5, 10, -500, 500}
	faulty := []bool{false, false, false, false, false, true, true}
	st, err := agreement.New(cfg, init, faulty)
	if err != nil {
		return nil, err
	}
	good := multiset.New(st.Values()...)
	lo, hi := good.Min(), good.Max()
	prev := st.Diameter()
	t.AddRow("0", fmt.Sprintf("%.6f", prev), "-", "ok")
	for i := 1; i <= 12; i++ {
		vals := multiset.New(st.Values()...)
		adv.Observe(vals.Min(), vals.Max())
		if err := st.Step(); err != nil {
			return nil, err
		}
		d := st.Diameter()
		within := true
		for _, v := range st.Values() {
			if v < lo-1e-12 || v > hi+1e-12 {
				within = false
			}
		}
		t.AddRow(fmtInt(i), fmt.Sprintf("%.6f", d), Verdict(d <= prev/2+1e-12), Verdict(within))
		prev = d
	}
	t.AddNote("the same mid∘reduce_f machinery drives the clock algorithm; the clock rounds inherit the halving (E01)")
	return []*Table{t}, nil
}
