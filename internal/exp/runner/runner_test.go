package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapReturnsResultsInInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapIndependentOfWorkerCount(t *testing.T) {
	// The jobs mix their index into a derived seed — the exact setup of a
	// seeded sweep. Results must not depend on the pool size.
	job := func(i int) (int64, error) { return DeriveSeed(42, i), nil }
	want, err := Map(1, 64, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Map(workers, 64, job)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(_, 0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapReportsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			default:
				return i, nil
			}
		})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		// Job 7 may have been aborted before it ran, but whenever both
		// fail, the lowest-indexed error must win; err must never be nil
		// and must be one of the two.
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if workers == 1 && !errors.Is(err, errA) {
			t.Fatalf("serial path must report job 3's error, got %v", err)
		}
	}
}

func TestMapAbortsEarlyOnError(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Map(1, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n != 5 {
		t.Fatalf("serial abort ran %d jobs, want 5", n)
	}
}

func TestMapRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 3} {
		_, err := Map(workers, 8, func(i int) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "job 2") {
			t.Fatalf("workers=%d: panic not converted to error: %v", workers, err)
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("unset default = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("after SetDefaultWorkers(3): %d", got)
	}
	SetDefaultWorkers(-5)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative reset: %d, want GOMAXPROCS", got)
	}
}

func TestDeriveSeed(t *testing.T) {
	// Stable: pure function of (base, trial).
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Error("DeriveSeed not deterministic")
	}
	// Never the reserved zero.
	seen := make(map[int64]bool)
	for base := int64(-2); base <= 2; base++ {
		for trial := 0; trial < 1000; trial++ {
			s := DeriveSeed(base, trial)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d, %d) = 0", base, trial)
			}
			seen[s] = true
		}
	}
	// Well separated: no collisions across a 5×1000 grid.
	if len(seen) != 5000 {
		t.Errorf("collisions: %d distinct seeds of 5000", len(seen))
	}
}

// TestStressConcurrentSweeps exercises many small sweeps running at once —
// the shape of nested experiment fan-out — and is the designated workload
// for `go test -race ./internal/exp/runner`.
func TestStressConcurrentSweeps(t *testing.T) {
	const (
		sweeps  = 64
		jobs    = 50
		workers = 4
	)
	var total atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, sweeps)
	for s := 0; s < sweeps; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Map(workers, jobs, func(i int) (int64, error) {
				seed := DeriveSeed(int64(s), i)
				total.Add(1)
				return seed, nil
			})
			if err != nil {
				errs[s] = err
				return
			}
			for i, v := range got {
				if v != DeriveSeed(int64(s), i) {
					errs[s] = fmt.Errorf("sweep %d: result %d corrupted", s, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := total.Load(); n != sweeps*jobs {
		t.Fatalf("ran %d jobs, want %d", n, sweeps*jobs)
	}
}
