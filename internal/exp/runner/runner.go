// Package runner is the worker-pool sweep engine behind the experiment
// harness. Experiments consist of dozens of independent simulation runs
// (one per parameter point); Map fans them out across a bounded set of
// goroutines and hands the results back in input order, so rendered tables
// are byte-identical no matter how many workers ran the sweep or in which
// order trials completed.
//
// Determinism contract:
//
//   - results are always delivered in input order;
//   - job functions receive only their input index, so any per-trial
//     randomness must be derived from that index (see DeriveSeed), never
//     from scheduling order;
//   - a sweep aborts early on failure and reports the error of the
//     lowest-indexed failed job, which keeps the reported error stable
//     across worker counts whenever job i's failure does not depend on
//     scheduling (the common case: deterministic workloads).
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the pool size used when Map is called with
// workers <= 0. Zero means "use GOMAXPROCS". It is atomic because
// benchmarks and the -workers flag set it while experiment subtests may
// run in parallel.
var defaultWorkers atomic.Int32

// DefaultWorkers returns the pool size used for workers <= 0:
// the last SetDefaultWorkers value, or GOMAXPROCS when unset.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers sets the pool size used by Map when the caller passes
// workers <= 0. n <= 0 restores the GOMAXPROCS default. cmd binaries and
// benchmarks wire their -workers flag here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Map runs fn(0) … fn(n-1) on a pool of `workers` goroutines (DefaultWorkers
// when workers <= 0) and returns the results in input order.
//
// On the first failure the pool stops claiming new jobs; jobs already in
// flight finish, and Map returns the error of the lowest-indexed job that
// failed. A panic inside fn is recovered and reported as that job's error,
// so one exploding trial cannot take down an entire sweep silently.
func Map[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)

	if workers == 1 {
		// Serial reference path: strict input order, immediate abort.
		for i := 0; i < n; i++ {
			r, err := call(fn, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var (
		next    atomic.Int64
		aborted atomic.Bool
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || aborted.Load() {
					return
				}
				r, err := call(fn, i)
				if err != nil {
					errs[i] = err
					aborted.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// call invokes fn(i), converting a panic into an error carrying the stack.
func call[R any](fn func(int) (R, error), i int) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: job %d panicked: %v\n%s", i, p, debug.Stack())
		}
	}()
	return fn(i)
}

// DeriveSeed deterministically mixes a base seed with a trial index
// (splitmix64 finalizer; the same published constants as sim's internal
// mix64 — duplicated so this generic pool does not import the simulator).
// Trials seeded this way get well-separated RNG streams that depend only on
// (base, trial) — never on worker count or completion order — so
// multi-trial sweeps stay reproducible in parallel. The result is never 0,
// which the workload layer reserves for "default".
func DeriveSeed(base int64, trial int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(trial+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		return 1
	}
	return s
}
