package exp

import (
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E15",
		Title:    "Full lifecycle: establish, switch, maintain",
		PaperRef: "§9.2 end: two modes of operation",
		Run:      runE15,
	})
}

// runE15 reproduces the deployment story the paper sketches at the end of
// §9.2: run the start-up algorithm until the desired closeness is achieved,
// switch to the maintenance algorithm, and keep the guarantees from then on.
// The table reports the three phases of one execution — a single custom
// engine run, so there is no sweep to parallelize.
func runE15() ([]*Table, error) {
	cfg := core.Config{Params: analysis.Default(7, 2)}
	n := cfg.N
	const (
		spread        = 2.0
		switchRound   = 6
		maintRounds   = 10
		startupLength = 0.1 // generous per-round real-time estimate
	)

	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	procs := make([]sim.Process, n)
	starts := make([]clock.Real, n)
	corrs := clock.RandomOffsets(n, spread, 42)
	for i := 0; i < n; i++ {
		clocks[i] = drift.Build(i, n)
		procs[i] = core.NewSwitchProc(cfg, corrs[i], switchRound)
		starts[i] = clock.Real(i) * 0.003
	}
	eng, err := sim.New(sim.Config{
		Procs:   procs,
		Clocks:  clocks,
		StartAt: starts,
		Delay:   sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps},
		Seed:    42,
	})
	if err != nil {
		return nil, err
	}
	skew := &metrics.SkewRecorder{Bucket: 0.5}
	srec := metrics.NewRoundRecorder(metrics.TagStartupRound, metrics.TagAdjust)
	mrec := metrics.NewDefaultRoundRecorder()
	eng.Observe(skew)
	eng.Observe(srec)
	eng.Observe(mrec)
	horizon := clock.Real(switchRound*startupLength + 3*cfg.P + float64(maintRounds)*cfg.P)
	if err := eng.Run(horizon); err != nil {
		return nil, err
	}

	t := &Table{
		ID:       "E15",
		Title:    "One execution: arbitrary clocks → ≈4ε → maintained within γ",
		PaperRef: "§9.2 end",
		Columns:  []string{"phase", "quantity", "measured", "paper reference"},
	}
	b0 := srec.SkewAtBegin(0)
	bLast := srec.SkewAtBegin(srec.Rounds() - 1)
	t.AddRow("establish", "initial closeness B⁰", FmtDur(b0), "arbitrary (spread 2s)")
	t.AddRow("establish", "closeness after "+fmtInt(switchRound)+" rounds", FmtDur(bLast),
		"Lemma 20 floor "+FmtDur(cfg.StartupFloor()))
	allSwitched := true
	minRound := -1
	for i := 0; i < n; i++ {
		sp := eng.Process(sim.ProcID(i)).(*core.SwitchProc)
		if !sp.Switched() {
			allSwitched = false
		}
		if r := sp.MaintenanceRound(); minRound < 0 || r < minRound {
			minRound = r
		}
	}
	t.AddRow("switch", "all processes on one epoch", Verdict(allSwitched), "message-free rule (core/switch.go)")
	t.AddRow("maintain", "rounds completed", fmtInt(minRound), "-")
	// Steady skew over the final two maintenance rounds.
	steady, _ := metrics.NonfaultySkew(eng, eng.Now())
	t.AddRow("maintain", "final skew", FmtDur(steady), "γ = "+FmtDur(cfg.Gamma()))
	// Maintenance adjustments only: the TagAdjust stream also contains the
	// (large, legitimate) start-up corrections, so cut at the first
	// maintenance round's beginning.
	maintFrom := eng.Now()
	if ts := mrec.AnnotationTimes(0); len(ts) > 0 {
		maintFrom = ts[0]
	}
	t.AddRow("maintain", "max |ADJ| in maintenance", FmtDur(mrec.MaxAbsAdj(maintFrom)),
		"Thm 4(a) bound "+FmtDur(cfg.AdjBound()))
	t.AddNote("the establishment phase cancels a 2-second spread in one round (the DIFF estimator is exact up to ±ε); the recurrence halving is the worst case")
	return []*Table{t}, nil
}
