package exp

import (
	"repro/internal/analysis"
	"repro/internal/baselines/ms"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E12",
		Title:    "Graceful degradation past n/3 faults: Mahaney-Schneider vs this paper",
		PaperRef: "§10: MS \"degrades gracefully if more than one-third of the processes fail\"",
		Run:      runE12,
	})
}

// runE12 sweeps the number of faulty processes from within spec (≤ f) to
// beyond n/3 for both the paper's algorithm (WL) and MS, under two fault
// classes. Within spec both hold. Beyond spec, two-faced adversaries push WL
// past its γ guarantee (reduce_f can no longer trim them all, and a planted
// extreme drags the midpoint by half its offset), while MS's n−f-support
// filter plus mean keeps the survivors together — §10's "pleasing and novel"
// graceful degradation.
func runE12() ([]*Table, error) {
	params := analysis.Default(10, 3) // spec tolerates 3 faults
	gamma := (core.Config{Params: params}).Gamma()

	t := &Table{
		ID:       "E12",
		Title:    "Steady skew of survivors vs number of faulty processes (n=10, f=3, γ=" + FmtDur(gamma) + ")",
		PaperRef: "§10",
		Columns:  []string{"faults", "within spec", "WL silent", "MS silent", "WL two-faced", "MS two-faced"},
	}
	// Four trials per fault count — (WL, MS) × (silent, two-faced) in column
	// order — folded into one row by the ordered Each.
	type trial struct {
		bad      int
		twofaced bool
		msAlg    bool
	}
	var points []trial
	for _, bad := range []int{0, 2, 3, 4, 5} {
		for _, twofaced := range []bool{false, true} {
			points = append(points,
				trial{bad: bad, twofaced: twofaced, msAlg: false},
				trial{bad: bad, twofaced: twofaced, msAlg: true})
		}
	}
	var row []string
	sweep := Sweep[trial]{
		Name:   "E12",
		Params: points,
		Build: func(p trial) (Workload, error) {
			cfg := core.Config{Params: params}
			mix := make(map[sim.ProcID]func() sim.Process, p.bad)
			for i := 0; i < p.bad; i++ {
				id := sim.ProcID(params.N - 1 - i)
				if p.twofaced {
					mix[id] = func() sim.Process {
						return &faults.TwoFaced{Cfg: cfg, Lead: 4e-3, Lag: 4e-3,
							EarlyTo: func(to sim.ProcID) bool { return int(to)%2 == 0 },
							// Speak MS's dialect too so the attack reaches both
							// algorithms; WL ignores payload content anyway.
							MakePayload: func(mark clock.Local) any { return ms.ClockMsg{Mark: mark} }}
					}
				} else {
					mix[id] = func() sim.Process { return faults.Silent{} }
				}
			}
			w := Workload{Cfg: cfg, Rounds: 15, Faults: mix, Seed: 19}
			if p.msAlg {
				msCfg := ms.Config{Params: params}
				w.MakeProc = func(_ sim.ProcID, c clock.Local) sim.Process { return ms.New(msCfg, c) }
			}
			return w, nil
		},
		Each: func(p trial, _ Workload, res *Result) error {
			if len(row) == 0 {
				row = []string{fmtInt(p.bad), Verdict(p.bad <= params.F)}
			}
			row = append(row, FmtDur(res.Skew.MaxAfterWarmup()))
			// The MS two-faced trial is the known last of each fault count.
			if p.msAlg && p.twofaced {
				t.AddRow(row...)
				row = nil
			}
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("within spec WL is *tighter* under attack: reduce_f trims every planted extreme, while MS's mean admits (diluted) attacker values")
	t.AddNote("silent beyond spec: both algorithms stop adjusting (out-of-spec safeguard / empty support set) and free-run identically")
	t.AddNote("two-faced beyond spec: WL exceeds γ = %s while MS degrades smoothly — the §10 \"graceful degradation\" contrast", FmtDur(gamma))
	return []*Table{t}, nil
}
