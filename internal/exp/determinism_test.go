package exp

import (
	"strings"
	"testing"

	"repro/internal/exp/runner"
)

// renderExperiment runs one registered experiment and renders every table it
// produces, text and markdown, into one string.
func renderExperiment(t *testing.T, id string) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tbl := range tables {
		tbl.Render(&b)
		tbl.Markdown(&b)
	}
	return b.String()
}

// TestSweepDeterminism is the regression test for the parallel sweep
// runner: E05 (fault sweep, 22 workloads), E13 (ε/ρ sweep, 9 workloads)
// and E18 (the adaptive-adversary lower-bound search — its skewmax and
// splitter strategies react to live engine state, so this is also the
// determinism gate for the delivery pipeline's adversary stage) must
// render byte-identical tables when run serially and with 1, 2, and 8
// workers. Worker count may change only wall-clock time, never results.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	defer runner.SetDefaultWorkers(0)
	for _, id := range []string{"E05", "E13", "E18", "E20"} {
		t.Run(id, func(t *testing.T) {
			// workers=1 takes the runner's strictly serial path and is
			// the reference rendering.
			runner.SetDefaultWorkers(1)
			serial := renderExperiment(t, id)
			if serial == "" {
				t.Fatal("serial run rendered nothing")
			}
			for _, workers := range []int{1, 2, 8} {
				runner.SetDefaultWorkers(workers)
				if got := renderExperiment(t, id); got != serial {
					t.Errorf("%s with %d workers differs from serial run:\n--- serial ---\n%s\n--- %d workers ---\n%s",
						id, workers, serial, workers, got)
				}
			}
		})
	}
}

// TestSweepErrorPropagation checks that a failing workload aborts the sweep
// with a labeled error instead of producing a partial table.
func TestSweepErrorPropagation(t *testing.T) {
	s := Sweep[int]{
		Name:   "bad-sweep",
		Params: []int{1, 2, 3},
		Build: func(p int) (Workload, error) {
			return Workload{}, nil // no processes: exp.Run rejects it
		},
		Each: func(int, Workload, *Result) error {
			t.Error("Each called for a failed trial")
			return nil
		},
	}
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "bad-sweep") {
		t.Fatalf("want labeled error, got %v", err)
	}
}
