package exp

import (
	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
)

func init() {
	register(Experiment{
		ID:       "E10",
		Title:    "k exchanges per round",
		PaperRef: "§7: β ≥ 4ε + 2ρP·2ᵏ/(2ᵏ−1)",
		Run:      runE10,
	})
}

// runE10 sweeps k with the exchanges spread across a long, high-drift round.
// Two observable effects: the per-round βᵢ floor stays below the paper's
// k-dependent bound, and the intra-round skew shrinks roughly like 1/k
// because clocks are corrected k times as often.
func runE10() ([]*Table, error) {
	params := analysis.Params{
		N: 7, F: 2,
		Rho: 2e-4, Delta: 10e-3, Eps: 0.2e-3,
		Beta: 6e-3, P: 5.0, T0: 0,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:       "E10",
		Title:    "Steady-state β and skew vs exchanges per round (ρ=2e−4, P=5s)",
		PaperRef: "§7",
		Columns:  []string{"k", "paper βₖ floor", "measured steady β", "β ≤ floor", "steady max skew"},
	}
	sweep := Sweep[int]{
		Name:   "E10",
		Params: []int{1, 2, 3, 4},
		Build: func(k int) (Workload, error) {
			cfg := core.Config{Params: params, K: k, SubPeriod: params.P / float64(k)}
			return Workload{
				Cfg:    cfg,
				Rounds: 14,
				Drift:  clock.ConstantDrift{RhoBound: params.Rho},
				Seed:   31,
			}, nil
		},
		Each: func(k int, _ Workload, res *Result) error {
			betas := res.Rounds.BetaSeries()
			steadyB := betas[len(betas)-1]
			floor := params.BetaFloorK(k)
			t.AddRow(fmtInt(k), FmtDur(floor), FmtDur(steadyB), Verdict(steadyB <= floor),
				FmtDur(res.Skew.MaxAfterWarmup()))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("paper: βₖ approaches 4ε+2ρP as k grows (4ε+2ρP = %s here)", FmtDur(4*params.Eps+2*params.Rho*params.P))
	t.AddNote("the skew column shows the additional practical benefit of spreading the k corrections across the round")
	return []*Table{t}, nil
}
