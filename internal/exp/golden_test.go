package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

var (
	updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current experiment output")
	stressTier   = flag.Bool("stress", false, "include the nightly stress rows (E17 conformance at n=31)")
)

// TestMain gates the large sweep rows on -short, so the quick loop skips
// them while full runs (and cmd/experiments) regenerate complete tables.
// The stress tier stays opt-in even for full runs: the golden tables are
// pinned without it (it is additive-only), and only the nightly workflow
// passes -stress. Note TestGoldenTables would fail under -stress — the
// extra E17 rows are deliberately not golden — so the nightly runs the
// conformance matrix alone with the flag.
func TestMain(m *testing.M) {
	flag.Parse()
	SetBigSweeps(!testing.Short())
	SetStressTier(*stressTier)
	os.Exit(m.Run())
}

// TestGoldenTables pins every experiment's rendered tables byte-for-byte at
// their fixed seeds. The paper-reproduction verdicts are the repository's
// ground truth: engine or harness refactors that claim behavior preservation
// prove it by leaving these files untouched (PR 2 had to re-verify every
// verdict by hand; this test makes that mechanical). Intentional changes —
// new rows, retuned parameters, a different RNG — regenerate with
//
//	go test ./internal/exp -run TestGoldenTables -update-golden
//
// and the diff of testdata/golden becomes part of the review.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, tbl := range tables {
				tbl.Render(&buf)
				tbl.Markdown(&buf)
			}
			path := filepath.Join("testdata", "golden", e.ID+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (generate with -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s tables differ from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					e.ID, path, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenTablesLazyBroadcast is the eager-vs-lazy differential at full
// experiment scale: it replays every workload-driven experiment with the
// broadcast mode forced to lazy — including the small-n experiments that
// auto-resolve to eager — and demands the same golden bytes. Together with
// TestGoldenTables (auto mode) this pins both materialization strategies to
// one delivery sequence across the whole suite.
func TestGoldenTablesLazyBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	if *updateGolden {
		t.Skip("goldens are written by TestGoldenTables in auto mode")
	}
	SetBroadcastOverride(sim.BroadcastLazy)
	defer ClearBroadcastOverride()
	// The non-parallel wrapper keeps the override in force until every
	// parallel subtest has finished.
	t.Run("forced-lazy", func(t *testing.T) {
		for _, e := range All() {
			if e.ID == "E19" || e.ID == "E20" {
				// E19 and E20 drive sim.NewSharded / sim.New directly, not
				// the Workload harness; the override cannot affect them.
				continue
			}
			e := e
			t.Run(e.ID, func(t *testing.T) {
				t.Parallel()
				tables, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				for _, tbl := range tables {
					tbl.Render(&buf)
					tbl.Markdown(&buf)
				}
				path := filepath.Join("testdata", "golden", e.ID+".golden")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (generate with -update-golden): %v", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s under forced lazy broadcast differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
						e.ID, path, buf.Bytes(), want)
				}
			})
		}
	})
}
