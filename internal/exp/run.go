// Package exp contains the experiment harness: reusable workload assembly
// around the simulator (Run), table rendering, and one file per experiment
// (e01_halving.go …) reproducing every measurable claim of the paper. The
// experiment ↔ paper mapping lives in DESIGN.md §3.
package exp

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Workload assembles one simulation run: the algorithm parameters, the
// substrate (drift schedule, delay model, channel), the fault mix, and how
// long to run. Zero fields get sensible defaults (see Run).
type Workload struct {
	Cfg core.Config

	// Drift defaults to ConstantDrift spanning the full ρ-band.
	Drift clock.DriftSchedule
	// Delay defaults to UniformDelay{δ, ε}.
	Delay sim.DelayModel
	// Channel defaults to the reliable full mesh.
	Channel sim.Channel

	// InitialSpread is the real-time width over which the initial logical
	// clocks are spread (assumption A4 requires ≤ β). Defaults to 0.9β.
	InitialSpread float64

	// MakeProc builds the nonfaulty automaton for a process; defaults to
	// the paper's maintenance algorithm. Baseline experiments override it.
	MakeProc func(id sim.ProcID, initialCorr clock.Local) sim.Process

	// Faults maps process ids to faulty automaton builders; these
	// processes are marked faulty for all metrics.
	Faults map[sim.ProcID]func() sim.Process

	// Adversary, when non-nil, is installed on the engine's delivery
	// pipeline: an adaptive message-timing adversary with an omniscient
	// read view and a write capability clamped to [δ−ε, δ+ε] (see
	// sim.Adversary; faults.MixAdaptive builds one together with its
	// faulty automata). Single-use, like Faults: build a fresh one per run.
	Adversary sim.Adversary

	// StartOverride replaces the computed START delivery time for specific
	// processes (e.g. a reintegrating process waking late).
	StartOverride map[sim.ProcID]clock.Real

	// Timeline schedules state mutations (channel swaps, delay-band shifts,
	// adversary changes) at real times, interleaved deterministically with
	// deliveries; see sim.Config.Timeline. The scenario harness
	// (internal/scenario) compiles its event scripts into this.
	Timeline []sim.TimedAction

	// Rounds is how many rounds to simulate (default 20).
	Rounds int
	// Seed drives delay sampling (default 1).
	Seed int64
	// SkewBucket, when positive, collects a per-bucket max-skew series.
	SkewBucket clock.Real
	// WarmupRounds sets the steady-state boundary for MaxAfterWarmup
	// (default: half of Rounds).
	WarmupRounds int
	// Observers are registered with the engine in addition to the standard
	// recorders (e.g. a sim.Tracer).
	Observers []sim.Observer

	// CheckInvariants attaches the paper's theorem predicates
	// (internal/invariant: agreement, validity, monotonicity, adjustment
	// bound) as engine observers; the verdicts land in Result.Invariants.
	CheckInvariants bool

	// Scheduler selects the engine's event-queue implementation. Leave
	// zero (auto) outside benchmarks: every scheduler delivers the
	// identical event sequence, the knob only exists so the large-n
	// benchmarks can measure the calendar queue against the heap baseline.
	Scheduler sim.Scheduler

	// Broadcast selects the engine's broadcast materialization mode. Leave
	// zero (auto: lazy for n ≥ 32) outside differential tests — both modes
	// deliver the identical event sequence (see sim.BroadcastMode).
	Broadcast sim.BroadcastMode

	// Shards, when > 1, runs the workload on the sharded time-window engine
	// (sim.NewSharded) instead of the sequential one; the execution is
	// byte-identical for every shard count. Workload features sharded mode
	// rejects fail Run with a clear error: an Adversary or Timeline at
	// engine construction, and per-delivery observers (e.g. sim.Tracer) at
	// registration — the standard recorders and the invariant suite all
	// sample at window barriers and work unchanged.
	Shards int
}

// broadcastMode resolves the workload's effective mode, honoring the test
// harness's global override (SetBroadcastOverride).
func (w Workload) broadcastMode() sim.BroadcastMode {
	if o := broadcastOverride.Load(); o >= 0 {
		return sim.BroadcastMode(o)
	}
	return w.Broadcast
}

// eventHint estimates the peak number of buffered events for a maintenance
// workload under the resolved broadcast mode. Eager: each of the K
// exchanges per round keeps ≈ n² broadcast copies in flight at once plus a
// timer per process, and with §9.3 staggering or rejoin schedules a
// previous exchange's stragglers can overlap the next. Lazy: a fan-out
// occupies one queue slot however many copies remain, so the population is
// O(n) per exchange — passing the old n² figure would grossly over-size
// the calendar and force it on workloads the heap serves better. The hint
// pre-sizes the engine's queue stores so rounds never pay growth-doubling
// copies mid-run (see sim.Config.EventHint).
func (w Workload) eventHint() int {
	n := w.Cfg.N
	k := w.Cfg.K
	if k < 1 {
		k = 1
	}
	if w.broadcastMode().Resolve(n) == sim.BroadcastLazy {
		hint := sim.DefaultEventHint(sim.BroadcastLazy, n)
		if k > 1 {
			hint += (k - 1) * n
		}
		return hint
	}
	hint := n*n + 2*n + 8
	if k > 1 {
		hint += (k - 1) * n * n / 4
	}
	return hint
}

// Result bundles the engine and the recorders after a run.
type Result struct {
	// Engine is the sequential engine, nil when the workload ran sharded.
	Engine *sim.Engine
	// Sharded is the sharded engine, non-nil exactly when Workload.Shards
	// was > 1. Use the MessagesSent/MessagesLost/Steps accessors for
	// counters that must work either way.
	Sharded  *sim.ShardedEngine
	Skew     *metrics.SkewRecorder
	Rounds   *metrics.RoundRecorder
	Validity *metrics.ValidityRecorder
	Horizon  clock.Real
	// Invariants is non-nil when the workload set CheckInvariants.
	Invariants *invariant.Suite
}

// Steps returns the delivered-event count of whichever engine ran.
func (r *Result) Steps() int {
	if r.Sharded != nil {
		return r.Sharded.Steps()
	}
	return r.Engine.Steps()
}

// MessagesSent returns the ordinary-copy send count of whichever engine ran.
func (r *Result) MessagesSent() int64 {
	if r.Sharded != nil {
		return r.Sharded.MessagesSent()
	}
	return r.Engine.MessagesSent()
}

// MessagesLost returns the lossy-channel drop count of whichever engine ran.
func (r *Result) MessagesLost() int64 {
	if r.Sharded != nil {
		return r.Sharded.MessagesLost()
	}
	return r.Engine.MessagesLost()
}

// Run assembles and executes the workload, returning the recorders.
func Run(w Workload) (*Result, error) {
	cfg := w.Cfg
	n := cfg.N
	if n == 0 {
		return nil, fmt.Errorf("exp: workload has no processes")
	}
	drift := w.Drift
	if drift == nil {
		drift = clock.ConstantDrift{RhoBound: cfg.Rho}
	}
	delay := w.Delay
	if delay == nil {
		delay = sim.UniformDelay{Delta: cfg.Delta, Eps: cfg.Eps}
	}
	rounds := w.Rounds
	if rounds <= 0 {
		rounds = 20
	}
	spread := w.InitialSpread
	if spread == 0 {
		spread = 0.9 * cfg.Beta
	}
	makeProc := w.MakeProc
	if makeProc == nil {
		makeProc = func(_ sim.ProcID, corr clock.Local) sim.Process {
			return core.NewProc(cfg, corr)
		}
	}
	seed := w.Seed
	if seed == 0 {
		seed = 1
	}

	clocks := make([]clock.Clock, n)
	for i := range clocks {
		clocks[i] = drift.Build(i, n)
	}
	corrs := core.InitialCorrsWithinBeta(cfg, clocks, spread)
	starts := core.StartTimes(cfg, clocks, corrs)

	procs := make([]sim.Process, n)
	faulty := make([]bool, n)
	for i := range procs {
		if mk, ok := w.Faults[sim.ProcID(i)]; ok {
			procs[i] = mk()
			faulty[i] = true
			continue
		}
		procs[i] = makeProc(sim.ProcID(i), corrs[i])
	}
	for id, at := range w.StartOverride {
		starts[id] = at
	}

	scfg := sim.Config{
		Procs:     procs,
		Clocks:    clocks,
		StartAt:   starts,
		Delay:     delay,
		Channel:   w.Channel,
		Faulty:    faulty,
		Seed:      seed,
		Adversary: w.Adversary,
		Timeline:  w.Timeline,
		Scheduler: w.Scheduler,
		Broadcast: w.broadcastMode(),
		EventHint: w.eventHint(),
	}
	var eng *sim.Engine
	var se *sim.ShardedEngine
	var err error
	if w.Shards > 1 {
		// NewSharded rejects the features sharded mode cannot run
		// (adversary, timeline, stateful channels) with its own errors.
		se, err = sim.NewSharded(scfg, w.Shards)
	} else {
		eng, err = sim.New(scfg)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}

	// tmin⁰ / tmax⁰ over nonfaulty processes, for validity bookkeeping.
	tmin0, tmax0 := starts[0], starts[0]
	first := true
	for i, s := range starts {
		if faulty[i] {
			continue
		}
		if first {
			tmin0, tmax0, first = s, s, false
			continue
		}
		if s < tmin0 {
			tmin0 = s
		}
		if s > tmax0 {
			tmax0 = s
		}
	}

	warmRounds := w.WarmupRounds
	if warmRounds <= 0 {
		warmRounds = rounds / 2
	}
	horizon := tmax0 + clock.Real(float64(rounds)*cfg.P*(1+2*cfg.Rho)+2*cfg.Window()+cfg.Delta+1)

	skew := &metrics.SkewRecorder{
		Warmup: tmax0 + clock.Real(float64(warmRounds)*cfg.P),
		Bucket: w.SkewBucket,
	}
	rrec := metrics.NewDefaultRoundRecorder()
	a1, a2, a3 := cfg.Validity()
	vrec := &metrics.ValidityRecorder{
		Alpha1: a1, Alpha2: a2, Alpha3: a3,
		T0:    cfg.T0,
		TMin0: tmin0, TMax0: tmax0,
		From: tmax0,
	}
	observers := []sim.Observer{skew, rrec, vrec}
	var suite *invariant.Suite
	if w.CheckInvariants {
		suite = invariant.NewSuite(cfg.Params, tmin0, tmax0, skew.Warmup)
		observers = append(observers, suite.Observers()...)
	}
	observers = append(observers, w.Observers...)
	for _, o := range observers {
		if se != nil {
			// Sharded registration can fail: per-delivery observers have no
			// deterministic place in a parallel window drain.
			if err := se.Observe(o); err != nil {
				return nil, fmt.Errorf("exp: %w", err)
			}
			continue
		}
		eng.Observe(o)
	}

	if se != nil {
		if err := se.Run(horizon); err != nil {
			return nil, fmt.Errorf("exp: run: %w", err)
		}
		return &Result{Sharded: se, Skew: skew, Rounds: rrec, Validity: vrec, Horizon: horizon, Invariants: suite}, nil
	}
	if err := eng.Run(horizon); err != nil {
		return nil, fmt.Errorf("exp: run: %w", err)
	}
	return &Result{Engine: eng, Skew: skew, Rounds: rrec, Validity: vrec, Horizon: horizon, Invariants: suite}, nil
}
