package exp

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exp/runner"
	"repro/internal/faults"
	"repro/internal/multiset"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E09",
		Title:    "Mean vs midpoint averaging as n grows with f fixed",
		PaperRef: "§7 end: mean converges at rate f/(n−2f), error → ≈2ε",
		Run:      runE09,
	})
}

// runE09 has two parts. First, the pure convergence-rate claim, measured in
// the synchronous approximate-agreement substrate where the rate is not
// masked by delay noise: one round's contraction under the spread adversary
// versus f/(n−2f) (mean) and 1/2 (midpoint). Second, the end-to-end clock
// algorithm's steady skew with both averagers, showing the mean's advantage
// as n grows (error → ≈2ε instead of 4ε).
func runE09() ([]*Table, error) {
	t1 := &Table{
		ID:       "E09",
		Title:    "One-round contraction under the spread adversary (f=1)",
		PaperRef: "§7, [DLPSW]",
		Columns:  []string{"n", "mean: measured", "mean: paper f/(n−2f)", "midpoint: measured", "midpoint: paper 1/2"},
	}
	// The contraction measurements run in the synchronous substrate rather
	// than through a Workload, so they go straight onto the worker pool —
	// one job per (n, averager) so the slow runs don't serialize.
	ns := []int{4, 8, 16, 31}
	if BigSweeps() {
		// The mean's f/(n−2f) rate keeps shrinking as n grows; track it
		// into the hundreds now that large sweeps are cheap.
		ns = append(ns, 63, 101)
	}
	averagers := []agreement.Averager{agreement.Mean, agreement.Midpoint}
	measured, err := runner.Map(0, len(ns)*len(averagers), func(i int) (float64, error) {
		return contraction(ns[i/len(averagers)], 1, averagers[i%len(averagers)])
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		paperMean := 1.0 / float64(n-2)
		t1.AddRow(fmtInt(n), FmtRatio(measured[2*i]), FmtRatio(paperMean), FmtRatio(measured[2*i+1]), "0.500")
	}
	t1.AddNote("measured rates must not exceed the paper rates (worst-case bounds)")

	t2 := &Table{
		ID:       "E09b",
		Title:    "End-to-end steady skew: mean vs midpoint (f=1, one two-faced fault)",
		PaperRef: "§7: \"an error of approximately 2ε is approachable\"",
		Columns:  []string{"n", "midpoint skew", "≤ 4ε floor", "mean skew", "≤ mean floor", "mean floor ≈2ε"},
	}
	// Two trials per n — midpoint then mean — completed into one row by the
	// ordered Each.
	type trial struct {
		n  int
		av core.Averager
	}
	bns := []int{4, 10, 16}
	if BigSweeps() {
		bns = append(bns, 32, 48)
	}
	var points []trial
	for _, n := range bns {
		points = append(points, trial{n: n, av: core.Midpoint}, trial{n: n, av: core.Mean})
	}
	var midSkew float64
	sweep := Sweep[trial]{
		Name:   "E09b",
		Params: points,
		Build: func(p trial) (Workload, error) {
			return steadySkewWorkload(analysis.Default(p.n, 1), p.av), nil
		},
		Each: func(p trial, w Workload, res *Result) error {
			skew := res.Skew.MaxAfterWarmup()
			if p.av == core.Midpoint {
				midSkew = skew
				return nil
			}
			params := w.Cfg.Params
			midFloor := params.BetaFloor() // 4ε+4ρP
			meanFloor := 2*params.Eps + 4*params.Rho*params.P
			t2.AddRow(fmtInt(p.n), FmtDur(midSkew), Verdict(midSkew <= midFloor),
				FmtDur(skew), Verdict(skew <= meanFloor), FmtDur(meanFloor))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t2.AddNote("both averagers sit below their worst-case floors (4ε+4ρP for midpoint; ≈2ε approachable for mean)")
	t2.AddNote("under *stochastic* uniform jitter the midrange is the statistically efficient estimator, so measured midpoint skew can undercut the mean — the paper's 2ε-vs-4ε separation concerns the adaptive worst case (see EXPERIMENTS.md)")
	return []*Table{t1, t2}, nil
}

// contraction measures one round's diameter contraction in the synchronous
// substrate with the spread adversary.
func contraction(n, f int, av agreement.Averager) (float64, error) {
	adv := &agreement.SpreadAdversary{}
	cfg := agreement.Config{N: n, F: f, Averager: av, Adversary: adv}
	init := make([]float64, n)
	faulty := make([]bool, n)
	faulty[n-1] = true
	for i := 0; i < n-1; i++ {
		init[i] = float64(i) / float64(n-2)
	}
	st, err := agreement.New(cfg, init, faulty)
	if err != nil {
		return 0, fmt.Errorf("E09: %w", err)
	}
	vals := multiset.New(st.Values()...)
	adv.Observe(vals.Min(), vals.Max())
	before := st.Diameter()
	if err := st.Step(); err != nil {
		return 0, err
	}
	return st.Diameter() / before, nil
}

// steadySkewWorkload assembles the clock algorithm with the given averager
// and one two-faced fault whose messages land inside every window (the
// adversary the mean is better against: an extreme surviving value drags the
// midpoint by half the range but the mean by only 1/(n−2f) of it).
func steadySkewWorkload(params analysis.Params, av core.Averager) Workload {
	cfg := core.Config{Params: params, Averager: av}
	return Workload{
		Cfg:    cfg,
		Rounds: 16,
		Faults: map[sim.ProcID]func() sim.Process{
			sim.ProcID(params.N - 1): func() sim.Process {
				return &faults.TwoFaced{Cfg: cfg, Lead: 3e-3, Lag: 3e-3}
			},
		},
		Seed: 23,
	}
}
