package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is one experiment's output: a titled grid of cells with optional
// footnotes, renderable as aligned text or markdown.
type Table struct {
	ID       string // experiment id, e.g. "E01"
	Title    string
	PaperRef string // where in the paper the claim lives, e.g. "Theorem 16"
	Columns  []string
	Rows     [][]string
	Notes    []string
}

// AddRow appends a row; cell count should match Columns.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s  [%s]\n", t.ID, t.Title, t.PaperRef)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, fmt.Sprintf("%-*s", widths[i], c))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Markdown writes the table as GitHub-flavored markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n*Paper reference: %s*\n\n", t.ID, t.Title, t.PaperRef)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*Note: %s*\n", n)
	}
	fmt.Fprintln(w)
}

// FmtDur renders a duration in seconds with an adaptive unit (s/ms/µs/ns).
// Non-finite values render as NaN / +Inf / -Inf rather than falling through
// to the nanosecond branch (which printed "NaNns" / "+Infns").
func FmtDur(sec float64) string {
	a := math.Abs(sec)
	switch {
	case math.IsNaN(sec):
		return "NaN"
	case math.IsInf(sec, 1):
		return "+Inf"
	case math.IsInf(sec, -1):
		return "-Inf"
	case a == 0:
		return "0"
	case a >= 1:
		return fmt.Sprintf("%.3fs", sec)
	case a >= 1e-3:
		return fmt.Sprintf("%.3fms", sec*1e3)
	case a >= 1e-6:
		return fmt.Sprintf("%.3fµs", sec*1e6)
	default:
		return fmt.Sprintf("%.1fns", sec*1e9)
	}
}

// FmtRatio renders a dimensionless ratio.
func FmtRatio(r float64) string { return fmt.Sprintf("%.3f", r) }

// Verdict renders the standard ok/VIOLATED cell for a bound check.
func Verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
