package exp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
)

func init() {
	register(Experiment{
		ID:       "E02",
		Title:    "γ-agreement across parameter regimes",
		PaperRef: "Theorem 16",
		Run:      runE02,
	})
}

// runE02 measures max |L_p(t) − L_q(t)| over six parameter sets and checks
// it against the closed-form γ of Theorem 16.
func runE02() ([]*Table, error) {
	type regime struct {
		name               string
		rho, delta, eps, p float64
	}
	regimes := []regime{
		{"default", 1e-5, 10e-3, 1e-3, 1.0},
		{"tight eps", 1e-5, 10e-3, 0.2e-3, 1.0},
		{"loose eps", 1e-5, 20e-3, 4e-3, 1.0},
		{"high drift", 1e-4, 10e-3, 1e-3, 1.0},
		{"long round", 1e-5, 10e-3, 1e-3, 5.0},
		{"fast lan", 1e-6, 1e-3, 0.1e-3, 0.5},
	}
	t := &Table{
		ID:       "E02",
		Title:    "Measured worst-case skew vs γ = β+ε+ρ(7β+3δ+7ε)+O(ρ²)",
		PaperRef: "Theorem 16",
		Columns:  []string{"regime", "ρ", "δ", "ε", "P", "β", "paper γ", "measured", "ratio", "holds"},
	}
	sweep := Sweep[regime]{
		Name:   "E02",
		Params: regimes,
		Build: func(r regime) (Workload, error) {
			params := analysis.Params{
				N: 7, F: 2,
				Rho: r.rho, Delta: r.delta, Eps: r.eps, P: r.p,
				// β chosen just above its feasibility floor for the regime.
				Beta: 4*r.eps + 4*r.rho*r.p + r.eps/2 + 1e-4,
			}
			if err := params.Validate(); err != nil {
				return Workload{}, fmt.Errorf("%s: %w", r.name, err)
			}
			return Workload{Cfg: core.Config{Params: params}, Rounds: 15, Seed: 5}, nil
		},
		Each: func(r regime, w Workload, res *Result) error {
			params := w.Cfg.Params
			gamma := params.Gamma()
			meas := res.Skew.Max()
			t.AddRow(r.name,
				fmt.Sprintf("%.0e", r.rho), FmtDur(r.delta), FmtDur(r.eps), FmtDur(r.p), FmtDur(params.Beta),
				FmtDur(gamma), FmtDur(meas), FmtRatio(meas/gamma), Verdict(meas <= gamma))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("measured/γ well below 1 is expected: γ is a worst-case bound over all executions")
	return []*Table{t}, nil
}

func fmtInt(i int) string { return fmt.Sprintf("%d", i) }
