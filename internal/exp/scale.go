package exp

import "sync/atomic"

// bigSweepsOn gates the large parameter points of the sweep experiments
// (E05 beyond f = 4, E09 beyond n = 31, the E17 conformance grid's largest
// systems). They are enabled by default so cmd/experiments regenerates the
// full tables; the test harness turns them off under -short so the quick
// loop stays quick (see TestMain in golden_test.go).
var bigSweepsOn atomic.Bool

func init() { bigSweepsOn.Store(true) }

// SetBigSweeps enables or disables the large sweep rows.
func SetBigSweeps(on bool) { bigSweepsOn.Store(on) }

// BigSweeps reports whether the large sweep rows are enabled.
func BigSweeps() bool { return bigSweepsOn.Load() }

// stressTierOn gates the nightly-scale stress rows (the E17 conformance
// grid at n = 31). Off by default — the stress tier is additive-only, so
// the golden tables and the per-push CI loop never run it; the nightly
// workflow turns it on with `cmd/experiments -stress`.
var stressTierOn atomic.Bool

// SetStressTier enables or disables the nightly stress rows.
func SetStressTier(on bool) { stressTierOn.Store(on) }

// StressTier reports whether the nightly stress rows are enabled.
func StressTier() bool { return stressTierOn.Load() }
