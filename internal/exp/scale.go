package exp

import "sync/atomic"

// bigSweepsOn gates the large parameter points of the sweep experiments
// (E05 beyond f = 4, E09 beyond n = 31, the E17 conformance grid's largest
// systems). They are enabled by default so cmd/experiments regenerates the
// full tables; the test harness turns them off under -short so the quick
// loop stays quick (see TestMain in golden_test.go).
var bigSweepsOn atomic.Bool

func init() { bigSweepsOn.Store(true) }

// SetBigSweeps enables or disables the large sweep rows.
func SetBigSweeps(on bool) { bigSweepsOn.Store(on) }

// BigSweeps reports whether the large sweep rows are enabled.
func BigSweeps() bool { return bigSweepsOn.Load() }
