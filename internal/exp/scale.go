package exp

import (
	"sync/atomic"

	"repro/internal/sim"
)

// bigSweepsOn gates the large parameter points of the sweep experiments
// (E05 beyond f = 4, E09 beyond n = 31, the E17 conformance grid's largest
// systems). They are enabled by default so cmd/experiments regenerates the
// full tables; the test harness turns them off under -short so the quick
// loop stays quick (see TestMain in golden_test.go).
var bigSweepsOn atomic.Bool

func init() { bigSweepsOn.Store(true) }

// SetBigSweeps enables or disables the large sweep rows.
func SetBigSweeps(on bool) { bigSweepsOn.Store(on) }

// BigSweeps reports whether the large sweep rows are enabled.
func BigSweeps() bool { return bigSweepsOn.Load() }

// stressTierOn gates the nightly-scale stress rows (the E17 conformance
// grid at n = 31). Off by default — the stress tier is additive-only, so
// the golden tables and the per-push CI loop never run it; the nightly
// workflow turns it on with `cmd/experiments -stress`.
var stressTierOn atomic.Bool

// SetStressTier enables or disables the nightly stress rows.
func SetStressTier(on bool) { stressTierOn.Store(on) }

// StressTier reports whether the nightly stress rows are enabled.
func StressTier() bool { return stressTierOn.Load() }

// broadcastOverride, when ≥ 0, forces every workload's broadcast
// materialization mode regardless of Workload.Broadcast. The golden
// equivalence test uses it to replay the full experiment suite under forced
// lazy materialization and demand byte-identical tables.
var broadcastOverride atomic.Int32

func init() { broadcastOverride.Store(-1) }

// SetBroadcastOverride forces mode on every subsequent Run.
func SetBroadcastOverride(m sim.BroadcastMode) { broadcastOverride.Store(int32(m)) }

// ClearBroadcastOverride restores per-workload broadcast mode selection.
func ClearBroadcastOverride() { broadcastOverride.Store(-1) }
