package exp

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:       "E11",
		Title:    "Staggered broadcasts on a collision-prone datagram network",
		PaperRef: "§9.3 (Bell Labs implementation)",
		Run:      runE11,
	})
}

// runE11 reproduces the §9.3 phenomenon: on an Ethernet-like channel with a
// bounded receive buffer, simultaneous broadcasts collide — "when the system
// behaves well, it is punished" — and staggering the broadcast times by p·σ
// removes the loss and restores synchronization quality.
func runE11() ([]*Table, error) {
	params := analysis.Default(10, 3)
	t := &Table{
		ID:       "E11",
		Title:    "Datagram loss and skew with and without staggering (n=10, buffer=6)",
		PaperRef: "§9.3",
		Columns:  []string{"σ (stagger)", "copies lost", "loss rate", "steady skew", "within γ+nσ drift term"},
	}
	sweep := Sweep[float64]{
		Name:   "E11",
		Params: []float64{0, 0.5e-3, 2e-3},
		Build: func(sigma float64) (Workload, error) {
			return Workload{
				Cfg:     core.Config{Params: params, Stagger: sigma},
				Rounds:  15,
				Channel: sim.NewEther(0.4e-3, 6),
				Seed:    13,
			}, nil
		},
		Each: func(sigma float64, w Workload, res *Result) error {
			cfg := w.Cfg
			sent := res.Engine.MessagesSent() + res.Engine.MessagesLost()
			lossRate := 0.0
			if sent > 0 {
				lossRate = float64(res.Engine.MessagesLost()) / float64(sent)
			}
			bound := cfg.Gamma() + float64(cfg.N)*sigma*2*cfg.Rho + 1e-4
			skew := res.Skew.MaxAfterWarmup()
			t.AddRow(FmtDur(sigma), fmtInt(int(res.Engine.MessagesLost())), FmtRatio(lossRate),
				FmtDur(skew), Verdict(skew <= bound))
			return nil
		},
	}
	if err := sweep.Run(); err != nil {
		return nil, err
	}
	t.AddNote("σ=0: all ten broadcasts hit each receiver within the contention window and overflow its buffer")
	t.AddNote("the algorithm still synchronizes under loss (dropped copies look like faulty senders), but with degraded margins; staggering eliminates the loss")
	return []*Table{t}, nil
}
