package exp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestTableRenderText(t *testing.T) {
	tbl := &Table{
		ID:       "T1",
		Title:    "demo",
		PaperRef: "Thm X",
		Columns:  []string{"a", "longer"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("hello %d", 7)
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"T1 — demo", "[Thm X]", "a", "longer", "333", "note: hello 7", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := &Table{ID: "T2", Title: "md", PaperRef: "§9", Columns: []string{"x", "y"}}
	tbl.AddRow("a", "b")
	tbl.AddNote("n")
	var b strings.Builder
	tbl.Markdown(&b)
	out := b.String()
	for _, want := range []string{"### T2 — md", "| x | y |", "| --- | --- |", "| a | b |", "*Note: n*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFmtDur(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{math.Copysign(0, -1), "0"},
		{1.5, "1.500s"},
		{12e-3, "12.000ms"},
		{3.25e-6, "3.250µs"},
		{4e-9, "4.0ns"},
		{-1.5, "-1.500s"},
		{-2e-3, "-2.000ms"},
		{-3.25e-6, "-3.250µs"},
		{-4e-9, "-4.0ns"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	}
	for _, tt := range tests {
		if got := FmtDur(tt.in); got != tt.want {
			t.Errorf("FmtDur(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestVerdict(t *testing.T) {
	if Verdict(true) != "ok" || Verdict(false) != "VIOLATED" {
		t.Error("Verdict rendering wrong")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 16 {
		t.Fatalf("registry has %d experiments, want ≥ 16", len(all))
	}
	// Sorted by id, unique, well formed.
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
		if i > 0 && all[i-1].ID >= e.ID {
			t.Errorf("registry not sorted: %s before %s", all[i-1].ID, e.ID)
		}
	}
	if _, err := ByID("E01"); err != nil {
		t.Errorf("ByID(E01): %v", err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID(nope) should fail")
	}
}

func TestRunDefaults(t *testing.T) {
	cfg := core.Config{Params: analysis.Default(4, 1)}
	res, err := Run(Workload{Cfg: cfg, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds.Rounds() < 5 {
		t.Errorf("rounds = %d", res.Rounds.Rounds())
	}
	if res.Engine == nil || res.Skew == nil || res.Validity == nil {
		t.Error("result incomplete")
	}
}

func TestRunRejectsEmptyWorkload(t *testing.T) {
	if _, err := Run(Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestRunStartOverride(t *testing.T) {
	cfg := core.Config{Params: analysis.Default(4, 1)}
	res, err := Run(Workload{
		Cfg:    cfg,
		Rounds: 5,
		Faults: map[sim.ProcID]func() sim.Process{
			3: func() sim.Process { return silentProc{} },
		},
		StartOverride: map[sim.ProcID]clock.Real{3: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Engine.Faulty(3) {
		t.Error("fault override not marked faulty")
	}
}

type silentProc struct{}

func (silentProc) Receive(*sim.Context, sim.Message) {}

// TestAllExperimentsRun smoke-runs every registered experiment and checks
// every bound-verdict cell reports ok where the experiment intends it to.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %s has no rows", tbl.ID)
				}
				// Bound-check columns must all hold, except in the
				// experiments that demonstrate guarantee loss on purpose
				// (boundary violation, graceful degradation, ablations,
				// partition containment and sharpness).
				if tbl.ID == "E05b" || tbl.ID == "E12" || tbl.ID == "E16" || tbl.ID == "E20b" {
					continue
				}
				for _, row := range tbl.Rows {
					for _, cell := range row {
						if cell == "VIOLATED" {
							t.Errorf("table %s row %v has a violated bound", tbl.ID, row)
						}
					}
				}
			}
		})
	}
}
