// Package clock implements the paper's clock model (§2.1, §3.1): a clock is a
// monotonically increasing, (piecewise-)differentiable function from real
// times to clock times, and a physical clock is ρ-bounded when its rate stays
// within [1/(1+ρ), 1+ρ].
//
// Following the paper's notational convention, lower-case letters are real
// times and upper-case letters are clock times; here the two are the defined
// types Real and Local. All times are in seconds.
//
// Clocks are represented piecewise-linearly, which keeps them exactly
// invertible: the simulation engine relies on Inv to schedule TIMER delivery
// at the exact real instant Ph⁻¹(T) the model prescribes.
package clock

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Real is a point on the real-time axis ("t" in the paper), in seconds.
type Real float64

// Local is a point on a clock-time axis ("T" in the paper), in seconds. Both
// physical clock readings and logical (corrected) times are Local values.
type Local float64

// Duration helpers keep call sites readable without importing time.
const (
	Millisecond = 1e-3
	Microsecond = 1e-6
)

// Clock is a monotonically increasing mapping from real time to clock time.
// Implementations must be strictly increasing so that Inv is well defined.
type Clock interface {
	// At returns the clock reading at real time t (the paper's C(t)).
	At(t Real) Local
	// Inv returns the real time at which the clock reads T (the paper's
	// c(T), the inverse function).
	Inv(T Local) Real
	// Rate returns dC/dt at real time t. At a breakpoint the rate of the
	// segment beginning at t is returned.
	Rate(t Real) float64
}

// segment is one linear piece of a piecewise-linear clock: for t >= start
// (until the next segment) the clock reads value + rate*(t-start).
type segment struct {
	start Real
	value Local
	rate  float64
}

// PiecewiseLinear is a strictly increasing piecewise-linear clock. The zero
// value is not usable; construct with New, Linear, or a drift schedule.
type PiecewiseLinear struct {
	segs []segment
}

var _ Clock = (*PiecewiseLinear)(nil)

// Linear returns the clock C(t) = offset + rate*t.
func Linear(offset Local, rate float64) *PiecewiseLinear {
	return &PiecewiseLinear{segs: []segment{{start: 0, value: offset, rate: rate}}}
}

// Breakpoint describes the clock rate taking effect at a real time. Used to
// build piecewise clocks via New.
type Breakpoint struct {
	Start Real    // real time the rate takes effect
	Rate  float64 // dC/dt from Start until the next breakpoint
}

// New builds a piecewise-linear clock that reads valueAtFirst at the first
// breakpoint's start time and then follows the given rates. Breakpoints must
// be strictly increasing in Start and all rates must be positive. The clock
// is extended to all of ℝ using the first and last rates.
func New(valueAtFirst Local, bps []Breakpoint) (*PiecewiseLinear, error) {
	if len(bps) == 0 {
		return nil, errors.New("clock: need at least one breakpoint")
	}
	segs := make([]segment, 0, len(bps))
	v := valueAtFirst
	for i, bp := range bps {
		if bp.Rate <= 0 {
			return nil, fmt.Errorf("clock: rate %v at breakpoint %d is not positive", bp.Rate, i)
		}
		if i > 0 {
			prev := segs[i-1]
			if bp.Start <= prev.start {
				return nil, fmt.Errorf("clock: breakpoint %d start %v not after previous %v", i, bp.Start, prev.start)
			}
			v = prev.value + Local(prev.rate*float64(bp.Start-prev.start))
		}
		segs = append(segs, segment{start: bp.Start, value: v, rate: bp.Rate})
	}
	return &PiecewiseLinear{segs: segs}, nil
}

// At implements Clock.
func (c *PiecewiseLinear) At(t Real) Local {
	s := c.segAt(t)
	return s.value + Local(s.rate*float64(t-s.start))
}

// Inv implements Clock.
func (c *PiecewiseLinear) Inv(T Local) Real {
	s := c.segs[0]
	if len(c.segs) > 1 {
		// Find the last segment whose starting value is <= T. Values are
		// increasing across segments because rates are positive.
		i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].value > T }) - 1
		if i < 0 {
			i = 0
		}
		s = c.segs[i]
	}
	return s.start + Real(float64(T-s.value)/s.rate)
}

// Rate implements Clock.
func (c *PiecewiseLinear) Rate(t Real) float64 {
	return c.segAt(t).rate
}

func (c *PiecewiseLinear) segAt(t Real) segment {
	if len(c.segs) == 1 {
		// Linear clocks (the default constant-drift schedule) are the
		// per-event hot path; skip the binary search and its closure.
		return c.segs[0]
	}
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].start > t }) - 1
	if i < 0 {
		i = 0
	}
	return c.segs[i]
}

// RhoBounded reports whether every segment rate of the clock lies within the
// paper's ρ-band [1/(1+ρ), 1+ρ].
func (c *PiecewiseLinear) RhoBounded(rho float64) bool {
	lo, hi := 1/(1+rho), 1+rho
	for _, s := range c.segs {
		if s.rate < lo-1e-15 || s.rate > hi+1e-15 {
			return false
		}
	}
	return true
}

// Segments returns the number of linear pieces (useful in tests).
func (c *PiecewiseLinear) Segments() int { return len(c.segs) }

// Offset is a convenience clock built on an underlying clock shifted by a
// constant: the paper's logical clock Ph + CORR for a fixed CORR.
type Offset struct {
	Base Clock
	Corr Local
}

var _ Clock = Offset{}

// At implements Clock.
func (o Offset) At(t Real) Local { return o.Base.At(t) + o.Corr }

// Inv implements Clock.
func (o Offset) Inv(T Local) Real { return o.Base.Inv(T - o.Corr) }

// Rate implements Clock.
func (o Offset) Rate(t Real) float64 { return o.Base.Rate(t) }

// MaxRho returns the smallest ρ such that a rate r is within [1/(1+ρ), 1+ρ];
// useful when characterizing a generated clock.
func MaxRho(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	if rate >= 1 {
		return rate - 1
	}
	return 1/rate - 1
}
