package clock

import (
	"fmt"
	"math"
	"math/rand"
)

// DriftSchedule generates ρ-bounded physical clocks. Schedules are the
// workload knob for experiments: a constant fast/slow clock is the worst case
// for validity, while a wandering rate exercises the inductive analysis.
type DriftSchedule interface {
	// Build returns the physical clock for process id out of n. The clock
	// must be ρ-bounded for the schedule's ρ.
	Build(id, n int) Clock
	// Rho returns the drift bound the schedule honors.
	Rho() float64
}

// ConstantDrift assigns each process a fixed rate spread across the ρ-band:
// process 0 runs slowest (1/(1+ρ)), process n−1 fastest (1+ρ), the rest
// evenly in between. InitialOffset lets tests start physical clocks apart.
type ConstantDrift struct {
	RhoBound       float64
	InitialOffsets []Local // optional per-process Ph(0); nil means all zero
}

var _ DriftSchedule = ConstantDrift{}

// Build implements DriftSchedule.
func (d ConstantDrift) Build(id, n int) Clock {
	lo := 1 / (1 + d.RhoBound)
	hi := 1 + d.RhoBound
	frac := 0.5
	if n > 1 {
		frac = float64(id) / float64(n-1)
	}
	rate := lo + frac*(hi-lo)
	var off Local
	if id < len(d.InitialOffsets) {
		off = d.InitialOffsets[id]
	}
	return Linear(off, rate)
}

// Rho implements DriftSchedule.
func (d ConstantDrift) Rho() float64 { return d.RhoBound }

// RandomWalkDrift builds clocks whose rate is re-drawn uniformly from the
// ρ-band every SegmentDur real seconds up to Horizon. Deterministic per seed
// and process id.
type RandomWalkDrift struct {
	RhoBound   float64
	SegmentDur Real
	Horizon    Real
	Seed       int64
	Offsets    []Local // optional per-process Ph at the first breakpoint
}

var _ DriftSchedule = RandomWalkDrift{}

// Build implements DriftSchedule.
func (d RandomWalkDrift) Build(id, n int) Clock {
	rng := rand.New(rand.NewSource(d.Seed*1_000_003 + int64(id)))
	lo := 1 / (1 + d.RhoBound)
	hi := 1 + d.RhoBound
	segDur := d.SegmentDur
	if segDur <= 0 {
		segDur = 1
	}
	horizon := d.Horizon
	if horizon <= 0 {
		horizon = 3600
	}
	nseg := int(math.Ceil(float64(horizon/segDur))) + 1
	bps := make([]Breakpoint, 0, nseg)
	for i := 0; i < nseg; i++ {
		bps = append(bps, Breakpoint{
			Start: Real(i) * segDur,
			Rate:  lo + rng.Float64()*(hi-lo),
		})
	}
	var off Local
	if id < len(d.Offsets) {
		off = d.Offsets[id]
	}
	c, err := New(off, bps)
	if err != nil {
		// Construction only fails on programmer error (bad breakpoints),
		// which the loop above cannot produce.
		panic(fmt.Sprintf("clock: random walk build: %v", err))
	}
	return c
}

// Rho implements DriftSchedule.
func (d RandomWalkDrift) Rho() float64 { return d.RhoBound }

// AlternatingDrift flips each clock between the slow and fast extreme every
// Period seconds, with odd processes in antiphase. This is the adversarial
// drift pattern: pairwise relative drift is maximal at all times.
type AlternatingDrift struct {
	RhoBound float64
	Period   Real
	Horizon  Real
	Offsets  []Local
}

var _ DriftSchedule = AlternatingDrift{}

// Build implements DriftSchedule.
func (d AlternatingDrift) Build(id, n int) Clock {
	lo := 1 / (1 + d.RhoBound)
	hi := 1 + d.RhoBound
	period := d.Period
	if period <= 0 {
		period = 1
	}
	horizon := d.Horizon
	if horizon <= 0 {
		horizon = 3600
	}
	nseg := int(math.Ceil(float64(horizon/period))) + 1
	bps := make([]Breakpoint, 0, nseg)
	for i := 0; i < nseg; i++ {
		rate := lo
		if (i+id)%2 == 0 {
			rate = hi
		}
		bps = append(bps, Breakpoint{Start: Real(i) * period, Rate: rate})
	}
	var off Local
	if id < len(d.Offsets) {
		off = d.Offsets[id]
	}
	c, err := New(off, bps)
	if err != nil {
		panic(fmt.Sprintf("clock: alternating build: %v", err))
	}
	return c
}

// Rho implements DriftSchedule.
func (d AlternatingDrift) Rho() float64 { return d.RhoBound }

// SpreadOffsets returns n initial offsets evenly spread over [0, width] —
// the standard way experiments realize assumption A4 (initial logical clocks
// within β) or violate it (width ≫ β for startup experiments).
func SpreadOffsets(n int, width Local) []Local {
	offs := make([]Local, n)
	if n <= 1 {
		return offs
	}
	for i := range offs {
		offs[i] = width * Local(i) / Local(n-1)
	}
	return offs
}

// RandomOffsets returns n offsets drawn uniformly from [0, width), seeded.
func RandomOffsets(n int, width Local, seed int64) []Local {
	rng := rand.New(rand.NewSource(seed))
	offs := make([]Local, n)
	for i := range offs {
		offs[i] = Local(rng.Float64()) * width
	}
	return offs
}
