package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearAt(t *testing.T) {
	tests := []struct {
		name   string
		offset Local
		rate   float64
		t      Real
		want   Local
	}{
		{"identity at zero", 0, 1, 0, 0},
		{"identity at ten", 0, 1, 10, 10},
		{"offset only", 5, 1, 10, 15},
		{"fast clock", 0, 1.5, 10, 15},
		{"slow clock", 0, 0.5, 10, 5},
		{"negative time", 2, 1, -3, -1},
		{"fractional", 0.5, 2, 0.25, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Linear(tt.offset, tt.rate)
			if got := c.At(tt.t); math.Abs(float64(got-tt.want)) > 1e-12 {
				t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
			}
		})
	}
}

func TestLinearInvRoundTrip(t *testing.T) {
	c := Linear(3, 1.25)
	for _, tv := range []Real{-10, -1, 0, 0.5, 1, 100, 1e6} {
		T := c.At(tv)
		if got := c.Inv(T); math.Abs(float64(got-tv)) > 1e-9 {
			t.Errorf("Inv(At(%v)) = %v", tv, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		bps     []Breakpoint
		wantErr bool
	}{
		{"empty", nil, true},
		{"single", []Breakpoint{{0, 1}}, false},
		{"zero rate", []Breakpoint{{0, 0}}, true},
		{"negative rate", []Breakpoint{{0, -1}}, true},
		{"non-increasing starts", []Breakpoint{{0, 1}, {0, 1.1}}, true},
		{"decreasing starts", []Breakpoint{{5, 1}, {2, 1.1}}, true},
		{"good pair", []Breakpoint{{0, 1}, {10, 1.1}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(0, tt.bps)
			if (err != nil) != tt.wantErr {
				t.Errorf("New err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestPiecewiseContinuity(t *testing.T) {
	c, err := New(100, []Breakpoint{{0, 1.0}, {10, 0.5}, {20, 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	// Value approaching a breakpoint from the left equals value at it.
	for _, bp := range []Real{10, 20} {
		left := c.At(bp - 1e-9)
		at := c.At(bp)
		if math.Abs(float64(at-left)) > 1e-6 {
			t.Errorf("discontinuity at %v: left %v, at %v", bp, left, at)
		}
	}
	// Spot values: At(10)=110, At(20)=115, At(30)=135.
	for _, tt := range []struct {
		t    Real
		want Local
	}{{0, 100}, {10, 110}, {15, 112.5}, {20, 115}, {30, 135}, {-5, 95}} {
		if got := c.At(tt.t); math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestPiecewiseInvRoundTrip(t *testing.T) {
	c, err := New(-3, []Breakpoint{{0, 0.9}, {7, 1.2}, {9, 1.0}, {50, 1.1}})
	if err != nil {
		t.Fatal(err)
	}
	for tv := Real(-20); tv <= 100; tv += 0.37 {
		T := c.At(tv)
		if got := c.Inv(T); math.Abs(float64(got-tv)) > 1e-9 {
			t.Fatalf("Inv(At(%v)) = %v", tv, got)
		}
	}
}

func TestInvRoundTripProperty(t *testing.T) {
	// For random piecewise ρ-bounded clocks, Inv∘At is the identity and At
	// is strictly monotone.
	f := func(seed int64, probe float64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := 1e-4 + rng.Float64()*0.1
		n := 1 + rng.Intn(10)
		bps := make([]Breakpoint, n)
		start := Real(-rng.Float64() * 10)
		for i := range bps {
			bps[i] = Breakpoint{Start: start, Rate: 1/(1+rho) + rng.Float64()*(1+rho-1/(1+rho))}
			start += Real(0.1 + rng.Float64()*10)
		}
		c, err := New(Local(rng.NormFloat64()*100), bps)
		if err != nil {
			return false
		}
		if !c.RhoBounded(rho) {
			return false
		}
		tv := Real(math.Mod(probe, 1000))
		T := c.At(tv)
		back := c.Inv(T)
		if math.Abs(float64(back-tv)) > 1e-6 {
			return false
		}
		// Monotonicity across a small step.
		return c.At(tv+1e-3) > T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLemma1 checks the paper's Lemma 1: for a ρ-bounded clock and t1 < t2,
// (t2−t1)/(1+ρ) ≤ C(t2)−C(t1) ≤ (1+ρ)(t2−t1).
func TestLemma1(t *testing.T) {
	rho := 0.02
	sched := RandomWalkDrift{RhoBound: rho, SegmentDur: 2, Horizon: 200, Seed: 42}
	c := sched.Build(0, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		t1 := Real(rng.Float64() * 150)
		t2 := t1 + Real(rng.Float64()*40)
		elapsed := float64(c.At(t2) - c.At(t1))
		lo := float64(t2-t1) / (1 + rho)
		hi := float64(t2-t1) * (1 + rho)
		if elapsed < lo-1e-9 || elapsed > hi+1e-9 {
			t.Fatalf("Lemma 1 violated: elapsed %v not in [%v, %v]", elapsed, lo, hi)
		}
	}
}

// TestLemma2 checks |(C(t2)−t2) − (C(t1)−t1)| ≤ ρ|t2−t1| for ρ-bounded C.
func TestLemma2(t *testing.T) {
	rho := 0.05
	sched := RandomWalkDrift{RhoBound: rho, SegmentDur: 1, Horizon: 100, Seed: 9}
	c := sched.Build(3, 4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		t1 := Real(rng.Float64() * 80)
		t2 := Real(rng.Float64() * 80)
		lhs := math.Abs(float64((c.At(t2) - Local(t2)) - (c.At(t1) - Local(t1))))
		rhs := rho * math.Abs(float64(t2-t1))
		if lhs > rhs+1e-9 {
			t.Fatalf("Lemma 2 violated: %v > %v (t1=%v t2=%v)", lhs, rhs, t1, t2)
		}
	}
}

// TestLemma3 checks: if two inverse clocks stay within α on [T1,T2], then the
// forward clocks stay within (1+ρ)α on the corresponding real interval.
func TestLemma3(t *testing.T) {
	rho := 0.01
	c := Linear(0, 1+rho)
	d := Linear(0.5, 1/(1+rho))
	T1, T2 := Local(10), Local(60)
	// For linear clocks the inverse difference is linear in T, so its sup on
	// [T1,T2] is attained at an endpoint.
	alpha := math.Max(
		math.Abs(float64(c.Inv(T1)-d.Inv(T1))),
		math.Abs(float64(c.Inv(T2)-d.Inv(T2))))
	t1 := Real(math.Min(float64(c.Inv(T1)), float64(d.Inv(T1))))
	t2 := Real(math.Max(float64(c.Inv(T2)), float64(d.Inv(T2))))
	for tv := t1; tv <= t2; tv += 0.05 {
		diff := math.Abs(float64(c.At(tv) - d.At(tv)))
		if diff > (1+rho)*alpha+1e-9 {
			t.Fatalf("Lemma 3 violated at t=%v: |C-D| = %v > (1+ρ)α = %v", tv, diff, (1+rho)*alpha)
		}
	}
}

func TestOffsetClock(t *testing.T) {
	base := Linear(0, 1.1)
	o := Offset{Base: base, Corr: 7}
	if got := o.At(10); math.Abs(float64(got-18)) > 1e-12 {
		t.Errorf("Offset.At(10) = %v, want 18", got)
	}
	if got := o.Inv(18); math.Abs(float64(got-10)) > 1e-9 {
		t.Errorf("Offset.Inv(18) = %v, want 10", got)
	}
	if o.Rate(3) != 1.1 {
		t.Errorf("Offset.Rate = %v, want 1.1", o.Rate(3))
	}
}

func TestRhoBounded(t *testing.T) {
	tests := []struct {
		name string
		rate float64
		rho  float64
		want bool
	}{
		{"perfect clock tight rho", 1.0, 1e-6, true},
		{"fast within", 1.0000009, 1e-6, true},
		{"fast outside", 1.000002, 1e-6, false},
		{"slow within", 1 / 1.0000009, 1e-6, true},
		{"slow outside", 1 / 1.000002, 1e-6, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Linear(0, tt.rate)
			if got := c.RhoBounded(tt.rho); got != tt.want {
				t.Errorf("RhoBounded(%v) = %v, want %v", tt.rho, got, tt.want)
			}
		})
	}
}

func TestConstantDriftSpansBand(t *testing.T) {
	d := ConstantDrift{RhoBound: 0.01}
	n := 5
	lo, hi := 1/(1+d.RhoBound), 1+d.RhoBound
	first := d.Build(0, n).Rate(0)
	last := d.Build(n-1, n).Rate(0)
	if math.Abs(first-lo) > 1e-12 {
		t.Errorf("slowest rate %v, want %v", first, lo)
	}
	if math.Abs(last-hi) > 1e-12 {
		t.Errorf("fastest rate %v, want %v", last, hi)
	}
	for i := 0; i < n; i++ {
		c := d.Build(i, n).(*PiecewiseLinear)
		if !c.RhoBounded(d.RhoBound) {
			t.Errorf("process %d not ρ-bounded", i)
		}
	}
}

func TestConstantDriftSingleProcess(t *testing.T) {
	d := ConstantDrift{RhoBound: 0.01}
	c := d.Build(0, 1)
	r := c.Rate(0)
	if r < 1/(1+d.RhoBound) || r > 1+d.RhoBound {
		t.Errorf("single-process rate %v outside band", r)
	}
}

func TestRandomWalkDriftBoundedAndDeterministic(t *testing.T) {
	d := RandomWalkDrift{RhoBound: 1e-3, SegmentDur: 0.5, Horizon: 30, Seed: 5}
	for id := 0; id < 4; id++ {
		c := d.Build(id, 4).(*PiecewiseLinear)
		if !c.RhoBounded(d.RhoBound) {
			t.Errorf("process %d not ρ-bounded", id)
		}
		c2 := d.Build(id, 4).(*PiecewiseLinear)
		for _, tv := range []Real{0, 1, 7.7, 29} {
			if c.At(tv) != c2.At(tv) {
				t.Errorf("nondeterministic clock for id %d at %v", id, tv)
			}
		}
	}
	// Different ids should give different clocks (overwhelmingly likely).
	a := d.Build(0, 4)
	b := d.Build(1, 4)
	same := true
	for _, tv := range []Real{1, 5, 13, 29} {
		if a.At(tv) != b.At(tv) {
			same = false
		}
	}
	if same {
		t.Error("distinct process ids produced identical random clocks")
	}
}

func TestRandomWalkDriftDefaults(t *testing.T) {
	d := RandomWalkDrift{RhoBound: 1e-4}
	c := d.Build(0, 1).(*PiecewiseLinear)
	if !c.RhoBounded(d.RhoBound) {
		t.Error("defaulted random walk not ρ-bounded")
	}
	if c.Segments() < 2 {
		t.Errorf("expected multiple segments, got %d", c.Segments())
	}
}

func TestAlternatingDriftAntiphase(t *testing.T) {
	d := AlternatingDrift{RhoBound: 0.01, Period: 1, Horizon: 10}
	a := d.Build(0, 2)
	b := d.Build(1, 2)
	// At mid-period the two clocks should run at opposite extremes.
	ra, rb := a.Rate(0.5), b.Rate(0.5)
	if ra == rb {
		t.Errorf("antiphase clocks have equal rate %v", ra)
	}
	if math.Abs(ra*rb-1) > 1e-9 {
		// extremes are 1+ρ and 1/(1+ρ), whose product is 1
		t.Errorf("rates %v and %v are not the two band extremes", ra, rb)
	}
}

func TestSpreadOffsets(t *testing.T) {
	offs := SpreadOffsets(5, 8)
	want := []Local{0, 2, 4, 6, 8}
	for i, w := range want {
		if math.Abs(float64(offs[i]-w)) > 1e-12 {
			t.Errorf("offs[%d] = %v, want %v", i, offs[i], w)
		}
	}
	if got := SpreadOffsets(1, 8); got[0] != 0 {
		t.Errorf("single offset = %v, want 0", got[0])
	}
	if got := SpreadOffsets(0, 8); len(got) != 0 {
		t.Errorf("zero offsets len = %d", len(got))
	}
}

func TestRandomOffsetsInRangeAndSeeded(t *testing.T) {
	a := RandomOffsets(10, 3, 1)
	b := RandomOffsets(10, 3, 1)
	c := RandomOffsets(10, 3, 2)
	diff := false
	for i := range a {
		if a[i] < 0 || a[i] >= 3 {
			t.Errorf("offset %v out of range", a[i])
		}
		if a[i] != b[i] {
			t.Error("same seed produced different offsets")
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical offsets")
	}
}

func TestMaxRho(t *testing.T) {
	tests := []struct {
		rate float64
		want float64
	}{
		{1.0, 0},
		{1.01, 0.01},
		{1 / 1.01, 0.01},
	}
	for _, tt := range tests {
		if got := MaxRho(tt.rate); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("MaxRho(%v) = %v, want %v", tt.rate, got, tt.want)
		}
	}
	if !math.IsInf(MaxRho(0), 1) || !math.IsInf(MaxRho(-1), 1) {
		t.Error("MaxRho of non-positive rate should be +Inf")
	}
}

func TestInvBeforeFirstSegment(t *testing.T) {
	c, err := New(10, []Breakpoint{{0, 1}, {5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// T below the first segment's value extrapolates with the first rate.
	if got := c.Inv(5); math.Abs(float64(got-(-5))) > 1e-9 {
		t.Errorf("Inv(5) = %v, want -5", got)
	}
}
