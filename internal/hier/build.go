package hier

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/sim"
)

// System is an assembled two-tier instance ready to hand to sim.New or
// sim.NewSharded: physical clocks, A4-satisfying initial corrections and
// START times, and one Member automaton per process. Experiments substitute
// faulty automata into Procs (and flag them in the sim.Config) before
// constructing the engine.
type System struct {
	Cfg      Config
	Clocks   []clock.Clock
	Corrs    []clock.Local
	Starts   []clock.Real
	Procs    []sim.Process
	MaxStart clock.Real
}

// Build validates cfg and assembles the system. Initial corrections spread
// the initial logical clocks evenly over a real-time width chosen to satisfy
// both tiers' A4 at once: the global spread stays within β_out, and — since
// clusters are contiguous id ranges — the induced within-cluster spread
// (width·(c−1)/(n−1)) stays within β_in.
func Build(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("hier: %w", err)
	}
	n := cfg.N
	drift := clock.ConstantDrift{RhoBound: cfg.Rho}
	clocks := make([]clock.Clock, n)
	for i := range clocks {
		clocks[i] = drift.Build(i, n)
	}

	width := 0.9 * cfg.OuterBeta
	if n > 1 && cfg.ClusterSize > 1 {
		if inner := width * float64(cfg.ClusterSize-1) / float64(n-1); inner > 0.9*cfg.InnerBeta {
			width *= 0.9 * cfg.InnerBeta / inner
		}
	}
	corrs := make([]clock.Local, n)
	starts := make([]clock.Real, n)
	procs := make([]sim.Process, n)
	maxStart := clock.Real(0)
	for i := 0; i < n; i++ {
		var spread clock.Real
		if n > 1 {
			spread = clock.Real(width) * clock.Real(i) / clock.Real(n-1)
		}
		corrs[i] = clock.Local(cfg.T0) - clocks[i].At(spread)
		starts[i] = clocks[i].Inv(clock.Local(cfg.T0) - corrs[i])
		procs[i] = NewMember(cfg, sim.ProcID(i), corrs[i])
		if starts[i] > maxStart {
			maxStart = starts[i]
		}
	}
	return &System{
		Cfg: cfg, Clocks: clocks, Corrs: corrs, Starts: starts,
		Procs: procs, MaxStart: maxStart,
	}, nil
}

// SimConfig returns an engine configuration for running the system `rounds`
// maintenance rounds: the clustered two-band network, a queue hint sized to
// the hierarchy's per-round copy count (not the flat n²), and a step budget
// with the same slack factor the flat experiments use.
func (s *System) SimConfig(rounds int, seed int64) sim.Config {
	perRound := int(s.Cfg.MsgsPerRound())
	return sim.Config{
		Procs:     s.Procs,
		Clocks:    s.Clocks,
		StartAt:   s.Starts,
		Delay:     NewClusteredDelay(s.Cfg),
		Seed:      seed,
		EventHint: perRound + 4*s.Cfg.N + 64,
		MaxSteps:  (rounds + 4) * (perRound + 4*s.Cfg.N),
	}
}

// Horizon returns a real-time end that lets every process finish `rounds`
// inner rounds plus the trailing outer window and discipline delivery.
func (s *System) Horizon(rounds int) clock.Real {
	c := s.Cfg
	return s.MaxStart + clock.Real(
		float64(rounds)*c.P*(1+2*c.Rho)+2*c.OuterParams().Window()+c.OuterDelta+1)
}

// Warmup returns the real time after which steady-state invariants are
// expected to hold: half the rounds, matching the flat experiments'
// convention, which covers the inner convergence and at least one full
// outer round of discipline.
func (s *System) Warmup(rounds int) clock.Real {
	return s.MaxStart + clock.Real(float64(rounds/2)*s.Cfg.P)
}
