package hier

import (
	"math"

	"repro/internal/clock"
	"repro/internal/sim"
)

// ClusteredDelay is the two-substrate network of a hierarchy: copies between
// processes of the same cluster draw uniformly from the inner band
// [δ_in−ε_in, δ_in+ε_in], copies crossing clusters from the outer band.
// Exactly one rng draw is consumed per copy regardless of band, so delivery
// schedules stay reproducible when only the topology changes.
//
// Bounds reports the single enclosing envelope [lo, hi] of both bands as a
// (δ, ε) pair: it is what the engine needs for A3-style admission checks and
// what sharded execution uses for its lookahead, and the enclosing lower
// edge is the true minimum latency across all links.
type ClusteredDelay struct {
	Topology             Config
	InnerDelta, InnerEps float64
	OuterDelta, OuterEps float64
}

var _ sim.DelayModel = ClusteredDelay{}

// NewClusteredDelay builds the network matching cfg's substrate parameters.
func NewClusteredDelay(cfg Config) ClusteredDelay {
	return ClusteredDelay{
		Topology:   cfg,
		InnerDelta: cfg.InnerDelta, InnerEps: cfg.InnerEps,
		OuterDelta: cfg.OuterDelta, OuterEps: cfg.OuterEps,
	}
}

// Sample implements sim.DelayModel.
func (d ClusteredDelay) Sample(from, to sim.ProcID, _ clock.Real, rng *sim.RNG) float64 {
	u := rng.Float64()
	if d.Topology.ClusterOf(from) == d.Topology.ClusterOf(to) {
		return d.InnerDelta - d.InnerEps + 2*d.InnerEps*u
	}
	return d.OuterDelta - d.OuterEps + 2*d.OuterEps*u
}

// Bounds implements sim.DelayModel: the enclosing envelope of both bands.
func (d ClusteredDelay) Bounds() (float64, float64) {
	lo := math.Min(d.InnerDelta-d.InnerEps, d.OuterDelta-d.OuterEps)
	hi := math.Max(d.InnerDelta+d.InnerEps, d.OuterDelta+d.OuterEps)
	return (lo + hi) / 2, (hi - lo) / 2
}
