// Package hier composes the paper's §4.2 maintenance algorithm into a
// two-tier hierarchy, breaking the flat mesh's Θ(n²) per-round message
// traffic.
//
// Processes are grouped into clusters of (up to) ClusterSize contiguous ids.
// Every cluster runs the algorithm internally on a fast intra-cluster
// substrate (δ_in, ε_in): each member unicasts its round mark to its cluster
// only, so a round costs ≈ n·c copies instead of n². Each cluster's acting
// representative runs a second instance of the same algorithm across
// clusters on the (slower, wider) inter-cluster substrate (δ_out, ε_out),
// costing ≈ (n/c)² copies per round, and relays every outer adjustment to
// its followers as a discipline message (c−1 copies). Followers add the
// disciplined adjustment to their own correction, so a whole cluster tracks
// its representative's outer instance while the inner instance keeps the
// members tight around it.
//
// Representatives are elected deterministically: the lowest id of each
// cluster acts first, and every follower monitors the discipline heartbeat —
// a representative that stays silent past ElectAfter of local time is
// deposed by rotating to the next of the cluster's Candidates lowest ids.
// Outer-tier arrivals are slotted by *cluster*, not by sender id, so a
// freshly elected representative is heard by every foreign representative
// without any membership exchange.
//
// The steady-state agreement envelope of the composition is
// analysis.HierParams.GammaComposed: γ_composed = 2γ_in + γ_out +
// AdjBound_out (see that function for the derivation), checked at runtime by
// invariant.HierAgreement and pinned by experiment E20.
package hier

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// Config parameterizes a two-tier system. The zero value is not usable;
// start from Default and override.
type Config struct {
	// N is the total number of processes.
	N int
	// ClusterSize is c: processes [j·c, (j+1)·c) form cluster j. The last
	// cluster may be smaller when c does not divide n; every cluster must
	// still satisfy A2 for FIn.
	ClusterSize int
	// FIn is the per-cluster fault tolerance (cluster size ≥ 3·FIn+1).
	FIn int
	// FOut is the tolerated number of Byzantine representatives — clusters
	// whose outer-tier slot cannot be trusted (clusters ≥ 3·FOut+1).
	FOut int

	// Rho is the drift bound ρ shared by both tiers (A1 is per clock).
	Rho float64
	// InnerDelta/InnerEps/InnerBeta are the intra-cluster substrate and
	// initial-closeness parameters (δ_in, ε_in, β_in).
	InnerDelta, InnerEps, InnerBeta float64
	// OuterDelta/OuterEps/OuterBeta are the inter-cluster equivalents.
	OuterDelta, OuterEps, OuterBeta float64

	// P is the round length, shared by both tiers; the outer tier's marks
	// are offset by P/2 so discipline messages land mid-round, clear of the
	// inner collection windows.
	P float64
	// T0 is the local time at which inner round 0 begins.
	T0 float64

	// Candidates is how many of a cluster's lowest ids may act as its
	// representative (the election rotation set), clamped to the cluster
	// size. Default 2.
	Candidates int
	// ElectAfter is the discipline-silence timeout in local seconds after
	// which a follower deposes the acting representative. Default 2.5·P.
	ElectAfter float64
}

// Default returns a validated-by-construction two-tier regime for n
// processes in clusters of c: a LAN-like inner substrate (δ_in=2ms,
// ε_in=0.25ms) under a WAN-like outer substrate (δ_out=30ms, ε_out=2ms),
// with the fault budgets set to the largest values the topology supports
// (f_in from the smallest cluster, f_out from the cluster count).
func Default(n, c int) Config {
	cfg := Config{
		N:           n,
		ClusterSize: c,
		Rho:         1e-5,
		InnerDelta:  2e-3, InnerEps: 0.25e-3, InnerBeta: 4e-3,
		OuterDelta: 30e-3, OuterEps: 2e-3, OuterBeta: 12e-3,
		P: 1.0, T0: 0,
	}
	cfg = cfg.withDefaults()
	minSize := c
	if r := n % c; r != 0 && r < minSize {
		minSize = r
	}
	cfg.FIn = (minSize - 1) / 3
	cfg.FOut = (cfg.Clusters() - 1) / 3
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Candidates <= 0 {
		c.Candidates = 2
	}
	if c.ElectAfter == 0 {
		c.ElectAfter = 2.5 * c.P
	}
	return c
}

// Clusters returns m = ⌈n/c⌉.
func (c Config) Clusters() int { return (c.N + c.ClusterSize - 1) / c.ClusterSize }

// ClusterOf returns the cluster index owning process id.
func (c Config) ClusterOf(id sim.ProcID) int { return int(id) / c.ClusterSize }

// ClusterBounds returns the id range [lo, hi) of cluster j.
func (c Config) ClusterBounds(j int) (lo, hi sim.ProcID) {
	lo = sim.ProcID(j * c.ClusterSize)
	hi = lo + sim.ProcID(c.ClusterSize)
	if int(hi) > c.N {
		hi = sim.ProcID(c.N)
	}
	return lo, hi
}

// InnerParams returns the inner instance's paper parameters for cluster j.
func (c Config) InnerParams(j int) analysis.Params {
	lo, hi := c.ClusterBounds(j)
	return analysis.Params{
		N: int(hi - lo), F: c.FIn,
		Rho: c.Rho, Delta: c.InnerDelta, Eps: c.InnerEps,
		Beta: c.InnerBeta, P: c.P, T0: c.T0,
	}
}

// OuterParams returns the representative instance's paper parameters. The
// outer round marks are offset by P/2 from the inner ones.
func (c Config) OuterParams() analysis.Params {
	return analysis.Params{
		N: c.Clusters(), F: c.FOut,
		Rho: c.Rho, Delta: c.OuterDelta, Eps: c.OuterEps,
		Beta: c.OuterBeta, P: c.P, T0: c.T0 + c.P/2,
	}
}

// HierParams bundles the analysis view of both tiers (the inner side uses
// the full cluster size; the γ/AdjBound bounds are N-free).
func (c Config) HierParams() analysis.HierParams {
	return analysis.HierParams{Inner: c.InnerParams(0), Outer: c.OuterParams()}
}

// GammaComposed returns the composed agreement envelope 2γ_in + γ_out +
// AdjBound_out.
func (c Config) GammaComposed() float64 { return c.HierParams().GammaComposed() }

// Validate checks the topology and both tiers' paper constraints.
func (c Config) Validate() error {
	c = c.withDefaults()
	var errs []error
	if c.N < 1 {
		errs = append(errs, fmt.Errorf("n = %d must be positive", c.N))
	}
	if c.ClusterSize < 1 {
		errs = append(errs, fmt.Errorf("cluster size %d must be positive", c.ClusterSize))
	}
	if c.ClusterSize > c.N {
		errs = append(errs, fmt.Errorf("cluster size %d exceeds n = %d", c.ClusterSize, c.N))
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	// Validate once per distinct cluster size: only the A2 count check
	// depends on N, and contiguous grouping yields at most two sizes.
	if err := c.InnerParams(0).Validate(); err != nil {
		errs = append(errs, fmt.Errorf("inner tier: %w", err))
	}
	if last := c.Clusters() - 1; last > 0 {
		lo, hi := c.ClusterBounds(last)
		if int(hi-lo) != c.ClusterSize {
			if err := c.InnerParams(last).Validate(); err != nil {
				errs = append(errs, fmt.Errorf("inner tier (last cluster, %d members): %w", int(hi-lo), err))
			}
		}
	}
	if err := c.OuterParams().Validate(); err != nil {
		errs = append(errs, fmt.Errorf("outer tier: %w", err))
	}
	if c.ElectAfter <= c.P {
		errs = append(errs, fmt.Errorf("election timeout %v must exceed the round length %v (one missed heartbeat is not silence)", c.ElectAfter, c.P))
	}
	return errors.Join(errs...)
}

// MsgsPerRoundFlat returns the flat mesh's per-round copy count n².
func (c Config) MsgsPerRoundFlat() float64 { return float64(c.N) * float64(c.N) }

// MsgsPerRound estimates the hierarchy's per-round copy count: every member
// unicasts to its cluster (Σ c_j² ≈ n·c), every representative sends one
// outer mark per foreign candidate plus a self copy (m·((m−1)·cand + 1))
// and disciplines its followers (Σ (c_j−1)).
func (c Config) MsgsPerRound() float64 {
	cc := c.withDefaults()
	m := cc.Clusters()
	total := 0.0
	for j := 0; j < m; j++ {
		lo, hi := cc.ClusterBounds(j)
		size := float64(hi - lo)
		total += size*size + (size - 1)
	}
	total += float64(m) * (float64(m-1)*float64(cc.Candidates) + 1)
	return total
}

// GammaInner returns the per-cluster agreement envelope: the inner tier's
// own γ plus one outer adjustment of discipline-propagation slack (the
// representative and its followers apply each outer adjustment up to
// δ_in+ε_in of real time apart, during which the within-cluster spread
// carries that adjustment on top of γ_in).
func (c Config) GammaInner() float64 {
	return c.InnerParams(0).Gamma() + c.OuterParams().AdjBound()
}
