package hier

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// TierID says which of the two algorithm instances a round message belongs
// to, so a representative can run both over one mailbox.
type TierID uint8

// The two tiers.
const (
	TierInner TierID = iota + 1
	TierOuter
)

// TMsg is the round message of §4.2, tagged with its tier. As in core, the
// mark is informational: only the arrival time enters the computation, so a
// Byzantine sender's lever is *when* (and to whom) it sends, not what.
type TMsg struct {
	Tier TierID
	Mark clock.Local
}

// Discipline relays a representative's outer-tier adjustment to its
// followers. A zero-adjustment Discipline is still sent every outer round:
// it doubles as the liveness heartbeat the election monitors.
type Discipline struct {
	Adj   float64
	Round int32
}

// hTimer is the payload of a tier's TIMER interrupt. Unlike core.Proc — in
// which CORR changes only at the update that also sets the next timer — a
// Member's CORR can jump *between* setting a timer and its firing (an outer
// adjustment or a discipline message lands mid-round), which would silently
// shift the pending mark off the logical schedule: a forward jump eats into
// the next collection window until the whole cluster misses its arrivals.
// So every CORR jump re-arms the other tier's pending timer on the new
// clock, and gen identifies the superseded timer so it is ignored when the
// engine (which has no cancellation) still delivers it. Member also ignores
// timers with any other payload (e.g. left pending by a predecessor
// automaton).
type hTimer struct {
	tier TierID
	gen  uint32
}

// phase mirrors §4.2's FLAG.
type phase uint8

const (
	phaseBroadcast phase = iota + 1
	phaseUpdate
)

// tier is one §4.2 instance. It restates core.Proc's per-round state rather
// than embedding it because the hierarchy shares a single CORR between two
// concurrent instances and slots arrivals by group (cluster rank inside,
// cluster id outside) rather than by sender id.
type tier struct {
	f             int
	delta, window float64
	p             float64
	t, base       clock.Local
	rnd           int
	flag          phase
	arr           []float64
	scratch       []float64
}

func newTier(p analysis.Params) *tier {
	arr := make([]float64, p.N)
	for i := range arr {
		arr[i] = math.Inf(-1) // never-heard sentinel; reduce_f discards them
	}
	return &tier{
		f:     p.F,
		delta: p.Delta, window: p.Window(), p: p.P,
		t: clock.Local(p.T0), base: clock.Local(p.T0),
		flag: phaseBroadcast,
		arr:  arr, scratch: make([]float64, p.N),
	}
}

// adjustment computes AV = mid(reduce_f(ARR)) and ADJ = T + δ − AV, with
// core.Proc's out-of-spec skip guard: if more than f senders are missing the
// sentinels survive reduce_f and the average is meaningless, so the update
// is skipped rather than poisoning the clock.
func (t *tier) adjustment() float64 {
	copy(t.scratch, t.arr)
	av, err := multiset.MidpointSelect(t.scratch, t.f)
	if err != nil {
		// Unreachable for validated configs: |ARR| ≥ 3f+1 > 2f.
		panic(fmt.Sprintf("hier: averaging: %v", err))
	}
	adj := float64(t.t) + t.delta - av
	if math.IsInf(adj, 0) || math.IsNaN(adj) {
		adj = 0
	}
	return adj
}

// advance moves to the next round mark after an update.
func (t *tier) advance() {
	t.rnd++
	t.base += clock.Local(t.p)
	t.t = t.base
	t.flag = phaseBroadcast
}

// Member is the two-tier automaton of package hier: every process runs one.
// The inner tier is always live; the outer tier exists only while the
// process is its cluster's acting representative (it is created in place on
// election). Both tiers update the one shared CORR, so local time is
// Ph + CORR exactly as in core, and followers additionally apply the
// representative's relayed outer adjustments.
//
// The timing of the two tiers is interleaved, not synchronized: inner marks
// sit at T⁰+iP, outer marks at T⁰+P/2+iP, and both collection windows are
// far shorter than P/2 in any validated regime, so a round's CORR jumps
// (inner update, then outer update and discipline delivery) happen strictly
// between active collection windows and act as common-mode shifts within a
// cluster.
type Member struct {
	cfg     Config
	id      sim.ProcID
	cluster int
	lo, hi  sim.ProcID
	cands   int // candidate count in the own cluster

	corr     clock.Local
	inner    *tier
	outer    *tier // non-nil while acting representative
	repRank  int
	lastDisc clock.Local
	lastAdj  float64

	// Pending-timer bookkeeping: each tier has at most one live timer; the
	// generation counters invalidate superseded ones and the marks remember
	// the scheduled logical time for re-arming after a CORR jump.
	innerGen, outerGen uint32
	innerAt, outerAt   clock.Local
}

var (
	_ sim.Process    = (*Member)(nil)
	_ sim.CorrHolder = (*Member)(nil)
)

// NewMember builds the automaton for process id with the given initial
// correction. The caller is responsible for cfg.Validate.
func NewMember(cfg Config, id sim.ProcID, initialCorr clock.Local) *Member {
	cfg = cfg.withDefaults()
	cluster := cfg.ClusterOf(id)
	lo, hi := cfg.ClusterBounds(cluster)
	cands := cfg.Candidates
	if size := int(hi - lo); cands > size {
		cands = size
	}
	return &Member{
		cfg: cfg, id: id, cluster: cluster, lo: lo, hi: hi, cands: cands,
		corr:  initialCorr,
		inner: newTier(cfg.InnerParams(cluster)),
	}
}

// Corr implements sim.CorrHolder: the local time is Ph_p + CORR.
func (m *Member) Corr() clock.Local { return m.corr }

// Representative returns the id this member currently treats as its
// cluster's representative.
func (m *Member) Representative() sim.ProcID { return m.lo + sim.ProcID(m.repRank) }

// ActingRep reports whether this member is running the outer tier.
func (m *Member) ActingRep() bool { return m.outer != nil }

// Round returns the inner tier's current round index.
func (m *Member) Round() int { return m.inner.rnd }

// LastAdj returns the inner adjustment applied at the most recent update.
func (m *Member) LastAdj() float64 { return m.lastAdj }

func (m *Member) local(ctx *sim.Context) clock.Local { return ctx.PhysNow() + m.corr }

// armInner arranges the inner tier's TIMER for logical time T on the
// current clock, superseding any pending inner timer.
func (m *Member) armInner(ctx *sim.Context, T clock.Local) {
	m.innerGen++
	m.innerAt = T
	ctx.SetTimer(T-m.corr, hTimer{TierInner, m.innerGen})
}

// armOuter is armInner's outer-tier twin.
func (m *Member) armOuter(ctx *sim.Context, T clock.Local) {
	m.outerGen++
	m.outerAt = T
	ctx.SetTimer(T-m.corr, hTimer{TierOuter, m.outerGen})
}

// bumpFromInner applies an inner-tier CORR jump and re-arms the outer
// tier's pending timer (if any) on the new clock; the inner handler sets
// its own next timer afterwards.
func (m *Member) bumpFromInner(ctx *sim.Context, adj float64) {
	m.corr += clock.Local(adj)
	if m.outer != nil {
		m.armOuter(ctx, m.outerAt)
	}
}

// bumpFromOuter applies an outer-tier (or discipline) CORR jump and re-arms
// the inner tier's pending timer on the new clock.
func (m *Member) bumpFromOuter(ctx *sim.Context, adj float64) {
	m.corr += clock.Local(adj)
	m.armInner(ctx, m.innerAt)
}

// Receive implements sim.Process.
func (m *Member) Receive(ctx *sim.Context, msg sim.Message) {
	switch msg.Kind {
	case sim.KindOrdinary:
		m.receiveOrdinary(ctx, msg)

	case sim.KindStart:
		m.lastDisc = m.local(ctx)
		m.innerBroadcast(ctx)
		if m.id == m.Representative() {
			m.becomeRep(ctx)
		}

	case sim.KindTimer:
		ht, ok := msg.Payload.(hTimer)
		if !ok {
			return
		}
		switch {
		case ht.tier == TierInner && ht.gen == m.innerGen:
			m.innerTimer(ctx)
		case ht.tier == TierOuter && ht.gen == m.outerGen:
			m.outerTimer(ctx)
		}
	}
}

// receiveOrdinary routes arrivals and discipline. Unlike core.Proc — where
// any ordinary message refreshes ARR — only TMsg payloads record arrivals
// here, routed by tier and sender group; the Byzantine lever (arrival-time
// poisoning) is unchanged since a faulty process controls its TMsgs' timing.
func (m *Member) receiveOrdinary(ctx *sim.Context, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case TMsg:
		from := m.cfg.ClusterOf(msg.From)
		switch {
		case pl.Tier == TierInner && from == m.cluster:
			m.inner.arr[int(msg.From-m.lo)] = float64(m.local(ctx))
		case pl.Tier == TierOuter && from != m.cluster && m.outer != nil:
			// Outer arrivals are slotted by cluster, not by sender id, so a
			// freshly elected foreign representative is heard without any
			// membership exchange.
			m.outer.arr[from] = float64(m.local(ctx))
		}

	case Discipline:
		// Followers apply the relayed outer adjustment; an acting
		// representative runs its own outer instance and ignores relays
		// (e.g. from a deposed-but-alive predecessor).
		if m.outer == nil && msg.From == m.Representative() && msg.From != m.id {
			m.bumpFromOuter(ctx, pl.Adj)
			m.lastDisc = m.local(ctx)
			ctx.Annotate(metrics.TagDiscipline, pl.Adj)
		}
	}
}

// innerBroadcast is §4.2's BCAST step restricted to the own cluster: c
// unicast copies instead of n broadcast copies.
func (m *Member) innerBroadcast(ctx *sim.Context) {
	ctx.Annotate(metrics.TagRoundBegin, float64(m.inner.rnd))
	// Box the payload once: unicasting a fresh interface value per copy is
	// the dominant allocation at large n (lazy broadcasts pay it once per
	// round; this loop is the unicast equivalent).
	var pl any = TMsg{Tier: TierInner, Mark: m.inner.t}
	for q := m.lo; q < m.hi; q++ {
		ctx.Send(q, pl)
	}
	m.armInner(ctx, m.inner.t+clock.Local(m.inner.window))
	m.inner.flag = phaseUpdate
}

func (m *Member) innerTimer(ctx *sim.Context) {
	switch m.inner.flag {
	case phaseBroadcast:
		m.innerBroadcast(ctx)
	case phaseUpdate:
		adj := m.inner.adjustment()
		m.bumpFromInner(ctx, adj)
		m.lastAdj = adj
		ctx.Annotate(metrics.TagAdjust, adj)
		ctx.Annotate(metrics.TagRoundComplete, float64(m.inner.rnd))
		m.inner.advance()
		m.armInner(ctx, m.inner.t)
		m.checkElection(ctx)
	}
}

// checkElection runs once per inner round, after the update: a follower that
// has heard no discipline for more than ElectAfter of local time rotates to
// the next candidate, possibly electing itself.
func (m *Member) checkElection(ctx *sim.Context) {
	if m.outer != nil {
		// Acting representatives do not depose themselves; concurrent
		// representatives after a spurious election are harmless (followers
		// obey exactly one, and outer slots are last-write-wins per cluster).
		return
	}
	if float64(m.local(ctx)-m.lastDisc) <= m.cfg.ElectAfter {
		return
	}
	m.repRank = (m.repRank + 1) % m.cands
	m.lastDisc = m.local(ctx) // fresh grace period for the new tenure
	ctx.Annotate(metrics.TagElect, float64(m.Representative()))
	if m.id == m.Representative() {
		m.becomeRep(ctx)
	}
}

// becomeRep starts the outer instance in place, fast-forwarded to the next
// outer mark at or after the current local time (a late-elected
// representative joins the running schedule; its first update may see a cold
// ARR and skip via the adjustment guard, converging one round later).
func (m *Member) becomeRep(ctx *sim.Context) {
	m.outer = newTier(m.cfg.OuterParams())
	if now := m.local(ctx); now > m.outer.t {
		skip := math.Ceil(float64(now-m.outer.t) / m.outer.p)
		m.outer.base += clock.Local(skip * m.outer.p)
		m.outer.t = m.outer.base
		m.outer.rnd = int(skip)
	}
	m.armOuter(ctx, m.outer.t)
}

func (m *Member) outerTimer(ctx *sim.Context) {
	if m.outer == nil {
		return
	}
	switch m.outer.flag {
	case phaseBroadcast:
		m.outerBroadcast(ctx)
	case phaseUpdate:
		adj := m.outer.adjustment()
		m.bumpFromOuter(ctx, adj)
		ctx.Annotate(metrics.TagOuterAdjust, adj)
		m.outer.advance()
		m.armOuter(ctx, m.outer.t)
		var pl any = Discipline{Adj: adj, Round: int32(m.outer.rnd - 1)}
		for q := m.lo; q < m.hi; q++ {
			if q != m.id {
				ctx.Send(q, pl)
			}
		}
		m.lastDisc = m.local(ctx)
	}
}

// outerBroadcast sends the outer round mark to every foreign cluster's
// candidate set (so a representative elected later still has warm peers) and
// records the own-cluster slot directly at the nominal substrate offset —
// looping a copy through the intra-cluster channel would stamp it with an
// inner-band delay and bias the midpoint low.
func (m *Member) outerBroadcast(ctx *sim.Context) {
	mark := m.outer.t
	var pl any = TMsg{Tier: TierOuter, Mark: mark}
	for j := 0; j < m.cfg.Clusters(); j++ {
		if j == m.cluster {
			m.outer.arr[j] = float64(m.local(ctx)) + m.outer.delta
			continue
		}
		lo, hi := m.cfg.ClusterBounds(j)
		cands := m.cfg.Candidates
		if size := int(hi - lo); cands > size {
			cands = size
		}
		for r := 0; r < cands; r++ {
			ctx.Send(lo+sim.ProcID(r), pl)
		}
	}
	m.armOuter(ctx, mark+clock.Local(m.outer.window))
	m.outer.flag = phaseUpdate
}
