package hier

import (
	"math"
	"testing"

	"repro/internal/invariant"
	"repro/internal/sim"
)

// runSystem executes a built system for rounds maintenance rounds on the
// sequential engine and returns the engine plus the attached checker.
func runSystem(t *testing.T, s *System, rounds int, seed int64) (*sim.Engine, *invariant.HierAgreement) {
	t.Helper()
	e, err := sim.New(s.SimConfig(rounds, seed))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	chk := invariant.NewHierAgreement(
		s.Cfg.GammaComposed(), s.Cfg.GammaInner(),
		s.Cfg.ClusterSize, s.Warmup(rounds))
	e.Observe(chk)
	if err := e.Run(s.Horizon(rounds)); err != nil {
		t.Fatalf("run: %v", err)
	}
	return e, chk
}

// TestConverges: a benign two-tier system keeps every nonfaulty pair within
// γ_composed and every cluster within γ_in after warmup.
func TestConverges(t *testing.T) {
	for _, tc := range []struct{ n, c int }{
		{12, 4},  // even split
		{14, 4},  // last cluster smaller (c does not divide n)
		{8, 1},   // single-process clusters: outer tier does all the work
		{16, 16}, // one cluster: degenerate, inner tier does all the work
	} {
		s, err := Build(Default(tc.n, tc.c))
		if err != nil {
			t.Fatalf("n=%d c=%d: %v", tc.n, tc.c, err)
		}
		_, chk := runSystem(t, s, 6, 1)
		if chk.Checked() == 0 {
			t.Fatalf("n=%d c=%d: checker never sampled", tc.n, tc.c)
		}
		if !chk.Ok() {
			t.Errorf("n=%d c=%d: %v", tc.n, tc.c, chk.Violations())
		}
	}
}

// TestTrafficReduction: the measured per-round copy count matches the
// MsgsPerRound estimate and beats the flat mesh.
func TestTrafficReduction(t *testing.T) {
	const n, c, rounds = 60, 6, 6
	s, err := Build(Default(n, c))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := runSystem(t, s, rounds, 1)
	perRound := float64(e.MessagesSent()) / float64(rounds)
	if est := s.Cfg.MsgsPerRound(); perRound > 1.25*est {
		t.Errorf("measured %.0f copies/round, estimate %.0f", perRound, est)
	}
	if flat := s.Cfg.MsgsPerRoundFlat(); perRound > 0.5*flat {
		t.Errorf("measured %.0f copies/round not below half of flat %.0f", perRound, flat)
	}
}

// TestDeterministicAcrossShards: the same system produces an identical
// digest on the sequential engine and on 2, 4 and 8 shards, including a
// representative sitting on a shard boundary (c=6 does not divide n/k for
// any of the shard counts, so cluster id ranges straddle shard cuts).
func TestDeterministicAcrossShards(t *testing.T) {
	const n, c, rounds = 60, 6, 4
	type digest struct {
		events int
		msgs   int64
		spread float64
	}
	run := func(k int) digest {
		s, err := Build(Default(n, c))
		if err != nil {
			t.Fatal(err)
		}
		cfg := s.SimConfig(rounds, 7)
		horizon := s.Horizon(rounds)
		se, err := sim.NewSharded(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := se.Run(horizon); err != nil {
			t.Fatal(err)
		}
		lo, hi, _ := se.LocalTimeSpread(horizon)
		return digest{se.Steps(), se.MessagesSent(), float64(hi - lo)}
	}
	base := run(1)
	if base.events == 0 || base.msgs == 0 {
		t.Fatalf("empty execution: %+v", base)
	}
	for _, k := range []int{2, 4, 8} {
		if got := run(k); got != base {
			t.Errorf("shards=%d diverged: %+v vs %+v", k, got, base)
		}
	}
}

// TestElection: a crashed initial representative is deposed and its cluster
// re-disciplined by the next candidate; the system still converges with the
// faulty process excluded.
func TestElection(t *testing.T) {
	const n, c, rounds = 12, 4, 10
	s, err := Build(Default(n, c))
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 1's representative (id 4) is silent from the start.
	s.Procs[4] = silentProc{}
	cfg := s.SimConfig(rounds, 3)
	cfg.Faulty = make([]bool, n)
	cfg.Faulty[4] = true
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.NewHierAgreement(
		s.Cfg.GammaComposed(), s.Cfg.GammaInner(),
		s.Cfg.ClusterSize, s.Warmup(rounds))
	e.Observe(chk)
	if err := e.Run(s.Horizon(rounds)); err != nil {
		t.Fatal(err)
	}
	next := s.Procs[5].(*Member)
	if !next.ActingRep() {
		t.Fatalf("candidate 5 did not take over for the silent representative")
	}
	if got := next.Representative(); got != 5 {
		t.Fatalf("member 5 believes the representative is %d", got)
	}
	for _, id := range []int{6, 7} {
		if got := s.Procs[id].(*Member).Representative(); got != 5 {
			t.Errorf("follower %d believes the representative is %d, want 5", id, got)
		}
	}
	if chk.Checked() == 0 || !chk.Ok() {
		t.Errorf("post-election agreement: checked=%d %v", chk.Checked(), chk.Violations())
	}
}

// silentProc is a crashed-from-the-start automaton.
type silentProc struct{}

func (silentProc) Receive(*sim.Context, sim.Message) {}

// TestValidateRejects: topology errors are named, not panics.
func TestValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"cluster larger than n", func(c *Config) { c.ClusterSize = 100 }},
		{"last cluster too small for f_in", func(c *Config) { c.N = 13; c.FIn = 1 }},
		{"outer tier below 3f+1", func(c *Config) { c.FOut = 5 }},
		{"election timeout within one round", func(c *Config) { c.ElectAfter = 0.5 }},
	} {
		cfg := Default(12, 4)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
}

// TestGammaComposedFinite sanity-checks the derived bound's shape: positive,
// finite, and strictly wider than either tier alone.
func TestGammaComposedFinite(t *testing.T) {
	cfg := Default(64, 8)
	g := cfg.GammaComposed()
	if math.IsNaN(g) || math.IsInf(g, 0) || g <= 0 {
		t.Fatalf("γ_composed = %v", g)
	}
	if in := cfg.InnerParams(0).Gamma(); g <= in {
		t.Errorf("γ_composed %v not wider than γ_in %v", g, in)
	}
	if out := cfg.OuterParams().Gamma(); g <= out {
		t.Errorf("γ_composed %v not wider than γ_out %v", g, out)
	}
}

// TestClusteredDelayBounds: the envelope encloses both bands and keeps the
// sharded lookahead positive.
func TestClusteredDelayBounds(t *testing.T) {
	d := NewClusteredDelay(Default(12, 4))
	delta, eps := d.Bounds()
	if delta-eps <= 0 {
		t.Fatalf("lookahead δ−ε = %v not positive", delta-eps)
	}
	const tol = 1e-12
	if lo := delta - eps; lo > d.InnerDelta-d.InnerEps+tol || lo > d.OuterDelta-d.OuterEps+tol {
		t.Errorf("envelope floor %v above a band floor", lo)
	}
	if hi := delta + eps; hi < d.InnerDelta+d.InnerEps-tol || hi < d.OuterDelta+d.OuterEps-tol {
		t.Errorf("envelope ceiling %v below a band ceiling", hi)
	}
}

// orderObserver records the merged annotation stream and the window-cut
// sample times a sharded run dispatches — the full observable sequence an
// experiment attached to a ShardedEngine would see.
type orderObserver struct {
	anns []sim.Annotation
	cuts []float64
}

func (o *orderObserver) Sample(e *sim.Engine, _ bool) { o.cuts = append(o.cuts, float64(e.Now())) }
func (o *orderObserver) OnAnnotation(_ *sim.Engine, a sim.Annotation) {
	o.anns = append(o.anns, a)
}

// TestMergedWindowObserverOrdering: observers attached to a sharded two-tier
// run see one deterministic merged sequence — identical annotations in
// identical order, and identical window-cut sample times — at k ∈ {2, 4, 8}
// as on a single shard. The topology is chosen so clusters sit mid-range and
// straddle shard cuts (c = 6 divides none of the per-shard id spans), so the
// merge has to interleave annotations from processes owned by different
// shards, including a representative and its followers split across a cut.
func TestMergedWindowObserverOrdering(t *testing.T) {
	const n, c, rounds = 60, 6, 4
	run := func(k int) *orderObserver {
		s, err := Build(Default(n, c))
		if err != nil {
			t.Fatal(err)
		}
		se, err := sim.NewSharded(s.SimConfig(rounds, 11), k)
		if err != nil {
			t.Fatal(err)
		}
		obs := &orderObserver{}
		if err := se.Observe(obs); err != nil {
			t.Fatal(err)
		}
		if err := se.Run(s.Horizon(rounds)); err != nil {
			t.Fatal(err)
		}
		return obs
	}
	base := run(1)
	if len(base.anns) == 0 || len(base.cuts) == 0 {
		t.Fatalf("single-shard run observed nothing: %d annotations, %d cuts", len(base.anns), len(base.cuts))
	}
	// The stream must include mid-topology processes (cluster 4: ids 24–29,
	// astride the shard cut at every k tested) — otherwise the ordering
	// comparison would not exercise the cross-shard merge.
	mid := false
	for _, a := range base.anns {
		if a.Proc >= 24 && a.Proc < 30 {
			mid = true
			break
		}
	}
	if !mid {
		t.Fatal("no annotations from the mid-topology cluster (ids 24-29)")
	}
	for _, k := range []int{2, 4, 8} {
		got := run(k)
		if len(got.anns) != len(base.anns) {
			t.Fatalf("shards=%d: %d annotations, want %d", k, len(got.anns), len(base.anns))
		}
		for i := range got.anns {
			if got.anns[i] != base.anns[i] {
				t.Fatalf("shards=%d: annotation %d = %+v, single-shard has %+v", k, i, got.anns[i], base.anns[i])
			}
		}
		if len(got.cuts) != len(base.cuts) {
			t.Fatalf("shards=%d: %d window-cut samples, want %d", k, len(got.cuts), len(base.cuts))
		}
		for i := range got.cuts {
			if got.cuts[i] != base.cuts[i] {
				t.Fatalf("shards=%d: cut %d at %v, single-shard at %v", k, i, got.cuts[i], base.cuts[i])
			}
		}
	}
}
