package clocksync_test

import (
	"fmt"
	"log"

	clocksync "repro"
)

// Example runs the paper's maintenance algorithm on a 7-process cluster with
// two Byzantine processes and checks the three theorems hold.
func Example() {
	cluster, err := clocksync.New(7, 2,
		clocksync.WithFault(5, clocksync.FaultTwoFaced),
		clocksync.WithFault(6, clocksync.FaultSilent),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := cluster.Run(15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("agreement (Thm 16):", report.AgreementHolds())
	fmt.Println("adjustment (Thm 4a):", report.AdjustmentBoundHolds())
	fmt.Println("validity (Thm 19):", report.ValidityHolds())
	// Output:
	// agreement (Thm 16): true
	// adjustment (Thm 4a): true
	// validity (Thm 19): true
}

// ExampleRunStartup establishes synchronization from clocks that start three
// seconds apart (§9.2) and verifies the Lemma 20 convergence.
func ExampleRunStartup() {
	report, err := clocksync.RunStartup(7, 2, 3.0, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged to ≈4ε:", report.Converged(2.0))
	fmt.Println("rounds observed ≥ 15:", len(report.BSeries) >= 15)
	// Output:
	// converged to ≈4ε: true
	// rounds observed ≥ 15: true
}

// ExampleRunEstablishThenMaintain runs the full lifecycle the paper sketches
// at the end of §9.2: establish, switch, maintain.
func ExampleRunEstablishThenMaintain() {
	report, err := clocksync.RunEstablishThenMaintain(7, 2, 2.0, 6, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maintained within γ:", report.SteadySkew <= report.Gamma)
	// Output:
	// maintained within γ: true
}

// ExampleNew_derivedParameters lets the library derive a feasible β from the
// §5.2 constraints for a nonstandard drift and round length.
func ExampleNew_derivedParameters() {
	cluster, err := clocksync.New(7, 2,
		clocksync.WithRho(2e-4),
		clocksync.WithRoundLength(5),
		clocksync.WithDerivedBeta(),
	)
	if err != nil {
		log.Fatal(err)
	}
	p := cluster.Params()
	fmt.Println("β exceeds the 4ε+4ρP floor:", p.Beta > 4*p.Eps+4*p.Rho*p.P)
	// Output:
	// β exceeds the 4ε+4ρP floor: true
}
