// Benchmarks: one target per reproduced table/figure (E01–E16, see DESIGN.md
// §3 and EXPERIMENTS.md), plus micro-benchmarks of the substrates. The
// experiment benches execute the same workloads as cmd/experiments, so
// `go test -bench=. -benchmem` regenerates every reproduced result and
// reports its simulation cost.
package clocksync_test

import (
	"flag"
	"math/rand"
	"testing"

	clocksync "repro"
	"repro/internal/agreement"
	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/exp/runner"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// -workers sizes the sweep runner's worker pool for the experiment
// benchmarks: `go test -bench=Experiment -workers=1` measures the serial
// baseline, the default (GOMAXPROCS) measures the parallel speedup.
var workersFlag = flag.Int("workers", 0, "sweep worker pool size for experiment benchmarks (0 = GOMAXPROCS)")

// benchExperiment runs a registered experiment once per iteration on a
// worker pool of -workers goroutines.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner.SetDefaultWorkers(*workersFlag)
	defer runner.SetDefaultWorkers(0)
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExperimentE01Halving(b *testing.B)         { benchExperiment(b, "E01") }
func BenchmarkExperimentE02Agreement(b *testing.B)       { benchExperiment(b, "E02") }
func BenchmarkExperimentE03Adjustment(b *testing.B)      { benchExperiment(b, "E03") }
func BenchmarkExperimentE04Validity(b *testing.B)        { benchExperiment(b, "E04") }
func BenchmarkExperimentE05FaultSweep(b *testing.B)      { benchExperiment(b, "E05") }
func BenchmarkExperimentE06Startup(b *testing.B)         { benchExperiment(b, "E06") }
func BenchmarkExperimentE07Reintegration(b *testing.B)   { benchExperiment(b, "E07") }
func BenchmarkExperimentE08Comparison(b *testing.B)      { benchExperiment(b, "E08") }
func BenchmarkExperimentE09MeanMid(b *testing.B)         { benchExperiment(b, "E09") }
func BenchmarkExperimentE10KExchange(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkExperimentE11Stagger(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkExperimentE12Degradation(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkExperimentE13EpsSweep(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkExperimentE14ApproxAgreement(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkExperimentE15Lifecycle(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkExperimentE16Ablation(b *testing.B)        { benchExperiment(b, "E16") }

// BenchmarkMaintenanceRound measures the end-to-end simulation cost per
// synchronization round at several system sizes.
func BenchmarkMaintenanceRound(b *testing.B) {
	for _, nf := range []struct{ n, f int }{{4, 1}, {7, 2}, {13, 4}, {31, 10}} {
		b.Run(benchName(nf.n, nf.f), func(b *testing.B) {
			cfg := core.Config{Params: analysis.Default(nf.n, nf.f)}
			rounds := 10
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(exp.Workload{Cfg: cfg, Rounds: rounds, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds.Rounds() < rounds {
					b.Fatalf("only %d rounds", res.Rounds.Rounds())
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
		})
	}
}

func benchName(n, f int) string {
	return "n=" + itoa(n) + "/f=" + itoa(f)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkPublicAPI measures a complete Run through the facade.
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := clocksync.New(7, 2, clocksync.WithSeed(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultTolerantMidpoint measures the averaging function itself.
func BenchmarkFaultTolerantMidpoint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 31)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiset.FaultTolerantMidpoint(multiset.New(vals...), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistX measures the x-distance matcher on mid-sized multisets.
func BenchmarkDistX(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	u := make([]float64, 64)
	v := make([]float64, 64)
	for i := range u {
		u[i] = rng.Float64()
		v[i] = rng.Float64()
	}
	mu, mv := multiset.New(u...), multiset.New(v...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiset.DistX(mu, mv, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClockInverse measures piecewise-linear clock inversion, the hot
// operation of timer scheduling.
func BenchmarkClockInverse(b *testing.B) {
	sched := clock.RandomWalkDrift{RhoBound: 1e-4, SegmentDur: 1, Horizon: 3600, Seed: 3}
	c := sched.Build(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Inv(clock.Local(float64(i%3600) + 0.5))
	}
}

// BenchmarkEngineThroughput measures raw event-processing speed through the
// full queue/clock/delay stack, in two regimes (shared with cmd/benchjson,
// which writes the same measurements to BENCH_engine.json):
//
//   - steady: the no-observer steady state, one op per delivered event —
//     allocs/op here is the engine's own allocation rate and must stay at
//     (effectively) zero;
//   - workload: one full experiment-harness run per op, recorders attached;
//   - adversary: steady state with the delivery pipeline's adversary stage
//     active (every copy retimed through the clamped view, every delivery
//     hook-dispatched) — the regime E18's adaptive strategies pay for.
func BenchmarkEngineThroughput(b *testing.B) {
	b.Run("steady", bench.EngineSteady)
	b.Run("workload", bench.EngineWorkload)
	b.Run("adversary", bench.EngineAdversary)
}

// BenchmarkLargeN measures the round-structured broadcast regime the
// calendar queue and lazy materialization target: 10 maintenance rounds of
// an n-process full mesh (≈ n² messages per round inside one delay window)
// with no observers, so queue and automaton work dominate. The default
// configuration (calendar scheduler, lazy broadcasts at these sizes) is the
// number that matters; the -heap and -eager sub-benchmarks force the 4-ary
// heap and eager materialization as baselines, and the peak-queue-events
// metric exposes the O(n²) → O(n) population drop directly. The sharded
// sub-benchmarks run the same workload across k worker shards
// (time-window synchronization at lookahead δ−ε), and the -hier one swaps
// the flat mesh for the two-tier hierarchy (clusters of 32, internal/hier):
// same rounds, ≈ 3% of the per-round traffic (msgs-per-round records it).
func BenchmarkLargeN(b *testing.B) {
	b.Run("n=31", bench.LargeN(31, sim.SchedulerAuto, sim.BroadcastAuto))
	b.Run("n=101", bench.LargeN(101, sim.SchedulerAuto, sim.BroadcastAuto))
	b.Run("n=1009", bench.LargeN(1009, sim.SchedulerAuto, sim.BroadcastAuto))
	b.Run("n=31-heap", bench.LargeN(31, sim.SchedulerHeap, sim.BroadcastAuto))
	b.Run("n=101-heap", bench.LargeN(101, sim.SchedulerHeap, sim.BroadcastAuto))
	b.Run("n=101-eager", bench.LargeN(101, sim.SchedulerAuto, sim.BroadcastEager))
	b.Run("n=1009-eager", bench.LargeN(1009, sim.SchedulerAuto, sim.BroadcastEager))
	b.Run("n=1009-sharded-k=8", bench.LargeNSharded(1009, 8))
	b.Run("n=1009-hier", bench.LargeNHier(1009, 32))
}

// BenchmarkApproxAgreementRound measures one synchronous approximate
// agreement round at n=31.
func BenchmarkApproxAgreementRound(b *testing.B) {
	adv := &agreement.SpreadAdversary{}
	cfg := agreement.Config{N: 31, F: 10, Averager: agreement.Midpoint, Adversary: adv}
	init := make([]float64, 31)
	faulty := make([]bool, 31)
	for i := 0; i < 10; i++ {
		faulty[30-i] = true
	}
	rng := rand.New(rand.NewSource(4))
	for i := range init {
		init[i] = rng.Float64()
	}
	st, err := agreement.New(cfg, init, faulty)
	if err != nil {
		b.Fatal(err)
	}
	adv.Observe(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEtherRoute measures the collision channel bookkeeping.
func BenchmarkEtherRoute(b *testing.B) {
	ch := sim.NewEther(0.002, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := clock.Real(float64(i) * 1e-4)
		ch.Route(sim.ProcID(i%10), sim.ProcID((i+1)%10), t, 0.01)
	}
}
