// Byzantine: demonstrate the n ≥ 3f+1 tolerance boundary. With f two-faced
// processes in a 3f+1-sized system, agreement holds; hand the adversary one
// more process than the design tolerates and the guarantee is lost.
package main

import (
	"fmt"
	"log"

	clocksync "repro"
)

func main() {
	fmt.Println("Two-faced Byzantine processes vs the fault-tolerant averaging function")
	fmt.Println("=======================================================================")
	fmt.Println()

	// Within spec: n = 7 = 3f+1 with f = 2 two-faced processes. The
	// averaging function discards the f highest and f lowest arrival
	// times, so the planted extremes never reach the midpoint.
	within, err := clocksync.New(7, 2,
		clocksync.WithFault(5, clocksync.FaultTwoFaced),
		clocksync.WithFault(6, clocksync.FaultTwoFaced),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := within.Run(15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=7, f=2, two two-faced adversaries (within spec):\n")
	fmt.Printf("  max skew %9.3fms (steady %.3fms)  vs γ %.3fms  → agreement %v\n\n",
		rep.MaxSkew*1e3, rep.SteadySkew*1e3, rep.Gamma*1e3, verdict(rep.AgreementHolds()))

	// The same attack with every fault strategy in the library.
	for _, tc := range []struct {
		name string
		kind clocksync.FaultKind
	}{
		{"silent (crashed)", clocksync.FaultSilent},
		{"noise (babbling)", clocksync.FaultNoise},
		{"stale replay", clocksync.FaultStaleReplay},
		{"crash mid-run", clocksync.FaultCrashMidRun},
	} {
		c, err := clocksync.New(7, 2,
			clocksync.WithFault(5, tc.kind),
			clocksync.WithFault(6, tc.kind))
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Run(15)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s steady skew %9.3fms → agreement %v\n",
			tc.name+":", r.SteadySkew*1e3, verdict(r.AgreementHolds()))
	}

	fmt.Println()
	fmt.Println("The paper's assumption A2 (n ≥ 3f+1) is tight: [DHS] prove that without")
	fmt.Println("authentication no algorithm can synchronize when a third or more of the")
	fmt.Println("processes are faulty. Experiment E05b (cmd/experiments -run E05)")
	fmt.Println("demonstrates the collapse with f+1 coordinated adversaries.")
}

func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED"
}
