// Startup (§9.2): establish synchronization among clocks that begin with
// arbitrary values — here spread over three full seconds — using the
// READY-coordinated round structure, then watch the closeness halve each
// round down to ≈4ε.
package main

import (
	"fmt"
	"log"

	clocksync "repro"
)

func main() {
	fmt.Println("Establishing synchronization from arbitrary clocks (§9.2)")
	fmt.Println("==========================================================")
	fmt.Println()
	fmt.Println("Seven processes wake with clocks spread over 3 seconds. Local times")
	fmt.Println("cannot trigger rounds (they are arbitrarily far apart), so each round")
	fmt.Println("uses an extra READY phase: broadcast clock value → wait (1+ρ)(2δ+4ε) →")
	fmt.Println("compute adjustment → guard interval → READY; early-release on f+1")
	fmt.Println("READYs, apply the adjustment on n−f READYs.")
	fmt.Println()

	rep, err := clocksync.RunStartup(7, 2, 3.0, 20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("closeness Bᵢ at each round's (latest) beginning vs Lemma 20:")
	prev := 0.0
	for i, b := range rep.BSeries {
		if i > 14 {
			fmt.Println("  …")
			break
		}
		marker := ""
		if i > 0 {
			bound := rep.Recurrence(prev)
			if b <= bound*1.1+1e-5 {
				marker = fmt.Sprintf("  (≤ Bᵢ₋₁/2 + 2ε + 2ρ(11δ+39ε) = %.3fms)", bound*1e3)
			} else {
				marker = "  EXCEEDS RECURRENCE"
			}
		}
		fmt.Printf("  B%-2d = %10.3fms%s\n", i, b*1e3, marker)
		prev = b
	}
	fmt.Println()
	fmt.Printf("final skew %.3fms; Lemma 20 floor %.3fms; paper headline ≈4ε = %.3fms\n",
		rep.FinalSkew*1e3, rep.Floor*1e3, rep.FourEps*1e3)
	if rep.Converged(2.0) {
		fmt.Println("converged: the start-up algorithm reached the ≈4ε regime")
	} else {
		fmt.Println("DID NOT CONVERGE")
	}
	fmt.Println()
	fmt.Println("from here a deployment would switch to the maintenance algorithm")
	fmt.Println("(examples/quickstart), which keeps the clocks within γ forever.")
}
