// Timeservice: the full lifecycle of a deployed synchronization service —
// §9.2 establishment from arbitrary clocks, a message-free switch, and §4.2
// maintenance — in one call, the way the paper's closing of §9.2 describes
// ("run the start-up algorithm just until the desired closeness of
// synchronization is achieved and then switch to the maintenance
// algorithm").
package main

import (
	"fmt"
	"log"

	clocksync "repro"
)

func main() {
	fmt.Println("Full lifecycle: establish → switch → maintain")
	fmt.Println("=============================================")
	fmt.Println()
	fmt.Println("Seven processes boot with clocks spread over 2 seconds. They run the")
	fmt.Println("§9.2 start-up algorithm for 6 rounds (closeness ≈ 4ε), agree on a")
	fmt.Println("maintenance epoch, and hand over to the §4.2 round algorithm.")
	fmt.Println()

	rep, err := clocksync.RunEstablishThenMaintain(7, 2,
		2.0, // initial clock spread (seconds)
		6,   // start-up rounds before the switch
		10,  // maintenance rounds afterwards
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("maintenance rounds completed: %d\n", rep.Rounds)
	fmt.Printf("steady skew:   %8.3fms  (γ bound %8.3fms) — %s\n",
		rep.SteadySkew*1e3, rep.Gamma*1e3, verdict(rep.SteadySkew <= rep.Gamma))
	fmt.Printf("max |ADJ|:     %8.3fms  (T4a bound %6.3fms) — %s\n",
		rep.MaxAdjustment*1e3, rep.AdjBound*1e3, verdict(rep.MaxAdjustment <= rep.AdjBound))
	fmt.Printf("messages sent: %d\n", rep.MessagesSent)
	fmt.Println()
	fmt.Println("The switch rule (internal/core/switch.go): after the agreed number of")
	fmt.Println("start-up rounds every process computes epoch = (⌊local/P⌋+2)·P; since")
	fmt.Println("local times agree within a few ms ≪ P, all pick the same epoch. One")
	fmt.Println("final READY heals processes still one start-up round behind.")
}

func verdict(ok bool) string {
	if ok {
		return "holds"
	}
	return "VIOLATED"
}
