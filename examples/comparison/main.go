// Comparison (§10): run the paper's algorithm and the five comparison
// algorithms — Lamport/Melliar-Smith interactive convergence,
// Mahaney/Schneider inexact agreement, Srikanth/Toueg broadcast resync,
// HSSD signed-message resync, and Marzullo's interval intersection — on the
// identical simulated substrate, and print the §10 table.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/exp"
)

func main() {
	fmt.Println("Reproducing the §10 comparison on one substrate")
	fmt.Println("===============================================")
	fmt.Println()

	e, err := exp.ByID("E08")
	if err != nil {
		log.Fatal(err)
	}
	tables, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}

	fmt.Println()
	fmt.Println("reading the shape (paper §10):")
	fmt.Println("  • this paper ≈4ε beats CNV's ≈2nε always, and beats the broadcast")
	fmt.Println("    algorithms' ≈δ+ε exactly when δ > 3ε (here δ = 10ε)")
	fmt.Println("  • HSSD buys tolerance of ≥ n/3 faults with signatures; its clocks")
	fmt.Println("    free-run until a peer lags by ≈δ, so its skew rides toward δ+ε")
	fmt.Println("  • Mahaney/Schneider trades a looser in-spec bound for graceful")
	fmt.Println("    degradation past n/3 faults (see experiment E12)")
}
