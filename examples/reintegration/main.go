// Reintegration (§9.1): a process crashes, is repaired with a wildly wrong
// clock, wakes mid-round, observes one full round of traffic, synchronizes
// with the same fault-tolerant averaging, and rejoins the broadcast rota.
package main

import (
	"fmt"
	"log"

	clocksync "repro"
)

func main() {
	fmt.Println("Reintegrating a repaired process (§9.1)")
	fmt.Println("=======================================")
	fmt.Println()
	fmt.Println("Process 6 is down from the start; it is repaired and wakes at t=5.4s")
	fmt.Println("(mid-round) with its clock off by 99.9 seconds. Until it rejoins it")
	fmt.Println("counts as one of the f=2 tolerated faults.")
	fmt.Println()

	c, err := clocksync.New(7, 2,
		clocksync.WithRejoiner(6, 5.4, 99.9),
		// The second fault slot stays free — reintegration must work even
		// while another process is actively faulty.
		clocksync.WithFault(5, clocksync.FaultSilent),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := c.Run(18)
	if err != nil {
		log.Fatal(err)
	}

	if !rep.Rejoined {
		log.Fatal("rejoiner failed to reintegrate")
	}
	fmt.Println("rejoin sequence:")
	fmt.Println("  1. wake: collect Tⁱ messages for all plausible marks (grouped by mark)")
	fmt.Println("  2. discard the possibly-partial group seen right after waking")
	fmt.Println("  3. for the first fully observed round: wait (1+ρ)(β+2ε), then")
	fmt.Println("     CORR += Tⁱ + δ − mid(reduce_f(ARR)) — the wrong clock cancels out")
	fmt.Println("  4. broadcast again at Tⁱ⁺¹, within β of everyone")
	fmt.Println()
	fmt.Printf("result after %d rounds (skew measured over the always-nonfaulty processes):\n", rep.Rounds)
	fmt.Print(rep)
	fmt.Printf("\nagreement (γ bound): %v\n", rep.AgreementHolds())
	fmt.Println("rejoined:", rep.Rejoined)
	fmt.Println()
	fmt.Println("experiment E07 (cmd/experiments -run E07) additionally measures the")
	fmt.Println("rejoined process's own offset: within β at its first broadcast, within")
	fmt.Println("γ thereafter.")
}
