// Quickstart: synchronize seven drifting clocks, two of which may be
// Byzantine, and watch the per-round spread collapse to the paper's floor.
package main

import (
	"fmt"
	"log"

	clocksync "repro"
)

func main() {
	// A cluster of 7 processes tolerating f=2 Byzantine faults, with the
	// default regime: drift ρ=1e−5, delays 10ms±1ms, rounds of 1s.
	cluster, err := clocksync.New(7, 2)
	if err != nil {
		log.Fatal(err)
	}

	report, err := cluster.Run(12)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Welch-Lynch fault-tolerant clock synchronization")
	fmt.Println("================================================")
	fmt.Print(report)
	fmt.Println("\nper-round spread of round beginnings (the paper's βᵢ, roughly halving):")
	for i, b := range report.BetaSeries {
		fmt.Printf("  round %2d: %8.3fms%s\n", i, b*1e3, bar(b))
	}
	fmt.Printf("\npaper floor 4ε+4ρP = %.3fms — steady state sits at or below it\n",
		report.BetaFloor*1e3)
}

// bar renders a proportional ASCII bar for a duration.
func bar(sec float64) string {
	n := int(sec * 1e3 * 8) // 8 chars per ms
	if n > 70 {
		n = 70
	}
	s := "  "
	for i := 0; i < n; i++ {
		s += "█"
	}
	return s
}
